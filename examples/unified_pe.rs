//! Unified-PE demonstration (paper §4.3, Fig. 9): one Axon array,
//! programmable per layer to OS, WS or IS, runs three differently-shaped
//! GEMMs each under its best dataflow — plus the silicon cost of that
//! programmability from the hardware model.
//!
//! ```sh
//! cargo run --example unified_pe
//! ```

use axon::core::runtime::{Architecture, DrainPolicy};
use axon::core::{ArrayShape, Dataflow, GemmShape, ShapeError};
use axon::hw::{estimate_array_cost, ArrayDesign, ComponentLibrary, TechNode};
use axon::sim::{random_matrix, simulate_gemm, SimConfig};

fn main() -> Result<(), ShapeError> {
    let array = ArrayShape::square(16);
    println!("Unified Axon PE: one {array} array, reprogrammed per layer\n");

    // Three layers whose best mappings differ.
    let layers = [
        ("wide ofmap (K small)", GemmShape::new(64, 8, 64)),
        ("tall contraction (N small)", GemmShape::new(64, 64, 8)),
        ("skinny batch (M small)", GemmShape::new(8, 64, 64)),
    ];

    println!(
        "{:<28}{:>6}{:>12}{:>12}{:>10}",
        "layer", "df", "SA cycles", "Axon cyc", "speedup"
    );
    for (name, g) in layers {
        let df = Dataflow::min_temporal(g);
        let a = random_matrix(g.m, g.k, 1, 0.0);
        let b = random_matrix(g.k, g.n, 2, 0.0);
        let cfg = SimConfig::new(array)
            .with_dataflow(df)
            .with_pipelining(DrainPolicy::Overlapped);
        let sa = simulate_gemm(Architecture::Conventional, &cfg, &a, &b)?;
        let ax = simulate_gemm(Architecture::Axon, &cfg, &a, &b)?;
        assert_eq!(sa.output, ax.output);
        println!(
            "{:<28}{:>6}{:>12}{:>12}{:>9.2}x",
            name,
            df.name(),
            sa.stats.cycles,
            ax.stats.cycles,
            sa.stats.cycles as f64 / ax.stats.cycles as f64
        );
    }

    // What the programmability costs in silicon (four MUXes per PE).
    let lib = ComponentLibrary::calibrated_7nm();
    let fixed = estimate_array_cost(
        ArrayDesign::Axon {
            im2col: true,
            unified_pe: false,
        },
        array,
        TechNode::asap7(),
        &lib,
    );
    let unified = estimate_array_cost(
        ArrayDesign::Axon {
            im2col: true,
            unified_pe: true,
        },
        array,
        TechNode::asap7(),
        &lib,
    );
    println!(
        "\nsilicon: fixed-dataflow Axon {:.4} mm^2 -> unified PE {:.4} mm^2 (+{:.1}%)",
        fixed.area_mm2,
        unified.area_mm2,
        100.0 * (unified.area_mm2 - fixed.area_mm2) / fixed.area_mm2
    );
    println!("Switching dataflow per layer costs four 2-to-1 MUXes per PE.");
    Ok(())
}

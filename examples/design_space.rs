//! Design-space exploration: for a workload mix, sweep array sizes and
//! report runtime, utilization, silicon area and power for conventional
//! SA, Axon, and Axon with im2col — the trade-off view a deployment
//! study would start from.
//!
//! ```sh
//! cargo run --example design_space
//! ```

use axon::core::runtime::{Architecture, RuntimeSpec};
use axon::core::utilization::{utilization, UtilArchitecture};
use axon::core::{ArrayShape, Dataflow};
use axon::hw::{estimate_array_cost, ArrayDesign, ComponentLibrary, TechNode};
use axon::workloads::table3;

fn main() {
    let lib = ComponentLibrary::calibrated_7nm();
    let mix: Vec<_> = table3().into_iter().take(8).collect();

    println!("Design-space sweep over the first 8 Table-3 workloads (7 nm)\n");
    println!(
        "{:>8}{:>14}{:>14}{:>10}{:>10}{:>12}{:>10}",
        "array", "SA Mcycles", "Axon Mcycles", "speedup", "Axon UR", "area mm^2", "power mW"
    );

    for side in [16usize, 32, 64, 128] {
        let array = ArrayShape::square(side);
        let mut sa_cycles = 0usize;
        let mut ax_cycles = 0usize;
        let mut ur = 0.0f64;
        for w in &mix {
            let df = Dataflow::min_temporal(w.shape);
            let spec = RuntimeSpec::new(array, df);
            sa_cycles += spec.runtime(Architecture::Conventional, w.shape).cycles;
            ax_cycles += spec.runtime(Architecture::Axon, w.shape).cycles;
            ur += utilization(UtilArchitecture::Axon, array, df, w.shape);
        }
        let cost = estimate_array_cost(
            ArrayDesign::Axon {
                im2col: true,
                unified_pe: false,
            },
            array,
            TechNode::asap7(),
            &lib,
        );
        println!(
            "{:>8}{:>14.1}{:>14.1}{:>9.2}x{:>9.1}%{:>12.4}{:>10.1}",
            format!("{side}x{side}"),
            sa_cycles as f64 / 1e6,
            ax_cycles as f64 / 1e6,
            sa_cycles as f64 / ax_cycles as f64,
            100.0 * ur / mix.len() as f64,
            cost.area_mm2,
            cost.power_mw
        );
    }

    println!("\nBigger arrays amplify Axon's fill-latency advantage but cost");
    println!("quadratic silicon; utilization falls as tiles under-fill the array.");
}

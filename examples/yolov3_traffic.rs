//! YOLOv3 memory-traffic and energy analysis: software im2col versus the
//! on-chip MUX feeder, layer by layer, with DRAM energy at LPDDR3 cost.
//!
//! ```sh
//! cargo run --example yolov3_traffic
//! ```

use axon::im2col::{layer_dram_traffic, DramTrafficModel};
use axon::mem::{DramConfig, EnergyReport};
use axon::workloads::yolov3;

fn main() {
    let net = yolov3();
    let model = DramTrafficModel::default();
    let dram = DramConfig::lpddr3();

    println!("{net} — ifmap DRAM stream, software vs on-chip im2col\n");
    println!(
        "{:<34}{:>4}{:>12}{:>12}{:>9}",
        "layer (xN)", "k", "sw MB", "axon MB", "saved"
    );

    let mut shown = 0;
    for (layer, count) in net.layers() {
        let t = layer_dram_traffic(layer, model);
        // Print the ten biggest movers only; the totals cover everything.
        if t.software_ifmap_bytes * count > 40_000_000 && shown < 10 {
            shown += 1;
            println!(
                "{:<34}{:>4}{:>12.1}{:>12.1}{:>8.1}%",
                format!("{layer} x{count}"),
                layer.kernel,
                count as f64 * t.software_ifmap_bytes as f64 / 1e6,
                count as f64 * t.onchip_ifmap_bytes as f64 / 1e6,
                t.ifmap_reduction_pct()
            );
        }
    }

    let total = net.dram_traffic(model);
    let report = EnergyReport::new(&dram, total.software_ifmap_bytes, total.onchip_ifmap_bytes);
    println!("\nnetwork total: {report}");
    println!("paper: 2540 MB -> 1117 MB, ~170 mJ saved");
}

//! Visualize the two data orchestrations: the cycle in which each PE
//! first fires, for the conventional corner feed vs Axon's diagonal feed
//! (the paper's Figs. 1 and 3, observed rather than drawn).
//!
//! ```sh
//! cargo run --example wavefront
//! ```

use axon::core::runtime::Architecture;
use axon::core::{ArrayShape, ShapeError};
use axon::sim::{random_matrix, simulate_gemm_traced, SimConfig};

fn main() -> Result<(), ShapeError> {
    let n = 12usize;
    let a = random_matrix(n, 4, 1, 0.0);
    let b = random_matrix(4, n, 2, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(n));

    println!("First-MAC cycle per PE on a {n}x{n} array (hex digits):\n");
    for arch in [Architecture::Conventional, Architecture::Axon] {
        let (result, activity) = simulate_gemm_traced(arch, &cfg, &a, &b)?;
        assert_eq!(result.output, a.matmul(&b));
        println!("--- {arch} ---");
        println!("{}", activity.wavefront_string());
    }

    println!("Conventional: a Manhattan wavefront from the top-left corner");
    println!("(farthest PE waits {} cycles).", 2 * (n - 1));
    println!("Axon: a Chebyshev wavefront from the principal diagonal");
    println!(
        "(farthest PE waits {} cycles) — half the fill latency.",
        n - 1
    );
    Ok(())
}

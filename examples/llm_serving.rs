//! LLM serving study: prefill vs single-token decode for a GPT-3 2.7B
//! block on conventional vs Axon arrays — the workload mix where Axon's
//! fill-latency advantage matters most (decode is pure GEMV).
//!
//! ```sh
//! cargo run --example llm_serving
//! ```

use axon::core::mapper::best_mapping;
use axon::core::runtime::{Architecture, RuntimeSpec};
use axon::core::{ArrayShape, Dataflow};
use axon::workloads::TransformerConfig;

fn main() {
    let cfg = TransformerConfig::gpt3_2p7b();
    let array = ArrayShape::square(128);
    println!("GPT-3 2.7B block on a {array} array (Table 3 provenance shapes)\n");

    for (label, workloads) in [
        ("prefill (seq 1024)", cfg.block_workloads()),
        ("decode (1 token)", cfg.decode_workloads()),
    ] {
        println!("--- {label} ---");
        println!(
            "{:<22}{:>6}{:>14}{:>14}{:>10}",
            "GEMM", "df", "SA cycles", "Axon cycles", "speedup"
        );
        let mut sa_total = 0usize;
        let mut ax_total = 0usize;
        for w in &workloads {
            let df = Dataflow::min_temporal(w.shape);
            let spec = RuntimeSpec::new(array, df);
            let sa = spec.runtime(Architecture::Conventional, w.shape).cycles;
            let ax = spec.runtime(Architecture::Axon, w.shape).cycles;
            sa_total += sa;
            ax_total += ax;
            println!(
                "{:<22}{:>6}{:>14}{:>14}{:>9.2}x",
                w.name,
                df.name(),
                sa,
                ax,
                sa as f64 / ax as f64
            );
        }
        println!(
            "{:<28}{:>14}{:>14}{:>9.2}x\n",
            "TOTAL",
            sa_total,
            ax_total,
            sa_total as f64 / ax_total as f64
        );
    }

    // What would the mapper choose for the decode LM head?
    let lm_head = cfg.decode_workloads().pop().expect("non-empty");
    let best = best_mapping(Architecture::Axon, array, lm_head.shape, &[(2, 2), (4, 4)]);
    println!("mapper's pick for the decode LM head: {best}");
    println!("\nDecode is fill-bound end to end: Axon's halved fill latency");
    println!("translates into nearly 2x lower per-token latency.");
}

//! LLM serving study on the `axon::serve` subsystem: identical
//! decode-heavy request traffic into a Conventional and an Axon pod,
//! end to end — queueing, batching, sharding, energy — instead of the
//! old per-kernel cycle table.
//!
//! ```sh
//! cargo run --example llm_serving --release
//! ```

use axon::core::runtime::Architecture;
use axon::serve::{
    simulate_pod, MappingPolicy, MemoryModel, PodConfig, PreemptionMode, RequestClass,
    SchedulerPolicy, ServingReport, TrafficConfig, WorkloadMix,
};

const ARRAYS: usize = 4;
const SIDE: usize = 128;

fn pod(arch: Architecture, mapping: MappingPolicy) -> PodConfig {
    PodConfig::homogeneous(ARRAYS, arch, SIDE).with_mapping(mapping)
}

fn row(label: &str, r: &ServingReport) {
    let m = &r.metrics;
    println!(
        "{label:<26}{:>10.0}{:>10.1}{:>10.1}{:>10.1}{:>8.2}{:>7.0}%{:>10.3}",
        m.throughput_rps(),
        m.micros(m.total.p50),
        m.micros(m.total.p95),
        m.micros(m.total.p99),
        m.mean_batch_size,
        100.0 * m.mean_utilization(),
        m.energy_per_request_mj()
    );
}

fn main() {
    // Decode-dominated traffic with prefills mixed in, at a load the
    // conventional pod can still carry.
    let traffic = TrafficConfig::open_loop(7, 2000, 10_000.0).with_mix(WorkloadMix::new(vec![
        (RequestClass::Decode, 0.90),
        (RequestClass::Prefill, 0.10),
    ]));

    println!("LLM serving: {ARRAYS}x {SIDE}x{SIDE} pods, identical traffic (2000 requests)\n");
    println!(
        "{:<26}{:>10}{:>10}{:>10}{:>10}{:>8}{:>8}{:>10}",
        "pod", "req/s", "p50 us", "p95 us", "p99 us", "batch", "util", "mJ/req"
    );

    // The paper's Fig. 12/14 methodology: the same fill-minimizing
    // mapping on both architectures.
    let mt = MappingPolicy::MinTemporal;
    let sa_mt = simulate_pod(&pod(Architecture::Conventional, mt), &traffic);
    let ax_mt = simulate_pod(&pod(Architecture::Axon, mt), &traffic);
    row("conventional (min-T map)", &sa_mt);
    row("axon         (min-T map)", &ax_mt);

    // Each architecture with per-request dataflow selection — the agility
    // Axon's unified PE makes a runtime knob (paper SS4.3).
    let best = MappingPolicy::BestPerRequest;
    let sa_best = simulate_pod(&pod(Architecture::Conventional, best), &traffic);
    let ax_best = simulate_pod(&pod(Architecture::Axon, best), &traffic);
    row("conventional (best map)", &sa_best);
    row("axon         (best map)", &ax_best);

    let p50_gain = sa_mt.metrics.total.p50 as f64 / ax_mt.metrics.total.p50 as f64;
    println!(
        "\nunder the paper's mapping, Axon's halved fill latency gives {p50_gain:.2}x \
         lower median latency"
    );

    // FIFO vs batching on the Axon pod, at a decode storm.
    let storm = TrafficConfig::open_loop(11, 2000, 2_500.0)
        .with_mix(WorkloadMix::single(RequestClass::Decode));
    let fifo = simulate_pod(
        &pod(Architecture::Axon, mt).with_scheduler(SchedulerPolicy::Fifo),
        &storm,
    );
    let batched = simulate_pod(
        &pod(Architecture::Axon, mt).with_scheduler(SchedulerPolicy::Batching { max_batch: 8 }),
        &storm,
    );
    println!("\ndecode storm on the Axon pod (200k offered req/s):");
    println!(
        "{:<26}{:>10}{:>10}{:>10}{:>10}{:>8}{:>8}{:>10}",
        "scheduler", "req/s", "p50 us", "p95 us", "p99 us", "batch", "util", "mJ/req"
    );
    row("fifo", &fifo);
    row("batching (max 8)", &batched);
    println!(
        "\ncoalescing compatible decode GEMVs into one GEMM lifts throughput {:.2}x",
        batched.metrics.throughput_rps() / fifo.metrics.throughput_rps()
    );

    // SLO-aware scheduling on mixed classes: decode deadlines are 300 us,
    // prefill 10 ms — FIFO lets prefills block the decode tail; EDF with
    // continuous batching (+ tile-granular preemption) removes it.
    let mixed = TrafficConfig::open_loop(23, 2000, 4_000.0).with_mix(WorkloadMix::new(vec![
        (RequestClass::Decode, 0.80),
        (RequestClass::Prefill, 0.20),
    ]));
    println!("\nmixed SLO classes on the Axon pod (125k offered req/s):");
    println!(
        "{:<26}{:>12}{:>14}{:>10}{:>10}{:>8}",
        "scheduler", "goodput/s", "decode p99us", "dec viol", "preempt", "joins"
    );
    for (label, scheduler, preemption) in [
        ("fifo", SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        (
            "edf",
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            "edf + continuous batching",
            SchedulerPolicy::Continuous { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
    ] {
        let r = simulate_pod(
            &pod(Architecture::Axon, mt)
                .with_scheduler(scheduler)
                .with_preemption(preemption),
            &mixed,
        );
        let m = &r.metrics;
        let decode = m
            .class_metrics(RequestClass::Decode)
            .expect("decode traffic present");
        println!(
            "{label:<26}{:>12.0}{:>14.1}{:>10}{:>10}{:>8}",
            m.goodput_rps(),
            m.micros(decode.total.p99),
            decode.slo_violations,
            m.preemptions,
            m.inflight_joins
        );
    }
    // Shared-DRAM contention: the same Axon pod, but with service time
    // coupled to the memory system. Decode streams ~1 MB of weights per
    // request, so bandwidth — not compute — is the honest capacity
    // limit, and starving the channels stretches the tail monotonically.
    println!("\nshared-DRAM contention on the Axon pod (continuous batching):");
    println!(
        "{:<26}{:>10}{:>14}{:>14}",
        "memory model", "req/s", "service p99us", "decode p99us"
    );
    for (label, memory) in [
        ("compute-only (old)", MemoryModel::Unconstrained),
        ("4 channels (private)", MemoryModel::Shared { channels: 4 }),
        ("2 channels", MemoryModel::Shared { channels: 2 }),
        ("1 channel", MemoryModel::Shared { channels: 1 }),
    ] {
        let r = simulate_pod(
            &pod(Architecture::Axon, mt)
                .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
                .with_memory(memory),
            &mixed,
        );
        let m = &r.metrics;
        let decode = m
            .class_metrics(RequestClass::Decode)
            .expect("decode traffic present");
        println!(
            "{label:<26}{:>10.0}{:>14.1}{:>14.1}",
            m.throughput_rps(),
            m.micros(m.service.p99),
            m.micros(decode.total.p99)
        );
    }

    println!("\nsee docs/scheduling.md for the full policy guide (and");
    println!("docs/memory.md for the shared-DRAM model and `contention_sweep`).");
}

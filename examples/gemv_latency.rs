//! GEMV latency study: why memory-bound matrix-vector products approach
//! the 2x speedup bound on Axon — measured with the cycle-accurate
//! simulator, not just the model.
//!
//! ```sh
//! cargo run --example gemv_latency
//! ```

use axon::core::runtime::{Architecture, RuntimeSpec};
use axon::core::{ArrayShape, Dataflow, GemmShape, ShapeError};
use axon::sim::{random_matrix, simulate_gemm, SimConfig};

fn main() -> Result<(), ShapeError> {
    let array = ArrayShape::square(16);
    println!("GEMV y = A x on a {array} array, WS dataflow (x stationary-side)\n");
    println!(
        "{:>12}{:>12}{:>12}{:>10}{:>22}",
        "A shape", "SA cycles", "Axon cyc", "speedup", "model / pipelined"
    );

    for (m, k) in [(64usize, 64usize), (128, 128), (256, 128), (256, 256)] {
        let a = random_matrix(m, k, 3, 0.0);
        let x = random_matrix(k, 1, 4, 0.0);
        let cfg = SimConfig::new(array).with_dataflow(Dataflow::Ws);
        let sa = simulate_gemm(Architecture::Conventional, &cfg, &a, &x)?;
        let ax = simulate_gemm(Architecture::Axon, &cfg, &a, &x)?;
        assert_eq!(sa.output, a.matmul(&x));
        assert_eq!(ax.output, a.matmul(&x));

        let spec = RuntimeSpec::new(array, Dataflow::Ws)
            .with_drain(axon::core::runtime::DrainPolicy::PerTile)
            .with_accounting(axon::core::runtime::Accounting::ExactEdges);
        let g = GemmShape::gemv(m, k);
        let model = spec.runtime(Architecture::Conventional, g).cycles as f64
            / spec.runtime(Architecture::Axon, g).cycles as f64;

        let pipelined = RuntimeSpec::new(array, Dataflow::Ws).speedup(g);

        println!(
            "{:>12}{:>12}{:>12}{:>9.2}x{:>13.2}x /{:>5.2}x",
            format!("{m}x{k}"),
            sa.stats.cycles,
            ax.stats.cycles,
            sa.stats.cycles as f64 / ax.stats.cycles as f64,
            model,
            pipelined
        );
    }

    println!("\nThe simulator executes tile passes back to back (no overlap),");
    println!("reproducing the per-tile model exactly (~1.5x for square tiles).");
    println!("With drains overlapped across passes — the paper's pipelined");
    println!("regime — the model speedup (right column) approaches 2x.");
    Ok(())
}

//! Quickstart: run one GEMM through both architectures, cycle-accurately,
//! and compare against the analytical model.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use axon::core::runtime::{Architecture, RuntimeSpec};
use axon::core::{ArrayShape, Dataflow, GemmShape, ShapeError};
use axon::sim::{random_matrix, simulate_gemm, SimConfig};

fn main() -> Result<(), ShapeError> {
    // A GEMM with a short temporal dimension: C[96x96] = A[96x12] * B[12x96]
    // on a 16x16 array. Short K means fill latency dominates — Axon's
    // sweet spot.
    let gemm = GemmShape::new(96, 12, 96);
    let array = ArrayShape::square(16);
    let a = random_matrix(gemm.m, gemm.k, 1, 0.0);
    let b = random_matrix(gemm.k, gemm.n, 2, 0.0);
    let reference = a.matmul(&b);

    println!("GEMM {gemm} on a {array} array, OS dataflow\n");
    let cfg = SimConfig::new(array).with_dataflow(Dataflow::Os);

    for arch in [Architecture::Conventional, Architecture::Axon] {
        let result = simulate_gemm(arch, &cfg, &a, &b)?;
        assert_eq!(result.output, reference, "functional mismatch");
        let model = RuntimeSpec::new(array, Dataflow::Os)
            .with_drain(axon::core::runtime::DrainPolicy::PerTile)
            .with_accounting(axon::core::runtime::Accounting::ExactEdges)
            .runtime(arch, gemm);
        println!(
            "{arch:<16} simulated {:>6} cycles | model {:>6} cycles | {} MACs, util {:.1}%",
            result.stats.cycles,
            model.cycles,
            result.stats.macs_performed,
            100.0 * result.stats.utilization(array.num_pes()),
        );
    }

    let spec = RuntimeSpec::new(array, Dataflow::Os);
    println!(
        "\nanalytical speedup (drain-overlapped): {:.2}x",
        spec.speedup(gemm)
    );
    println!("output verified against the naive reference — exact match");
    Ok(())
}

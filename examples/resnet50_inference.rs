//! ResNet-50 inference walk-through: per-stage runtime on conventional vs
//! Axon arrays, plus one real conv layer executed end to end through
//! im2col lowering and the cycle-accurate simulator.
//!
//! ```sh
//! cargo run --example resnet50_inference
//! ```

use axon::core::runtime::{Architecture, RuntimeSpec};
use axon::core::{ArrayShape, Dataflow, ShapeError};
use axon::im2col::{direct_conv, flatten_filters, im2col, ConvLayer, FilterBank, Tensor3};
use axon::sim::{simulate_gemm, SimConfig};
use axon::workloads::resnet50;

fn main() -> Result<(), ShapeError> {
    let array = ArrayShape::square(32);
    let net = resnet50();
    println!("{net}, array {array}\n");

    // 1) Whole-network runtime from the analytical model.
    let mut sa_total = 0usize;
    let mut ax_total = 0usize;
    for (layer, count) in net.layers() {
        let g = layer.gemm_shape();
        let spec = RuntimeSpec::new(array, Dataflow::min_temporal(g));
        sa_total += spec.runtime(Architecture::Conventional, g).cycles * count;
        ax_total += spec.runtime(Architecture::Axon, g).cycles * count;
    }
    println!(
        "conv runtime: SA {} Mcycles -> Axon {} Mcycles ({:.2}x)",
        sa_total / 1_000_000,
        ax_total / 1_000_000,
        sa_total as f64 / ax_total as f64
    );

    // 2) One real (scaled-down) bottleneck 3x3 layer, end to end:
    //    im2col lowering -> tiled Axon simulation -> compare with direct
    //    convolution.
    let layer = ConvLayer::new(8, 16, 14, 14, 3, 1, 1);
    let ifmap = Tensor3::from_fn(8, 14, 14, |c, y, x| ((c + 3 * y + 5 * x) % 7) as f32 - 3.0);
    let filters = FilterBank::from_fn(16, 8, 3, |m, c, y, x| ((m + c + y + x) % 5) as f32 - 2.0);

    let lowered = im2col(&layer, &ifmap)?;
    let flat = flatten_filters(&layer, &filters)?;
    let cfg = SimConfig::new(ArrayShape::square(16));
    let run = simulate_gemm(Architecture::Axon, &cfg, &flat, &lowered)?;
    let truth = direct_conv(&layer, &ifmap, &filters)?;
    assert_eq!(run.output, truth, "conv-by-GEMM mismatch");

    println!(
        "\nsample layer {layer}: simulated {} cycles over {} tiles; \
         output equals direct convolution",
        run.stats.cycles, run.stats.tiles
    );
    Ok(())
}

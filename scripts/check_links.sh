#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md, ROADMAP.md,
# CHANGES.md and docs/*.md resolves to an existing file or directory, and that every `#anchor`
# fragment pointing at a markdown file (the linking document itself for
# bare `#anchor` links) matches an actual heading in that file, using
# GitHub's slugification (lowercase; drop everything but alphanumerics,
# spaces, hyphens and underscores; spaces become hyphens; duplicate
# slugs get -1, -2, ... suffixes). External (http/https) links are
# skipped. Exits non-zero listing any dead links or anchors.
set -euo pipefail

cd "$(dirname "$0")/.."

# Emit the GitHub anchor slug of every markdown heading in $1, one per
# line (fenced code blocks excluded so `# comments` in examples don't
# register as headings).
slugs_of() {
    awk '
        /^(```|~~~)/ { fence = !fence; next }
        fence { next }
        /^#+ / {
            sub(/^#+ +/, "")
            print
        }
    ' "$1" \
        | tr '[:upper:]' '[:lower:]' \
        | sed -E 's/[^a-z0-9 _-]//g; s/ /-/g' \
        | awk '{ n = seen[$0]++; if (n) print $0 "-" n; else print $0 }'
}

fail=0
for doc in README.md ROADMAP.md CHANGES.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Extract (target) parts of [text](target) links, one per line.
    # `|| true` tolerates docs with no links (grep exits 1 on no match).
    { grep -oE '\]\([^)]+\)' "$doc" || true; } | sed -E 's/^\]\(//; s/\)$//' | while read -r target; do
        case "$target" in
            http://*|https://*) continue ;;
        esac
        path="${target%%#*}"
        frag=""
        case "$target" in
            *'#'*) frag="${target#*#}" ;;
        esac
        if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
            echo "DEAD LINK in $doc: $target"
            exit 1
        fi
        # Validate the fragment against the target's headings. Bare
        # `#anchor` links point into the current document; fragments on
        # non-markdown targets (source line anchors etc.) are skipped.
        if [ -n "$frag" ]; then
            if [ -n "$path" ]; then
                anchor_file="$dir/$path"
            else
                anchor_file="$doc"
            fi
            case "$anchor_file" in
                *.md) ;;
                *) continue ;;
            esac
            if ! slugs_of "$anchor_file" | grep -qxF "$frag"; then
                echo "DEAD ANCHOR in $doc: $target (no heading slugs to '$frag' in $anchor_file)"
                exit 1
            fi
        fi
    done || fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "link check failed"
    exit 1
fi
echo "all relative links and #anchors in README.md, ROADMAP.md, CHANGES.md and docs/ resolve"

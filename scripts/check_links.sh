#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# resolves to an existing file or directory. External (http/https) and
# anchor-only links are skipped. Exits non-zero listing any dead links.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Extract (target) parts of [text](target) links, one per line.
    # `|| true` tolerates docs with no links (grep exits 1 on no match).
    { grep -oE '\]\([^)]+\)' "$doc" || true; } | sed -E 's/^\]\(//; s/\)$//' | while read -r target; do
        case "$target" in
            http://*|https://*|\#*) continue ;;
        esac
        # Strip a trailing #anchor.
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "DEAD LINK in $doc: $target"
            exit 1
        fi
    done || fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "link check failed"
    exit 1
fi
echo "all relative links in README.md and docs/ resolve"

//! Smoke test for the facade crate: the exact path the top-level README's
//! quickstart walks. If this breaks, the documented first-contact experience
//! is broken, whatever the rest of the suite says.

use axon::core::runtime::{Architecture, RuntimeSpec};
use axon::core::{ArrayShape, Dataflow, GemmShape, ShapeError};
use axon::sim::{simulate_gemm, Matrix, SimConfig};

/// Analytical model: Axon beats the conventional array on a fill-latency
/// dominated GEMM, and `speedup` agrees with the two runtime queries.
#[test]
fn analytical_quickstart_speedup_above_one() {
    let spec = RuntimeSpec::new(ArrayShape::square(64), Dataflow::Os);
    let gemm = GemmShape::new(512, 32, 512);

    let sa = spec.runtime(Architecture::Conventional, gemm);
    let ax = spec.runtime(Architecture::Axon, gemm);
    assert!(
        ax.cycles < sa.cycles,
        "Axon ({}) should undercut conventional ({})",
        ax.cycles,
        sa.cycles
    );

    let speedup = spec.speedup(gemm);
    assert!(speedup > 1.0, "speedup {speedup} <= 1");
    let ratio = sa.cycles as f64 / ax.cycles as f64;
    assert!(
        (speedup - ratio).abs() < 1e-9,
        "speedup() {speedup} != cycle ratio {ratio}"
    );
}

/// Cycle-accurate path: both architectures produce the exact reference
/// product, and Axon finishes first.
#[test]
fn simulated_quickstart_matches_reference() -> Result<(), ShapeError> {
    let a = Matrix::from_fn(24, 8, |r, c| (r + c) as f32);
    let b = Matrix::from_fn(8, 24, |r, c| (r * 2 + c) as f32);
    let reference = a.matmul(&b);

    let cfg = SimConfig::new(ArrayShape::square(8));
    let sa = simulate_gemm(Architecture::Conventional, &cfg, &a, &b)?;
    let ax = simulate_gemm(Architecture::Axon, &cfg, &a, &b)?;

    assert_eq!(sa.output, reference);
    assert_eq!(ax.output, reference);
    assert!(
        ax.stats.cycles < sa.stats.cycles,
        "Axon ({}) should undercut conventional ({})",
        ax.stats.cycles,
        sa.stats.cycles
    );
    Ok(())
}

/// The facade re-exports reach every workspace crate.
#[test]
fn facade_reexports_cover_the_workspace() {
    let _ = axon::core::ArrayShape::square(4);
    let _ = axon::sim::SimConfig::new(axon::core::ArrayShape::square(4));
    let _ = axon::im2col::ConvLayer::new(3, 8, 8, 8, 3, 1, 1);
    let _ = axon::hw::ComponentLibrary::calibrated_7nm();
    let _ = axon::workloads::table3();
    let _ = axon::mem::DramConfig::default();
}

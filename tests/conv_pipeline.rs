//! End-to-end convolution pipeline tests spanning `axon-im2col` and
//! `axon-sim`: lowering -> tiled systolic GEMM -> compare with direct
//! convolution; plus feeder-schedule and traffic invariants.

use axon::core::runtime::Architecture;
use axon::core::{ArrayShape, Dataflow};
use axon::im2col::{
    access_reduction_pct, direct_conv, flatten_filters, im2col, onchip_ifmap_loads,
    simulate_feeder_group, software_ifmap_loads, ConvLayer, FilterBank, Tensor3,
};
use axon::sim::{simulate_gemm, SimConfig};
use proptest::prelude::*;

fn operands(layer: &ConvLayer, seed: usize) -> (Tensor3, FilterBank) {
    let ifmap = Tensor3::from_fn(
        layer.in_channels,
        layer.ifmap_h,
        layer.ifmap_w,
        |c, y, x| ((c * 13 + y * 7 + x * 3 + seed) % 9) as f32 - 4.0,
    );
    let filters = FilterBank::from_fn(
        layer.out_channels,
        layer.in_channels,
        layer.kernel,
        |m, c, y, x| ((m * 5 + c * 3 + y + x + seed) % 7) as f32 - 3.0,
    );
    (ifmap, filters)
}

fn conv_on_array(arch: Architecture, df: Dataflow, layer: &ConvLayer, seed: usize) {
    let (ifmap, filters) = operands(layer, seed);
    let lowered = im2col(layer, &ifmap).expect("geometry validated");
    let flat = flatten_filters(layer, &filters).expect("geometry validated");
    let cfg = SimConfig::new(ArrayShape::new(4, 6)).with_dataflow(df);
    let run = simulate_gemm(arch, &cfg, &flat, &lowered).expect("valid GEMM");
    let truth = direct_conv(layer, &ifmap, &filters).expect("geometry validated");
    assert_eq!(run.output, truth, "{layer} arch={arch} df={df}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_via_gemm_equals_direct(
        cin in 1usize..4,
        cout in 1usize..5,
        size in 5usize..10,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        df_idx in 0usize..3,
        seed in 0usize..100,
    ) {
        prop_assume!(size + 2 * pad >= kernel);
        let layer = ConvLayer::new(cin, cout, size, size, kernel, stride, pad);
        let df = Dataflow::ALL[df_idx];
        conv_on_array(Architecture::Conventional, df, &layer, seed);
        conv_on_array(Architecture::Axon, df, &layer, seed);
    }

    #[test]
    fn feeder_chain_always_matches_lowered_columns(
        cin in 1usize..4,
        size in 4usize..9,
        kernel in 2usize..4,
        group in 1usize..5,
        oy_frac in 0usize..100,
    ) {
        prop_assume!(size >= kernel);
        let layer = ConvLayer::new(cin, 1, size, size, kernel, 1, 0);
        prop_assume!(group <= layer.out_w());
        let oy = oy_frac % layer.out_h();
        let ifmap = Tensor3::from_fn(cin, size, size, |c, y, x| (c * 100 + y * 10 + x) as f32);
        let lowered = im2col(&layer, &ifmap).expect("valid");
        let (delivered, trace) =
            simulate_feeder_group(&layer, &ifmap, oy, 0, group).expect("valid group");
        for i in 0..group {
            for p in 0..layer.window_len() {
                prop_assert_eq!(
                    delivered[(i, p)],
                    lowered[(p, oy * layer.out_w() + i)],
                    "window {} elem {}", i, p
                );
            }
        }
        // Load accounting: total delivered = group * window_len.
        prop_assert_eq!(trace.total_delivered(), group * layer.window_len());
        // The first feeder always loads everything; followers load 1/n.
        let expected = layer.window_len() + (group - 1) * layer.window_len() / layer.kernel;
        prop_assert_eq!(trace.loads_from_sram, expected);
    }

    #[test]
    fn onchip_loads_never_exceed_software(
        cin in 1usize..6,
        cout in 1usize..6,
        size in 4usize..20,
        kernel in 1usize..5,
        stride in 1usize..4,
        group in 1usize..33,
    ) {
        prop_assume!(size >= kernel);
        let layer = ConvLayer::new(cin, cout, size, size, kernel, stride, 0);
        let hw = onchip_ifmap_loads(&layer, group);
        let sw = software_ifmap_loads(&layer);
        prop_assert!(hw <= sw, "{layer}: {hw} > {sw}");
        let red = access_reduction_pct(&layer, group);
        prop_assert!((0.0..=100.0).contains(&red));
    }
}

#[test]
fn strided_and_padded_layers_run_end_to_end() {
    // Deterministic coverage of the awkward geometries.
    for layer in [
        ConvLayer::new(2, 3, 9, 7, 3, 2, 1),
        ConvLayer::new(1, 1, 6, 6, 5, 1, 2),
        ConvLayer::new(3, 2, 8, 8, 1, 1, 0),
        ConvLayer::new(2, 4, 10, 10, 4, 3, 0),
    ] {
        conv_on_array(Architecture::Axon, Dataflow::Os, &layer, 5);
        conv_on_array(Architecture::Conventional, Dataflow::Ws, &layer, 5);
    }
}

#[test]
fn paper_fig7_reuse_is_half() {
    // 3x3 over 6x6: consecutive windows share n(n-1) = 6 elements; the 4
    // windows of one output row need only 18 of 36 loads.
    let layer = ConvLayer::new(1, 1, 6, 6, 3, 1, 0);
    let ifmap = Tensor3::from_fn(1, 6, 6, |_, y, x| (y * 6 + x) as f32);
    let (_, trace) = simulate_feeder_group(&layer, &ifmap, 0, 0, 4).expect("valid");
    assert_eq!(trace.loads_from_sram, 18);
    assert_eq!(trace.loads_from_neighbor, 18);
}

//! The reproduction's central validation: the cycle-accurate simulator
//! and the analytical runtime model (SCALE-sim Eq. 1 / paper Table 2,
//! extended to tiled execution) must agree **exactly**, for both
//! architectures, all three dataflows, and arbitrary GEMM/array shapes —
//! while the simulated output equals the naive reference product.

use axon::core::runtime::{Accounting, Architecture, DrainPolicy, RuntimeSpec};
use axon::core::{ArrayShape, Dataflow, GemmShape};
use axon::sim::{random_matrix, simulate_gemm, SimConfig};
use proptest::prelude::*;

fn exact_spec(array: ArrayShape, df: Dataflow) -> RuntimeSpec {
    RuntimeSpec::new(array, df)
        .with_accounting(Accounting::ExactEdges)
        .with_drain(DrainPolicy::PerTile)
}

fn check_case(arch: Architecture, df: Dataflow, g: GemmShape, array: ArrayShape, seed: u64) {
    let a = random_matrix(g.m, g.k, seed, 0.0);
    let b = random_matrix(g.k, g.n, seed + 1, 0.0);
    let cfg = SimConfig::new(array).with_dataflow(df);
    let result = simulate_gemm(arch, &cfg, &a, &b).expect("valid operands");
    // Functional correctness: exact (small-integer operands).
    prop_assert_eq_like(&result.output, &a.matmul(&b), arch, df, g, array);
    // Cycle-count agreement with the analytical model.
    let model = exact_spec(array, df).runtime(arch, g);
    assert_eq!(
        result.stats.cycles, model.cycles,
        "cycle mismatch: arch={arch} df={df} {g} array={array}"
    );
    assert_eq!(result.stats.tiles, model.tiles, "tile-count mismatch");
    assert_eq!(result.stats.macs_performed, g.macs(), "MAC count mismatch");
}

fn prop_assert_eq_like(
    got: &axon::sim::Matrix,
    want: &axon::sim::Matrix,
    arch: Architecture,
    df: Dataflow,
    g: GemmShape,
    array: ArrayShape,
) {
    assert_eq!(
        got, want,
        "functional mismatch: arch={arch} df={df} {g} array={array}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_matches_model_conventional(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        ar in 1usize..8,
        ac in 1usize..8,
        df_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let g = GemmShape::new(m, k, n);
        let array = ArrayShape::new(ar, ac);
        let df = Dataflow::ALL[df_idx];
        check_case(Architecture::Conventional, df, g, array, seed);
    }

    #[test]
    fn simulator_matches_model_axon(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        ar in 1usize..8,
        ac in 1usize..8,
        df_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let g = GemmShape::new(m, k, n);
        let array = ArrayShape::new(ar, ac);
        let df = Dataflow::ALL[df_idx];
        check_case(Architecture::Axon, df, g, array, seed);
    }

    #[test]
    fn pipelined_simulator_matches_overlapped_model(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        ar in 1usize..8,
        ac in 1usize..8,
        df_idx in 0usize..3,
        arch_idx in 0usize..2,
        seed in 0u64..1000,
    ) {
        let g = GemmShape::new(m, k, n);
        let array = ArrayShape::new(ar, ac);
        let df = Dataflow::ALL[df_idx];
        let arch = [Architecture::Conventional, Architecture::Axon][arch_idx];
        let a = random_matrix(g.m, g.k, seed, 0.0);
        let b = random_matrix(g.k, g.n, seed + 1, 0.0);
        let cfg = SimConfig::new(array)
            .with_dataflow(df)
            .with_pipelining(DrainPolicy::Overlapped);
        let result = simulate_gemm(arch, &cfg, &a, &b).expect("valid operands");
        prop_assert_eq!(&result.output, &a.matmul(&b));
        let model = RuntimeSpec::new(array, df)
            .with_accounting(Accounting::ExactEdges)
            .with_drain(DrainPolicy::Overlapped)
            .runtime(arch, g);
        prop_assert_eq!(result.stats.cycles, model.cycles,
            "arch={} df={} {} array={}", arch, df, g, array);
    }

    #[test]
    fn axon_never_slower_on_square_arrays(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        side in 2usize..8,
        df_idx in 0usize..3,
    ) {
        let g = GemmShape::new(m, k, n);
        let array = ArrayShape::square(side);
        let df = Dataflow::ALL[df_idx];
        let sa = exact_spec(array, df).runtime(Architecture::Conventional, g);
        let ax = exact_spec(array, df).runtime(Architecture::Axon, g);
        prop_assert!(ax.cycles <= sa.cycles, "{g} {df} {array}: {} > {}", ax.cycles, sa.cycles);
    }

    #[test]
    fn zero_gating_never_changes_results(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        sparsity in 0.0f64..0.95,
        seed in 0u64..1000,
    ) {
        let g = GemmShape::new(m, k, n);
        let a = random_matrix(g.m, g.k, seed, sparsity);
        let b = random_matrix(g.k, g.n, seed + 7, sparsity / 2.0);
        let array = ArrayShape::square(4);
        for arch in [Architecture::Conventional, Architecture::Axon] {
            for df in Dataflow::ALL {
                let gated = SimConfig::new(array).with_dataflow(df).with_zero_gating(true);
                let plain = SimConfig::new(array).with_dataflow(df);
                let rg = simulate_gemm(arch, &gated, &a, &b).expect("valid");
                let rp = simulate_gemm(arch, &plain, &a, &b).expect("valid");
                prop_assert_eq!(&rg.output, &rp.output);
                prop_assert_eq!(rg.stats.cycles, rp.stats.cycles);
                prop_assert_eq!(rg.stats.macs_total(), rp.stats.macs_total());
            }
        }
    }
}

#[test]
fn table2_shapes_all_dataflows_exact() {
    // Deterministic spot checks at array-filling shapes.
    for df in Dataflow::ALL {
        for (g, array) in [
            (GemmShape::new(16, 16, 16), ArrayShape::square(16)),
            (GemmShape::new(8, 16, 4), ArrayShape::square(16)),
            (GemmShape::new(5, 3, 7), ArrayShape::new(3, 5)),
        ] {
            check_case(Architecture::Conventional, df, g, array, 99);
            check_case(Architecture::Axon, df, g, array, 99);
        }
    }
}

#[test]
fn fill_improvement_is_exactly_two_for_large_square() {
    // The headline claim: fill factor 510 -> 255 on 256x256.
    let a = ArrayShape::square(256);
    assert_eq!(
        Architecture::Conventional.tile_fill(a.rows(), a.cols()),
        2 * Architecture::Axon.tile_fill(a.rows(), a.cols())
    );
}

//! Wavefront tests: the per-PE first-MAC cycles recorded by the activity
//! probe must trace exactly the propagation patterns of the paper's
//! Fig. 1 (conventional corner feed) and Fig. 3 (Axon diagonal feed).

use axon::core::runtime::Architecture;
use axon::core::{ArrayShape, Dataflow};
use axon::sim::{random_matrix, simulate_gemm_traced, SimConfig};

#[test]
fn conventional_os_wavefront_is_manhattan() {
    let n = 6usize;
    let a = random_matrix(n, 3, 1, 0.0);
    let b = random_matrix(3, n, 2, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(n));
    let (_, act) = simulate_gemm_traced(Architecture::Conventional, &cfg, &a, &b).unwrap();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                act.first_mac(i, j),
                Some(i + j),
                "PE ({i},{j}) should first fire at cycle i+j"
            );
        }
    }
}

#[test]
fn axon_os_wavefront_is_chebyshev_from_diagonal() {
    let n = 6usize;
    let a = random_matrix(n, 3, 3, 0.0);
    let b = random_matrix(3, n, 4, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(n));
    let (_, act) = simulate_gemm_traced(Architecture::Axon, &cfg, &a, &b).unwrap();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                act.first_mac(i, j),
                Some(i.abs_diff(j)),
                "PE ({i},{j}) should first fire at cycle |i-j|"
            );
        }
    }
}

#[test]
fn axon_rectangular_wavefront_edge_fed_columns() {
    // Wide tile (3 rows, 7 cols): columns past the diagonal are fed from
    // the bottom edge with skew (paper Fig. 5); the arrival time at
    // (i, j) stays j - i for j > i, so the overall law is still |i - j|
    // within the diagonal block and j - i beyond it.
    let (r, c) = (3usize, 7usize);
    let a = random_matrix(r, 2, 5, 0.0);
    let b = random_matrix(2, c, 6, 0.0);
    let cfg = SimConfig::new(ArrayShape::new(r, c));
    let (_, act) = simulate_gemm_traced(Architecture::Axon, &cfg, &a, &b).unwrap();
    for i in 0..r {
        for j in 0..c {
            assert_eq!(act.first_mac(i, j), Some(i.abs_diff(j)), "PE ({i},{j})");
        }
    }
}

#[test]
fn last_mac_cycle_bounds_fill_plus_temporal() {
    let n = 5usize;
    let k = 7usize;
    let a = random_matrix(n, k, 7, 0.0);
    let b = random_matrix(k, n, 8, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(n));
    let (_, act) = simulate_gemm_traced(Architecture::Axon, &cfg, &a, &b).unwrap();
    let mut max_last = 0;
    for i in 0..n {
        for j in 0..n {
            max_last = max_last.max(act.last_mac(i, j).unwrap());
        }
    }
    // Last MAC at cycle (K - 1) + (max distance) = k - 1 + n - 1.
    assert_eq!(max_last, k - 1 + n - 1);
}

#[test]
fn all_pes_active_and_mac_counts_uniform_on_exact_fit() {
    let n = 4usize;
    let k = 6usize;
    let a = random_matrix(n, k, 9, 0.0);
    let b = random_matrix(k, n, 10, 0.0);
    for arch in [Architecture::Conventional, Architecture::Axon] {
        for df in Dataflow::ALL {
            // Shape chosen so each mapping exactly fills some sub-grid.
            let cfg = SimConfig::new(ArrayShape::square(n.max(k))).with_dataflow(df);
            let (res, act) = simulate_gemm_traced(arch, &cfg, &a, &b).unwrap();
            assert_eq!(res.output, a.matmul(&b));
            let total: usize = (0..act.rows())
                .flat_map(|i| (0..act.cols()).map(move |j| (i, j)))
                .map(|(i, j)| act.mac_count(i, j))
                .sum();
            assert_eq!(total, n * k * n, "arch={arch} df={df}");
        }
    }
}

//! Regression tests pinning the reproduction's headline numbers to the
//! paper's reported bands (see EXPERIMENTS.md for the full comparison).

use axon::core::runtime::{Architecture, RuntimeSpec};
use axon::core::utilization::{utilization, utilization_improvement_pct, UtilArchitecture};
use axon::core::{ArrayShape, Dataflow};
use axon::hw::{ComponentLibrary, ImplementationSpecs, ZeroGatingPower};
use axon::im2col::DramTrafficModel;
use axon::mem::{DramConfig, EnergyReport};
use axon::workloads::{fig14_dw_workloads, gemv_workloads, resnet50, table3, yolov3};

fn fig12_average(side: usize) -> f64 {
    let ws = table3();
    let total: f64 = ws
        .iter()
        .map(|w| {
            let df = Dataflow::min_temporal(w.shape);
            let spec = RuntimeSpec::new(ArrayShape::square(side), df);
            let sa = spec.runtime(Architecture::Conventional, w.shape);
            let ax = spec.runtime(Architecture::Axon, w.shape);
            sa.cycles as f64 / ax.cycles as f64
        })
        .sum();
    total / ws.len() as f64
}

#[test]
fn fig12_average_speedups_in_band() {
    // Paper: 1.47x at 64x64, 1.76x at 256x256. Our model: 1.45x, 1.65x.
    let at64 = fig12_average(64);
    let at256 = fig12_average(256);
    assert!((1.38..1.55).contains(&at64), "avg@64 = {at64}");
    assert!((1.55..1.80).contains(&at256), "avg@256 = {at256}");
    assert!(at256 > at64, "speedup must grow with array size");
}

#[test]
fn fig14_dw_gemv_average_near_1_8() {
    let mut sum = 0.0;
    let mut count = 0;
    for side in [64usize, 128, 256] {
        let spec_for = |df| RuntimeSpec::new(ArrayShape::square(side), df);
        for w in fig14_dw_workloads()
            .iter()
            .map(|d| d.workload())
            .chain(gemv_workloads())
        {
            let df = Dataflow::min_temporal(w.shape);
            let spec = spec_for(df);
            let sa = spec.runtime(Architecture::Conventional, w.shape);
            let ax = spec.runtime(Architecture::Axon, w.shape);
            sum += sa.cycles as f64 / ax.cycles as f64;
            count += 1;
        }
    }
    let avg = sum / count as f64;
    // Paper: ~1.8x average, individual workloads up to 2x.
    assert!((1.7..2.0).contains(&avg), "avg = {avg}");
}

#[test]
fn fig10_hardware_anchors() {
    let lib = ComponentLibrary::calibrated_7nm();
    let spec = ImplementationSpecs::paper_configuration(&lib);
    assert!((spec.sa.area_mm2 - 0.9992).abs() < 1e-3);
    assert!((spec.sa.power_mw - 59.88).abs() < 0.05);
    assert!((spec.axon.area_mm2 - 0.9931).abs() < 1e-3);
    assert!((spec.axon_im2col.area_mm2 - 0.9951).abs() < 1e-3);
    assert!((spec.axon_im2col.power_mw - 59.98).abs() < 0.05);
}

#[test]
fn energy_analysis_bands() {
    // Paper: ResNet50 261.2 -> 153.5 MB (~12 mJ); YOLOv3 2540 -> 1117 MB
    // (~170 mJ).
    let dram = DramConfig::lpddr3();
    let model = DramTrafficModel::default();

    let r = resnet50().dram_traffic(model);
    let rr = EnergyReport::new(&dram, r.software_ifmap_bytes, r.onchip_ifmap_bytes);
    assert!((1.3..1.8).contains(&rr.reduction_factor()), "resnet {rr}");
    assert!(
        (5.0..16.0).contains(&rr.saved_mj()),
        "resnet saved {}",
        rr.saved_mj()
    );

    let y = yolov3().dram_traffic(model);
    let yy = EnergyReport::new(&dram, y.software_ifmap_bytes, y.onchip_ifmap_bytes);
    assert!((1.9..2.6).contains(&yy.reduction_factor()), "yolo {yy}");
    assert!(
        (100.0..200.0).contains(&yy.saved_mj()),
        "yolo saved {}",
        yy.saved_mj()
    );
}

#[test]
fn sparsity_power_reduction_at_10pct() {
    let lib = ComponentLibrary::calibrated_7nm();
    let g = ZeroGatingPower::default();
    let gated = ZeroGatingPower::gated_fraction(0.1, 0.1);
    let reduction = 100.0 * (1.0 - g.power_factor(&lib, gated));
    // Paper: 5.3%.
    assert!((5.0..5.6).contains(&reduction), "reduction {reduction}%");
}

#[test]
fn fig13_axon_beats_cmsa_on_average_and_non_degenerate_workloads() {
    let array = ArrayShape::square(128);
    let mut cmsa_sum = 0.0;
    let mut axon_sum = 0.0;
    let mut axon_wins = 0usize;
    let ws = table3();
    for w in &ws {
        let cmsa =
            utilization_improvement_pct(UtilArchitecture::Cmsa, array, Dataflow::Os, w.shape);
        let axon =
            utilization_improvement_pct(UtilArchitecture::Axon, array, Dataflow::Os, w.shape);
        cmsa_sum += cmsa;
        axon_sum += axon;
        if axon >= cmsa {
            axon_wins += 1;
        } else {
            // On narrow OS tiles (N much smaller than the array, e.g.
            // NCF0 with N=1, DB0 with N=16) Axon's diagonal feed
            // degenerates toward the conventional corner feed while
            // CMSA's two-edge feed still halves the column fill — the
            // one regime where our CMSA law can win. Those tiles must be
            // narrow strips:
            assert!(
                w.shape.n * 4 <= array.cols(),
                "{}: CMSA won a non-strip workload (N = {})",
                w.name,
                w.shape.n
            );
        }
    }
    assert!(
        axon_wins * 4 >= ws.len() * 3,
        "axon won only {axon_wins}/{}",
        ws.len()
    );
    assert!(
        axon_sum > cmsa_sum,
        "average: axon {axon_sum} <= cmsa {cmsa_sum}"
    );
}

#[test]
fn fig13_gpt3_baseline_utilization_high() {
    // Paper §5.2.2: the GPT3 matmuls are already ~91% utilized on the
    // conventional array, leaving little improvement headroom.
    let array = ArrayShape::square(128);
    for name in ["GPT3_1 (matmul1)", "GPT3_2 (addmm)", "GPT3_3 (lmhead)"] {
        let w = table3()
            .into_iter()
            .find(|w| w.name == name)
            .expect("known workload");
        let ur = utilization(UtilArchitecture::Conventional, array, Dataflow::Os, w.shape);
        assert!((0.85..0.97).contains(&ur), "{name}: UR {ur}");
        let imp = utilization_improvement_pct(UtilArchitecture::Axon, array, Dataflow::Os, w.shape);
        assert!(imp < 12.0, "{name}: improvement {imp}%");
    }
}

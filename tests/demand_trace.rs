//! Demand-trace tests: the SRAM fetch schedules of the two
//! orchestrations, observed from the simulator.
//!
//! The key structural difference the paper builds its im2col scheme on:
//! the conventional array *skews* its feed (element `a[(i, t)]` is
//! fetched at cycle `t + i`), while Axon's diagonal feeders fetch
//! *unskewed* (`a[(i, t)]` at cycle `t`, for every row simultaneously).

use axon::core::runtime::Architecture;
use axon::core::{ArrayShape, Dataflow};
use axon::sim::{random_matrix, simulate_gemm_demand_trace, FeedOperand, SimConfig};

#[test]
fn conventional_feed_is_skewed_by_row() {
    let n = 6usize;
    let a = random_matrix(n, 4, 1, 0.0);
    let b = random_matrix(4, n, 2, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(n));
    let (_, trace) = simulate_gemm_demand_trace(Architecture::Conventional, &cfg, &a, &b).unwrap();
    for e in trace
        .events()
        .iter()
        .filter(|e| e.operand == FeedOperand::A)
    {
        let (i, t) = e.index;
        assert_eq!(e.cycle, t + i, "a[({i},{t})] fetched at {}", e.cycle);
    }
    for e in trace
        .events()
        .iter()
        .filter(|e| e.operand == FeedOperand::B)
    {
        let (t, j) = e.index;
        assert_eq!(e.cycle, t + j, "b[({t},{j})] fetched at {}", e.cycle);
    }
    assert_eq!(trace.max_skew(FeedOperand::A), n - 1);
}

#[test]
fn axon_feed_is_unskewed_on_square_tiles() {
    let n = 6usize;
    let a = random_matrix(n, 4, 3, 0.0);
    let b = random_matrix(4, n, 4, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(n));
    let (_, trace) = simulate_gemm_demand_trace(Architecture::Axon, &cfg, &a, &b).unwrap();
    for e in trace.events() {
        match e.operand {
            FeedOperand::A => assert_eq!(e.cycle, e.index.1),
            FeedOperand::B => assert_eq!(e.cycle, e.index.0),
            FeedOperand::Stream => unreachable!("OS run"),
        }
    }
    assert_eq!(trace.max_skew(FeedOperand::A), 0);
    assert_eq!(trace.max_skew(FeedOperand::B), 0);
}

#[test]
fn axon_rectangular_skews_only_past_diagonal() {
    // Wide tile: columns beyond the diagonal are edge-fed with skew
    // (paper Fig. 5); the diagonal block stays unskewed.
    let (r, c) = (3usize, 7usize);
    let a = random_matrix(r, 4, 5, 0.0);
    let b = random_matrix(4, c, 6, 0.0);
    let cfg = SimConfig::new(ArrayShape::new(r, c));
    let (_, trace) = simulate_gemm_demand_trace(Architecture::Axon, &cfg, &a, &b).unwrap();
    for e in trace
        .events()
        .iter()
        .filter(|e| e.operand == FeedOperand::B)
    {
        let (t, j) = e.index;
        if j < r {
            assert_eq!(e.cycle, t, "diagonal column {j}");
        } else {
            assert_eq!(e.cycle, t + (j - r + 1), "edge-fed column {j}");
        }
    }
    assert_eq!(trace.max_skew(FeedOperand::B), c - r);
    // A stays fully unskewed (every row has a diagonal feeder).
    assert_eq!(trace.max_skew(FeedOperand::A), 0);
}

#[test]
fn trace_length_equals_streaming_buffer_reads() {
    let a = random_matrix(9, 5, 7, 0.0);
    let b = random_matrix(5, 8, 8, 0.0);
    for arch in [Architecture::Conventional, Architecture::Axon] {
        // OS: every buffer read is a streaming feed.
        let cfg = SimConfig::new(ArrayShape::square(4));
        let (res, trace) = simulate_gemm_demand_trace(arch, &cfg, &a, &b).unwrap();
        assert_eq!(trace.len(), res.stats.buffer_reads, "{arch} OS");

        // WS: the stationary preload is counted in buffer_reads but is
        // not part of the streaming trace, so the trace is strictly
        // shorter and contains only Stream events.
        let cfg = cfg.with_dataflow(Dataflow::Ws);
        let (res, trace) = simulate_gemm_demand_trace(arch, &cfg, &a, &b).unwrap();
        assert!(trace.len() < res.stats.buffer_reads, "{arch} WS");
        assert!(trace
            .events()
            .iter()
            .all(|e| e.operand == FeedOperand::Stream));
    }
}

#[test]
fn every_streamed_element_is_fetched_exactly_once_per_tile_pass() {
    // Single-tile run: each a element once, each b element once.
    let n = 5usize;
    let k = 6usize;
    let a = random_matrix(n, k, 9, 0.0);
    let b = random_matrix(k, n, 10, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(n));
    for arch in [Architecture::Conventional, Architecture::Axon] {
        let (_, trace) = simulate_gemm_demand_trace(arch, &cfg, &a, &b).unwrap();
        let a_feeds = trace
            .events()
            .iter()
            .filter(|e| e.operand == FeedOperand::A)
            .count();
        let b_feeds = trace
            .events()
            .iter()
            .filter(|e| e.operand == FeedOperand::B)
            .count();
        assert_eq!(a_feeds, n * k, "{arch}");
        assert_eq!(b_feeds, k * n, "{arch}");
        // No duplicates.
        let mut seen: Vec<_> = trace
            .events()
            .iter()
            .map(|e| (e.operand as u8 as usize, e.index))
            .collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before, "{arch}: duplicate fetches");
    }
}

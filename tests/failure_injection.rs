//! Negative tests: the verification machinery must *fail* when fed
//! corrupted data. A checker that can't reject a broken run proves
//! nothing about the runs it accepts.

use axon::core::runtime::Architecture;
use axon::core::{ArrayShape, Dataflow, ShapeError};
use axon::im2col::{direct_conv, flatten_filters, im2col, ConvLayer, FilterBank, Tensor3};
use axon::sim::{random_matrix, simulate_gemm, verify_gemm, Matrix, SimConfig};

#[test]
fn verify_rejects_corrupted_operand_pairing() {
    // Swapping the operands (valid shapes, wrong product) must fail.
    let a = random_matrix(6, 6, 1, 0.0);
    let b = random_matrix(6, 6, 2, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(4));
    let run_ab = simulate_gemm(Architecture::Axon, &cfg, &a, &b).unwrap();
    let run_ba = simulate_gemm(Architecture::Axon, &cfg, &b, &a).unwrap();
    // A*B != B*A for generic operands.
    assert_ne!(run_ab.output, run_ba.output);
}

#[test]
fn verify_report_flags_mismatch_beyond_tolerance() {
    let a = random_matrix(5, 5, 3, 0.0);
    let b = random_matrix(5, 5, 4, 0.0);
    let cfg = SimConfig::new(ArrayShape::square(4));
    // A passing report with zero tolerance...
    let ok = verify_gemm(Architecture::Conventional, &cfg, &a, &b, 0.0).unwrap();
    assert!(ok.matches);
    // ...and an impossible negative check: tolerance below an injected
    // error must fail. Emulate a broken datapath by comparing against a
    // perturbed reference.
    let mut reference = a.matmul(&b);
    reference[(2, 2)] += 1.0;
    let run = simulate_gemm(Architecture::Conventional, &cfg, &a, &b).unwrap();
    assert!(run.output.max_abs_diff(&reference) >= 1.0);
}

#[test]
fn skew_matters_a_misfed_stream_breaks_the_product() {
    // Feed the conventional array an A matrix whose rows were pre-skewed
    // as if the hardware skew did not exist; the result must differ from
    // the true product — demonstrating the simulator really depends on
    // the timing alignment rather than computing matmul behind the
    // scenes.
    let n = 4usize;
    let k = 6usize;
    let a = random_matrix(n, k, 5, 0.0);
    let b = random_matrix(k, n, 6, 0.0);
    // Rotate each row i of A left by i: a deliberately wrong data layout.
    let skewed = Matrix::from_fn(n, k, |i, t| a[(i, (t + i) % k)]);
    let cfg = SimConfig::new(ArrayShape::square(n));
    let run = simulate_gemm(Architecture::Conventional, &cfg, &skewed, &b).unwrap();
    assert_ne!(run.output, a.matmul(&b), "mis-skewed feed went unnoticed");
}

#[test]
fn conv_checker_rejects_wrong_filter_order() {
    // Flattening filters in a transposed channel order must be caught by
    // the direct-convolution cross-check.
    let layer = ConvLayer::new(3, 2, 6, 6, 3, 1, 0);
    let ifmap = Tensor3::from_fn(3, 6, 6, |c, y, x| (c * 31 + y * 7 + x) as f32);
    let filters = FilterBank::from_fn(2, 3, 3, |m, c, y, x| (m + 2 * c + 3 * y + x) as f32);
    let lowered = im2col(&layer, &ifmap).unwrap();
    let flat = flatten_filters(&layer, &filters).unwrap();
    // Scramble K: swap the first two filter rows' halves.
    let scrambled = Matrix::from_fn(flat.rows(), flat.cols(), |m, k| {
        flat[(m, (k + 9) % flat.cols())]
    });
    let wrong = scrambled.matmul(&lowered);
    let truth = direct_conv(&layer, &ifmap, &filters).unwrap();
    assert_ne!(wrong, truth, "scrambled filter layout went unnoticed");
}

#[test]
fn shape_errors_are_reported_not_panicked() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(5, 3); // inner mismatch
    let cfg = SimConfig::new(ArrayShape::square(4));
    for arch in [Architecture::Conventional, Architecture::Axon] {
        for df in Dataflow::ALL {
            let cfg = cfg.with_dataflow(df);
            match simulate_gemm(arch, &cfg, &a, &b) {
                Err(ShapeError::DimensionMismatch { left, right, .. }) => {
                    assert_eq!((left, right), (4, 5));
                }
                other => panic!("expected DimensionMismatch, got {other:?}"),
            }
        }
    }
}

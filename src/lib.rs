//! # axon
//!
//! Facade crate for the **Axon** systolic-array architecture
//! reproduction (Nayan et al., *"Axon: A novel systolic array architecture
//! for improved run time and energy efficient GeMM and Conv operation
//! with on-chip im2col"*, DATE 2025).
//!
//! Axon replaces the conventional systolic array's edge feeding with
//! feeding through the PEs on the **principal diagonal**, after which
//! operands propagate **bidirectionally**. This halves the operand fill
//! latency of a square array (`2R - 2 -> R - 1` cycles), removes the
//! input skew, and — because the feed is ordered — enables an on-chip
//! im2col that costs one 2-to-1 MUX per feeder PE.
//!
//! This crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | shapes, dataflows, tiling, analytical runtime/utilization models |
//! | [`sim`] | cycle-accurate functional simulator (OS/WS/IS, both architectures) |
//! | [`im2col`] | conv lowering, on-chip MUX feeder, traffic models |
//! | [`mem`] | SRAM/DRAM models, energy and bandwidth accounting |
//! | [`hw`] | calibrated area/power cost model (45 nm / 7 nm) |
//! | [`workloads`] | Table 3, ResNet-50, YOLOv3, DW-conv, GEMV, conformer |
//! | [`serve`] | request-level serving: traffic generators, batching schedulers, pod simulation |
//!
//! ## Quickstart
//!
//! ```
//! use axon::core::runtime::{Architecture, RuntimeSpec};
//! use axon::core::{ArrayShape, Dataflow};
//! use axon::sim::{simulate_gemm, Matrix, SimConfig};
//!
//! # fn main() -> Result<(), axon::core::ShapeError> {
//! // Analytical: how much faster is Axon on a 64x64 array?
//! let spec = RuntimeSpec::new(ArrayShape::square(64), Dataflow::Os);
//! let gemm = axon::core::GemmShape::new(512, 32, 512);
//! let speedup = spec.speedup(gemm);
//! assert!(speedup > 1.4);
//!
//! // Cycle-accurate: run a real GEMM through both arrays and check the
//! // numerics and the cycle counts.
//! let a = Matrix::from_fn(24, 8, |r, c| (r + c) as f32);
//! let b = Matrix::from_fn(8, 24, |r, c| (r * 2 + c) as f32);
//! let cfg = SimConfig::new(ArrayShape::square(8));
//! let sa = simulate_gemm(Architecture::Conventional, &cfg, &a, &b)?;
//! let ax = simulate_gemm(Architecture::Axon, &cfg, &a, &b)?;
//! assert_eq!(sa.output, ax.output);
//! assert!(ax.stats.cycles < sa.stats.cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use axon_core as core;
pub use axon_hw as hw;
pub use axon_im2col as im2col;
pub use axon_mem as mem;
pub use axon_serve as serve;
pub use axon_sim as sim;
pub use axon_workloads as workloads;

//! YOLOv3 (Redmon & Farhadi, 2018) convolution-layer table: Darknet-53
//! backbone plus the three-scale detection head, at 416x416 input.
//!
//! Used for the paper's §5.2.1 DRAM-traffic/energy analysis; YOLOv3 is
//! 3x3-dominated, which is why its im2col traffic reduction (2.27x) is
//! larger than ResNet-50's (1.70x).

use crate::convnet::ConvNet;
use axon_im2col::ConvLayer;

/// Builds the YOLOv3 conv-layer list (75 conv layers counting
/// repetitions).
///
/// # Examples
///
/// ```
/// use axon_workloads::yolov3;
///
/// let net = yolov3();
/// assert_eq!(net.total_layer_count(), 75);
/// // ~32.8 GMACs at 416x416.
/// let gmacs = net.total_macs() as f64 / 1e9;
/// assert!((28.0..36.0).contains(&gmacs));
/// ```
pub fn yolov3() -> ConvNet {
    let mut net = ConvNet::new("YOLOv3");
    let c = ConvLayer::new;

    // --- Darknet-53 backbone ---
    net.push(c(3, 32, 416, 416, 3, 1, 1), 1);
    net.push(c(32, 64, 416, 416, 3, 2, 1), 1); // -> 208

    // 1 residual block @208.
    net.push(c(64, 32, 208, 208, 1, 1, 0), 1);
    net.push(c(32, 64, 208, 208, 3, 1, 1), 1);
    net.push(c(64, 128, 208, 208, 3, 2, 1), 1); // -> 104

    // 2 residual blocks @104.
    net.push(c(128, 64, 104, 104, 1, 1, 0), 2);
    net.push(c(64, 128, 104, 104, 3, 1, 1), 2);
    net.push(c(128, 256, 104, 104, 3, 2, 1), 1); // -> 52

    // 8 residual blocks @52.
    net.push(c(256, 128, 52, 52, 1, 1, 0), 8);
    net.push(c(128, 256, 52, 52, 3, 1, 1), 8);
    net.push(c(256, 512, 52, 52, 3, 2, 1), 1); // -> 26

    // 8 residual blocks @26.
    net.push(c(512, 256, 26, 26, 1, 1, 0), 8);
    net.push(c(256, 512, 26, 26, 3, 1, 1), 8);
    net.push(c(512, 1024, 26, 26, 3, 2, 1), 1); // -> 13

    // 4 residual blocks @13.
    net.push(c(1024, 512, 13, 13, 1, 1, 0), 4);
    net.push(c(512, 1024, 13, 13, 3, 1, 1), 4);

    // --- Detection head, scale 1 @13 ---
    net.push(c(1024, 512, 13, 13, 1, 1, 0), 3);
    net.push(c(512, 1024, 13, 13, 3, 1, 1), 3);
    net.push(c(1024, 255, 13, 13, 1, 1, 0), 1);

    // Upsample branch to scale 2.
    net.push(c(512, 256, 13, 13, 1, 1, 0), 1);
    // --- Scale 2 @26 (input concat 256+512 = 768) ---
    net.push(c(768, 256, 26, 26, 1, 1, 0), 1);
    net.push(c(256, 512, 26, 26, 3, 1, 1), 1);
    net.push(c(512, 256, 26, 26, 1, 1, 0), 2);
    net.push(c(256, 512, 26, 26, 3, 1, 1), 2);
    net.push(c(512, 255, 26, 26, 1, 1, 0), 1);

    // Upsample branch to scale 3.
    net.push(c(256, 128, 26, 26, 1, 1, 0), 1);
    // --- Scale 3 @52 (input concat 128+256 = 384) ---
    net.push(c(384, 128, 52, 52, 1, 1, 0), 1);
    net.push(c(128, 256, 52, 52, 3, 1, 1), 1);
    net.push(c(256, 128, 52, 52, 1, 1, 0), 2);
    net.push(c(128, 256, 52, 52, 3, 1, 1), 2);
    net.push(c(256, 255, 52, 52, 1, 1, 0), 1);

    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use axon_im2col::DramTrafficModel;

    #[test]
    fn layer_count_is_75() {
        assert_eq!(yolov3().total_layer_count(), 75);
    }

    #[test]
    fn macs_in_published_band() {
        let gmacs = yolov3().total_macs() as f64 / 1e9;
        assert!((28.0..36.0).contains(&gmacs), "{gmacs} GMACs");
    }

    #[test]
    fn dram_traffic_reduction_larger_than_resnet() {
        // The paper's headline: YOLOv3 2.27x vs ResNet50 1.70x (ifmap
        // stream, DRAM level).
        let m = DramTrafficModel::default();
        let yolo = yolov3().dram_traffic(m);
        let resnet = crate::resnet50().dram_traffic(m);
        let ratio = |t: &axon_im2col::LayerTraffic| {
            t.software_ifmap_bytes as f64 / t.onchip_ifmap_bytes as f64
        };
        assert!(
            ratio(&yolo) > ratio(&resnet),
            "yolo {} vs resnet {}",
            ratio(&yolo),
            ratio(&resnet)
        );
        // Band checks against the paper's reported reductions.
        assert!((1.9..2.6).contains(&ratio(&yolo)), "yolo {}", ratio(&yolo));
        assert!(
            (1.2..1.8).contains(&ratio(&resnet)),
            "resnet {}",
            ratio(&resnet)
        );
    }

    #[test]
    fn dram_megabytes_in_paper_bands() {
        // Paper: ResNet50 261.2 -> 153.5 MB; YOLOv3 2540 -> 1117 MB.
        // Our layer tables are the published architectures at 224/416
        // input; the absolute figures land in the same bands.
        let m = DramTrafficModel::default();
        let resnet = crate::resnet50().dram_traffic(m);
        let yolo = yolov3().dram_traffic(m);
        let mb = |b: usize| b as f64 / 1e6;
        assert!((200.0..330.0).contains(&mb(resnet.software_ifmap_bytes)));
        assert!((120.0..220.0).contains(&mb(resnet.onchip_ifmap_bytes)));
        assert!((1600.0..2800.0).contains(&mb(yolo.software_ifmap_bytes)));
        assert!((700.0..1400.0).contains(&mb(yolo.onchip_ifmap_bytes)));
    }
}

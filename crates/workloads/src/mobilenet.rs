//! MobileNetV1 (Howard et al., 2017) full conv-layer table at 224x224:
//! the canonical depthwise-separable network. Depthwise layers are
//! encoded as `channels` repetitions of a single-channel conv, which is
//! exactly how they execute on a GEMM array.

use crate::convnet::ConvNet;
use axon_im2col::ConvLayer;

/// Builds the MobileNetV1 conv-layer list (standard 1.0x width).
///
/// # Examples
///
/// ```
/// use axon_workloads::mobilenet_v1;
///
/// let net = mobilenet_v1();
/// // ~568 MMACs of convolution at 224x224.
/// let mmacs = net.total_macs() as f64 / 1e6;
/// assert!((480.0..650.0).contains(&mmacs));
/// ```
pub fn mobilenet_v1() -> ConvNet {
    let mut net = ConvNet::new("MobileNetV1");
    let c = ConvLayer::new;
    // Depthwise block: `ch` copies of a 1-channel 3x3 conv + pointwise.
    let dw_pw = |net: &mut ConvNet, ch: usize, size: usize, stride: usize, out: usize| {
        net.push(c(1, 1, size, size, 3, stride, 1), ch);
        let out_size = if stride == 2 { size / 2 } else { size };
        net.push(c(ch, out, out_size, out_size, 1, 1, 0), 1);
    };

    net.push(c(3, 32, 224, 224, 3, 2, 1), 1); // stem -> 112
    dw_pw(&mut net, 32, 112, 1, 64);
    dw_pw(&mut net, 64, 112, 2, 128); // -> 56
    dw_pw(&mut net, 128, 56, 1, 128);
    dw_pw(&mut net, 128, 56, 2, 256); // -> 28
    dw_pw(&mut net, 256, 28, 1, 256);
    dw_pw(&mut net, 256, 28, 2, 512); // -> 14
    for _ in 0..5 {
        dw_pw(&mut net, 512, 14, 1, 512);
    }
    dw_pw(&mut net, 512, 14, 2, 1024); // -> 7
    dw_pw(&mut net, 1024, 7, 1, 1024);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_in_published_band() {
        // MobileNetV1 is ~569 MMACs (1.14 GFLOPs) of conv at 224x224.
        let mmacs = mobilenet_v1().total_macs() as f64 / 1e6;
        assert!((480.0..650.0).contains(&mmacs), "{mmacs} MMACs");
    }

    #[test]
    fn depthwise_fraction_is_small_in_macs() {
        // DW layers are ~3% of MobileNet's MACs but a large share of its
        // memory traffic — the imbalance that motivates Fig. 14.
        let net = mobilenet_v1();
        let dw_macs: usize = net
            .layers()
            .filter(|(l, _)| l.in_channels == 1)
            .map(|(l, c)| l.macs() * c)
            .sum();
        let frac = dw_macs as f64 / net.total_macs() as f64;
        assert!(frac < 0.10, "DW fraction {frac}");
    }

    #[test]
    fn structure_counts() {
        // 1 stem + 13 pointwise entries; DW entries carry channel counts.
        let net = mobilenet_v1();
        let pw = net.layers().filter(|(l, _)| l.kernel == 1).count();
        assert_eq!(pw, 13);
    }
}

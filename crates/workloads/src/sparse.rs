//! Sparse-GEMM workload descriptors for the zero-gating power study
//! (paper §5.2.1: 5.3% total power reduction at 10% sparsity).

use crate::workload::{GemmWorkload, WorkloadKind};
use axon_core::GemmShape;
use std::fmt;

/// A GEMM with prescribed operand sparsities (fraction of exact zeros).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseGemm {
    /// Base workload.
    pub workload: GemmWorkload,
    /// Zero fraction of the `A` (ifmap) operand, in `[0, 1]`.
    pub sparsity_a: f64,
    /// Zero fraction of the `B` (filter) operand, in `[0, 1]`.
    pub sparsity_b: f64,
}

impl SparseGemm {
    /// Creates a sparse workload descriptor.
    ///
    /// # Panics
    ///
    /// Panics if a sparsity is outside `[0, 1]`.
    pub fn new(name: &'static str, shape: GemmShape, sparsity_a: f64, sparsity_b: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity_a), "sparsity_a out of range");
        assert!((0.0..=1.0).contains(&sparsity_b), "sparsity_b out of range");
        Self {
            workload: GemmWorkload {
                name,
                shape,
                kind: WorkloadKind::Gemm,
            },
            sparsity_a,
            sparsity_b,
        }
    }

    /// Expected fraction of MACs gated when zeros are independent:
    /// `1 - (1 - s_a)(1 - s_b)`.
    pub fn expected_gated_fraction(&self) -> f64 {
        1.0 - (1.0 - self.sparsity_a) * (1.0 - self.sparsity_b)
    }
}

impl fmt::Display for SparseGemm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (sparsity A {:.0}%, B {:.0}%)",
            self.workload,
            self.sparsity_a * 100.0,
            self.sparsity_b * 100.0
        )
    }
}

/// The sparsity sweep used by the reproduction's power study: the paper's
/// 10% point plus a range for the ablation.
pub fn sparsity_sweep(shape: GemmShape) -> Vec<SparseGemm> {
    [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(|s| SparseGemm::new("sparse_sweep", shape, s, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_fraction_at_paper_point() {
        let s = SparseGemm::new("p", GemmShape::new(64, 64, 64), 0.1, 0.1);
        assert!((s.expected_gated_fraction() - 0.19).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_monotone() {
        let sweep = sparsity_sweep(GemmShape::new(8, 8, 8));
        assert_eq!(sweep.len(), 7);
        for w in sweep.windows(2) {
            assert!(w[0].expected_gated_fraction() <= w[1].expected_gated_fraction());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_sparsity_rejected() {
        SparseGemm::new("bad", GemmShape::new(1, 1, 1), 1.5, 0.0);
    }
}

//! Depthwise-convolution workloads.
//!
//! A depthwise layer applies one `n x n` filter per channel, so each
//! channel is an independent micro-GEMM with `M = 1`, `K = n^2`,
//! `N = OH * OW` — very low arithmetic intensity, which is exactly the
//! regime where the paper reports ~2x Axon speedups (Fig. 14).

use crate::workload::{GemmWorkload, WorkloadKind};
use axon_core::GemmShape;
use axon_im2col::ConvLayer;
use std::fmt;

/// A depthwise conv layer: `channels` independent single-channel convs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DwConvLayer {
    /// Display name.
    pub name: &'static str,
    /// Number of channels (independent filters).
    pub channels: usize,
    /// Per-channel geometry (must have `in_channels == out_channels == 1`).
    pub geometry: ConvLayer,
}

impl DwConvLayer {
    /// Creates a DW layer description.
    ///
    /// # Panics
    ///
    /// Panics if the per-channel geometry is not single-channel.
    pub fn new(name: &'static str, channels: usize, geometry: ConvLayer) -> Self {
        assert_eq!(geometry.in_channels, 1, "per-channel geometry must be 1-in");
        assert_eq!(
            geometry.out_channels, 1,
            "per-channel geometry must be 1-out"
        );
        assert!(channels > 0, "channels must be non-zero");
        Self {
            name,
            channels,
            geometry,
        }
    }

    /// The per-channel GEMM: `1 x n^2 x (OH*OW)`.
    pub fn per_channel_gemm(&self) -> GemmShape {
        self.geometry.gemm_shape()
    }

    /// The layer treated as one batched GEMM with channels stacked along
    /// `M` (a common mapping when the array processes many channels per
    /// pass).
    pub fn batched_gemm(&self) -> GemmShape {
        let g = self.geometry.gemm_shape();
        GemmShape::new(self.channels, g.k, g.n)
    }

    /// Total MACs across channels.
    pub fn macs(&self) -> usize {
        self.channels * self.geometry.macs()
    }

    /// As a [`GemmWorkload`] (batched form).
    pub fn workload(&self) -> GemmWorkload {
        GemmWorkload {
            name: self.name,
            shape: self.batched_gemm(),
            kind: WorkloadKind::DwConv,
        }
    }
}

impl fmt::Display for DwConvLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ch, k{} s{} @{}x{}",
            self.name,
            self.channels,
            self.geometry.kernel,
            self.geometry.stride,
            self.geometry.ifmap_h,
            self.geometry.ifmap_w
        )
    }
}

/// Helper building a square-input DW layer.
fn dw(
    name: &'static str,
    channels: usize,
    size: usize,
    kernel: usize,
    stride: usize,
) -> DwConvLayer {
    DwConvLayer::new(
        name,
        channels,
        ConvLayer::new(1, 1, size, size, kernel, stride, kernel / 2),
    )
}

/// MobileNetV1 depthwise layers at 224x224 (Howard et al., 2017).
pub fn mobilenet_dw_layers() -> Vec<DwConvLayer> {
    vec![
        dw("MBv1_dw1", 32, 112, 3, 1),
        dw("MBv1_dw2", 64, 112, 3, 2),
        dw("MBv1_dw3", 128, 56, 3, 1),
        dw("MBv1_dw4", 128, 56, 3, 2),
        dw("MBv1_dw5", 256, 28, 3, 1),
        dw("MBv1_dw6", 256, 28, 3, 2),
        dw("MBv1_dw7", 512, 14, 3, 1),
        dw("MBv1_dw12", 512, 14, 3, 2),
        dw("MBv1_dw13", 1024, 7, 3, 1),
    ]
}

/// EfficientNet-B0 depthwise layers (Tan & Le, 2019) — a mix of 3x3 and
/// 5x5 kernels.
pub fn efficientnet_dw_layers() -> Vec<DwConvLayer> {
    vec![
        dw("EffB0_dw1", 32, 112, 3, 1),
        dw("EffB0_dw2", 96, 112, 3, 2),
        dw("EffB0_dw3", 144, 56, 3, 1),
        dw("EffB0_dw4", 144, 56, 5, 2),
        dw("EffB0_dw5", 240, 28, 5, 1),
        dw("EffB0_dw6", 240, 28, 3, 2),
        dw("EffB0_dw7", 480, 14, 3, 1),
        dw("EffB0_dw8", 480, 14, 5, 1),
        dw("EffB0_dw9", 672, 14, 5, 1),
        dw("EffB0_dw10", 672, 14, 5, 2),
        dw("EffB0_dw11", 1152, 7, 5, 1),
        dw("EffB0_dw12", 1152, 7, 3, 1),
    ]
}

/// The DW-conv workload set of the paper's Fig. 14 (MobileNet +
/// EfficientNet layers).
pub fn fig14_dw_workloads() -> Vec<DwConvLayer> {
    let mut v = mobilenet_dw_layers();
    v.extend(efficientnet_dw_layers());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_gemm_shape() {
        let l = dw("t", 64, 28, 3, 1);
        let g = l.per_channel_gemm();
        assert_eq!((g.m, g.k, g.n), (1, 9, 28 * 28));
        assert!(g.is_gemv() || g.m == 1);
    }

    #[test]
    fn batched_stacks_channels() {
        let l = dw("t", 64, 28, 3, 1);
        let g = l.batched_gemm();
        assert_eq!(g.m, 64);
        assert_eq!(l.macs(), g.macs());
    }

    #[test]
    fn low_arithmetic_intensity() {
        for l in fig14_dw_workloads() {
            let ai = l.per_channel_gemm().arithmetic_intensity();
            assert!(ai < 10.0, "{}: AI {ai}", l.name);
        }
    }

    #[test]
    #[should_panic(expected = "1-in")]
    fn multi_channel_geometry_rejected() {
        DwConvLayer::new("bad", 8, ConvLayer::new(2, 1, 8, 8, 3, 1, 1));
    }

    #[test]
    fn workload_sets_nonempty() {
        assert_eq!(mobilenet_dw_layers().len(), 9);
        assert_eq!(efficientnet_dw_layers().len(), 12);
        assert_eq!(fig14_dw_workloads().len(), 21);
    }
}

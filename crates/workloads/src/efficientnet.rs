//! EfficientNet-B0 (Tan & Le, 2019) conv-layer table at 224x224.
//!
//! MBConv blocks are expanded into their pointwise-expand / depthwise /
//! pointwise-project convolutions; squeeze-and-excitation layers are
//! omitted (they are ~1% of MACs and not convolution-lowered on the
//! array). Depthwise layers are encoded as per-channel repetitions, as
//! in [`crate::mobilenet_v1`].

use crate::convnet::ConvNet;
use axon_im2col::ConvLayer;

/// One MBConv stage: expand (pw) -> depthwise (k x k) -> project (pw).
#[allow(clippy::too_many_arguments)]
fn mbconv(
    net: &mut ConvNet,
    cin: usize,
    cout: usize,
    size: usize,
    kernel: usize,
    stride: usize,
    expand: usize,
    repeats: usize,
) {
    let c = ConvLayer::new;
    let mid = cin * expand;
    // First repeat: may downsample and change channels.
    if expand > 1 {
        net.push(c(cin, mid, size, size, 1, 1, 0), 1);
    }
    net.push(c(1, 1, size, size, kernel, stride, kernel / 2), mid);
    let out_size = if stride == 2 { size / 2 } else { size };
    net.push(c(mid, cout, out_size, out_size, 1, 1, 0), 1);
    // Remaining repeats: stride 1, cout channels.
    for _ in 1..repeats {
        let mid = cout * expand;
        if expand > 1 {
            net.push(c(cout, mid, out_size, out_size, 1, 1, 0), 1);
        }
        net.push(c(1, 1, out_size, out_size, kernel, 1, kernel / 2), mid);
        net.push(c(mid, cout, out_size, out_size, 1, 1, 0), 1);
    }
}

/// Builds the EfficientNet-B0 conv-layer list.
///
/// # Examples
///
/// ```
/// use axon_workloads::efficientnet_b0;
///
/// let net = efficientnet_b0();
/// // ~390 MMACs of convolution at 224x224.
/// let mmacs = net.total_macs() as f64 / 1e6;
/// assert!((300.0..480.0).contains(&mmacs));
/// ```
pub fn efficientnet_b0() -> ConvNet {
    let mut net = ConvNet::new("EfficientNet-B0");
    let c = ConvLayer::new;

    net.push(c(3, 32, 224, 224, 3, 2, 1), 1); // stem -> 112
    mbconv(&mut net, 32, 16, 112, 3, 1, 1, 1); // MBConv1 k3
    mbconv(&mut net, 16, 24, 112, 3, 2, 6, 2); // -> 56
    mbconv(&mut net, 24, 40, 56, 5, 2, 6, 2); // -> 28
    mbconv(&mut net, 40, 80, 28, 3, 2, 6, 3); // -> 14
    mbconv(&mut net, 80, 112, 14, 5, 1, 6, 3);
    mbconv(&mut net, 112, 192, 14, 5, 2, 6, 4); // -> 7
    mbconv(&mut net, 192, 320, 7, 3, 1, 6, 1);
    net.push(c(320, 1280, 7, 7, 1, 1, 0), 1); // head
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use axon_im2col::TrafficParams;

    #[test]
    fn macs_in_published_band() {
        // EfficientNet-B0 is ~390 MMACs (0.39 GFLOPs x2) at 224x224
        // excluding SE and the classifier.
        let mmacs = efficientnet_b0().total_macs() as f64 / 1e6;
        assert!((300.0..480.0).contains(&mmacs), "{mmacs} MMACs");
    }

    #[test]
    fn has_5x5_depthwise_layers() {
        let net = efficientnet_b0();
        let k5 = net
            .layers()
            .filter(|(l, _)| l.kernel == 5 && l.in_channels == 1)
            .count();
        assert!(k5 >= 3, "expected several 5x5 DW stages, got {k5}");
    }

    #[test]
    fn dw_heavy_nets_still_reduce_traffic() {
        // Even with the pointwise-dominated MACs, the 3x3/5x5 DW layers
        // give the on-chip im2col something to reuse.
        let t = efficientnet_b0().traffic(TrafficParams::default());
        assert!(t.ifmap_reduction_pct() > 5.0, "{}", t.ifmap_reduction_pct());
    }
}

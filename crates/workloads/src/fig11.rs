//! The conv shapes of the paper's Fig. 11: "different IFMAP and kernel
//! shapes adopted from SOTA neural networks", used to demonstrate the
//! on-chip im2col memory-access reduction.

use axon_im2col::ConvLayer;

/// A named conv shape for the Fig. 11 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamedConv {
    /// Short label (network / stage).
    pub name: &'static str,
    /// Geometry.
    pub layer: ConvLayer,
}

/// The Fig. 11 shape set: representative 3x3/5x5/7x7 convolutions from
/// ResNet, YOLOv3, MobileNet and EfficientNet at several map sizes.
pub fn fig11_shapes() -> Vec<NamedConv> {
    let c = ConvLayer::new;
    vec![
        NamedConv {
            name: "ResNet_conv1 7x7/2 @224",
            layer: c(3, 64, 224, 224, 7, 2, 3),
        },
        NamedConv {
            name: "ResNet_conv2 3x3 @56",
            layer: c(64, 64, 56, 56, 3, 1, 1),
        },
        NamedConv {
            name: "ResNet_conv3 3x3 @28",
            layer: c(128, 128, 28, 28, 3, 1, 1),
        },
        NamedConv {
            name: "ResNet_conv4 3x3 @14",
            layer: c(256, 256, 14, 14, 3, 1, 1),
        },
        NamedConv {
            name: "YOLO_d1 3x3 @416",
            layer: c(32, 64, 416, 416, 3, 2, 1),
        },
        NamedConv {
            name: "YOLO_d2 3x3 @208",
            layer: c(64, 128, 208, 208, 3, 2, 1),
        },
        NamedConv {
            name: "YOLO_r3 3x3 @52",
            layer: c(128, 256, 52, 52, 3, 1, 1),
        },
        NamedConv {
            name: "MobileNet 3x3 @112",
            layer: c(32, 64, 112, 112, 3, 1, 1),
        },
        NamedConv {
            name: "EffNet 5x5 @28",
            layer: c(240, 240, 28, 28, 5, 1, 2),
        },
        NamedConv {
            name: "EffNet 5x5 @14",
            layer: c(672, 672, 14, 14, 5, 1, 2),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use axon_im2col::access_reduction_pct;

    #[test]
    fn stride1_shapes_reduce_over_60pct() {
        // The paper's claim: >60% reduction for SOTA conv shapes.
        for nc in fig11_shapes() {
            if nc.layer.stride == 1 {
                let red = access_reduction_pct(&nc.layer, 16);
                assert!(red > 60.0, "{}: {red}%", nc.name);
            }
        }
    }

    #[test]
    fn shape_set_size() {
        assert_eq!(fig11_shapes().len(), 10);
    }
}

//! # axon-workloads
//!
//! The workload zoo of the Axon reproduction: every input the paper's
//! evaluation section (§5) runs.
//!
//! * [`table3`] — the 20 GEMM / GEMM-mapped-conv shapes of Table 3
//!   (transformers, GNMT, GPT-3, NCF, DB, ResNet/YOLO conv layers and
//!   synthetic GEMMs), driving Figs. 12 and 13;
//! * [`resnet50`] / [`yolov3`] — full conv-layer tables for the §5.2.1
//!   DRAM-traffic and inference-energy analysis;
//! * [`mobilenet_dw_layers`] / [`efficientnet_dw_layers`] — the DW-conv
//!   workloads of Fig. 14;
//! * [`gemv_workloads`] — the memory-bound GEMV set of Fig. 14;
//! * [`ConformerConfig`] — mixed Conv+GeMM conformer blocks;
//! * [`SparseGemm`] — sparsity descriptors for the zero-gating power
//!   study;
//! * [`fig11_shapes`] — the conv shapes of the Fig. 11 access-reduction
//!   sweep.
//!
//! ## Example
//!
//! ```
//! use axon_workloads::{table3, WorkloadKind};
//!
//! let convs = table3()
//!     .into_iter()
//!     .filter(|w| w.kind == WorkloadKind::ConvMapped)
//!     .count();
//! assert_eq!(convs, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conformer;
mod convnet;
mod dwconv;
mod efficientnet;
mod fig11;
mod gemv;
mod mobilenet;
mod resnet50;
mod sparse;
mod table3;
mod transformer;
mod workload;
mod yolov3;

pub use conformer::ConformerConfig;
pub use convnet::ConvNet;
pub use dwconv::{efficientnet_dw_layers, fig14_dw_workloads, mobilenet_dw_layers, DwConvLayer};
pub use efficientnet::efficientnet_b0;
pub use fig11::{fig11_shapes, NamedConv};
pub use gemv::gemv_workloads;
pub use mobilenet::mobilenet_v1;
pub use resnet50::resnet50;
pub use sparse::{sparsity_sweep, SparseGemm};
pub use table3::{fig13_workloads, table3};
pub use transformer::TransformerConfig;
pub use workload::{GemmWorkload, WorkloadKind};
pub use yolov3::yolov3;

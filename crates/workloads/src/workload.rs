//! Common workload descriptors.

use axon_core::GemmShape;
use std::fmt;

/// Category of a GEMM-shaped workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// A native dense GEMM (transformer / recommender / database kernels).
    Gemm,
    /// A convolution layer lowered to GEMM via im2col.
    ConvMapped,
    /// A matrix-vector product (`N = 1` or `M = 1`).
    Gemv,
    /// A per-channel depthwise-convolution micro-GEMM.
    DwConv,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::Gemm => f.write_str("GEMM"),
            WorkloadKind::ConvMapped => f.write_str("Conv"),
            WorkloadKind::Gemv => f.write_str("GEMV"),
            WorkloadKind::DwConv => f.write_str("DW-Conv"),
        }
    }
}

/// A named GEMM-shaped workload.
///
/// # Examples
///
/// ```
/// use axon_core::GemmShape;
/// use axon_workloads::{GemmWorkload, WorkloadKind};
///
/// let w = GemmWorkload {
///     name: "toy",
///     shape: GemmShape::new(8, 8, 8),
///     kind: WorkloadKind::Gemm,
/// };
/// assert_eq!(w.to_string(), "toy [GEMM] M=8 K=8 N=8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmWorkload {
    /// Display name (paper nomenclature where applicable).
    pub name: &'static str,
    /// The GEMM dimensions.
    pub shape: GemmShape,
    /// Category.
    pub kind: WorkloadKind,
}

impl fmt::Display for GemmWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.name, self.kind, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(WorkloadKind::Gemm.to_string(), "GEMM");
        assert_eq!(WorkloadKind::ConvMapped.to_string(), "Conv");
        assert_eq!(WorkloadKind::Gemv.to_string(), "GEMV");
        assert_eq!(WorkloadKind::DwConv.to_string(), "DW-Conv");
    }
}

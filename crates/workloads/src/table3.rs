//! The paper's Table 3: M/K/N of the GEMM and GEMM-mapped-conv workloads
//! used throughout the evaluation (Figs. 12 and 13).

use crate::workload::{GemmWorkload, WorkloadKind};
use axon_core::GemmShape;

/// All 20 workloads of the paper's Table 3, in its reading order.
///
/// # Examples
///
/// ```
/// use axon_workloads::table3;
///
/// let ws = table3();
/// assert_eq!(ws.len(), 20);
/// let tf0 = &ws[0];
/// assert_eq!(tf0.name, "TF0");
/// assert_eq!((tf0.shape.m, tf0.shape.k, tf0.shape.n), (31999, 84, 1024));
/// ```
pub fn table3() -> Vec<GemmWorkload> {
    use WorkloadKind::{ConvMapped, Gemm};
    let mk = |name, m, k, n, kind| GemmWorkload {
        name,
        shape: GemmShape::new(m, k, n),
        kind,
    };
    vec![
        mk("TF0", 31999, 84, 1024, Gemm),
        mk("TF1", 84, 4096, 1024, Gemm),
        mk("GNMT0", 128, 4096, 2048, Gemm),
        mk("GNMT1", 2048, 32, 4096, Gemm),
        mk("GPT3_0 (matmul0)", 1024, 1024, 80, Gemm),
        mk("GPT3_1 (matmul1)", 1024, 2560, 7680, Gemm),
        mk("GPT3_2 (addmm)", 1024, 2560, 10240, Gemm),
        mk("GPT3_3 (lmhead)", 1024, 2560, 50257, Gemm),
        mk("NCF0", 2048, 128, 1, Gemm),
        mk("NCF1", 256, 2048, 256, Gemm),
        mk("DB0", 1024, 50000, 16, Gemm),
        mk("DB1", 35, 2560, 4096, Gemm),
        mk("Resnet50_0_conv2d", 64, 147, 62500, ConvMapped),
        mk("Resnet50_1_conv2d", 512, 4608, 676, ConvMapped),
        mk("YOLO_v3_0_conv2d", 64, 288, 42436, ConvMapped),
        mk("YOLO_v3_1_conv2d", 128, 576, 10404, ConvMapped),
        mk("GEMM_0", 128, 10, 128, Gemm),
        mk("GEMM_1", 2048, 10, 2048, Gemm),
        mk("GEMM_2", 1024, 1024, 128, Gemm),
        mk("GEMM_3", 64, 2560, 2560, Gemm),
    ]
}

/// The subset of Table 3 the paper uses for the CMSA utilization
/// comparison (Fig. 13): every workload, at a 128x128 array.
pub fn fig13_workloads() -> Vec<GemmWorkload> {
    table3()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_uniqueness() {
        let ws = table3();
        assert_eq!(ws.len(), 20);
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "duplicate workload names");
    }

    #[test]
    fn conv_mapped_entries_decompose() {
        let ws = table3();
        // Resnet50_0: 7x7x3 kernel -> K = 147; 250x250 output -> N = 62500.
        let r0 = ws.iter().find(|w| w.name == "Resnet50_0_conv2d").unwrap();
        assert_eq!(r0.shape.k, 7 * 7 * 3);
        assert_eq!(r0.shape.n, 250 * 250);
        // YOLO_v3_0: 3x3x32 -> K = 288; 206x206 -> N = 42436.
        let y0 = ws.iter().find(|w| w.name == "YOLO_v3_0_conv2d").unwrap();
        assert_eq!(y0.shape.k, 3 * 3 * 32);
        assert_eq!(y0.shape.n, 206 * 206);
    }

    #[test]
    fn all_shapes_non_degenerate() {
        for w in table3() {
            assert!(
                w.shape.m >= 1 && w.shape.k >= 1 && w.shape.n >= 1,
                "{}",
                w.name
            );
        }
    }
}

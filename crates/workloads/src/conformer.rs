//! Conformer-block workloads (Gulati et al., 2020): the mixed Conv+GeMM
//! model the paper lists among its evaluation networks.
//!
//! A conformer block interleaves feed-forward GEMMs, multi-head attention
//! GEMMs and a depthwise 1-D convolution module, exercising both of
//! Axon's improvements in one workload.

use crate::workload::{GemmWorkload, WorkloadKind};
use axon_core::GemmShape;

/// Model hyperparameters of a conformer encoder block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConformerConfig {
    /// Sequence length (frames after subsampling).
    pub seq_len: usize,
    /// Model dimension.
    pub d_model: usize,
    /// Feed-forward expansion dimension.
    pub d_ff: usize,
    /// Depthwise-conv kernel size (1-D).
    pub conv_kernel: usize,
}

impl Default for ConformerConfig {
    fn default() -> Self {
        // Conformer-L-ish: 17 ms frames over ~10 s audio.
        Self {
            seq_len: 512,
            d_model: 512,
            d_ff: 2048,
            conv_kernel: 31,
        }
    }
}

impl ConformerConfig {
    /// The GEMMs of one block: two macaron feed-forward pairs, QKV/output
    /// projections, attention score/context products and the two
    /// pointwise convs of the conv module.
    pub fn gemm_workloads(&self) -> Vec<GemmWorkload> {
        let s = self.seq_len;
        let d = self.d_model;
        let ff = self.d_ff;
        let mk = |name, m, k, n| GemmWorkload {
            name,
            shape: GemmShape::new(m, k, n),
            kind: WorkloadKind::Gemm,
        };
        vec![
            mk("Conf_ffn1_up", s, d, ff),
            mk("Conf_ffn1_down", s, ff, d),
            mk("Conf_attn_qkv", s, d, 3 * d),
            mk("Conf_attn_scores", s, d, s),
            mk("Conf_attn_context", s, s, d),
            mk("Conf_attn_out", s, d, d),
            mk("Conf_conv_pw1", s, d, 2 * d),
            mk("Conf_conv_pw2", s, d, d),
            mk("Conf_ffn2_up", s, d, ff),
            mk("Conf_ffn2_down", s, ff, d),
        ]
    }

    /// The depthwise 1-D conv of the conv module as a batched GEMM: each
    /// of the `d_model` channels convolves its length-`seq_len` sequence
    /// with a `conv_kernel`-tap filter — per channel `1 x k x seq_len`
    /// ("same" padding), stacked along `M`.
    pub fn dw_conv_workload(&self) -> GemmWorkload {
        GemmWorkload {
            name: "Conf_conv_dw",
            shape: GemmShape::new(self.d_model, self.conv_kernel, self.seq_len),
            kind: WorkloadKind::DwConv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_has_ten_gemms() {
        let ws = ConformerConfig::default().gemm_workloads();
        assert_eq!(ws.len(), 10);
        for w in &ws {
            assert!(w.shape.macs() > 0);
        }
    }

    #[test]
    fn attention_products_are_square_in_seq() {
        let cfg = ConformerConfig::default();
        let ws = cfg.gemm_workloads();
        let scores = ws.iter().find(|w| w.name == "Conf_attn_scores").unwrap();
        assert_eq!(scores.shape.m, cfg.seq_len);
        assert_eq!(scores.shape.n, cfg.seq_len);
    }

    #[test]
    fn dw_conv_is_low_intensity() {
        let dw = ConformerConfig::default().dw_conv_workload();
        assert_eq!(dw.shape.k, 31);
        assert!(dw.shape.arithmetic_intensity() < 31.0);
    }
}

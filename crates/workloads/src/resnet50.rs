//! ResNet-50 (He et al., CVPR 2016) convolution-layer table at 224x224
//! input, v1.5 convention (stride-2 on the 3x3 of downsampling blocks).
//!
//! Used for the paper's §5.2.1 DRAM-traffic/energy analysis.

use crate::convnet::ConvNet;
use axon_im2col::ConvLayer;

/// Builds the ResNet-50 conv-layer list (53 conv layers counting
/// repetitions; the final FC layer is excluded as in the paper, which
/// reports "conv layer only" traffic).
///
/// # Examples
///
/// ```
/// use axon_workloads::resnet50;
///
/// let net = resnet50();
/// assert_eq!(net.total_layer_count(), 53);
/// // ~4.1 GMACs of convolution.
/// let gmacs = net.total_macs() as f64 / 1e9;
/// assert!((3.5..4.5).contains(&gmacs));
/// ```
pub fn resnet50() -> ConvNet {
    let mut net = ConvNet::new("ResNet50");
    let c = ConvLayer::new;

    // Stem: conv1 7x7/2.
    net.push(c(3, 64, 224, 224, 7, 2, 3), 1);

    // conv2_x @56x56 (after 3x3/2 maxpool): 3 bottlenecks.
    net.push(c(64, 64, 56, 56, 1, 1, 0), 1); // block 1 reduce
    net.push(c(64, 64, 56, 56, 3, 1, 1), 1);
    net.push(c(64, 256, 56, 56, 1, 1, 0), 1);
    net.push(c(64, 256, 56, 56, 1, 1, 0), 1); // downsample shortcut
    net.push(c(256, 64, 56, 56, 1, 1, 0), 2); // blocks 2-3 reduce
    net.push(c(64, 64, 56, 56, 3, 1, 1), 2);
    net.push(c(64, 256, 56, 56, 1, 1, 0), 2);

    // conv3_x @28x28: 4 bottlenecks, stride 2 in block 1's 3x3.
    net.push(c(256, 128, 56, 56, 1, 1, 0), 1);
    net.push(c(128, 128, 56, 56, 3, 2, 1), 1);
    net.push(c(128, 512, 28, 28, 1, 1, 0), 1);
    net.push(c(256, 512, 56, 56, 1, 2, 0), 1); // downsample shortcut
    net.push(c(512, 128, 28, 28, 1, 1, 0), 3);
    net.push(c(128, 128, 28, 28, 3, 1, 1), 3);
    net.push(c(128, 512, 28, 28, 1, 1, 0), 3);

    // conv4_x @14x14: 6 bottlenecks.
    net.push(c(512, 256, 28, 28, 1, 1, 0), 1);
    net.push(c(256, 256, 28, 28, 3, 2, 1), 1);
    net.push(c(256, 1024, 14, 14, 1, 1, 0), 1);
    net.push(c(512, 1024, 28, 28, 1, 2, 0), 1); // downsample shortcut
    net.push(c(1024, 256, 14, 14, 1, 1, 0), 5);
    net.push(c(256, 256, 14, 14, 3, 1, 1), 5);
    net.push(c(256, 1024, 14, 14, 1, 1, 0), 5);

    // conv5_x @7x7: 3 bottlenecks.
    net.push(c(1024, 512, 14, 14, 1, 1, 0), 1);
    net.push(c(512, 512, 14, 14, 3, 2, 1), 1);
    net.push(c(512, 2048, 7, 7, 1, 1, 0), 1);
    net.push(c(1024, 2048, 14, 14, 1, 2, 0), 1); // downsample shortcut
    net.push(c(2048, 512, 7, 7, 1, 1, 0), 2);
    net.push(c(512, 512, 7, 7, 3, 1, 1), 2);
    net.push(c(512, 2048, 7, 7, 1, 1, 0), 2);

    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_is_53() {
        // 1 stem + 16 bottlenecks * 3 + 4 downsample shortcuts = 53.
        assert_eq!(resnet50().total_layer_count(), 53);
    }

    #[test]
    fn macs_in_published_band() {
        let macs = resnet50().total_macs();
        // torchvision reports ~4.09 GMACs for ResNet-50 convolutions.
        assert!(
            (3_500_000_000..4_500_000_000usize).contains(&macs),
            "{macs}"
        );
    }

    #[test]
    fn parameter_count_in_published_band() {
        let params: usize = resnet50()
            .layers()
            .map(|(l, cnt)| l.filter_elements() * cnt)
            .sum();
        // ~23.5M conv parameters.
        assert!((20_000_000..27_000_000).contains(&params), "{params}");
    }

    #[test]
    fn spatial_chaining_consistent() {
        // Every 3x3 with stride 2 must halve the map.
        for (l, _) in resnet50().layers() {
            if l.kernel == 3 && l.stride == 2 {
                assert_eq!(l.out_h(), l.ifmap_h / 2);
            }
        }
    }
}

//! GEMV (matrix-vector) workloads: the memory-bound regime of the
//! paper's Fig. 14.
//!
//! Single-token transformer decoding and recommender scoring reduce every
//! projection to `y = W x` — `N = 1` GEMMs whose runtime on a systolic
//! array is almost entirely operand-fill latency, which Axon halves.

use crate::workload::{GemmWorkload, WorkloadKind};
use axon_core::GemmShape;

/// GEMV workloads drawn from the evaluation networks' projection shapes.
///
/// # Examples
///
/// ```
/// use axon_workloads::gemv_workloads;
///
/// for w in gemv_workloads() {
///     assert!(w.shape.is_gemv());
/// }
/// ```
pub fn gemv_workloads() -> Vec<GemmWorkload> {
    let mk = |name, m, k| GemmWorkload {
        name,
        shape: GemmShape::gemv(m, k),
        kind: WorkloadKind::Gemv,
    };
    vec![
        mk("GEMV_TF_qkv", 1024, 1024),
        mk("GEMV_TF_ffn", 4096, 1024),
        mk("GEMV_GPT3_proj", 2560, 2560),
        mk("GEMV_GPT3_ffn", 10240, 2560),
        mk("GEMV_GPT3_lmhead", 50257, 2560),
        mk("GEMV_GNMT", 4096, 2048),
        mk("GEMV_NCF", 2048, 128),
        mk("GEMV_DB", 50000, 1024),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_have_unit_n() {
        for w in gemv_workloads() {
            assert_eq!(w.shape.n, 1, "{}", w.name);
            assert_eq!(w.kind, WorkloadKind::Gemv);
        }
    }

    #[test]
    fn memory_bound_by_construction() {
        for w in gemv_workloads() {
            assert!(w.shape.arithmetic_intensity() < 1.0, "{}", w.name);
        }
    }

    #[test]
    fn set_size() {
        assert_eq!(gemv_workloads().len(), 8);
    }
}

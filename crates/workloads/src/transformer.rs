//! Transformer-block workload generator: produces the GEMMs of one
//! decoder block (and the LM head) from model hyperparameters.
//!
//! The paper's Table 3 GPT3 rows are exactly these shapes for the
//! GPT-3 2.7B configuration (`d_model = 2560`, 32 heads, sequence 1024,
//! vocabulary 50257) — the provenance test below pins that
//! correspondence.

use crate::workload::{GemmWorkload, WorkloadKind};
use axon_core::GemmShape;

/// Hyperparameters of a decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Sequence length processed per forward pass.
    pub seq_len: usize,
    /// Model (embedding) dimension.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Feed-forward inner dimension.
    pub d_ff: usize,
    /// Vocabulary size (LM head output).
    pub vocab: usize,
}

impl TransformerConfig {
    /// GPT-3 2.7B: the configuration behind Table 3's GPT3 rows.
    pub fn gpt3_2p7b() -> Self {
        Self {
            seq_len: 1024,
            d_model: 2560,
            n_heads: 32,
            d_ff: 4 * 2560,
            vocab: 50257,
        }
    }

    /// Per-head dimension.
    pub fn d_head(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// The GEMMs of one block in execution order, plus the LM head.
    ///
    /// Attention score/context products are per-head shapes (the form a
    /// GEMM accelerator actually executes, and the form Table 3 lists as
    /// "matmul0").
    pub fn block_workloads(&self) -> Vec<GemmWorkload> {
        let s = self.seq_len;
        let d = self.d_model;
        let mk = |name, m, k, n| GemmWorkload {
            name,
            shape: GemmShape::new(m, k, n),
            kind: WorkloadKind::Gemm,
        };
        vec![
            // Fused QKV projection (Table 3 "matmul1").
            mk("xf_qkv_proj", s, d, 3 * d),
            // Per-head attention scores Q K^T.
            mk("xf_attn_scores", s, self.d_head(), s),
            // Per-head context: scores x V (Table 3 "matmul0").
            mk("xf_attn_context", s, s, self.d_head()),
            // Output projection.
            mk("xf_attn_out", s, d, d),
            // Feed-forward up (Table 3 "addmm") and down.
            mk("xf_ffn_up", s, d, self.d_ff),
            mk("xf_ffn_down", s, self.d_ff, d),
            // LM head (Table 3 "lmhead").
            mk("xf_lm_head", s, d, self.vocab),
        ]
    }

    /// Single-token decode: every projection collapses to a GEMV
    /// (`M = 1`), the regime of the paper's Fig. 14.
    pub fn decode_workloads(&self) -> Vec<GemmWorkload> {
        let d = self.d_model;
        let mk = |name, k, n| GemmWorkload {
            name,
            shape: GemmShape::new(1, k, n),
            kind: WorkloadKind::Gemv,
        };
        vec![
            mk("xf_decode_qkv", d, 3 * d),
            mk("xf_decode_out", d, d),
            mk("xf_decode_ffn_up", d, self.d_ff),
            mk("xf_decode_ffn_down", self.d_ff, d),
            mk("xf_decode_lm_head", d, self.vocab),
        ]
    }

    /// Total MACs of one block plus the LM head (prefill mode).
    pub fn block_macs(&self) -> usize {
        // Per-head products run once per head.
        self.block_workloads()
            .iter()
            .map(|w| {
                let per_head = w.name.contains("attn_scores") || w.name.contains("attn_context");
                w.shape.macs() * if per_head { self.n_heads } else { 1 }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table3;

    #[test]
    fn gpt3_rows_of_table3_are_this_config() {
        let cfg = TransformerConfig::gpt3_2p7b();
        let ws = cfg.block_workloads();
        let t3 = table3();
        let find = |name: &str| t3.iter().find(|w| w.name.contains(name)).unwrap().shape;
        let gen = |name: &str| ws.iter().find(|w| w.name.contains(name)).unwrap().shape;

        // matmul0 = per-head context (1024, 1024, 80).
        assert_eq!(find("matmul0"), gen("attn_context"));
        // matmul1 = fused QKV (1024, 2560, 7680).
        assert_eq!(find("matmul1"), gen("qkv_proj"));
        // addmm = FFN up (1024, 2560, 10240).
        assert_eq!(find("addmm"), gen("ffn_up"));
        // lmhead = vocabulary projection (1024, 2560, 50257).
        assert_eq!(find("lmhead"), gen("lm_head"));
    }

    #[test]
    fn d_head_divides_model_dim() {
        let cfg = TransformerConfig::gpt3_2p7b();
        assert_eq!(cfg.d_head(), 80);
        assert_eq!(cfg.d_head() * cfg.n_heads, cfg.d_model);
    }

    #[test]
    fn decode_mode_is_all_gemv() {
        for w in TransformerConfig::gpt3_2p7b().decode_workloads() {
            assert_eq!(w.shape.m, 1, "{}", w.name);
            assert_eq!(w.kind, WorkloadKind::Gemv);
            assert!(w.shape.arithmetic_intensity() < 1.0);
        }
    }

    #[test]
    fn block_macs_plausible() {
        // One GPT-3 2.7B block + LM head at seq 1024: tens of GMACs.
        let macs = TransformerConfig::gpt3_2p7b().block_macs();
        assert!((50_000_000_000..350_000_000_000).contains(&macs), "{macs}");
    }
}

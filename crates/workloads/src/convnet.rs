//! A convolutional network as an ordered list of conv layers with
//! repetition counts.

use axon_im2col::{
    layer_dram_traffic, layer_traffic, ConvLayer, DramTrafficModel, LayerTraffic, TrafficParams,
};
use std::fmt;

/// A named list of conv layers, each with a repetition count (identical
/// blocks are stored once).
///
/// # Examples
///
/// ```
/// use axon_im2col::ConvLayer;
/// use axon_workloads::ConvNet;
///
/// let mut net = ConvNet::new("tiny");
/// net.push(ConvLayer::new(3, 8, 32, 32, 3, 1, 1), 2);
/// assert_eq!(net.total_layer_count(), 2);
/// assert_eq!(net.total_macs(), 2 * 8 * 27 * 32 * 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConvNet {
    name: &'static str,
    layers: Vec<(ConvLayer, usize)>,
}

impl ConvNet {
    /// Creates an empty network.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            layers: Vec::new(),
        }
    }

    /// Network name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Appends `count` repetitions of `layer`.
    pub fn push(&mut self, layer: ConvLayer, count: usize) {
        assert!(count > 0, "layer count must be non-zero");
        self.layers.push((layer, count));
    }

    /// Iterates over `(layer, count)` entries.
    pub fn layers(&self) -> impl Iterator<Item = (&ConvLayer, usize)> {
        self.layers.iter().map(|(l, c)| (l, *c))
    }

    /// Number of distinct `(layer, count)` entries.
    pub fn entry_count(&self) -> usize {
        self.layers.len()
    }

    /// Total conv layers counting repetitions.
    pub fn total_layer_count(&self) -> usize {
        self.layers.iter().map(|(_, c)| c).sum()
    }

    /// Total MACs over all layers and repetitions.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|(l, c)| l.macs() * c).sum()
    }

    /// Total SRAM-level stream traffic of the network under both im2col
    /// schemes (single tile pass; the Fig. 11 metric summed over layers).
    pub fn traffic(&self, params: TrafficParams) -> LayerTraffic {
        let mut total = LayerTraffic::default();
        for (l, c) in self.layers() {
            let t = layer_traffic(l, params);
            for _ in 0..c {
                total += t;
            }
        }
        total
    }

    /// Total off-chip DRAM traffic under the scale-up refetch model of
    /// the paper's §5.2.1 (see [`DramTrafficModel`]).
    pub fn dram_traffic(&self, model: DramTrafficModel) -> LayerTraffic {
        let mut total = LayerTraffic::default();
        for (l, c) in self.layers() {
            let t = layer_dram_traffic(l, model);
            for _ in 0..c {
                total += t;
            }
        }
        total
    }
}

impl fmt::Display for ConvNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} conv layers, {:.2} GMACs",
            self.name,
            self.total_layer_count(),
            self.total_macs() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates_counts() {
        let layer = ConvLayer::new(4, 4, 16, 16, 3, 1, 1);
        let mut one = ConvNet::new("one");
        one.push(layer, 1);
        let mut three = ConvNet::new("three");
        three.push(layer, 3);
        let p = TrafficParams::default();
        assert_eq!(
            3 * one.traffic(p).software_total(),
            three.traffic(p).software_total()
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_count_rejected() {
        let mut net = ConvNet::new("bad");
        net.push(ConvLayer::new(1, 1, 4, 4, 3, 1, 0), 0);
    }

    #[test]
    fn display_shows_name() {
        let mut net = ConvNet::new("demo");
        net.push(ConvLayer::new(3, 8, 8, 8, 3, 1, 1), 1);
        assert!(net.to_string().contains("demo"));
    }
}

//! # axon-hw
//!
//! Component-level silicon cost model for the Axon reproduction.
//!
//! The paper synthesizes and places-and-routes 16x16 arrays with TSMC
//! 45 nm and ASAP 7 nm PDKs (Synopsys DC/VCS). Proprietary EDA flows are
//! out of reach for a reproduction, so this crate substitutes an
//! analytical rollup over a component library whose constants are
//! **calibrated to the paper's own post-PnR anchors** (Fig. 10):
//!
//! | design          | area (mm^2) | power (mW) |
//! |-----------------|-------------|------------|
//! | conventional SA | 0.9992      | 59.88      |
//! | Axon            | 0.9931      | —          |
//! | Axon + im2col   | 0.9951      | 59.98      |
//!
//! Relative comparisons — the +0.2% im2col area, the +1.6%-class power
//! figure, and the few-percent advantage over a Sauria-style feeder
//! (Fig. 15) — are structural: they follow from mux-vs-counter/FIFO
//! component counts and survive the substitution.
//!
//! ## Example
//!
//! ```
//! use axon_hw::{ComponentLibrary, ImplementationSpecs};
//!
//! let lib = ComponentLibrary::calibrated_7nm();
//! let spec = ImplementationSpecs::paper_configuration(&lib);
//! assert!(spec.im2col_area_overhead_pct() < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array_cost;
mod components;
mod energy;
mod node;
mod report;
mod sauria;

pub use array_cost::{estimate_array_cost, ArrayCost, ArrayDesign, ZeroGatingPower};
pub use components::{BlockCost, ComponentLibrary};
pub use energy::{execution_energy, ExecutionEnergy};
pub use node::TechNode;
pub use report::{sweep_vs_sauria, ImplementationSpecs, SweepPoint};
pub use sauria::SauriaFeederConfig;

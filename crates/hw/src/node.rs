//! Technology nodes and scaling.
//!
//! The paper synthesizes at TSMC 45 nm and ASAP 7 nm. We cannot run the
//! proprietary flows, so this model anchors all component constants at
//! 7 nm — calibrated to the paper's post-PnR 16x16 numbers (Fig. 10) —
//! and scales to 45 nm with generic standard-cell density/power factors.
//! Relative comparisons (Axon vs SA vs Sauria), which are what Fig. 15
//! plots, are preserved by construction because every design is built
//! from the same component library.

use std::fmt;

/// A process technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Human-readable name.
    pub name: &'static str,
    /// Nominal feature size in nanometres.
    pub feature_nm: u32,
    /// Area multiplier relative to the 7 nm reference library.
    pub area_scale: f64,
    /// Power multiplier relative to the 7 nm reference library at the
    /// same clock.
    pub power_scale: f64,
}

impl TechNode {
    /// ASAP 7 nm FinFET predictive PDK — the calibration reference.
    pub fn asap7() -> Self {
        Self {
            name: "ASAP7",
            feature_nm: 7,
            area_scale: 1.0,
            power_scale: 1.0,
        }
    }

    /// TSMC 45 nm. Generic scaling: ~14x the standard-cell area and
    /// ~3.5x the dynamic power of the 7 nm library at iso-frequency.
    pub fn tsmc45() -> Self {
        Self {
            name: "TSMC45",
            feature_nm: 45,
            area_scale: 14.0,
            power_scale: 3.5,
        }
    }

    /// Both nodes used in the paper's Fig. 15, 45 nm first.
    pub fn paper_nodes() -> [TechNode; 2] {
        [Self::tsmc45(), Self::asap7()]
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} nm)", self.name, self.feature_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_is_identity() {
        let n = TechNode::asap7();
        assert_eq!(n.area_scale, 1.0);
        assert_eq!(n.power_scale, 1.0);
    }

    #[test]
    fn coarser_node_is_bigger_and_hungrier() {
        let n45 = TechNode::tsmc45();
        assert!(n45.area_scale > 1.0);
        assert!(n45.power_scale > 1.0);
        assert!(n45.feature_nm > TechNode::asap7().feature_nm);
    }

    #[test]
    fn display_names() {
        assert_eq!(TechNode::asap7().to_string(), "ASAP7 (7 nm)");
        assert_eq!(TechNode::tsmc45().to_string(), "TSMC45 (45 nm)");
    }
}

//! Array-level energy and energy-delay product.
//!
//! The paper's energy argument has two parts: DRAM energy from traffic
//! (modeled in `axon-mem`) and array energy, which tracks *runtime at
//! nearly equal power* — Axon's power overhead is 0.17–1.6% while its
//! runtime improves by 1.2–2x, so array energy falls almost
//! proportionally to the speedup. This module quantifies that.

use crate::array_cost::{estimate_array_cost, ArrayCost, ArrayDesign, ZeroGatingPower};
use crate::components::ComponentLibrary;
use crate::node::TechNode;
use axon_core::ArrayShape;
use std::fmt;

/// Energy accounting for one workload execution on one array design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionEnergy {
    /// Cycles the run took.
    pub cycles: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Average array power during the run, in mW.
    pub power_mw: f64,
}

impl ExecutionEnergy {
    /// Run time in seconds.
    pub fn time_s(&self) -> f64 {
        self.cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Array energy in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.power_mw * 1e-3 * self.time_s() * 1e6
    }

    /// Energy-delay product in microjoule-seconds.
    pub fn edp(&self) -> f64 {
        self.energy_uj() * self.time_s()
    }
}

impl fmt::Display for ExecutionEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles @ {:.0} MHz, {:.2} mW -> {:.3} uJ",
            self.cycles,
            self.clock_mhz,
            self.power_mw,
            self.energy_uj()
        )
    }
}

/// Builds the execution-energy record for a run of `cycles` on `design`,
/// optionally derated by zero gating at `gated_fraction`.
///
/// # Examples
///
/// ```
/// use axon_core::ArrayShape;
/// use axon_hw::{execution_energy, ArrayDesign, ComponentLibrary, TechNode};
///
/// let lib = ComponentLibrary::calibrated_7nm();
/// let sa = execution_energy(
///     ArrayDesign::Conventional, ArrayShape::square(16), TechNode::asap7(),
///     &lib, 1000, 500.0, 0.0);
/// let axon = execution_energy(
///     ArrayDesign::Axon { im2col: true, unified_pe: false },
///     ArrayShape::square(16), TechNode::asap7(), &lib, 700, 500.0, 0.0);
/// // 1.43x fewer cycles at ~equal power -> ~1.43x less energy.
/// assert!(axon.energy_uj() < sa.energy_uj() / 1.4);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn execution_energy(
    design: ArrayDesign,
    shape: ArrayShape,
    node: TechNode,
    lib: &ComponentLibrary,
    cycles: usize,
    clock_mhz: f64,
    gated_fraction: f64,
) -> ExecutionEnergy {
    let ArrayCost { power_mw, .. } = estimate_array_cost(design, shape, node, lib);
    let factor = ZeroGatingPower::default().power_factor(lib, gated_fraction);
    ExecutionEnergy {
        cycles,
        clock_mhz,
        power_mw: power_mw * factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> ComponentLibrary {
        ComponentLibrary::calibrated_7nm()
    }

    #[test]
    fn energy_scales_with_cycles() {
        let e1 = execution_energy(
            ArrayDesign::Conventional,
            ArrayShape::square(16),
            TechNode::asap7(),
            &lib(),
            1000,
            500.0,
            0.0,
        );
        let e2 = execution_energy(
            ArrayDesign::Conventional,
            ArrayShape::square(16),
            TechNode::asap7(),
            &lib(),
            2000,
            500.0,
            0.0,
        );
        assert!((e2.energy_uj() - 2.0 * e1.energy_uj()).abs() < 1e-9);
        // EDP scales quadratically with time at fixed power.
        assert!((e2.edp() - 4.0 * e1.edp()).abs() < 1e-9);
    }

    #[test]
    fn axon_energy_advantage_tracks_speedup() {
        // 1.47x speedup at +0.17% power => ~1.47x energy advantage.
        let l = lib();
        let sa = execution_energy(
            ArrayDesign::Conventional,
            ArrayShape::square(16),
            TechNode::asap7(),
            &l,
            1470,
            500.0,
            0.0,
        );
        let ax = execution_energy(
            ArrayDesign::Axon {
                im2col: true,
                unified_pe: false,
            },
            ArrayShape::square(16),
            TechNode::asap7(),
            &l,
            1000,
            500.0,
            0.0,
        );
        let ratio = sa.energy_uj() / ax.energy_uj();
        assert!((1.4..1.5).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn gating_reduces_power_not_time() {
        let l = lib();
        let dense = execution_energy(
            ArrayDesign::Axon {
                im2col: true,
                unified_pe: false,
            },
            ArrayShape::square(16),
            TechNode::asap7(),
            &l,
            1000,
            500.0,
            0.0,
        );
        let sparse = execution_energy(
            ArrayDesign::Axon {
                im2col: true,
                unified_pe: false,
            },
            ArrayShape::square(16),
            TechNode::asap7(),
            &l,
            1000,
            500.0,
            0.19,
        );
        assert_eq!(dense.time_s(), sparse.time_s());
        assert!(sparse.energy_uj() < dense.energy_uj());
    }
}

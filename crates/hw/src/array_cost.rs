//! Whole-array area/power rollup for the designs the paper compares.

use crate::components::ComponentLibrary;
use crate::node::TechNode;
use crate::sauria::SauriaFeederConfig;
use axon_core::ArrayShape;
use std::fmt;

/// The array designs compared in the paper's Figs. 10 and 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayDesign {
    /// Conventional unidirectional systolic array.
    Conventional,
    /// Axon: diagonal feed, bidirectional propagation, with optional
    /// on-chip im2col MUXes and optional unified (OS/WS/IS) PEs.
    Axon {
        /// Include the per-feeder 2-to-1 im2col MUX.
        im2col: bool,
        /// Use the unified PE of Fig. 9 (adds four MUXes per PE).
        unified_pe: bool,
    },
    /// Conventional array plus a Sauria-style per-column im2col feeder.
    SauriaStyle,
}

impl fmt::Display for ArrayDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayDesign::Conventional => f.write_str("SA"),
            ArrayDesign::Axon { im2col: true, .. } => f.write_str("Axon+im2col"),
            ArrayDesign::Axon { .. } => f.write_str("Axon"),
            ArrayDesign::SauriaStyle => f.write_str("Sauria-style"),
        }
    }
}

/// Rolled-up silicon cost of one array instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayCost {
    /// Total area in mm^2.
    pub area_mm2: f64,
    /// Total power in mW.
    pub power_mw: f64,
}

impl fmt::Display for ArrayCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mm^2, {:.2} mW", self.area_mm2, self.power_mw)
    }
}

/// Estimates the cost of `design` at `shape` on `node`.
///
/// Buffer sharing at Axon's feeder PEs (the paper's §5.1 observation that
/// adjacent PEs mirrored across the diagonal receive identical data in
/// the same cycle) is an **area** credit only: the shared buffer still
/// serves both consumers, so its dynamic power is unchanged.
///
/// # Examples
///
/// ```
/// use axon_core::ArrayShape;
/// use axon_hw::{estimate_array_cost, ArrayDesign, ComponentLibrary, TechNode};
///
/// let lib = ComponentLibrary::calibrated_7nm();
/// let sa = estimate_array_cost(
///     ArrayDesign::Conventional, ArrayShape::square(16), TechNode::asap7(), &lib);
/// assert!((sa.area_mm2 - 0.9992).abs() < 1e-4); // paper Fig. 10
/// assert!((sa.power_mw - 59.88).abs() < 0.01);
/// ```
pub fn estimate_array_cost(
    design: ArrayDesign,
    shape: ArrayShape,
    node: TechNode,
    lib: &ComponentLibrary,
) -> ArrayCost {
    let pes = shape.num_pes() as f64;
    let diag = shape.diagonal_len() as f64;
    let mut total = lib.conventional_pe().times(pes);

    match design {
        ArrayDesign::Conventional => {}
        ArrayDesign::Axon { im2col, unified_pe } => {
            // Bidirectional interconnect at each feeder PE.
            total += lib.bidir_interconnect.times(diag);
            // Buffer sharing: each feeder PE lets one input-buffer pair
            // (horizontal mirror) and one weight-buffer pair (vertical
            // mirror) collapse into a single buffer. Area-only credit.
            total.area_um2 -= lib.operand_buffer.area_um2 * 2.0 * diag;
            if im2col {
                total += lib.mux2_16b.times(diag);
            }
            if unified_pe {
                // Fig. 9: MUX1..MUX4 in every PE.
                total += lib.mux2_16b.times(4.0 * pes);
            }
        }
        ArrayDesign::SauriaStyle => {
            total += SauriaFeederConfig::default().network_cost(lib, shape.cols());
        }
    }

    ArrayCost {
        area_mm2: total.area_um2 * node.area_scale / 1e6,
        power_mw: total.power_mw * node.power_scale,
    }
}

/// Power model of zero gating (paper §4.1, §5.2.1: "5.3% total power
/// reduction for the case of 10% sparsity").
///
/// A MAC is gated when either operand is zero; with independent operand
/// sparsities `s_a`, `s_b`, the gated fraction is `1 - (1-s_a)(1-s_b)`.
/// Gating suppresses the *switchable* part of the MAC's power; the share
/// is calibrated so that 10% sparsity on both operands yields the paper's
/// 5.3% total reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroGatingPower {
    /// Fraction of MAC power eliminated while gated.
    pub gatable_mac_share: f64,
}

impl Default for ZeroGatingPower {
    fn default() -> Self {
        // mac_share_of_pe ~= 0.5986; 0.5986 * x * 0.19 = 0.053 => x ~= 0.466.
        Self {
            gatable_mac_share: 0.466,
        }
    }
}

impl ZeroGatingPower {
    /// Total-power multiplier for a design whose MACs are gated a
    /// `gated_fraction` of the time.
    pub fn power_factor(&self, lib: &ComponentLibrary, gated_fraction: f64) -> f64 {
        let pe = lib.conventional_pe();
        let mac_share = lib.fp16_mac.power_mw / pe.power_mw;
        1.0 - mac_share * self.gatable_mac_share * gated_fraction.clamp(0.0, 1.0)
    }

    /// Gated MAC fraction for independent operand sparsities.
    pub fn gated_fraction(s_a: f64, s_b: f64) -> f64 {
        1.0 - (1.0 - s_a.clamp(0.0, 1.0)) * (1.0 - s_b.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> ComponentLibrary {
        ComponentLibrary::calibrated_7nm()
    }

    fn at16(design: ArrayDesign) -> ArrayCost {
        estimate_array_cost(design, ArrayShape::square(16), TechNode::asap7(), &lib())
    }

    #[test]
    fn fig10_anchors_reproduced() {
        let sa = at16(ArrayDesign::Conventional);
        assert!(
            (sa.area_mm2 - 0.9992).abs() < 1e-4,
            "SA area {}",
            sa.area_mm2
        );
        assert!((sa.power_mw - 59.88).abs() < 0.01);

        let axon = at16(ArrayDesign::Axon {
            im2col: false,
            unified_pe: false,
        });
        assert!(
            (axon.area_mm2 - 0.9931).abs() < 1e-4,
            "Axon area {}",
            axon.area_mm2
        );

        let axon_im2col = at16(ArrayDesign::Axon {
            im2col: true,
            unified_pe: false,
        });
        assert!(
            (axon_im2col.area_mm2 - 0.9951).abs() < 1e-4,
            "Axon+im2col area {}",
            axon_im2col.area_mm2
        );
        assert!(
            (axon_im2col.power_mw - 59.98).abs() < 0.01,
            "Axon+im2col power {}",
            axon_im2col.power_mw
        );
    }

    #[test]
    fn im2col_overhead_is_small() {
        let axon = at16(ArrayDesign::Axon {
            im2col: false,
            unified_pe: false,
        });
        let with = at16(ArrayDesign::Axon {
            im2col: true,
            unified_pe: false,
        });
        let area_pct = 100.0 * (with.area_mm2 - axon.area_mm2) / axon.area_mm2;
        assert!(
            (0.15..0.25).contains(&area_pct),
            "area overhead {area_pct}%"
        );
    }

    #[test]
    fn axon_beats_sauria_on_area_and_power() {
        // Paper §5.2.3: Axon averages ~3.93% less area and ~4.5% less
        // power than Sauria across nodes/shapes.
        let axon = at16(ArrayDesign::Axon {
            im2col: true,
            unified_pe: false,
        });
        let sauria = at16(ArrayDesign::SauriaStyle);
        assert!(axon.area_mm2 < sauria.area_mm2);
        assert!(axon.power_mw < sauria.power_mw);
        let pct = 100.0 * (sauria.area_mm2 - axon.area_mm2) / sauria.area_mm2;
        assert!((2.0..6.0).contains(&pct), "area advantage {pct}%");
    }

    #[test]
    fn node_scaling_preserves_ratios() {
        let lib = lib();
        for shape in [ArrayShape::square(8), ArrayShape::square(32)] {
            let a7 = estimate_array_cost(
                ArrayDesign::Axon {
                    im2col: true,
                    unified_pe: false,
                },
                shape,
                TechNode::asap7(),
                &lib,
            );
            let a45 = estimate_array_cost(
                ArrayDesign::Axon {
                    im2col: true,
                    unified_pe: false,
                },
                shape,
                TechNode::tsmc45(),
                &lib,
            );
            let s7 = estimate_array_cost(ArrayDesign::SauriaStyle, shape, TechNode::asap7(), &lib);
            let s45 =
                estimate_array_cost(ArrayDesign::SauriaStyle, shape, TechNode::tsmc45(), &lib);
            let r7 = a7.area_mm2 / s7.area_mm2;
            let r45 = a45.area_mm2 / s45.area_mm2;
            assert!((r7 - r45).abs() < 1e-9, "ratio differs across nodes");
        }
    }

    #[test]
    fn unified_pe_costs_more() {
        let plain = at16(ArrayDesign::Axon {
            im2col: true,
            unified_pe: false,
        });
        let unified = at16(ArrayDesign::Axon {
            im2col: true,
            unified_pe: true,
        });
        assert!(unified.area_mm2 > plain.area_mm2);
        // Still a small overhead: 4 MUXes per PE is < 15% of a PE.
        assert!(unified.area_mm2 < plain.area_mm2 * 1.15);
    }

    #[test]
    fn zero_gating_matches_paper_calibration() {
        let g = ZeroGatingPower::default();
        let gated = ZeroGatingPower::gated_fraction(0.1, 0.1);
        assert!((gated - 0.19).abs() < 1e-12);
        let factor = g.power_factor(&lib(), gated);
        let reduction_pct = 100.0 * (1.0 - factor);
        assert!(
            (reduction_pct - 5.3).abs() < 0.1,
            "reduction {reduction_pct}%"
        );
    }

    #[test]
    fn zero_gating_monotone_in_sparsity() {
        let g = ZeroGatingPower::default();
        let l = lib();
        let mut last = 1.1;
        for s in [0.0, 0.1, 0.3, 0.5, 0.9] {
            let f = g.power_factor(&l, ZeroGatingPower::gated_fraction(s, s));
            assert!(f < last, "not monotone at {s}");
            last = f;
        }
    }
}

//! Cost model of a Sauria-style on-the-fly im2col feeder (Fornt et al.,
//! TVLSI 2023), the paper's hardware-im2col baseline.
//!
//! Sauria feeds each array column through a dedicated data feeder built
//! from window/address counters, feed registers and a small FIFO. The
//! paper reports that this feeder network costs ~4% of the array area at
//! 16x16, versus 0.2% for Axon's per-feeder 2-to-1 MUX.

use crate::components::{BlockCost, ComponentLibrary};

/// Number of each feeder building block per array column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SauriaFeederConfig {
    /// Window/address counters per column feeder.
    pub counters: usize,
    /// Feed registers per column feeder.
    pub feed_registers: usize,
    /// FIFOs per column feeder.
    pub fifos: usize,
}

impl Default for SauriaFeederConfig {
    fn default() -> Self {
        // Two counters (window x, window y), a 4-stage feed pipeline and
        // one reorder FIFO — sized so the 16x16 feeder network lands in
        // the ~4% area band the paper quotes for [15].
        Self {
            counters: 2,
            feed_registers: 4,
            fifos: 1,
        }
    }
}

impl SauriaFeederConfig {
    /// Cost of one column feeder.
    pub fn column_cost(&self, lib: &ComponentLibrary) -> BlockCost {
        lib.counter.times(self.counters as f64)
            + lib.feed_register.times(self.feed_registers as f64)
            + lib.fifo8x16.times(self.fifos as f64)
    }

    /// Cost of the whole feeder network for an array with `cols` columns.
    pub fn network_cost(&self, lib: &ComponentLibrary, cols: usize) -> BlockCost {
        self.column_cost(lib).times(cols as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feeder_network_is_about_4pct_at_16x16() {
        let lib = ComponentLibrary::calibrated_7nm();
        let cfg = SauriaFeederConfig::default();
        let network = cfg.network_cost(&lib, 16);
        let array_area = lib.conventional_pe().area_um2 * 256.0;
        let pct = 100.0 * network.area_um2 / array_area;
        assert!((3.0..5.0).contains(&pct), "feeder {pct}% of array");
    }

    #[test]
    fn feeder_scales_linearly_with_columns() {
        let lib = ComponentLibrary::calibrated_7nm();
        let cfg = SauriaFeederConfig::default();
        let one = cfg.network_cost(&lib, 1);
        let many = cfg.network_cost(&lib, 64);
        assert!((many.area_um2 - 64.0 * one.area_um2).abs() < 1e-9);
    }
}

//! Component library: per-block area (um^2) and power (mW) at the 7 nm
//! reference node.
//!
//! Constants are **calibrated** so that the rolled-up 16x16 FP16 OS array
//! reproduces the paper's Fig. 10 post-PnR numbers exactly:
//!
//! * conventional SA: 0.9992 mm^2, 59.88 mW;
//! * Axon (buffer sharing at the diagonal minus the bidirectional
//!   interconnect): 0.9931 mm^2;
//! * Axon + im2col MUXes: 0.9951 mm^2 (+0.2% over Axon), 59.98 mW.
//!
//! The split between MAC / buffers / control within a PE follows typical
//! FP16 MAC-dominated budgets (FPnew-derived datapaths); only the *totals*
//! are pinned by the paper.

/// Area/power of one library block at 7 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Silicon area in square micrometres.
    pub area_um2: f64,
    /// Average power in milliwatts at the reference activity and clock.
    pub power_mw: f64,
}

impl BlockCost {
    /// A zero-cost placeholder.
    pub const ZERO: BlockCost = BlockCost {
        area_um2: 0.0,
        power_mw: 0.0,
    };

    /// Creates a block cost.
    pub fn new(area_um2: f64, power_mw: f64) -> Self {
        Self { area_um2, power_mw }
    }

    /// Scales both metrics by a count.
    pub fn times(self, count: f64) -> Self {
        Self {
            area_um2: self.area_um2 * count,
            power_mw: self.power_mw * count,
        }
    }
}

impl std::ops::Add for BlockCost {
    type Output = BlockCost;

    fn add(self, rhs: BlockCost) -> BlockCost {
        BlockCost {
            area_um2: self.area_um2 + rhs.area_um2,
            power_mw: self.power_mw + rhs.power_mw,
        }
    }
}

impl std::ops::AddAssign for BlockCost {
    fn add_assign(&mut self, rhs: BlockCost) {
        *self = *self + rhs;
    }
}

/// The component library (7 nm reference values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentLibrary {
    /// Simplified FPnew-derived FP16 multiply-accumulate unit.
    pub fp16_mac: BlockCost,
    /// One 16-bit operand buffer (input or weight) inside a PE.
    pub operand_buffer: BlockCost,
    /// 16-bit accumulator / psum register.
    pub accumulator: BlockCost,
    /// Per-PE control (dataflow select, gating).
    pub pe_control: BlockCost,
    /// Extra wiring for Axon's bidirectional propagation at a feeder PE.
    pub bidir_interconnect: BlockCost,
    /// One 16-bit 2-to-1 MUX (Axon's im2col support; also used in the
    /// unified PE).
    pub mux2_16b: BlockCost,
    /// A 16-bit feed register (Sauria-style feeder building block).
    pub feed_register: BlockCost,
    /// A small address/window counter (Sauria-style feeder).
    pub counter: BlockCost,
    /// An 8-deep 16-bit FIFO (Sauria-style feeder).
    pub fifo8x16: BlockCost,
}

impl ComponentLibrary {
    /// The calibrated 7 nm library (see module docs for the anchors).
    pub fn calibrated_7nm() -> Self {
        // 16x16 SA: 256 PEs * pe_total = 999_200 um^2, 59.88 mW
        // => pe_total = 3903.125 um^2, 0.2339 mW.
        Self {
            fp16_mac: BlockCost::new(2200.0, 0.1400),
            operand_buffer: BlockCost::new(550.0, 0.0300),
            accumulator: BlockCost::new(350.0, 0.0200),
            pe_control: BlockCost::new(253.125, 0.013_906_25),
            // Axon: 16 feeder PEs each share one input and one weight
            // buffer with their mirror neighbours (-2 * 550 um^2) but add
            // the bidirectional interconnect; net -381.25 um^2 per feeder
            // PE so that the 16x16 array lands on 0.9931 mm^2.
            bidir_interconnect: BlockCost::new(718.75, 0.004_25),
            // +125 um^2 * 16 = +0.0020 mm^2 (0.9931 -> 0.9951 mm^2);
            // power picked so Axon+im2col totals 59.98 mW.
            mux2_16b: BlockCost::new(125.0, 0.002_0),
            // Sauria-style feeder blocks: registers/counters/FIFO toggling
            // every cycle. Sized so the 16x16 feeder network costs ~4% of
            // the array area (the paper's quote for [15]) and the
            // size-sweep averages land near the paper's 3.93%-area /
            // 4.5%-power Axon advantage (Fig. 15).
            feed_register: BlockCost::new(150.0, 0.025_0),
            counter: BlockCost::new(350.0, 0.030_0),
            fifo8x16: BlockCost::new(1450.0, 0.060_0),
        }
    }

    /// Cost of one conventional PE (MAC + two operand buffers +
    /// accumulator + control).
    pub fn conventional_pe(&self) -> BlockCost {
        self.fp16_mac + self.operand_buffer.times(2.0) + self.accumulator + self.pe_control
    }
}

impl Default for ComponentLibrary {
    fn default() -> Self {
        Self::calibrated_7nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_total_hits_calibration_anchor() {
        let lib = ComponentLibrary::calibrated_7nm();
        let pe = lib.conventional_pe();
        // 256 PEs -> 0.9992 mm^2 and 59.88 mW.
        assert!((pe.area_um2 * 256.0 - 999_200.0).abs() < 1.0);
        assert!((pe.power_mw * 256.0 - 59.88).abs() < 0.01);
    }

    #[test]
    fn block_cost_arithmetic() {
        let a = BlockCost::new(10.0, 1.0);
        let b = BlockCost::new(5.0, 0.5);
        let c = a + b.times(2.0);
        assert!((c.area_um2 - 20.0).abs() < 1e-12);
        assert!((c.power_mw - 2.0).abs() < 1e-12);
        let mut d = BlockCost::ZERO;
        d += a;
        assert_eq!(d, a);
    }

    #[test]
    fn mac_dominates_pe_area() {
        let lib = ComponentLibrary::calibrated_7nm();
        let pe = lib.conventional_pe();
        assert!(lib.fp16_mac.area_um2 / pe.area_um2 > 0.4);
    }
}

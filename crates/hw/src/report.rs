//! Report helpers: the Fig. 10 implementation-spec table and the Fig. 15
//! area/power sweeps.

use crate::array_cost::{estimate_array_cost, ArrayCost, ArrayDesign};
use crate::components::ComponentLibrary;
use crate::node::TechNode;
use axon_core::ArrayShape;
use std::fmt;

/// The implemented-configuration summary of the paper's Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplementationSpecs {
    /// Array shape (16x16 in the paper).
    pub array: ArrayShape,
    /// Datapath description.
    pub datapath: &'static str,
    /// Dataflow used for the hardware build.
    pub dataflow: &'static str,
    /// Technology node.
    pub node: TechNode,
    /// Conventional-SA cost for reference.
    pub sa: ArrayCost,
    /// Axon without im2col.
    pub axon: ArrayCost,
    /// Axon with im2col MUXes (the implemented design).
    pub axon_im2col: ArrayCost,
}

impl ImplementationSpecs {
    /// Builds the paper's implemented configuration: a 16x16 FP16 OS
    /// array with im2col support and zero gating at ASAP 7 nm.
    pub fn paper_configuration(lib: &ComponentLibrary) -> Self {
        let array = ArrayShape::square(16);
        let node = TechNode::asap7();
        Self {
            array,
            datapath: "FP16 MAC (simplified FPnew)",
            dataflow: "OS",
            node,
            sa: estimate_array_cost(ArrayDesign::Conventional, array, node, lib),
            axon: estimate_array_cost(
                ArrayDesign::Axon {
                    im2col: false,
                    unified_pe: false,
                },
                array,
                node,
                lib,
            ),
            axon_im2col: estimate_array_cost(
                ArrayDesign::Axon {
                    im2col: true,
                    unified_pe: false,
                },
                array,
                node,
                lib,
            ),
        }
    }

    /// Area overhead of im2col support over the plain Axon array, percent.
    pub fn im2col_area_overhead_pct(&self) -> f64 {
        100.0 * (self.axon_im2col.area_mm2 - self.axon.area_mm2) / self.axon.area_mm2
    }

    /// Power overhead of the implemented design over the conventional SA,
    /// in percent of absolute milliwatts.
    pub fn power_overhead_pct(&self) -> f64 {
        100.0 * (self.axon_im2col.power_mw - self.sa.power_mw) / self.sa.power_mw
    }
}

impl fmt::Display for ImplementationSpecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Array          : {} {}", self.array, self.dataflow)?;
        writeln!(f, "Datapath       : {}", self.datapath)?;
        writeln!(f, "Node           : {}", self.node)?;
        writeln!(f, "SA             : {}", self.sa)?;
        writeln!(f, "Axon           : {}", self.axon)?;
        writeln!(f, "Axon + im2col  : {}", self.axon_im2col)?;
        writeln!(
            f,
            "im2col overhead: {:.2}% area, {:.2}% power",
            self.im2col_area_overhead_pct(),
            self.power_overhead_pct()
        )
    }
}

/// One row of the Fig. 15 sweep: a design costed at a shape and node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Square array side.
    pub side: usize,
    /// Axon + im2col cost.
    pub axon: ArrayCost,
    /// Sauria-style cost.
    pub sauria: ArrayCost,
}

impl SweepPoint {
    /// Axon's area advantage over Sauria in percent.
    pub fn area_advantage_pct(&self) -> f64 {
        100.0 * (self.sauria.area_mm2 - self.axon.area_mm2) / self.sauria.area_mm2
    }

    /// Axon's power advantage over Sauria in percent.
    pub fn power_advantage_pct(&self) -> f64 {
        100.0 * (self.sauria.power_mw - self.axon.power_mw) / self.sauria.power_mw
    }
}

/// Sweeps square array sizes at one node, comparing Axon + im2col against
/// the Sauria-style feeder (the paper's Fig. 15a/b series).
pub fn sweep_vs_sauria(node: TechNode, sides: &[usize], lib: &ComponentLibrary) -> Vec<SweepPoint> {
    sides
        .iter()
        .map(|&side| {
            let shape = ArrayShape::square(side);
            SweepPoint {
                side,
                axon: estimate_array_cost(
                    ArrayDesign::Axon {
                        im2col: true,
                        unified_pe: false,
                    },
                    shape,
                    node,
                    lib,
                ),
                sauria: estimate_array_cost(ArrayDesign::SauriaStyle, shape, node, lib),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_overheads() {
        let lib = ComponentLibrary::calibrated_7nm();
        let spec = ImplementationSpecs::paper_configuration(&lib);
        assert!((spec.im2col_area_overhead_pct() - 0.2).abs() < 0.05);
        // Paper reports +0.10 mW (59.88 -> 59.98).
        assert!((spec.axon_im2col.power_mw - spec.sa.power_mw - 0.10).abs() < 0.01);
    }

    #[test]
    fn sweep_advantage_shrinks_with_size() {
        // The Sauria feeder grows with C while the array grows with R*C,
        // so Axon's relative advantage is largest for small arrays.
        let lib = ComponentLibrary::calibrated_7nm();
        let pts = sweep_vs_sauria(TechNode::asap7(), &[8, 16, 32, 64, 128], &lib);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].area_advantage_pct() > w[1].area_advantage_pct());
        }
        // Average advantage lands in the paper's few-percent band.
        let avg: f64 =
            pts.iter().map(SweepPoint::area_advantage_pct).sum::<f64>() / pts.len() as f64;
        assert!((1.0..6.0).contains(&avg), "avg advantage {avg}%");
    }

    #[test]
    fn display_formats() {
        let lib = ComponentLibrary::calibrated_7nm();
        let spec = ImplementationSpecs::paper_configuration(&lib);
        let s = spec.to_string();
        assert!(s.contains("16x16"));
        assert!(s.contains("FP16"));
    }
}

//! Criterion benchmarks of the im2col substrate: software lowering, the
//! on-chip feeder schedule, and the traffic closed forms.

use axon_im2col::{
    im2col, layer_dram_traffic, onchip_ifmap_loads, simulate_feeder_group, ConvLayer,
    DramTrafficModel, Tensor3,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_software_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col_software");
    for (label, layer) in [
        ("3x3_s1_32ch_28", ConvLayer::new(32, 32, 28, 28, 3, 1, 1)),
        ("1x1_64ch_28", ConvLayer::new(64, 64, 28, 28, 1, 1, 0)),
        ("5x5_s1_16ch_28", ConvLayer::new(16, 16, 28, 28, 5, 1, 2)),
    ] {
        let ifmap = Tensor3::from_fn(
            layer.in_channels,
            layer.ifmap_h,
            layer.ifmap_w,
            |c, y, x| (c + y + x) as f32,
        );
        group.bench_function(label, |bench| {
            bench.iter(|| im2col(black_box(&layer), black_box(&ifmap)).expect("valid"))
        });
    }
    group.finish();
}

fn bench_feeder_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col_feeder");
    let layer = ConvLayer::new(16, 1, 34, 34, 3, 1, 0);
    let ifmap = Tensor3::from_fn(16, 34, 34, |ch, y, x| (ch + y + x) as f32);
    for chain in [4usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("chain", chain), &chain, |bench, &g| {
            bench.iter(|| {
                simulate_feeder_group(black_box(&layer), black_box(&ifmap), 0, 0, g)
                    .expect("valid group")
            })
        });
    }
    group.finish();
}

fn bench_traffic_closed_forms(c: &mut Criterion) {
    let layer = ConvLayer::new(256, 256, 14, 14, 3, 1, 1);
    c.bench_function("traffic_closed_form", |bench| {
        bench.iter(|| {
            let loads = onchip_ifmap_loads(black_box(&layer), 16);
            let t = layer_dram_traffic(black_box(&layer), DramTrafficModel::default());
            (loads, t)
        })
    });
}

criterion_group!(
    benches,
    bench_software_lowering,
    bench_feeder_schedule,
    bench_traffic_closed_forms
);
criterion_main!(benches);

//! Criterion benchmarks of the cycle-accurate tile engines: conventional
//! vs Axon, all three dataflows, across array sizes.
//!
//! These measure *simulator throughput* (host time per simulated GEMM),
//! and double as a regression harness: the simulated cycle counts are
//! asserted against the analytical model inside each iteration setup.

use axon_core::runtime::{Accounting, Architecture, DrainPolicy, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow, GemmShape};
use axon_sim::{random_matrix, simulate_gemm, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_gemm");
    for side in [8usize, 16, 32] {
        let g = GemmShape::new(2 * side, side, 2 * side);
        let a = random_matrix(g.m, g.k, 1, 0.0);
        let b = random_matrix(g.k, g.n, 2, 0.0);
        let array = ArrayShape::square(side);
        for arch in [Architecture::Conventional, Architecture::Axon] {
            // Sanity: the simulated cycles must match the model before we
            // bother timing anything.
            let cfg = SimConfig::new(array);
            let sim = simulate_gemm(arch, &cfg, &a, &b).expect("valid operands");
            let model = RuntimeSpec::new(array, Dataflow::Os)
                .with_accounting(Accounting::ExactEdges)
                .with_drain(DrainPolicy::PerTile)
                .runtime(arch, g);
            assert_eq!(sim.stats.cycles, model.cycles);

            group.bench_with_input(
                BenchmarkId::new(format!("{arch}"), side),
                &side,
                |bench, _| {
                    bench.iter(|| {
                        simulate_gemm(arch, black_box(&cfg), black_box(&a), black_box(&b))
                            .expect("valid operands")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_dataflows(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflows_axon_16x16");
    let g = GemmShape::new(32, 16, 32);
    let a = random_matrix(g.m, g.k, 3, 0.0);
    let b = random_matrix(g.k, g.n, 4, 0.0);
    let array = ArrayShape::square(16);
    for df in Dataflow::ALL {
        let cfg = SimConfig::new(array).with_dataflow(df);
        group.bench_function(df.name(), |bench| {
            bench.iter(|| {
                simulate_gemm(Architecture::Axon, black_box(&cfg), &a, &b).expect("valid operands")
            })
        });
    }
    group.finish();
}

fn bench_zero_gating_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_gating");
    let a = random_matrix(32, 32, 5, 0.3);
    let b = random_matrix(32, 32, 6, 0.3);
    let array = ArrayShape::square(16);
    for gating in [false, true] {
        let cfg = SimConfig::new(array).with_zero_gating(gating);
        group.bench_function(if gating { "on" } else { "off" }, |bench| {
            bench.iter(|| {
                simulate_gemm(Architecture::Axon, black_box(&cfg), &a, &b).expect("valid operands")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_architectures,
    bench_dataflows,
    bench_zero_gating_overhead
);
criterion_main!(benches);

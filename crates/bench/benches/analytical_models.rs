//! Criterion benchmarks of the analytical models: full Table-3 sweeps of
//! the runtime, utilization and hardware-cost models — the kernels behind
//! every figure harness.

use axon_core::runtime::{Architecture, RuntimeSpec};
use axon_core::utilization::{utilization_improvement_pct, UtilArchitecture};
use axon_core::{ArrayShape, Dataflow};
use axon_hw::{estimate_array_cost, ArrayDesign, ComponentLibrary, TechNode};
use axon_workloads::{resnet50, table3, yolov3};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig12_sweep(c: &mut Criterion) {
    let ws = table3();
    c.bench_function("fig12_full_sweep", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f64;
            for side in [16usize, 64, 256] {
                for w in &ws {
                    let df = Dataflow::min_temporal(w.shape);
                    let spec = RuntimeSpec::new(ArrayShape::square(side), df);
                    let sa = spec.runtime(Architecture::Conventional, w.shape);
                    let ax = spec.runtime(Architecture::Axon, w.shape);
                    acc += sa.cycles as f64 / ax.cycles as f64;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_fig13_sweep(c: &mut Criterion) {
    let ws = table3();
    let array = ArrayShape::square(128);
    c.bench_function("fig13_utilization_sweep", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f64;
            for w in &ws {
                acc += utilization_improvement_pct(
                    UtilArchitecture::Axon,
                    array,
                    Dataflow::Os,
                    w.shape,
                );
            }
            black_box(acc)
        })
    });
}

fn bench_network_traffic(c: &mut Criterion) {
    let nets = [resnet50(), yolov3()];
    c.bench_function("dram_traffic_resnet_yolo", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for net in &nets {
                let t = net.dram_traffic(axon_im2col::DramTrafficModel::default());
                total += t.onchip_total();
            }
            black_box(total)
        })
    });
}

fn bench_hw_cost(c: &mut Criterion) {
    let lib = ComponentLibrary::calibrated_7nm();
    c.bench_function("fig15_cost_sweep", |bench| {
        bench.iter(|| {
            let mut acc = 0.0f64;
            for side in [8usize, 16, 32, 64, 128] {
                for design in [
                    ArrayDesign::Conventional,
                    ArrayDesign::Axon {
                        im2col: true,
                        unified_pe: false,
                    },
                    ArrayDesign::SauriaStyle,
                ] {
                    let cost = estimate_array_cost(
                        design,
                        ArrayShape::square(side),
                        TechNode::asap7(),
                        &lib,
                    );
                    acc += cost.area_mm2;
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_fig12_sweep,
    bench_fig13_sweep,
    bench_network_traffic,
    bench_hw_cost
);
criterion_main!(benches);

//! Simulator self-benchmark: the perf trajectory behind `BENCH_*.json`
//! and the CI regression gate (the `perf_baseline` binary).
//!
//! The subject under test is the *event engine itself*, not the
//! modeled hardware: a pinned smoke scenario (shared-DRAM Axon pod,
//! continuous batching, tile-boundary preemption — every hot path the
//! engine has) runs with an [`axon_serve::SimProfile`] sink attached,
//! and the headline number is **requests simulated per wall-clock
//! second**. Alongside it ride the deterministic workload counters
//! (events, dispatches, retime passes, jobs touched per retime) that
//! explain *why* the wall clock moved: a slowdown with identical
//! counters is an engine regression; a slowdown with more retime work
//! is a model change.
//!
//! The schema (`axon-perf-v1`) is documented in
//! `docs/observability.md`. The committed trajectory lives in
//! `BENCH_<n>.json` files at the repo root, one per growth PR that
//! re-baselines; [`find_baseline`] picks the highest index and
//! [`regression_vs`] gates on >20% throughput loss against it.

use crate::series::Json;
use crate::sweep::run_sweep_parallel;
use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod_traced, MemoryModel, PodConfig, PreemptionMode, SchedulerPolicy, SimProfile,
    TrafficConfig, WorkloadMix,
};
use std::path::{Path, PathBuf};

/// Schema tag written into every perf JSON.
pub const PERF_SCHEMA: &str = "axon-perf-v1";

/// This PR's index in the `BENCH_<n>.json` trajectory.
pub const BENCH_INDEX: u64 = 10;

/// The first trajectory index whose committed JSON must carry the
/// dispatch-planner counters (`plan_cache_hits` / `plan_cache_misses` /
/// `plan_grids_scored`). Earlier files predate the plan cache and parse
/// with the counters defaulted to zero.
pub const PLANNER_FIELDS_SINCE: u64 = 9;

/// The first trajectory index whose committed JSON must carry the
/// admission counters (`requests_admitted` / `requests_shed`). Earlier
/// files predate admission control and parse with the counters
/// defaulted to zero.
pub const SHED_FIELDS_SINCE: u64 = 10;

/// The regression gate: fail when throughput drops below
/// `1 - MAX_SLOWDOWN` of the committed baseline.
pub const MAX_SLOWDOWN: f64 = 0.20;

/// The pinned benchmark seed (never change it: the trajectory is only
/// comparable across PRs because the workload is frozen).
pub const PERF_SEED: u64 = 7027;

/// The pinned smoke pod: 4 Axon 32x32 arrays over 2 shared DRAM
/// channels (so retime passes fire), continuous batching (in-flight
/// joins) and tile-boundary preemption — the engine's full feature
/// surface in one configuration.
pub fn perf_pod() -> PodConfig {
    PodConfig::homogeneous(4, Architecture::Axon, 32)
        .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
        .with_memory(MemoryModel::Shared { channels: 2 })
        .with_preemption(PreemptionMode::TileBoundary)
}

/// The pinned traffic: `requests` decode-heavy arrivals at a rate that
/// keeps the pod saturated enough to batch, preempt and stall.
pub fn perf_traffic(requests: usize) -> TrafficConfig {
    TrafficConfig::open_loop(PERF_SEED, requests, 900.0)
        .with_mix(WorkloadMix::new(vec![
            (axon_serve::RequestClass::Decode, 0.80),
            (axon_serve::RequestClass::Prefill, 0.15),
            (axon_serve::RequestClass::Gemv, 0.05),
        ]))
        .with_clients(16)
}

/// One measured point of the perf trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Schema tag ([`PERF_SCHEMA`]).
    pub schema: String,
    /// Which `BENCH_<n>` entry produced the measurement.
    pub bench_index: u64,
    /// Requests simulated per repetition.
    pub requests: u64,
    /// Wall-clock seconds of the best repetition.
    pub wall_s: f64,
    /// The headline: requests simulated per wall-second (best of
    /// [`measure`]'s repetitions).
    pub requests_per_wall_s: f64,
    /// Trace events the run emitted (deterministic).
    pub events: u64,
    /// Dispatches issued (deterministic).
    pub dispatches: u64,
    /// Shared-memory retime passes (deterministic).
    pub retime_passes: u64,
    /// Total jobs touched across retime passes (deterministic).
    pub retime_jobs_touched: u64,
    /// Mean jobs touched per retime pass.
    pub mean_jobs_per_retime: f64,
    /// Dispatch-plan cache hits (deterministic; BENCH_9+).
    pub plan_cache_hits: u64,
    /// Dispatch-plan cache misses — cold scoring passes (deterministic).
    pub plan_cache_misses: u64,
    /// Candidate grids scored across cold passes (deterministic).
    pub plan_grids_scored: u64,
    /// Requests admitted past admission control (deterministic;
    /// BENCH_10+).
    pub requests_admitted: u64,
    /// Requests shed by admission control (deterministic; BENCH_10+ —
    /// zero for the pinned accept-all scenario, pinned so drift is
    /// visible).
    pub requests_shed: u64,
    /// Timed repetitions behind the best-of pick.
    pub reps: u64,
}

impl PerfReport {
    /// Serializes to the `axon-perf-v1` JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(self.schema.clone())),
            ("bench_index", Json::num(self.bench_index as f64)),
            ("requests", Json::num(self.requests as f64)),
            ("wall_s", Json::num(self.wall_s)),
            ("requests_per_wall_s", Json::num(self.requests_per_wall_s)),
            ("events", Json::num(self.events as f64)),
            ("dispatches", Json::num(self.dispatches as f64)),
            ("retime_passes", Json::num(self.retime_passes as f64)),
            (
                "retime_jobs_touched",
                Json::num(self.retime_jobs_touched as f64),
            ),
            ("mean_jobs_per_retime", Json::num(self.mean_jobs_per_retime)),
            ("plan_cache_hits", Json::num(self.plan_cache_hits as f64)),
            (
                "plan_cache_misses",
                Json::num(self.plan_cache_misses as f64),
            ),
            (
                "plan_grids_scored",
                Json::num(self.plan_grids_scored as f64),
            ),
            (
                "requests_admitted",
                Json::num(self.requests_admitted as f64),
            ),
            ("requests_shed", Json::num(self.requests_shed as f64)),
            ("reps", Json::num(self.reps as f64)),
        ])
    }

    /// Parses an `axon-perf-v1` JSON object.
    ///
    /// The planner counters joined the schema at
    /// [`PLANNER_FIELDS_SINCE`]: entries from that index on must carry
    /// them, while the older committed trajectory files still parse
    /// (counters default to zero).
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, a wrong `schema` tag, missing fields, a
    /// `BENCH_{PLANNER_FIELDS_SINCE}`+ entry without the planner
    /// counters, or a `BENCH_{SHED_FIELDS_SINCE}`+ entry without the
    /// admission counters.
    pub fn from_json_str(text: &str) -> Result<PerfReport, String> {
        let j = Json::parse(text)?;
        let schema = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema`")?;
        if schema != PERF_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (want {PERF_SCHEMA})"
            ));
        }
        let num = |key: &str| -> Result<f64, String> {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing numeric `{key}`"))
        };
        let bench_index = num("bench_index")? as u64;
        let since = |key: &str, floor: u64| -> Result<u64, String> {
            match j.get(key).and_then(Json::as_f64) {
                Some(v) => Ok(v as u64),
                None if bench_index < floor => Ok(0),
                None => Err(format!(
                    "BENCH_{bench_index} must carry `{key}` \
                     (required since BENCH_{floor})"
                )),
            }
        };
        let planner = |key: &str| since(key, PLANNER_FIELDS_SINCE);
        Ok(PerfReport {
            schema: schema.to_string(),
            bench_index,
            requests: num("requests")? as u64,
            wall_s: num("wall_s")?,
            requests_per_wall_s: num("requests_per_wall_s")?,
            events: num("events")? as u64,
            dispatches: num("dispatches")? as u64,
            retime_passes: num("retime_passes")? as u64,
            retime_jobs_touched: num("retime_jobs_touched")? as u64,
            mean_jobs_per_retime: num("mean_jobs_per_retime")?,
            plan_cache_hits: planner("plan_cache_hits")?,
            plan_cache_misses: planner("plan_cache_misses")?,
            plan_grids_scored: planner("plan_grids_scored")?,
            requests_admitted: since("requests_admitted", SHED_FIELDS_SINCE)?,
            requests_shed: since("requests_shed", SHED_FIELDS_SINCE)?,
            reps: num("reps")? as u64,
        })
    }
}

/// Runs the pinned scenario `reps` times serially and reports the
/// *best* repetition's wall clock (the standard defense against
/// scheduler noise on shared CI runners). The simulated results must be
/// bit-identical across repetitions — asserted here — so the
/// deterministic counters come from the first repetition.
pub fn measure(requests: usize, reps: usize) -> PerfReport {
    measure_with(requests, reps, false)
}

/// [`measure`], but with the repetitions fanned out over threads via
/// [`run_sweep_parallel`] — the full-mode path, where five 1200-request
/// reps dominate the binary's wall clock. Best-of-N semantics are
/// independent of thread timing: the runner returns results in input
/// order, the pick below folds over that order with a strict `<` (so
/// ties resolve to the earliest repetition no matter which thread
/// finished first), and every deterministic field comes from repetition
/// 0 after all repetitions are asserted bit-identical. Concurrency can
/// only shift the *measured wall clocks* themselves — exactly the noise
/// the best-of-N pick exists to absorb.
pub fn measure_parallel(requests: usize, reps: usize) -> PerfReport {
    measure_with(requests, reps, true)
}

fn measure_with(requests: usize, reps: usize, parallel: bool) -> PerfReport {
    assert!(reps >= 1, "need at least one repetition");
    let pod = perf_pod();
    let traffic = perf_traffic(requests);
    let run_one = |_: &usize| {
        let mut profile = SimProfile::new();
        let report = simulate_pod_traced(&pod, &traffic, &mut profile);
        let p = profile.finish();
        (report, p)
    };
    let idx: Vec<usize> = (0..reps).collect();
    let runs = if parallel {
        run_sweep_parallel(&idx, run_one)
    } else {
        idx.iter().map(run_one).collect()
    };
    let (report, p) = &runs[0];
    let mut best = (p.wall_s, p.requests_per_wall_s);
    for (i, (r, q)) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            report, r,
            "perf scenario must be deterministic across repetitions (rep {i})"
        );
        if q.wall_s < best.0 {
            best = (q.wall_s, q.requests_per_wall_s);
        }
    }
    let (wall_s, requests_per_wall_s) = best;
    PerfReport {
        schema: PERF_SCHEMA.to_string(),
        bench_index: BENCH_INDEX,
        requests: report.metrics.completed as u64,
        wall_s,
        requests_per_wall_s,
        events: p.events,
        dispatches: p.dispatches,
        retime_passes: p.retime_passes,
        retime_jobs_touched: p.retime_jobs_touched,
        mean_jobs_per_retime: p.mean_jobs_per_retime,
        plan_cache_hits: p.plan_cache_hits,
        plan_cache_misses: p.plan_cache_misses,
        plan_grids_scored: p.plan_grids_scored,
        requests_admitted: p.requests_admitted,
        requests_shed: p.requests_shed,
        reps: reps as u64,
    }
}

/// One-line trajectory delta against the committed baseline, e.g.
/// `+212.4% vs BENCH_7 (964.8 -> 3012.2 req/wall-s; plan cache 178/19
/// hit/miss, 118 grids scored)` — the summary the `perf_baseline`
/// binary prints so a PR's perf movement (and the plan cache's share
/// of it) is visible in one grep-able line.
pub fn delta_line(current: &PerfReport, baseline: &PerfReport) -> String {
    let pct = (current.requests_per_wall_s / baseline.requests_per_wall_s - 1.0) * 100.0;
    format!(
        "{pct:+.1}% vs BENCH_{} ({:.1} -> {:.1} req/wall-s; \
         plan cache {}/{} hit/miss, {} grids scored)",
        baseline.bench_index,
        baseline.requests_per_wall_s,
        current.requests_per_wall_s,
        current.plan_cache_hits,
        current.plan_cache_misses,
        current.plan_grids_scored
    )
}

/// Gates `current` against `baseline`: an `Err` means the throughput
/// regressed more than [`MAX_SLOWDOWN`]; `Ok` carries informational
/// warnings (counter drift is expected when the engine's *model*
/// changes between PRs, and only worth a look — wall-clock noise is
/// what the 20% margin absorbs).
///
/// # Errors
///
/// Returns the regression description when throughput falls below
/// `1 - MAX_SLOWDOWN` of the baseline.
pub fn regression_vs(current: &PerfReport, baseline: &PerfReport) -> Result<Vec<String>, String> {
    let floor = baseline.requests_per_wall_s * (1.0 - MAX_SLOWDOWN);
    if current.requests_per_wall_s < floor {
        return Err(format!(
            "throughput regression: {:.0} req/s vs baseline {:.0} req/s \
             (floor {:.0}, BENCH_{} -> BENCH_{})",
            current.requests_per_wall_s,
            baseline.requests_per_wall_s,
            floor,
            baseline.bench_index,
            current.bench_index
        ));
    }
    let mut warnings = Vec::new();
    if current.requests != baseline.requests {
        warnings.push(format!(
            "request count changed: {} -> {} (different smoke size?)",
            baseline.requests, current.requests
        ));
    }
    for (name, b, c) in [
        ("events", baseline.events, current.events),
        ("dispatches", baseline.dispatches, current.dispatches),
        (
            "retime_passes",
            baseline.retime_passes,
            current.retime_passes,
        ),
    ] {
        if b != c {
            warnings.push(format!("{name} drifted: {b} -> {c} (model change?)"));
        }
    }
    Ok(warnings)
}

/// Finds the committed baseline: the `BENCH_<n>.json` with the highest
/// `n` in `dir` that parses as `axon-perf-v1` (earlier growth PRs
/// committed none, so `None` is a normal first-run answer).
pub fn find_baseline(dir: &Path) -> Option<(PathBuf, PerfReport)> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        let Some(idx) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("BENCH_"))
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|&(b, _)| idx > b) {
            best = Some((idx, path));
        }
    }
    let (_, path) = best?;
    let text = std::fs::read_to_string(&path).ok()?;
    let report = PerfReport::from_json_str(&text).ok()?;
    Some((path, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rps: f64) -> PerfReport {
        PerfReport {
            schema: PERF_SCHEMA.to_string(),
            bench_index: BENCH_INDEX,
            requests: 100,
            wall_s: 0.5,
            requests_per_wall_s: rps,
            events: 1000,
            dispatches: 40,
            retime_passes: 30,
            retime_jobs_touched: 90,
            mean_jobs_per_retime: 3.0,
            plan_cache_hits: 25,
            plan_cache_misses: 15,
            plan_grids_scored: 60,
            requests_admitted: 100,
            requests_shed: 0,
            reps: 3,
        }
    }

    #[test]
    fn perf_json_round_trips() {
        let r = report(1234.5);
        let parsed = PerfReport::from_json_str(&r.to_json().to_string()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn planner_counters_are_optional_only_before_bench_9() {
        // An old-trajectory entry without the counters still parses…
        let mut old = report(500.0);
        old.bench_index = PLANNER_FIELDS_SINCE - 1;
        let mut json = old.to_json().to_string();
        for key in ["plan_cache_hits", "plan_cache_misses", "plan_grids_scored"] {
            json = json.replace(&format!("\"{key}\":"), &format!("\"x_{key}\":"));
        }
        let parsed = PerfReport::from_json_str(&json).unwrap();
        assert_eq!(parsed.plan_cache_hits, 0);
        assert_eq!(parsed.plan_grids_scored, 0);
        // …but the same omission on a BENCH_9+ entry is rejected.
        let mut new = report(500.0);
        new.bench_index = PLANNER_FIELDS_SINCE;
        let mut json = new.to_json().to_string();
        json = json.replace("\"plan_cache_hits\":", "\"x_plan_cache_hits\":");
        let err = PerfReport::from_json_str(&json).unwrap_err();
        assert!(err.contains("plan_cache_hits"), "{err}");
    }

    #[test]
    fn shed_counters_are_optional_only_before_bench_10() {
        // A pre-admission-control entry without the counters parses…
        let mut old = report(500.0);
        old.bench_index = SHED_FIELDS_SINCE - 1;
        let mut json = old.to_json().to_string();
        for key in ["requests_admitted", "requests_shed"] {
            json = json.replace(&format!("\"{key}\":"), &format!("\"x_{key}\":"));
        }
        let parsed = PerfReport::from_json_str(&json).unwrap();
        assert_eq!(parsed.requests_admitted, 0);
        assert_eq!(parsed.requests_shed, 0);
        // …but the same omission on a BENCH_10+ entry is rejected.
        let mut new = report(500.0);
        new.bench_index = SHED_FIELDS_SINCE;
        let json = new
            .to_json()
            .to_string()
            .replace("\"requests_shed\":", "\"x_requests_shed\":");
        let err = PerfReport::from_json_str(&json).unwrap_err();
        assert!(err.contains("requests_shed"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut bad = report(1.0);
        bad.schema = "axon-perf-v0".to_string();
        let err = PerfReport::from_json_str(&bad.to_json().to_string()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn gate_fails_only_past_the_margin() {
        let base = report(1000.0);
        // 19% slower: inside the margin, warnings only.
        assert!(regression_vs(&report(810.0), &base).is_ok());
        // 21% slower: regression.
        let err = regression_vs(&report(790.0), &base).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        // Counter drift warns but does not fail.
        let mut drifted = report(1000.0);
        drifted.events = 999;
        let warnings = regression_vs(&drifted, &base).unwrap();
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn measure_is_deterministic_and_counts_work() {
        let a = measure(40, 1);
        let b = measure(40, 2);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.events, b.events);
        assert_eq!(a.dispatches, b.dispatches);
        assert_eq!(a.retime_passes, b.retime_passes);
        assert!(a.events > 0 && a.dispatches > 0);
        // The pinned scenario must exercise the shared-memory hot path.
        assert!(a.retime_passes > 0, "perf pod should retime");
        // …and the dispatch-planner counters are deterministic and
        // internally consistent: every cold pass scores at least its
        // 1x1 baseline (the saturated pinned pod plans rarely — hit
        // volume is a property of sharding-heavy sweeps, not asserted
        // here).
        assert_eq!(a.plan_cache_hits, b.plan_cache_hits);
        assert_eq!(a.plan_cache_misses, b.plan_cache_misses);
        assert_eq!(a.plan_grids_scored, b.plan_grids_scored);
        assert!(a.plan_grids_scored >= a.plan_cache_misses);
        // The pinned scenario is accept-all: everything that arrives
        // is admitted, nothing sheds.
        assert_eq!(a.requests_admitted, a.requests);
        assert_eq!(a.requests_shed, 0);
    }

    #[test]
    fn parallel_measure_reports_the_same_deterministic_fields() {
        let serial = measure(40, 2);
        let parallel = measure_parallel(40, 2);
        // Wall clocks differ run to run; every simulated field is
        // pinned.
        assert_eq!(serial.requests, parallel.requests);
        assert_eq!(serial.events, parallel.events);
        assert_eq!(serial.dispatches, parallel.dispatches);
        assert_eq!(serial.retime_passes, parallel.retime_passes);
        assert_eq!(serial.retime_jobs_touched, parallel.retime_jobs_touched);
        assert_eq!(serial.plan_cache_hits, parallel.plan_cache_hits);
        assert_eq!(serial.plan_cache_misses, parallel.plan_cache_misses);
        assert_eq!(serial.plan_grids_scored, parallel.plan_grids_scored);
    }

    #[test]
    fn delta_line_is_signed_and_names_the_baseline() {
        let base = report(1000.0);
        let up = delta_line(&report(3120.0), &base);
        assert!(up.starts_with("+212.0%"), "{up}");
        assert!(up.contains("vs BENCH_10"), "{up}");
        assert!(up.contains("plan cache 25/15 hit/miss"), "{up}");
        assert!(up.contains("60 grids scored"), "{up}");
        let down = delta_line(&report(900.0), &base);
        assert!(down.starts_with("-10.0%"), "{down}");
    }

    #[test]
    fn baseline_discovery_picks_highest_index() {
        let dir = std::env::temp_dir().join("axon_perf_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        report(100.0)
            .to_json()
            .write_to_file(&dir.join("BENCH_3.json"))
            .unwrap();
        let mut hi = report(200.0);
        hi.bench_index = 9;
        hi.to_json()
            .write_to_file(&dir.join("BENCH_9.json"))
            .unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        let (path, found) = find_baseline(&dir).unwrap();
        assert!(path.ends_with("BENCH_9.json"));
        assert_eq!(found.bench_index, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Overload sweep: goodput under admission control vs accept-all as
//! offered load climbs past pod capacity (the `overload_sweep` binary).
//!
//! The scenario fixes the pod and the traffic shape — the 4x 128x128
//! Axon pod and mixed SLO-class traffic of [`crate::policy`], under
//! FIFO — and sweeps the *overload factor*: offered load as a multiple
//! of [`BASE_RPS`], the load the accept-all pod saturates near. Each
//! factor compares three front doors on the bit-identical request
//! trace:
//!
//! * `accept-all` — every arrival queues; under overload the queue
//!   grows without bound, every request's queueing delay blows its
//!   deadline, and goodput (in-SLO completions per second) collapses;
//! * `queue-cap` — a bounded queue sheds arrivals past a depth cap,
//!   keeping queueing delay (and thus goodput) bounded;
//! * `deadline-infeasible` — sheds exactly the requests whose
//!   optimistic completion estimate already misses their deadline, the
//!   classic goodput-maximizing admission test.
//!
//! The binary asserts the headline inequality the admission layer
//! exists for: at **every** swept factor up to 2x, each admission
//! policy's goodput is at least accept-all's, and past saturation it
//! stays within [`COLLAPSE_TOLERANCE`] of its own 1x value (no
//! congestion collapse) while accept-all's falls off a cliff. The
//! semantics of the admission policies are documented in
//! `docs/traffic.md`.

use crate::policy::{policy_mix, policy_slo};
use crate::series::Json;
use crate::sweep::run_sweep_parallel;
use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, AdmissionPolicy, MappingPolicy, PodConfig, SchedulerPolicy, ServingReport,
    TrafficConfig,
};

/// Offered load at overload factor 1.0, requests per second: chosen at
/// the sweep pod's saturation knee (accept-all achieved throughput
/// stops tracking offered load just above it).
pub const BASE_RPS: f64 = 95_000.0;

/// How far below its own 1x goodput an admission policy may fall at
/// any factor past saturation: `goodput(f) >= (1 - tolerance) *
/// goodput(1.0)` for every swept `f > 1`. Accept-all fails this bound
/// by design — that is the collapse the admission layer removes.
pub const COLLAPSE_TOLERANCE: f64 = 0.30;

/// A named admission configuration the sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Sweep label (`accept-all`, `queue-cap`, `deadline-infeasible`).
    pub label: &'static str,
    /// The pod's front-door policy.
    pub admission: AdmissionPolicy,
}

/// The admission ladder the sweep walks.
pub fn overload_ladder() -> Vec<OverloadConfig> {
    vec![
        OverloadConfig {
            label: "accept-all",
            admission: AdmissionPolicy::AcceptAll,
        },
        OverloadConfig {
            label: "queue-cap",
            admission: AdmissionPolicy::QueueCap { max_depth: 16 },
        },
        OverloadConfig {
            label: "deadline-infeasible",
            admission: AdmissionPolicy::DeadlineInfeasible,
        },
    ]
}

/// The sweep pod: the policy-sweep pod under FIFO with `admission`
/// installed. FIFO is deliberate: it is the discipline the admission
/// outlook's wait model (`queued_work / arrays`) describes, and the
/// one where accept-all's unbounded queue visibly destroys goodput —
/// EDF already reorders doomed work out of the way, which is the
/// *scheduling* answer to overload ([`crate::policy`]); this sweep
/// measures the *admission* answer.
pub fn overload_pod(admission: AdmissionPolicy) -> PodConfig {
    PodConfig::homogeneous(4, Architecture::Axon, 128)
        .with_mapping(MappingPolicy::MinTemporal)
        .with_scheduler(SchedulerPolicy::Fifo)
        .with_admission(admission)
}

/// One measured operating point of an admission policy under overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPoint {
    /// Offered load as a multiple of [`BASE_RPS`].
    pub factor: f64,
    /// Offered load (requests per second of the arrival process).
    pub offered_rps: f64,
    /// Achieved throughput (completions over makespan).
    pub achieved_rps: f64,
    /// In-SLO completions over makespan — the headline.
    pub goodput_rps: f64,
    /// Requests admitted (equals completions: open loop).
    pub admitted: usize,
    /// Requests shed at the front door.
    pub shed: usize,
    /// In-SLO completions.
    pub slo_met: usize,
    /// Served-but-late completions.
    pub slo_violations: usize,
}

impl OverloadPoint {
    fn from_report(factor: f64, offered_rps: f64, r: &ServingReport) -> Self {
        let m = &r.metrics;
        OverloadPoint {
            factor,
            offered_rps,
            achieved_rps: m.throughput_rps(),
            goodput_rps: m.goodput_rps(),
            admitted: m.completed,
            shed: m.shed,
            slo_met: m.slo_met,
            slo_violations: m.slo_violations,
        }
    }
}

/// An admission policy's full overload curve.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadCurve {
    /// The swept admission configuration.
    pub config: OverloadConfig,
    /// Points in overload-factor order.
    pub points: Vec<OverloadPoint>,
}

impl OverloadCurve {
    /// The point at `factor`, if swept.
    pub fn at(&self, factor: f64) -> Option<&OverloadPoint> {
        self.points.iter().find(|p| p.factor == factor)
    }
}

/// Sweeps overload `factors` (multiples of [`BASE_RPS`]) through the
/// sweep pod under `config`. Every policy and factor reuses `seed`, so
/// all curves see the bit-identical request trace at each factor.
pub fn overload_sweep(
    config: OverloadConfig,
    factors: &[f64],
    requests: usize,
    seed: u64,
) -> OverloadCurve {
    let pod = overload_pod(config.admission);
    let points = run_sweep_parallel(factors, |&factor| {
        let rps = BASE_RPS * factor;
        let mean_interarrival = pod.clock_mhz * 1e6 / rps;
        let traffic = TrafficConfig::open_loop(seed, requests, mean_interarrival)
            .with_mix(policy_mix())
            .with_slo(policy_slo());
        let report = simulate_pod(&pod, &traffic);
        OverloadPoint::from_report(factor, rps, &report)
    });
    OverloadCurve { config, points }
}

/// Checks the headline inequality: at every factor, `admission`'s
/// goodput is at least `accept_all`'s. Both curves must cover the same
/// factors. Returns the violations as `(factor, admission_goodput,
/// accept_all_goodput)`.
pub fn goodput_regressions(
    admission: &OverloadCurve,
    accept_all: &OverloadCurve,
) -> Vec<(f64, f64, f64)> {
    admission
        .points
        .iter()
        .zip(&accept_all.points)
        .filter(|(a, b)| {
            debug_assert_eq!(a.factor, b.factor);
            a.goodput_rps < b.goodput_rps
        })
        .map(|(a, b)| (a.factor, a.goodput_rps, b.goodput_rps))
        .collect()
}

/// Checks the no-collapse bound: at every swept factor past 1.0, the
/// curve's goodput stays within [`COLLAPSE_TOLERANCE`] of its own 1.0
/// value. Returns the violations as `(factor, goodput, floor)`.
///
/// # Panics
///
/// The curve must include factor 1.0 — the bound is relative to it.
pub fn collapse_violations(curve: &OverloadCurve) -> Vec<(f64, f64, f64)> {
    let at_one = curve
        .at(1.0)
        .expect("overload sweep must include factor 1.0")
        .goodput_rps;
    let floor = at_one * (1.0 - COLLAPSE_TOLERANCE);
    curve
        .points
        .iter()
        .filter(|p| p.factor > 1.0 && p.goodput_rps < floor)
        .map(|p| (p.factor, p.goodput_rps, floor))
        .collect()
}

/// Machine-readable form of the sweep.
pub fn overload_to_json(curves: &[OverloadCurve]) -> Json {
    Json::obj([(
        "admission",
        Json::arr(curves.iter().map(|c| {
            Json::obj([
                ("label", Json::str(c.config.label)),
                (
                    "points",
                    Json::arr(c.points.iter().map(|p| {
                        Json::obj([
                            ("factor", Json::num(p.factor)),
                            ("offered_rps", Json::num(p.offered_rps)),
                            ("achieved_rps", Json::num(p.achieved_rps)),
                            ("goodput_rps", Json::num(p.goodput_rps)),
                            ("admitted", Json::num(p.admitted as f64)),
                            ("shed", Json::num(p.shed as f64)),
                            ("slo_met", Json::num(p.slo_met as f64)),
                            ("slo_violations", Json::num(p.slo_violations as f64)),
                        ])
                    })),
                ),
            ])
        })),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(label: &str, factors: &[f64], requests: usize) -> OverloadCurve {
        let config = overload_ladder()
            .into_iter()
            .find(|c| c.label == label)
            .expect("known admission label");
        overload_sweep(config, factors, requests, 2026)
    }

    #[test]
    fn ladder_labels_are_unique_and_start_with_accept_all() {
        let ladder = overload_ladder();
        assert_eq!(ladder[0].admission, AdmissionPolicy::AcceptAll);
        for (i, a) in ladder.iter().enumerate() {
            for b in &ladder[i + 1..] {
                assert_ne!(a.label, b.label);
            }
        }
    }

    #[test]
    fn admission_beats_accept_all_at_overload() {
        // A scaled-down smoke of the binary's headline assertion.
        let factors = [1.0, 2.0];
        let accept = curve("accept-all", &factors, 300);
        let infeasible = curve("deadline-infeasible", &factors, 300);
        assert!(
            goodput_regressions(&infeasible, &accept).is_empty(),
            "admission goodput fell below accept-all: {:?} vs {:?}",
            infeasible.points,
            accept.points
        );
        let two = infeasible.at(2.0).unwrap();
        assert!(two.shed > 0, "2x overload should shed: {two:?}");
    }

    #[test]
    fn conservation_holds_per_point() {
        for p in &curve("queue-cap", &[2.0], 300).points {
            assert_eq!(p.admitted + p.shed, 300, "{p:?}");
            assert_eq!(p.slo_met + p.slo_violations, p.admitted, "{p:?}");
        }
    }

    #[test]
    fn overload_json_is_parseable_shape() {
        let j = overload_to_json(&[curve("accept-all", &[1.0], 100)]).to_string();
        assert!(j.contains(r#""label":"accept-all""#));
        assert!(j.contains(r#""goodput_rps""#));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}

//! Serving load sweep: latency/throughput curves for Conventional vs
//! Axon pods on decode-heavy traffic (the `serving_sweep` binary).
//!
//! Both pods run the paper's minimum-temporal mapping (maximum spatial
//! parallelism — the Fig. 12/14 methodology of comparing the two
//! architectures under the same per-workload mapping), the batching
//! scheduler, and the scale-out sharding path for large prefills. The
//! headline metric is *sustainable throughput*: the highest achieved
//! throughput among sweep points whose p99 end-to-end latency meets an
//! SLO target.

use crate::series::Json;
use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, MappingPolicy, PodConfig, PodMetrics, RequestClass, TrafficConfig, WorkloadMix,
};

/// One measured operating point of a pod under offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load (requests per second of the arrival process).
    pub offered_rps: f64,
    /// Achieved throughput (completions over makespan).
    pub achieved_rps: f64,
    /// End-to-end p50 latency, microseconds.
    pub p50_us: f64,
    /// End-to-end p95 latency, microseconds.
    pub p95_us: f64,
    /// End-to-end p99 latency, microseconds.
    pub p99_us: f64,
    /// Mean fused requests per dispatch.
    pub mean_batch: f64,
    /// Mean array utilization.
    pub utilization: f64,
    /// Energy per request, millijoules (array + DRAM).
    pub energy_per_request_mj: f64,
}

impl LoadPoint {
    fn from_metrics(offered_rps: f64, m: &PodMetrics) -> Self {
        LoadPoint {
            offered_rps,
            achieved_rps: m.throughput_rps(),
            p50_us: m.micros(m.total.p50),
            p95_us: m.micros(m.total.p95),
            p99_us: m.micros(m.total.p99),
            mean_batch: m.mean_batch_size,
            utilization: m.mean_utilization(),
            energy_per_request_mj: m.energy_per_request_mj(),
        }
    }
}

/// A pod's full load-latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingCurve {
    /// Pod label (architecture name).
    pub label: &'static str,
    /// Points in offered-load order.
    pub points: Vec<LoadPoint>,
}

/// A sweep pod: `arrays` square `side x side` arrays of `arch` with the
/// serving defaults, mapped with the paper's minimum-temporal policy
/// (the `serving_sweep` binary uses four 128x128 arrays).
pub fn serving_pod(arch: Architecture, arrays: usize, side: usize) -> PodConfig {
    PodConfig::homogeneous(arrays, arch, side).with_mapping(MappingPolicy::MinTemporal)
}

/// The decode-heavy serving mix: mostly single-token decode, some
/// prefill (which exercises the scale-out sharding path) and a trickle
/// of recommender GEMVs.
pub fn serving_mix() -> WorkloadMix {
    WorkloadMix::new(vec![
        (RequestClass::Decode, 0.85),
        (RequestClass::Prefill, 0.10),
        (RequestClass::Gemv, 0.05),
    ])
}

/// Sweeps `offered_rps` through a pod of `arrays` `side x side` arrays
/// of `arch`, `requests` requests per point, deterministic in `seed`.
/// Each offered load reuses the same seed, so all pods and all loads see
/// identically *distributed* traffic (and two pods at the same load see
/// the bit-identical trace).
pub fn load_sweep(
    arch: Architecture,
    arrays: usize,
    side: usize,
    offered_rps: &[f64],
    requests: usize,
    seed: u64,
) -> ServingCurve {
    let pod = serving_pod(arch, arrays, side);
    let points = offered_rps
        .iter()
        .map(|&rps| {
            let mean_interarrival = pod.clock_mhz * 1e6 / rps;
            let traffic =
                TrafficConfig::open_loop(seed, requests, mean_interarrival).with_mix(serving_mix());
            let report = simulate_pod(&pod, &traffic);
            LoadPoint::from_metrics(rps, &report.metrics)
        })
        .collect();
    ServingCurve {
        label: match arch {
            Architecture::Conventional => "conventional",
            Architecture::Axon => "axon",
        },
        points,
    }
}

/// Highest achieved throughput among points meeting the p99 SLO, or
/// `None` if no point does.
pub fn sustainable_rps(curve: &ServingCurve, p99_slo_us: f64) -> Option<f64> {
    curve
        .points
        .iter()
        .filter(|p| p.p99_us <= p99_slo_us)
        .map(|p| p.achieved_rps)
        .fold(None, |best, r| Some(best.map_or(r, |b: f64| b.max(r))))
}

/// Machine-readable form of the sweep (per-pod curves plus the
/// sustainable-throughput comparison at each SLO).
pub fn sweep_to_json(curves: &[ServingCurve], slos_us: &[f64]) -> Json {
    Json::obj([
        (
            "curves",
            Json::arr(curves.iter().map(|c| {
                Json::obj([
                    ("label", Json::str(c.label)),
                    (
                        "points",
                        Json::arr(c.points.iter().map(|p| {
                            Json::obj([
                                ("offered_rps", Json::num(p.offered_rps)),
                                ("achieved_rps", Json::num(p.achieved_rps)),
                                ("p50_us", Json::num(p.p50_us)),
                                ("p95_us", Json::num(p.p95_us)),
                                ("p99_us", Json::num(p.p99_us)),
                                ("mean_batch", Json::num(p.mean_batch)),
                                ("utilization", Json::num(p.utilization)),
                                ("energy_per_request_mj", Json::num(p.energy_per_request_mj)),
                            ])
                        })),
                    ),
                ])
            })),
        ),
        (
            "sustainable",
            Json::arr(slos_us.iter().map(|&slo| {
                Json::obj([
                    ("p99_slo_us", Json::num(slo)),
                    (
                        "rps",
                        Json::Obj(
                            curves
                                .iter()
                                .map(|c| {
                                    (
                                        c.label.to_string(),
                                        sustainable_rps(c, slo).map_or(Json::Null, Json::num),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_curves() -> (ServingCurve, ServingCurve) {
        // The `serving_sweep --smoke` configuration.
        let loads = [30_000.0, 90_000.0, 180_000.0];
        let sa = load_sweep(Architecture::Conventional, 4, 128, &loads, 400, 2025);
        let ax = load_sweep(Architecture::Axon, 4, 128, &loads, 400, 2025);
        (sa, ax)
    }

    #[test]
    fn axon_sustains_more_at_equal_slo() {
        let (sa, ax) = smoke_curves();
        // The binary's SLO targets; at smoke scale both pods meet them.
        for slo in [1_500.0, 8_000.0] {
            let sa_rps = sustainable_rps(&sa, slo).expect("conventional meets SLO at light load");
            let ax_rps = sustainable_rps(&ax, slo).expect("axon meets SLO at light load");
            assert!(
                ax_rps > sa_rps,
                "axon {ax_rps:.0} rps should beat conventional {sa_rps:.0} rps at p99<={slo}us"
            );
        }
    }

    #[test]
    fn latency_grows_with_load() {
        let loads = [10_000.0, 200_000.0];
        let c = load_sweep(Architecture::Axon, 2, 64, &loads, 300, 3);
        assert!(c.points[1].p99_us > c.points[0].p99_us);
        assert!(c.points[1].utilization >= c.points[0].utilization);
    }

    #[test]
    fn sweep_json_is_parseable_shape() {
        let (sa, ax) = smoke_curves();
        let j = sweep_to_json(&[sa, ax], &[1_000.0, 5_000.0]).to_string();
        assert!(j.contains(r#""label":"axon""#));
        assert!(j.contains(r#""p99_slo_us":1000"#));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn sustainable_none_when_slo_unreachable() {
        let (sa, _) = smoke_curves();
        assert_eq!(sustainable_rps(&sa, 0.001), None);
    }
}

//! Scheduling-policy sweep: decode/prefill tail latency and goodput for
//! FIFO vs coalescing vs EDF vs continuous batching vs WFQ on one Axon
//! pod under mixed SLO-class traffic (the `policy_sweep` binary).
//!
//! Unlike [`crate::serving`] (which compares *architectures* under one
//! policy), this sweep fixes the pod — 4x 128x128 Axon arrays — and
//! compares *queue disciplines* on identical traffic: a decode-heavy
//! mix with a prefill fraction large enough that head-of-line blocking
//! is the dominant tail-latency mechanism. The headline comparison is
//! decode p99 and SLO goodput at equal offered load; see
//! `docs/scheduling.md` for the policy semantics and the expected
//! ranking.

use crate::series::Json;
use crate::sweep::run_sweep_parallel;
use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, MappingPolicy, MemoryModel, PodConfig, PreemptionMode, RequestClass,
    SchedulerPolicy, ServingReport, SloBudgets, TrafficConfig, WorkloadMix,
};

/// A named scheduling configuration the sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Sweep label (`fifo`, `coalesce`, `edf`, `edf+preempt`, `cont`,
    /// `wfq`).
    pub label: &'static str,
    /// Queue discipline.
    pub scheduler: SchedulerPolicy,
    /// Whether running jobs may be checkpointed at tile boundaries.
    pub preemption: PreemptionMode,
}

/// The policy ladder the sweep walks: each rung adds one mechanism.
pub fn policy_ladder() -> Vec<PolicyConfig> {
    vec![
        PolicyConfig {
            label: "fifo",
            scheduler: SchedulerPolicy::Fifo,
            preemption: PreemptionMode::Disabled,
        },
        PolicyConfig {
            label: "coalesce",
            scheduler: SchedulerPolicy::Batching { max_batch: 8 },
            preemption: PreemptionMode::Disabled,
        },
        PolicyConfig {
            label: "edf",
            scheduler: SchedulerPolicy::Edf { max_batch: 8 },
            preemption: PreemptionMode::Disabled,
        },
        PolicyConfig {
            label: "edf+preempt",
            scheduler: SchedulerPolicy::Edf { max_batch: 8 },
            preemption: PreemptionMode::TileBoundary,
        },
        PolicyConfig {
            label: "cont",
            scheduler: SchedulerPolicy::Continuous { max_batch: 8 },
            preemption: PreemptionMode::TileBoundary,
        },
        PolicyConfig {
            label: "wfq",
            scheduler: SchedulerPolicy::Wfq { max_batch: 8 },
            preemption: PreemptionMode::Disabled,
        },
    ]
}

/// The mixed SLO-class scenario: decode-dominated traffic with enough
/// prefill that large kernels regularly occupy arrays when tight-
/// deadline decodes arrive.
pub fn policy_mix() -> WorkloadMix {
    WorkloadMix::new(vec![
        (RequestClass::Decode, 0.80),
        (RequestClass::Prefill, 0.15),
        (RequestClass::Gemv, 0.05),
    ])
}

/// SLO budgets of the scenario: 300 us decode, 2 ms GEMV, 10 ms prefill
/// at the 500 MHz pod clock.
pub fn policy_slo() -> SloBudgets {
    SloBudgets::serving_default()
}

/// The sweep pod: `arrays` square `side x side` Axon arrays under the
/// paper's minimum-temporal mapping, with `policy` installed.
pub fn policy_pod(arrays: usize, side: usize, policy: PolicyConfig) -> PodConfig {
    PodConfig::homogeneous(arrays, Architecture::Axon, side)
        .with_mapping(MappingPolicy::MinTemporal)
        .with_scheduler(policy.scheduler)
        .with_preemption(policy.preemption)
}

/// One measured operating point of a policy under offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyPoint {
    /// Offered load (requests per second of the arrival process).
    pub offered_rps: f64,
    /// Achieved throughput (completions over makespan).
    pub achieved_rps: f64,
    /// In-SLO completions over makespan.
    pub goodput_rps: f64,
    /// Decode end-to-end p99, microseconds.
    pub decode_p99_us: f64,
    /// Decode SLO violations.
    pub decode_violations: usize,
    /// Prefill end-to-end p99, microseconds.
    pub prefill_p99_us: f64,
    /// All-class SLO violations.
    pub slo_violations: usize,
    /// Mean fused requests per dispatch.
    pub mean_batch: f64,
    /// Tile-boundary preemptions.
    pub preemptions: usize,
    /// In-flight continuous-batching joins.
    pub inflight_joins: usize,
}

impl PolicyPoint {
    fn from_report(offered_rps: f64, r: &ServingReport) -> Self {
        let m = &r.metrics;
        let class_p99 = |class| {
            m.class_metrics(class)
                .map_or(0.0, |c| m.micros(c.total.p99))
        };
        let class_violations = |class| {
            m.class_metrics(class)
                .map_or(0, |c: &axon_serve::ClassMetrics| c.slo_violations)
        };
        PolicyPoint {
            offered_rps,
            achieved_rps: m.throughput_rps(),
            goodput_rps: m.goodput_rps(),
            decode_p99_us: class_p99(RequestClass::Decode),
            decode_violations: class_violations(RequestClass::Decode),
            prefill_p99_us: class_p99(RequestClass::Prefill),
            slo_violations: m.slo_violations,
            mean_batch: m.mean_batch_size,
            preemptions: m.preemptions,
            inflight_joins: m.inflight_joins,
        }
    }
}

/// A policy's full load curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCurve {
    /// The swept policy.
    pub policy: PolicyConfig,
    /// Points in offered-load order.
    pub points: Vec<PolicyPoint>,
}

/// Sweeps `offered_rps` through the policy pod (`arrays` `side x side`
/// Axon arrays). Every policy and load reuses `seed`, so all curves see
/// the bit-identical request trace at each load point.
pub fn policy_sweep(
    policy: PolicyConfig,
    arrays: usize,
    side: usize,
    offered_rps: &[f64],
    requests: usize,
    seed: u64,
) -> PolicyCurve {
    policy_sweep_with_memory(
        policy,
        arrays,
        side,
        MemoryModel::Unconstrained,
        offered_rps,
        requests,
        seed,
    )
}

/// [`policy_sweep`] with an explicit memory model — the hook the
/// `contention_sweep` binary uses to re-validate the policy ladder
/// under shared-DRAM contention.
#[allow(clippy::too_many_arguments)]
pub fn policy_sweep_with_memory(
    policy: PolicyConfig,
    arrays: usize,
    side: usize,
    memory: MemoryModel,
    offered_rps: &[f64],
    requests: usize,
    seed: u64,
) -> PolicyCurve {
    let pod = policy_pod(arrays, side, policy).with_memory(memory);
    let points = run_sweep_parallel(offered_rps, |&rps| {
        let mean_interarrival = pod.clock_mhz * 1e6 / rps;
        let traffic = TrafficConfig::open_loop(seed, requests, mean_interarrival)
            .with_mix(policy_mix())
            .with_slo(policy_slo());
        let report = simulate_pod(&pod, &traffic);
        PolicyPoint::from_report(rps, &report)
    });
    PolicyCurve { policy, points }
}

/// The load points (offered rps) where `a` achieves strictly lower
/// decode p99 than `b`. Both curves must cover the same loads.
pub fn decode_p99_wins(a: &PolicyCurve, b: &PolicyCurve) -> Vec<f64> {
    a.points
        .iter()
        .zip(&b.points)
        .filter(|(pa, pb)| {
            debug_assert_eq!(pa.offered_rps, pb.offered_rps);
            pa.decode_p99_us < pb.decode_p99_us
        })
        .map(|(pa, _)| pa.offered_rps)
        .collect()
}

/// Machine-readable form of the sweep.
pub fn policy_sweep_to_json(curves: &[PolicyCurve]) -> Json {
    Json::obj([(
        "policies",
        Json::arr(curves.iter().map(|c| {
            Json::obj([
                ("label", Json::str(c.policy.label)),
                (
                    "points",
                    Json::arr(c.points.iter().map(|p| {
                        Json::obj([
                            ("offered_rps", Json::num(p.offered_rps)),
                            ("achieved_rps", Json::num(p.achieved_rps)),
                            ("goodput_rps", Json::num(p.goodput_rps)),
                            ("decode_p99_us", Json::num(p.decode_p99_us)),
                            ("decode_violations", Json::num(p.decode_violations as f64)),
                            ("prefill_p99_us", Json::num(p.prefill_p99_us)),
                            ("slo_violations", Json::num(p.slo_violations as f64)),
                            ("mean_batch", Json::num(p.mean_batch)),
                            ("preemptions", Json::num(p.preemptions as f64)),
                            ("inflight_joins", Json::num(p.inflight_joins as f64)),
                        ])
                    })),
                ),
            ])
        })),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(label: &str, loads: &[f64]) -> PolicyCurve {
        let policy = policy_ladder()
            .into_iter()
            .find(|p| p.label == label)
            .expect("known policy label");
        policy_sweep(policy, 2, 64, loads, 300, 2026)
    }

    #[test]
    fn edf_beats_fifo_decode_p99_under_pressure() {
        // The smoke loads of the binary, scaled to a 2-array pod.
        let loads = [40_000.0, 80_000.0];
        let fifo = curve("fifo", &loads);
        let cont = curve("cont", &loads);
        assert!(
            !decode_p99_wins(&cont, &fifo).is_empty(),
            "continuous batching should beat FIFO decode p99 at some load: {:?} vs {:?}",
            cont.points
                .iter()
                .map(|p| p.decode_p99_us)
                .collect::<Vec<_>>(),
            fifo.points
                .iter()
                .map(|p| p.decode_p99_us)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ladder_labels_are_unique() {
        let ladder = policy_ladder();
        for (i, a) in ladder.iter().enumerate() {
            for b in &ladder[i + 1..] {
                assert_ne!(a.label, b.label);
            }
        }
    }

    #[test]
    fn policy_json_is_parseable_shape() {
        let loads = [40_000.0];
        let j = policy_sweep_to_json(&[curve("fifo", &loads)]).to_string();
        assert!(j.contains(r#""label":"fifo""#));
        assert!(j.contains(r#""decode_p99_us""#));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}

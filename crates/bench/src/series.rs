//! Shared series types for the figure modules, plus a dependency-free
//! JSON writer so figure/perf binaries can emit machine-readable output
//! (`--json <path>`).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workload's value across a sweep of array sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSeries {
    /// Workload display name.
    pub name: &'static str,
    /// Short label of the mapping used (e.g. `"OS"`).
    pub mapping: &'static str,
    /// One value per swept array size, in sweep order.
    pub values: Vec<f64>,
}

/// A complete figure series: the sweep axis plus per-workload rows and
/// the column averages.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Swept square-array sides.
    pub sides: Vec<usize>,
    /// Per-workload rows.
    pub rows: Vec<WorkloadSeries>,
}

impl FigureSeries {
    /// Column-wise arithmetic means over the workloads.
    pub fn averages(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..self.sides.len())
            .map(|i| self.rows.iter().map(|r| r.values[i]).sum::<f64>() / n)
            .collect()
    }

    /// The average for one swept side, if present.
    pub fn average_at(&self, side: usize) -> Option<f64> {
        let i = self.sides.iter().position(|&s| s == side)?;
        Some(self.averages()[i])
    }
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<24}{:>5}", "workload", "map")?;
        for s in &self.sides {
            write!(f, "{:>10}", format!("{s}x{s}"))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<24}{:>5}", row.name, row.mapping)?;
            for v in &row.values {
                write!(f, "{v:>10.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<29}", "AVERAGE")?;
        for v in self.averages() {
            write!(f, "{v:>10.3}")?;
        }
        writeln!(f)
    }
}

/// A JSON value. Only what the benchmark binaries need — numbers,
/// strings, booleans, arrays, objects — serialized with proper string
/// escaping and no external dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the serialization of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj<const N: usize>(entries: [(&str, Json); N]) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Array from any iterator of values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number value.
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// Serializes and writes to `path` (with a trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`io::Error`] on failure to write.
    pub fn write_to_file(&self, path: &Path) -> io::Result<()> {
        fs::write(path, format!("{self}\n"))
    }

    /// Parses a JSON document (strict enough for everything this
    /// workspace writes: the figure exports, `BENCH_*.json`, Chrome
    /// traces). Numbers parse as `f64`; `\uXXXX` escapes decode,
    /// surrogate pairs included.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax
    /// error, or of trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object (`None` for missing keys or
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                entries.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex4 = |p: usize| -> Result<u32, String> {
                            let s = b
                                .get(p..p + 4)
                                .and_then(|s| std::str::from_utf8(s).ok())
                                .ok_or("truncated \\u escape")?;
                            u32::from_str_radix(s, 16).map_err(|e| e.to_string())
                        };
                        let mut code = hex4(*pos)?;
                        *pos += 4;
                        // Surrogate pair: a high surrogate must be
                        // followed by `\uDC00..\uDFFF`.
                        if (0xD800..0xDC00).contains(&code) {
                            expect(b, pos, "\\u")?;
                            let low = hex4(*pos)?;
                            *pos += 4;
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    c => return Err(format!("invalid escape `\\{}`", c as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unmodified).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid UTF-8 in string")?,
                );
            }
        }
    }
}

fn escape_into(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl FigureSeries {
    /// Machine-readable form of the series: swept sides, per-workload
    /// rows, and the column averages.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "sides",
                Json::arr(self.sides.iter().map(|&s| Json::num(s as f64))),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("name", Json::str(r.name)),
                        ("mapping", Json::str(r.mapping)),
                        ("values", Json::arr(r.values.iter().map(|&v| Json::num(v)))),
                    ])
                })),
            ),
            (
                "averages",
                Json::arr(self.averages().into_iter().map(Json::num)),
            ),
        ])
    }
}

/// Scans the process arguments for `--json <path>` and returns the path,
/// if present — the shared CLI convention of the figure binaries.
pub fn json_path_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    json_path_from(&args)
}

/// Testable core of [`json_path_from_args`].
pub fn json_path_from(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_columnwise() {
        let s = FigureSeries {
            sides: vec![8, 16],
            rows: vec![
                WorkloadSeries {
                    name: "a",
                    mapping: "OS",
                    values: vec![1.0, 3.0],
                },
                WorkloadSeries {
                    name: "b",
                    mapping: "WS",
                    values: vec![2.0, 5.0],
                },
            ],
        };
        assert_eq!(s.averages(), vec![1.5, 4.0]);
        assert_eq!(s.average_at(16), Some(4.0));
        assert_eq!(s.average_at(99), None);
    }

    #[test]
    fn display_includes_average_row() {
        let s = FigureSeries {
            sides: vec![4],
            rows: vec![WorkloadSeries {
                name: "x",
                mapping: "IS",
                values: vec![1.25],
            }],
        };
        let out = s.to_string();
        assert!(out.contains("AVERAGE"));
        assert!(out.contains("1.250"));
    }

    #[test]
    fn json_serialization_and_escaping() {
        let v = Json::obj([
            ("a", Json::num(1.5)),
            ("b", Json::str("x\"y\\z\n")),
            ("c", Json::arr([Json::Bool(true), Json::Null])),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"a":1.5,"b":"x\"y\\z\n","c":[true,null],"nan":null}"#
        );
    }

    #[test]
    fn integral_floats_print_plainly() {
        assert_eq!(Json::num(64.0).to_string(), "64");
        assert_eq!(Json::num(0.25).to_string(), "0.25");
    }

    #[test]
    fn figure_series_round_trips_structure() {
        let s = FigureSeries {
            sides: vec![8, 16],
            rows: vec![WorkloadSeries {
                name: "w",
                mapping: "OS",
                values: vec![1.0, 2.0],
            }],
        };
        let j = s.to_json().to_string();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""sides":[8,16]"#));
        assert!(j.contains(r#""values":[1,2]"#));
        assert!(j.contains(r#""averages":[1,2]"#));
    }

    #[test]
    fn json_flag_parsing() {
        let args: Vec<String> = ["bin", "--json", "out.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(json_path_from(&args), Some(PathBuf::from("out.json")));
        let none: Vec<String> = vec!["bin".to_string(), "--json".to_string()];
        assert_eq!(json_path_from(&none), None);
    }

    #[test]
    fn json_parse_round_trips() {
        let src = Json::obj([
            ("name", Json::str("tr\u{e4}ce \"x\"\n")),
            ("n", Json::num(-12.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::arr([Json::num(1.0), Json::obj([("k", Json::num(2.0))])]),
            ),
        ]);
        let parsed = Json::parse(&src.to_string()).unwrap();
        assert_eq!(parsed, src);
        assert_eq!(parsed.get("n").and_then(Json::as_f64), Some(-12.5));
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("tr\u{e4}ce \"x\"\n")
        );
        assert_eq!(
            parsed.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn json_parse_handles_escapes_and_rejects_garbage() {
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        assert_eq!(
            Json::parse(" [ 1 , 2 ] ")
                .unwrap()
                .as_arr()
                .map(<[Json]>::len),
            Some(2)
        );
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn json_writes_to_disk() {
        let path = std::env::temp_dir().join("axon_bench_series_test.json");
        Json::obj([("ok", Json::Bool(true))])
            .write_to_file(&path)
            .unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "{\"ok\":true}\n");
        let _ = std::fs::remove_file(&path);
    }
}

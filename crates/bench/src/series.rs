//! Shared series types for the figure modules.

use std::fmt;

/// One workload's value across a sweep of array sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSeries {
    /// Workload display name.
    pub name: &'static str,
    /// Short label of the mapping used (e.g. `"OS"`).
    pub mapping: &'static str,
    /// One value per swept array size, in sweep order.
    pub values: Vec<f64>,
}

/// A complete figure series: the sweep axis plus per-workload rows and
/// the column averages.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Swept square-array sides.
    pub sides: Vec<usize>,
    /// Per-workload rows.
    pub rows: Vec<WorkloadSeries>,
}

impl FigureSeries {
    /// Column-wise arithmetic means over the workloads.
    pub fn averages(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..self.sides.len())
            .map(|i| self.rows.iter().map(|r| r.values[i]).sum::<f64>() / n)
            .collect()
    }

    /// The average for one swept side, if present.
    pub fn average_at(&self, side: usize) -> Option<f64> {
        let i = self.sides.iter().position(|&s| s == side)?;
        Some(self.averages()[i])
    }
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<24}{:>5}", "workload", "map")?;
        for s in &self.sides {
            write!(f, "{:>10}", format!("{s}x{s}"))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<24}{:>5}", row.name, row.mapping)?;
            for v in &row.values {
                write!(f, "{v:>10.3}")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<29}", "AVERAGE")?;
        for v in self.averages() {
            write!(f, "{v:>10.3}")?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_columnwise() {
        let s = FigureSeries {
            sides: vec![8, 16],
            rows: vec![
                WorkloadSeries {
                    name: "a",
                    mapping: "OS",
                    values: vec![1.0, 3.0],
                },
                WorkloadSeries {
                    name: "b",
                    mapping: "WS",
                    values: vec![2.0, 5.0],
                },
            ],
        };
        assert_eq!(s.averages(), vec![1.5, 4.0]);
        assert_eq!(s.average_at(16), Some(4.0));
        assert_eq!(s.average_at(99), None);
    }

    #[test]
    fn display_includes_average_row() {
        let s = FigureSeries {
            sides: vec![4],
            rows: vec![WorkloadSeries {
                name: "x",
                mapping: "IS",
                values: vec![1.25],
            }],
        };
        let out = s.to_string();
        assert!(out.contains("AVERAGE"));
        assert!(out.contains("1.250"));
    }
}

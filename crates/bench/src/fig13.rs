//! Fig. 13 computation: PE utilization-rate improvement over the
//! conventional array, Axon vs CMSA, at 128x128 under OS.

use axon_core::utilization::{utilization, utilization_improvement_pct, UtilArchitecture};
use axon_core::{ArrayShape, Dataflow, GemmShape};
use axon_workloads::fig13_workloads;

/// One workload's Fig. 13 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationRow {
    /// Workload name.
    pub name: &'static str,
    /// Conventional-array utilization (0..1).
    pub baseline_ur: f64,
    /// CMSA improvement over the baseline, percent.
    pub cmsa_improvement_pct: f64,
    /// Axon improvement over the baseline, percent.
    pub axon_improvement_pct: f64,
}

/// Computes the Fig. 13 rows for the given square array side (the paper
/// uses 128).
///
/// # Examples
///
/// ```
/// use axon_bench::fig13;
///
/// let rows = fig13::utilization_rows(128);
/// let gpt3 = rows.iter().find(|r| r.name.contains("matmul1")).expect("present");
/// assert!(gpt3.baseline_ur > 0.88); // paper: ~91%
/// ```
pub fn utilization_rows(side: usize) -> Vec<UtilizationRow> {
    let array = ArrayShape::square(side);
    fig13_workloads()
        .into_iter()
        .map(|w| row(array, w.name, w.shape))
        .collect()
}

fn row(array: ArrayShape, name: &'static str, shape: GemmShape) -> UtilizationRow {
    UtilizationRow {
        name,
        baseline_ur: utilization(UtilArchitecture::Conventional, array, Dataflow::Os, shape),
        cmsa_improvement_pct: utilization_improvement_pct(
            UtilArchitecture::Cmsa,
            array,
            Dataflow::Os,
            shape,
        ),
        axon_improvement_pct: utilization_improvement_pct(
            UtilArchitecture::Axon,
            array,
            Dataflow::Os,
            shape,
        ),
    }
}

/// Average improvements `(cmsa, axon)` over a row set.
pub fn average_improvements(rows: &[UtilizationRow]) -> (f64, f64) {
    let n = rows.len().max(1) as f64;
    (
        rows.iter().map(|r| r.cmsa_improvement_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.axon_improvement_pct).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axon_average_beats_cmsa() {
        let rows = utilization_rows(128);
        let (cmsa, axon) = average_improvements(&rows);
        assert!(axon > cmsa, "axon {axon} <= cmsa {cmsa}");
    }

    #[test]
    fn improvements_never_negative() {
        for r in utilization_rows(128) {
            assert!(r.cmsa_improvement_pct >= -1e-9, "{}", r.name);
            assert!(r.axon_improvement_pct >= -1e-9, "{}", r.name);
        }
    }

    #[test]
    fn high_baseline_leaves_small_headroom() {
        for r in utilization_rows(128) {
            if r.baseline_ur > 0.85 {
                assert!(r.axon_improvement_pct < 20.0, "{}", r.name);
            }
        }
    }
}

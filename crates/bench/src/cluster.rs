//! Cluster routing-policy sweep: decode tail latency and goodput for
//! the router ladder — round-robin, random, join-shortest-queue,
//! power-of-two-choices, SLO-class-aware, prefill/decode
//! disaggregation — on an identical heterogeneous fleet under
//! identical traffic (the `cluster_sweep` binary).
//!
//! Every router drives the *same hardware*: two Axon pods (tagged
//! [`PodRole::Decode`]) and two Conventional pods (tagged
//! [`PodRole::Prefill`]), all running the coalescing per-pod scheduler
//! so prefill head-of-line blocking is present and placement matters.
//! Only the disaggregated router reads the role tags; for every other
//! policy they are inert labels, which is what makes the comparison an
//! equal-hardware one. The headline result the binary asserts: at
//! every swept load, join-shortest-queue and disaggregation achieve
//! decode p99 no worse than round-robin. See `docs/cluster.md`.

use crate::series::Json;
use crate::sweep::run_sweep_parallel;
use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_cluster, simulate_pod, ClusterConfig, ClusterPodConfig, ClusterReport, PodConfig,
    PodRole, RequestClass, RouterPolicy, SchedulerPolicy, TrafficConfig, WorkloadMix,
};

/// The traffic scenario: decode-dominated with enough prefill that a
/// badly placed prefill blocks a whole pod's decode stream.
pub fn cluster_mix() -> WorkloadMix {
    WorkloadMix::new(vec![
        (RequestClass::Decode, 0.80),
        (RequestClass::Prefill, 0.15),
        (RequestClass::Gemv, 0.05),
    ])
}

/// The sweep fleet: 2x Axon decode-specialist pods + 2x Conventional
/// prefill-specialist pods, each `arrays` square `side x side` arrays
/// under the coalescing scheduler. Identical across every router.
pub fn sweep_fleet(arrays: usize, side: usize) -> Vec<ClusterPodConfig> {
    let scheduler = SchedulerPolicy::Batching { max_batch: 8 };
    let axon = PodConfig::homogeneous(arrays, Architecture::Axon, side).with_scheduler(scheduler);
    let conv =
        PodConfig::homogeneous(arrays, Architecture::Conventional, side).with_scheduler(scheduler);
    vec![
        ClusterPodConfig::new(axon.clone()).with_role(PodRole::Decode),
        ClusterPodConfig::new(axon).with_role(PodRole::Decode),
        ClusterPodConfig::new(conv.clone()).with_role(PodRole::Prefill),
        ClusterPodConfig::new(conv).with_role(PodRole::Prefill),
    ]
}

/// One measured operating point of a router under offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPoint {
    /// Offered load (requests per second of the arrival process).
    pub offered_rps: f64,
    /// Achieved throughput (completions over makespan).
    pub achieved_rps: f64,
    /// In-SLO completions over makespan.
    pub goodput_rps: f64,
    /// Decode end-to-end p99, microseconds.
    pub decode_p99_us: f64,
    /// Prefill end-to-end p99, microseconds.
    pub prefill_p99_us: f64,
    /// All-class SLO violations.
    pub slo_violations: usize,
    /// Requests routed to each pod, declaration order.
    pub routed_per_pod: Vec<usize>,
}

impl ClusterPoint {
    fn from_report(offered_rps: f64, r: &ClusterReport) -> Self {
        let m = &r.metrics;
        let class_p99 = |class| {
            m.class_metrics(class)
                .map_or(0.0, |c| m.micros(c.total.p99))
        };
        ClusterPoint {
            offered_rps,
            achieved_rps: m.throughput_rps(),
            goodput_rps: m.goodput_rps(),
            decode_p99_us: class_p99(RequestClass::Decode),
            prefill_p99_us: class_p99(RequestClass::Prefill),
            slo_violations: m.slo_violations,
            routed_per_pod: m.routed_per_pod.clone(),
        }
    }
}

/// A router's full load curve over the sweep fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCurve {
    /// The swept router.
    pub router: RouterPolicy,
    /// Points in offered-load order.
    pub points: Vec<ClusterPoint>,
}

/// Sweeps `offered_rps` through the fleet under `router`. Every router
/// and load reuses `seed`, so all curves see the bit-identical global
/// arrival trace at each load point.
pub fn cluster_sweep(
    router: RouterPolicy,
    arrays: usize,
    side: usize,
    offered_rps: &[f64],
    requests: usize,
    seed: u64,
) -> ClusterCurve {
    let fleet = sweep_fleet(arrays, side);
    let clock_mhz = fleet[0].pod.clock_mhz;
    let cluster = ClusterConfig::new(fleet, router);
    let points = run_sweep_parallel(offered_rps, |&rps| {
        let mean_interarrival = clock_mhz * 1e6 / rps;
        // Enough clients that session placement keeps happening
        // throughout the run (new sessions see current fleet load),
        // not just in the first instants.
        let traffic = TrafficConfig::open_loop(seed, requests, mean_interarrival)
            .with_mix(cluster_mix())
            .with_clients(64);
        let report = simulate_cluster(&cluster, &traffic);
        ClusterPoint::from_report(rps, &report)
    });
    ClusterCurve { router, points }
}

/// The load points where `a`'s decode p99 exceeds `b`'s — empty means
/// `a` is no worse than `b` at every swept load. Both curves must
/// cover the same loads.
pub fn decode_p99_regressions(a: &ClusterCurve, b: &ClusterCurve) -> Vec<f64> {
    a.points
        .iter()
        .zip(&b.points)
        .filter(|(pa, pb)| {
            debug_assert_eq!(pa.offered_rps, pb.offered_rps);
            pa.decode_p99_us > pb.decode_p99_us
        })
        .map(|(pa, _)| pa.offered_rps)
        .collect()
}

/// The single-pod-equivalence pin, bench-side: a 1-pod cluster under
/// `router` must be bit-identical to [`simulate_pod`] on the same pod
/// and traffic. Panics (with the router's name) if the cluster layer
/// has drifted from the single-pod path.
pub fn assert_one_pod_equivalence(router: RouterPolicy, seed: u64) {
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Batching { max_batch: 8 });
    let traffic = TrafficConfig::open_loop(seed, 150, 2000.0).with_mix(cluster_mix());
    let single = simulate_pod(&pod, &traffic);
    let cluster = ClusterConfig::new(vec![ClusterPodConfig::new(pod)], router);
    let fleet = simulate_cluster(&cluster, &traffic);
    assert_eq!(
        fleet.per_pod[0].completions,
        single.completions,
        "{}: 1-pod cluster diverged from simulate_pod",
        router.name()
    );
    assert_eq!(
        fleet.per_pod[0].metrics,
        single.metrics,
        "{}: 1-pod cluster metrics diverged from simulate_pod",
        router.name()
    );
}

/// Machine-readable form of the sweep.
pub fn cluster_sweep_to_json(curves: &[ClusterCurve]) -> Json {
    Json::obj([(
        "routers",
        Json::arr(curves.iter().map(|c| {
            Json::obj([
                ("label", Json::str(c.router.name())),
                (
                    "points",
                    Json::arr(c.points.iter().map(|p| {
                        Json::obj([
                            ("offered_rps", Json::num(p.offered_rps)),
                            ("achieved_rps", Json::num(p.achieved_rps)),
                            ("goodput_rps", Json::num(p.goodput_rps)),
                            ("decode_p99_us", Json::num(p.decode_p99_us)),
                            ("prefill_p99_us", Json::num(p.prefill_p99_us)),
                            ("slo_violations", Json::num(p.slo_violations as f64)),
                            (
                                "routed_per_pod",
                                Json::arr(p.routed_per_pod.iter().map(|&n| Json::num(n as f64))),
                            ),
                        ])
                    })),
                ),
            ])
        })),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_complete() {
        let loads = [40_000.0, 80_000.0];
        let a = cluster_sweep(RouterPolicy::JoinShortestQueue, 2, 64, &loads, 120, 7);
        let b = cluster_sweep(RouterPolicy::JoinShortestQueue, 2, 64, &loads, 120, 7);
        assert_eq!(a, b);
        assert_eq!(a.points.len(), 2);
        for p in &a.points {
            assert_eq!(p.routed_per_pod.iter().sum::<usize>(), 120);
        }
    }

    #[test]
    fn one_pod_equivalence_pin_holds_for_every_router() {
        for router in RouterPolicy::ALL {
            assert_one_pod_equivalence(router, 13);
        }
    }
}

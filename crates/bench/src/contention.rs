//! Shared-DRAM contention sweep: pod size x channel count on the
//! decode-heavy serving mix (the `contention_sweep` binary).
//!
//! The pre-contention pod billed every array against private,
//! contention-free bandwidth, so scale-out sharding and dense decode
//! batches never paid for fighting over the memory interface. This
//! sweep quantifies the honest penalty: for each pod size it measures
//! the same traffic under [`MemoryModel::Unconstrained`] (the old
//! compute-only billing), under private bandwidth
//! (`channels == arrays`, the uncontended roofline), and under
//! progressively starved channel counts — then asserts the two model
//! invariants end to end:
//!
//! * **Monotonicity**: shrinking the shared channel count never
//!   decreases p99 service latency at fixed load.
//! * **Private equivalence**: a single-array pod never contends, so
//!   every channel count reproduces the private-bandwidth results
//!   exactly (bit-identical metrics).
//!
//! See `docs/memory.md` for the allocation law and the measured table.

use crate::series::Json;
use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, MappingPolicy, MemoryModel, PodConfig, PodMetrics, RequestClass, TrafficConfig,
    WorkloadMix,
};

/// The decode-heavy contention mix: almost all memory-bound decode
/// GEMVs, with a trickle of prefill to keep the compute side honest.
pub fn contention_mix() -> WorkloadMix {
    WorkloadMix::new(vec![
        (RequestClass::Decode, 0.90),
        (RequestClass::Prefill, 0.05),
        (RequestClass::Gemv, 0.05),
    ])
}

/// The sweep pod: `arrays` square `side x side` Axon arrays under the
/// paper's minimum-temporal mapping with `memory` installed (the
/// serving-default batching scheduler, so the comparison isolates the
/// memory model).
pub fn contention_pod(arrays: usize, side: usize, memory: MemoryModel) -> PodConfig {
    PodConfig::homogeneous(arrays, Architecture::Axon, side)
        .with_mapping(MappingPolicy::MinTemporal)
        .with_memory(memory)
}

/// One measured cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionPoint {
    /// Arrays in the pod.
    pub arrays: usize,
    /// Memory-model label: `"compute-only"`, `"private"`, or `"<c>ch"`.
    pub label: String,
    /// Offered load (requests per second of the arrival process).
    pub offered_rps: f64,
    /// Achieved throughput (completions over makespan).
    pub achieved_rps: f64,
    /// Service-latency p99, microseconds.
    pub service_p99_us: f64,
    /// End-to-end p99, microseconds.
    pub total_p99_us: f64,
    /// Decode-class end-to-end p99, microseconds.
    pub decode_p99_us: f64,
    /// Mean array utilization.
    pub utilization: f64,
    /// Total DRAM transfer energy, millijoules.
    pub dram_energy_mj: f64,
}

impl ContentionPoint {
    fn from_metrics(arrays: usize, label: String, offered_rps: f64, m: &PodMetrics) -> Self {
        ContentionPoint {
            arrays,
            label,
            offered_rps,
            achieved_rps: m.throughput_rps(),
            service_p99_us: m.micros(m.service.p99),
            total_p99_us: m.micros(m.total.p99),
            decode_p99_us: m
                .class_metrics(RequestClass::Decode)
                .map_or(0.0, |c| m.micros(c.total.p99)),
            utilization: m.mean_utilization(),
            dram_energy_mj: m.dram_energy_mj,
        }
    }
}

/// All rows measured for one pod size at one offered load: the old
/// compute-only billing, then each swept channel count (ascending, with
/// `channels == arrays` labeled `"private"`).
#[derive(Debug, Clone, PartialEq)]
pub struct PodSizeSweep {
    /// Arrays in the pod.
    pub arrays: usize,
    /// Offered load the rows share.
    pub offered_rps: f64,
    /// The measured rows: `compute-only` first, then channel counts
    /// ascending.
    pub rows: Vec<ContentionPoint>,
    /// The raw metrics per row (same order), for exact-equality checks.
    pub metrics: Vec<PodMetrics>,
}

impl PodSizeSweep {
    /// The private-bandwidth row (`channels == arrays`).
    pub fn private_row(&self) -> &ContentionPoint {
        self.rows
            .iter()
            .find(|r| r.label == "private")
            .expect("sweep always measures channels == arrays")
    }

    /// p99 service latency of the most starved channel configuration
    /// over the private one — the headline contention penalty.
    pub fn starved_service_penalty(&self) -> f64 {
        let starved = self
            .rows
            .iter()
            .filter(|r| r.label != "compute-only")
            .max_by(|a, b| a.service_p99_us.total_cmp(&b.service_p99_us))
            .expect("at least one channel row");
        starved.service_p99_us / self.private_row().service_p99_us
    }
}

/// Measures one pod size at `per_array_rps * arrays` offered load:
/// compute-only billing first, then every channel count in
/// `channel_counts` (ascending; counts above `arrays` are skipped —
/// they cannot contend — and `arrays` itself is always included as the
/// `"private"` row).
pub fn sweep_pod_size(
    arrays: usize,
    side: usize,
    channel_counts: &[usize],
    per_array_rps: f64,
    requests: usize,
    seed: u64,
) -> PodSizeSweep {
    let offered_rps = per_array_rps * arrays as f64;
    let mut channels: Vec<usize> = channel_counts
        .iter()
        .copied()
        .filter(|&c| c < arrays)
        .collect();
    channels.push(arrays);
    channels.sort_unstable();
    channels.dedup();

    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    let mut measure = |label: String, memory: MemoryModel| {
        let pod = contention_pod(arrays, side, memory);
        let mean_interarrival = pod.clock_mhz * 1e6 / offered_rps;
        let traffic =
            TrafficConfig::open_loop(seed, requests, mean_interarrival).with_mix(contention_mix());
        let report = simulate_pod(&pod, &traffic);
        rows.push(ContentionPoint::from_metrics(
            arrays,
            label,
            offered_rps,
            &report.metrics,
        ));
        metrics.push(report.metrics);
    };
    measure("compute-only".into(), MemoryModel::Unconstrained);
    for &c in &channels {
        let label = if c == arrays {
            "private".into()
        } else {
            format!("{c}ch")
        };
        measure(label, MemoryModel::Shared { channels: c });
    }
    PodSizeSweep {
        arrays,
        offered_rps,
        rows,
        metrics,
    }
}

/// Asserts the two model invariants on a measured pod-size sweep;
/// panics with a diagnostic on violation. Returns the sweep back for
/// chaining.
///
/// * Channel rows are measured ascending, so p99 service latency must
///   be non-increasing along them (shrinking channels never helps).
/// * With one array nothing ever shares: every channel row's metrics
///   must equal the private row's **exactly**.
pub fn assert_contention_invariants(sweep: &PodSizeSweep) -> &PodSizeSweep {
    let channel_rows: Vec<usize> = (0..sweep.rows.len())
        .filter(|&i| sweep.rows[i].label != "compute-only")
        .collect();
    for w in channel_rows.windows(2) {
        let (starved, fed) = (&sweep.rows[w[0]], &sweep.rows[w[1]]);
        assert!(
            starved.service_p99_us >= fed.service_p99_us,
            "{} arrays: {} service p99 {:.1} us beats {} at {:.1} us — \
             shrinking channels must never decrease p99 service latency",
            sweep.arrays,
            starved.label,
            starved.service_p99_us,
            fed.label,
            fed.service_p99_us
        );
    }
    if sweep.arrays == 1 {
        let private = sweep
            .rows
            .iter()
            .position(|r| r.label == "private")
            .expect("private row present");
        for &i in &channel_rows {
            assert_eq!(
                sweep.metrics[i], sweep.metrics[private],
                "single-array pod: {} must match private bandwidth exactly",
                sweep.rows[i].label
            );
        }
    }
    sweep
}

/// Machine-readable form of the grid.
pub fn contention_sweep_to_json(sweeps: &[PodSizeSweep]) -> Json {
    Json::obj([(
        "pods",
        Json::arr(sweeps.iter().map(|s| {
            Json::obj([
                ("arrays", Json::num(s.arrays as f64)),
                ("offered_rps", Json::num(s.offered_rps)),
                (
                    "rows",
                    Json::arr(s.rows.iter().map(|r| {
                        Json::obj([
                            ("memory", Json::str(r.label.clone())),
                            ("achieved_rps", Json::num(r.achieved_rps)),
                            ("service_p99_us", Json::num(r.service_p99_us)),
                            ("total_p99_us", Json::num(r.total_p99_us)),
                            ("decode_p99_us", Json::num(r.decode_p99_us)),
                            ("utilization", Json::num(r.utilization)),
                            ("dram_energy_mj", Json::num(r.dram_energy_mj)),
                        ])
                    })),
                ),
            ])
        })),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_hold_on_a_small_grid() {
        for arrays in [1usize, 2] {
            let sweep = sweep_pod_size(arrays, 32, &[1, 2], 30_000.0, 120, 2026);
            assert_contention_invariants(&sweep);
            assert_eq!(sweep.rows[0].label, "compute-only");
            assert_eq!(sweep.private_row().label, "private");
            assert!(sweep.starved_service_penalty() >= 1.0);
        }
    }

    #[test]
    fn contention_penalty_bites_on_starved_multi_array_pods() {
        // 4 memory-bound arrays on 1 channel must be measurably slower
        // than private bandwidth.
        let sweep = sweep_pod_size(4, 64, &[1], 20_000.0, 200, 2026);
        assert_contention_invariants(&sweep);
        assert!(
            sweep.starved_service_penalty() > 1.05,
            "penalty {:.3}",
            sweep.starved_service_penalty()
        );
    }

    #[test]
    fn json_shape_is_parseable() {
        let sweep = sweep_pod_size(1, 32, &[1], 20_000.0, 60, 7);
        let j = contention_sweep_to_json(std::slice::from_ref(&sweep)).to_string();
        assert!(j.contains(r#""memory":"private""#));
        assert!(j.contains(r#""service_p99_us""#));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}

//! Fig. 14 computation: Axon speedups on the memory-bound classes
//! (depthwise convolution and GEMV).

use crate::series::{FigureSeries, WorkloadSeries};
use axon_core::runtime::{Architecture, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow};
use axon_workloads::{fig14_dw_workloads, gemv_workloads, GemmWorkload};

/// The swept array sides used by the reproduction for Fig. 14.
pub const SIDES: [usize; 3] = [64, 128, 256];

fn workloads() -> Vec<GemmWorkload> {
    fig14_dw_workloads()
        .iter()
        .map(|d| d.workload())
        .chain(gemv_workloads())
        .collect()
}

/// Computes the Fig. 14 speedup series (min-temporal mapping, drains
/// overlapped — the same methodology as Fig. 12).
///
/// # Examples
///
/// ```
/// use axon_bench::fig14;
///
/// let s = fig14::speedup_series(&fig14::SIDES);
/// let overall: f64 = s.averages().iter().sum::<f64>() / s.averages().len() as f64;
/// assert!((1.7..2.0).contains(&overall)); // paper: ~1.8x
/// ```
pub fn speedup_series(sides: &[usize]) -> FigureSeries {
    let rows = workloads()
        .into_iter()
        .map(|w| {
            let df = Dataflow::min_temporal(w.shape);
            let values = sides
                .iter()
                .map(|&s| {
                    let spec = RuntimeSpec::new(ArrayShape::square(s), df);
                    let sa = spec.runtime(Architecture::Conventional, w.shape);
                    let ax = spec.runtime(Architecture::Axon, w.shape);
                    sa.cycles as f64 / ax.cycles as f64
                })
                .collect();
            WorkloadSeries {
                name: w.name,
                mapping: df.name(),
                values,
            }
        })
        .collect();
    FigureSeries {
        sides: sides.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_average_near_1_8() {
        let s = speedup_series(&SIDES);
        let avgs = s.averages();
        let overall = avgs.iter().sum::<f64>() / avgs.len() as f64;
        assert!((1.7..2.0).contains(&overall), "{overall}");
    }

    #[test]
    fn gemv_rows_approach_two() {
        let s = speedup_series(&[256]);
        for row in s.rows.iter().filter(|r| r.name.starts_with("GEMV")) {
            assert!(row.values[0] > 1.85, "{}: {}", row.name, row.values[0]);
        }
    }

    #[test]
    fn dw_rows_all_above_1_4() {
        let s = speedup_series(&SIDES);
        for row in s.rows.iter().filter(|r| !r.name.starts_with("GEMV")) {
            for &v in &row.values {
                assert!(v > 1.4, "{}: {v}", row.name);
            }
        }
    }
}

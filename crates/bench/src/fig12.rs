//! Fig. 12 computation: per-workload Axon-over-SA speedups on the
//! Table 3 suite (see `EXPERIMENTS.md` for the methodology calibration).

use crate::series::{FigureSeries, WorkloadSeries};
use axon_core::runtime::{Architecture, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow};
use axon_workloads::table3;

/// The paper's swept array sides for Fig. 12.
pub const PAPER_SIDES: [usize; 5] = [16, 32, 64, 128, 256];

/// Computes the Fig. 12 speedup series: each workload mapped (identically
/// on both architectures) with its minimum-temporal-dimension dataflow,
/// Eq. 2 ceil tiling, drains overlapped.
///
/// # Examples
///
/// ```
/// use axon_bench::fig12;
///
/// let s = fig12::speedup_series(&[64, 256]);
/// let avg64 = s.average_at(64).expect("swept");
/// assert!((1.38..1.55).contains(&avg64)); // paper: 1.47x
/// ```
pub fn speedup_series(sides: &[usize]) -> FigureSeries {
    let rows = table3()
        .into_iter()
        .map(|w| {
            let df = Dataflow::min_temporal(w.shape);
            let values = sides
                .iter()
                .map(|&s| {
                    let spec = RuntimeSpec::new(ArrayShape::square(s), df);
                    let sa = spec.runtime(Architecture::Conventional, w.shape);
                    let ax = spec.runtime(Architecture::Axon, w.shape);
                    sa.cycles as f64 / ax.cycles as f64
                })
                .collect();
            WorkloadSeries {
                name: w.name,
                mapping: df.name(),
                values,
            }
        })
        .collect();
    FigureSeries {
        sides: sides.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_match_paper_bands() {
        let s = speedup_series(&PAPER_SIDES);
        let avg64 = s.average_at(64).unwrap();
        let avg256 = s.average_at(256).unwrap();
        assert!((1.38..1.55).contains(&avg64), "{avg64}");
        assert!((1.55..1.80).contains(&avg256), "{avg256}");
    }

    #[test]
    fn speedup_grows_with_array_size_on_average() {
        let s = speedup_series(&PAPER_SIDES);
        let avgs = s.averages();
        for w in avgs.windows(2) {
            assert!(w[1] >= w[0], "averages not monotone: {avgs:?}");
        }
    }

    #[test]
    fn every_speedup_in_1_to_2() {
        let s = speedup_series(&PAPER_SIDES);
        for row in &s.rows {
            for &v in &row.values {
                assert!((1.0..=2.0).contains(&v), "{}: {v}", row.name);
            }
        }
    }

    #[test]
    fn temporal_bound_workloads_stay_flat() {
        // GPT3_3 (huge K under IS) gains little even at 256x256.
        let s = speedup_series(&[256]);
        let gpt3 = s.rows.iter().find(|r| r.name.contains("lmhead")).unwrap();
        assert!(gpt3.values[0] < 1.3, "{}", gpt3.values[0]);
    }
}

//! # axon-bench
//!
//! Figure/table regeneration library for the Axon reproduction. Each
//! module computes one experiment's data series; the binaries in
//! `src/bin/` print them. Keeping the computation in the library makes
//! every figure unit-testable and reusable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod cluster;
pub mod contention;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod overload;
pub mod perf;
pub mod policy;
pub mod series;
pub mod serving;
pub mod sweep;

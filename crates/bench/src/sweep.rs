//! Shared parallel sweep runner.
//!
//! Every sweep in this crate has the same shape: a slice of independent
//! operating points (offered loads, channel counts, routers), each
//! measured by a pure function of the point — the simulator is a pure
//! function of its config, so the points share no state. This module is
//! the one place that shape is implemented: [`run_sweep_parallel`] fans
//! the points out over threads and returns results **in input order**,
//! so its output is element-for-element identical to the sequential
//! `items.iter().map(run).collect()` it replaces (pinned by a unit test
//! below). Callers must pass a `run` that is deterministic and
//! side-effect-free; everything else (chunking, joining, ordering) is
//! handled here.

/// Maps `run` over `items` in parallel, preserving input order.
///
/// Items are split into contiguous chunks, one per worker thread (at
/// most one worker per available core, never more than one per item),
/// and the per-chunk results are concatenated in chunk order — so the
/// output is exactly `items.iter().map(run).collect()`, computed on
/// more cores. With one item (or one core) it simply runs inline.
pub fn run_sweep_parallel<T, R, F>(items: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(&run).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(|| c.iter().map(&run).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axon_core::runtime::Architecture;
    use axon_serve::{simulate_pod, PodConfig, TrafficConfig};

    #[test]
    fn parallel_equals_sequential_on_a_real_sweep() {
        // A genuine simulator sweep, not a toy closure: the parallel
        // runner must reproduce the sequential loop bit-for-bit,
        // reports included.
        let pod = PodConfig::homogeneous(2, Architecture::Axon, 32);
        let loads: Vec<f64> = vec![500.0, 1000.0, 2000.0, 4000.0, 8000.0];
        let run = |&mean: &f64| {
            let traffic = TrafficConfig::open_loop(11, 60, mean);
            simulate_pod(&pod, &traffic)
        };
        let sequential: Vec<_> = loads.iter().map(run).collect();
        let parallel = run_sweep_parallel(&loads, run);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn preserves_order_for_more_items_than_cores() {
        let items: Vec<usize> = (0..257).collect();
        let out = run_sweep_parallel(&items, |&i| i * 2);
        assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert_eq!(run_sweep_parallel(&empty, |&x| x), Vec::<u32>::new());
        assert_eq!(run_sweep_parallel(&[7u32], |&x| x + 1), vec![8]);
    }
}

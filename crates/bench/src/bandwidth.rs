//! Bandwidth-aware vs compute-only dispatch under starved→surplus DRAM
//! channels (the `bandwidth_sweep` binary).
//!
//! PR 4's shared-DRAM arbiter made scale-out pay an honest bandwidth
//! penalty, but the sharding planner kept scoring candidate grids in
//! compute cycles — so a starved pod would still shard a big prefill
//! over four arrays, quadruple its demand weight, duplicate its operand
//! traffic, and sink every co-running decode. This sweep walks the
//! channel count from starved (1 channel for the whole pod) to surplus
//! (more channels than arrays) and, at each point, runs the identical
//! traffic under both planners ([`ShardPlanner::ComputeOnly`] vs
//! [`ShardPlanner::BandwidthAware`]):
//!
//! * When channels are **scarce** (`channels < arrays`) the
//!   bandwidth-aware planner must achieve a decode p99 no worse than
//!   the oblivious one at every point, and strictly better at the most
//!   starved point — asserted by [`assert_bandwidth_invariants`].
//! * Under [`MemoryModel::Unconstrained`] the planners must be
//!   indistinguishable: completions and metrics **bit-identical** —
//!   asserted by [`assert_planner_invariant_unconstrained`].
//!
//! See `docs/memory.md` for the measured table and
//! `docs/architecture.md` for where the planner sits in the stack.

use crate::series::Json;
use crate::sweep::run_sweep_parallel;
use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, MappingPolicy, MemoryModel, PodConfig, PodMetrics, RequestClass, ShardPlanner,
    TrafficConfig, WorkloadMix,
};

/// The sweep mix: decode-dominated traffic with a prefill fraction
/// heavy enough that shardable kernels regularly meet idle arrays.
pub fn bandwidth_mix() -> WorkloadMix {
    WorkloadMix::new(vec![
        (RequestClass::Decode, 0.75),
        (RequestClass::Prefill, 0.20),
        (RequestClass::Gemv, 0.05),
    ])
}

/// The sweep pod: `arrays` square `side x side` Axon arrays, the
/// paper's minimum-temporal mapping, `memory` and `planner` installed
/// (serving-default batching scheduler, so the comparison isolates the
/// sharding planner).
pub fn bandwidth_pod(
    arrays: usize,
    side: usize,
    memory: MemoryModel,
    planner: ShardPlanner,
) -> PodConfig {
    PodConfig::homogeneous(arrays, Architecture::Axon, side)
        .with_mapping(MappingPolicy::MinTemporal)
        .with_memory(memory)
        .with_planner(planner)
}

/// One planner's measured row at one channel count.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerRow {
    /// Planner label (`"oblivious"` or `"bandwidth-aware"`).
    pub planner: &'static str,
    /// Achieved throughput (completions over makespan).
    pub achieved_rps: f64,
    /// Decode-class end-to-end p99, microseconds.
    pub decode_p99_us: f64,
    /// All-class end-to-end p99, microseconds.
    pub total_p99_us: f64,
    /// Dispatches sharded over more than one array.
    pub sharded_batches: usize,
    /// Scale-out grids refused by the bandwidth-aware planner.
    pub sharding_refused: usize,
    /// Pod-wide bandwidth-stall time, milliseconds.
    pub stall_ms: f64,
}

impl PlannerRow {
    fn from_metrics(planner: &'static str, m: &PodMetrics) -> Self {
        PlannerRow {
            planner,
            achieved_rps: m.throughput_rps(),
            decode_p99_us: m
                .class_metrics(RequestClass::Decode)
                .map_or(0.0, |c| m.micros(c.total.p99)),
            total_p99_us: m.micros(m.total.p99),
            sharded_batches: m.sharded_batches,
            sharding_refused: m.sharding_refused,
            stall_ms: m.micros(m.bandwidth_stall_cycles) / 1e3,
        }
    }
}

/// Both planners measured at one channel count.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthPoint {
    /// Shared channels in the pod.
    pub channels: usize,
    /// Whether `channels < arrays` (the regime the planner exists for).
    pub starved: bool,
    /// The compute-only planner's row.
    pub oblivious: PlannerRow,
    /// The bandwidth-aware planner's row.
    pub aware: PlannerRow,
}

/// Measures both planners at every channel count in `channel_counts`
/// (deduplicated, ascending) on identical traffic: `per_array_rps *
/// arrays` offered load, `requests` requests, one shared `seed`.
pub fn bandwidth_sweep(
    arrays: usize,
    side: usize,
    channel_counts: &[usize],
    per_array_rps: f64,
    requests: usize,
    seed: u64,
) -> Vec<BandwidthPoint> {
    let mut channels: Vec<usize> = channel_counts.to_vec();
    channels.sort_unstable();
    channels.dedup();
    let offered_rps = per_array_rps * arrays as f64;
    run_sweep_parallel(&channels, |&c| {
        let memory = MemoryModel::Shared { channels: c };
        let measure = |planner: ShardPlanner, label: &'static str| {
            let pod = bandwidth_pod(arrays, side, memory, planner);
            let mean_interarrival = pod.clock_mhz * 1e6 / offered_rps;
            let traffic = TrafficConfig::open_loop(seed, requests, mean_interarrival)
                .with_mix(bandwidth_mix());
            PlannerRow::from_metrics(label, &simulate_pod(&pod, &traffic).metrics)
        };
        BandwidthPoint {
            channels: c,
            starved: c < arrays,
            oblivious: measure(ShardPlanner::ComputeOnly, "oblivious"),
            aware: measure(ShardPlanner::BandwidthAware, "bandwidth-aware"),
        }
    })
}

/// Asserts the planner's headline guarantee over a measured sweep:
/// wherever channels are scarce the bandwidth-aware planner's decode
/// p99 is no worse than the oblivious planner's, and at the most
/// starved point it is strictly better (and actually refused grids).
/// Panics with a diagnostic on violation; returns the points back for
/// chaining.
pub fn assert_bandwidth_invariants(points: &[BandwidthPoint]) -> &[BandwidthPoint] {
    let starved: Vec<&BandwidthPoint> = points.iter().filter(|p| p.starved).collect();
    assert!(
        !starved.is_empty(),
        "sweep must include at least one starved channel count"
    );
    for p in &starved {
        assert!(
            p.aware.decode_p99_us <= p.oblivious.decode_p99_us,
            "{} channels: bandwidth-aware decode p99 {:.1} us exceeds oblivious {:.1} us",
            p.channels,
            p.aware.decode_p99_us,
            p.oblivious.decode_p99_us
        );
    }
    let most_starved = starved
        .iter()
        .min_by_key(|p| p.channels)
        .expect("non-empty");
    assert!(
        most_starved.aware.decode_p99_us < most_starved.oblivious.decode_p99_us,
        "{} channels (most starved): decode p99 must strictly improve, got {:.1} vs {:.1} us",
        most_starved.channels,
        most_starved.aware.decode_p99_us,
        most_starved.oblivious.decode_p99_us
    );
    assert!(
        most_starved.aware.sharding_refused > 0,
        "most starved point should refuse at least one scale-out grid"
    );
    points
}

/// Asserts that the two planners are bit-identical under
/// [`MemoryModel::Unconstrained`] (there is no bandwidth to be aware
/// of, so the pre-contention results reproduce exactly under either).
pub fn assert_planner_invariant_unconstrained(
    arrays: usize,
    side: usize,
    per_array_rps: f64,
    requests: usize,
    seed: u64,
) {
    let offered_rps = per_array_rps * arrays as f64;
    let run = |planner: ShardPlanner| {
        let pod = bandwidth_pod(arrays, side, MemoryModel::Unconstrained, planner);
        let mean_interarrival = pod.clock_mhz * 1e6 / offered_rps;
        let traffic =
            TrafficConfig::open_loop(seed, requests, mean_interarrival).with_mix(bandwidth_mix());
        simulate_pod(&pod, &traffic)
    };
    let oblivious = run(ShardPlanner::ComputeOnly);
    let aware = run(ShardPlanner::BandwidthAware);
    assert_eq!(
        oblivious.completions, aware.completions,
        "unconstrained completions must be planner-invariant"
    );
    assert_eq!(
        oblivious.metrics, aware.metrics,
        "unconstrained metrics must be planner-invariant"
    );
    assert_eq!(aware.metrics.sharding_refused, 0);
    assert_eq!(aware.metrics.bandwidth_stall_cycles, 0);
}

/// Machine-readable form of the sweep.
pub fn bandwidth_sweep_to_json(arrays: usize, points: &[BandwidthPoint]) -> Json {
    let row = |r: &PlannerRow| {
        Json::obj([
            ("achieved_rps", Json::num(r.achieved_rps)),
            ("decode_p99_us", Json::num(r.decode_p99_us)),
            ("total_p99_us", Json::num(r.total_p99_us)),
            ("sharded_batches", Json::num(r.sharded_batches as f64)),
            ("sharding_refused", Json::num(r.sharding_refused as f64)),
            ("stall_ms", Json::num(r.stall_ms)),
        ])
    };
    Json::obj([
        ("arrays", Json::num(arrays as f64)),
        (
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("channels", Json::num(p.channels as f64)),
                    ("starved", Json::num(if p.starved { 1.0 } else { 0.0 })),
                    ("oblivious", row(&p.oblivious)),
                    ("bandwidth_aware", row(&p.aware)),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_is_planner_invariant() {
        assert_planner_invariant_unconstrained(4, 32, 20_000.0, 120, 2026);
    }

    #[test]
    fn json_shape_is_parseable() {
        let points = bandwidth_sweep(2, 32, &[1, 2], 20_000.0, 80, 2026);
        let j = bandwidth_sweep_to_json(2, &points).to_string();
        assert!(j.contains(r#""channels":1"#));
        assert!(j.contains(r#""bandwidth_aware""#));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}

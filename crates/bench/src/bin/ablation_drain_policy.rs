//! Ablation: drain-overlap policy. How much of Axon's reported speedup
//! depends on pipelining a tile's drain under the next tile's fill?
//!
//! `PerTile` bills the literal Table 2 forms (what the cycle-accurate
//! simulator measures for back-to-back tiles); `Overlapped` is the
//! steady-state regime the paper's Fig. 12/14 averages correspond to.

use axon_core::runtime::{Architecture, DrainPolicy, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow};
use axon_workloads::table3;

fn average(side: usize, drain: DrainPolicy) -> f64 {
    let ws = table3();
    let sum: f64 = ws
        .iter()
        .map(|w| {
            let spec = RuntimeSpec::new(ArrayShape::square(side), Dataflow::min_temporal(w.shape))
                .with_drain(drain);
            let sa = spec.runtime(Architecture::Conventional, w.shape);
            let ax = spec.runtime(Architecture::Axon, w.shape);
            sa.cycles as f64 / ax.cycles as f64
        })
        .sum();
    sum / ws.len() as f64
}

fn main() {
    println!("Ablation — drain policy vs average Table-3 speedup");
    println!(
        "{:>10}{:>14}{:>14}{:>12}",
        "array", "PerTile", "Overlapped", "delta"
    );
    for side in [16usize, 32, 64, 128, 256] {
        let per_tile = average(side, DrainPolicy::PerTile);
        let overlapped = average(side, DrainPolicy::Overlapped);
        println!(
            "{:>10}{:>13.3}x{:>13.3}x{:>11.3}x",
            format!("{side}x{side}"),
            per_tile,
            overlapped,
            overlapped - per_tile
        );
    }
    println!();
    println!("Square-array speedup under PerTile is capped at 1.5x; the paper's");
    println!(">1.5x averages and 'up to 2x' GEMV claim require drain overlap.");
}

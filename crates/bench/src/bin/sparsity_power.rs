//! §5.2.1 zero-gating power study: total-power reduction as a function of
//! operand sparsity (paper: 5.3% reduction at 10% sparsity), validated by
//! running the cycle-accurate simulator with zero gating on sparse
//! operands and feeding the measured gated-MAC fraction into the
//! calibrated power model.

use axon_core::runtime::Architecture;
use axon_core::{ArrayShape, GemmShape};
use axon_hw::{ComponentLibrary, ZeroGatingPower};
use axon_sim::{random_matrix, simulate_gemm, SimConfig};
use axon_workloads::sparsity_sweep;

fn main() {
    let lib = ComponentLibrary::calibrated_7nm();
    let gating = ZeroGatingPower::default();
    let shape = GemmShape::new(64, 64, 64);
    println!("Zero-gating power reduction vs operand sparsity (both operands)");
    println!(
        "{:>10}{:>16}{:>16}{:>14}{:>14}",
        "sparsity", "model gated-%", "sim gated-%", "model pwr -%", "sim pwr -%"
    );
    for s in sparsity_sweep(shape) {
        // Analytical gated fraction.
        let g_model = s.expected_gated_fraction();
        // Simulator-measured gated fraction on actual sparse operands.
        let a = random_matrix(shape.m, shape.k, 42, s.sparsity_a);
        let b = random_matrix(shape.k, shape.n, 43, s.sparsity_b);
        let cfg = SimConfig::new(ArrayShape::square(16)).with_zero_gating(true);
        let r = simulate_gemm(Architecture::Axon, &cfg, &a, &b).expect("valid operands");
        let g_sim = r.stats.gating_fraction();

        let pr = |g: f64| 100.0 * (1.0 - gating.power_factor(&lib, g));
        println!(
            "{:>9.0}%{:>15.1}%{:>15.1}%{:>13.2}%{:>13.2}%",
            s.sparsity_a * 100.0,
            100.0 * g_model,
            100.0 * g_sim,
            pr(g_model),
            pr(g_sim)
        );
    }
    println!();
    println!("paper: 5.3% total power reduction at 10% sparsity");
}

//! Ablation: DRAM traffic-model knobs — the M-tile refetch factor (array
//! rows) and the Axon-side fetch policy — against the paper's reported
//! absolute megabytes (ResNet50 261.2 -> 153.5 MB, YOLOv3 2540 -> 1117).

use axon_im2col::{DramTrafficModel, OnchipPolicy};
use axon_workloads::{resnet50, yolov3};

fn main() {
    println!("Ablation — DRAM model: array rows x on-chip policy (ifmap MB)");
    println!(
        "{:>6}{:>20}{:>12}{:>12}{:>8}",
        "rows", "policy", "sw MB", "axon MB", "ratio"
    );
    for net in [resnet50(), yolov3()] {
        println!("-- {} --", net.name());
        for rows in [16usize, 32, 64] {
            for (label, policy) in [
                ("mux-chain", OnchipPolicy::MuxChain),
                ("unique-ifmap", OnchipPolicy::UniqueOnly),
            ] {
                let model = DramTrafficModel {
                    array_rows: rows,
                    feeder_group: rows,
                    policy,
                    ..DramTrafficModel::default()
                };
                let t = net.dram_traffic(model);
                println!(
                    "{:>6}{:>20}{:>12.1}{:>12.1}{:>8.2}",
                    rows,
                    label,
                    t.software_ifmap_bytes as f64 / 1e6,
                    t.onchip_ifmap_bytes as f64 / 1e6,
                    t.software_ifmap_bytes as f64 / t.onchip_ifmap_bytes as f64
                );
            }
        }
    }
    println!();
    println!("rows=32 reproduces the paper's software-side megabytes for both");
    println!("networks; see EXPERIMENTS.md for the policy discussion.");
}

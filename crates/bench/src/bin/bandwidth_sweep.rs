//! Bandwidth-aware vs compute-only sharding under starved→surplus
//! DRAM channels.
//!
//! ```sh
//! cargo run --release -p axon-bench --bin bandwidth_sweep
//! cargo run --release -p axon-bench --bin bandwidth_sweep -- --smoke
//! cargo run --release -p axon-bench --bin bandwidth_sweep -- --json out.json
//! ```
//!
//! Computation in [`axon_bench::bandwidth`]; planner semantics in
//! `docs/memory.md` and `docs/architecture.md`. The binary asserts the
//! planner's guarantee — bandwidth-aware decode p99 no worse than the
//! oblivious planner's at every starved channel count, strictly better
//! at the most starved point — and that the two planners are
//! bit-identical under `MemoryModel::Unconstrained`.

use axon_bench::bandwidth::{
    assert_bandwidth_invariants, assert_planner_invariant_unconstrained, bandwidth_sweep,
    bandwidth_sweep_to_json, BandwidthPoint,
};
use axon_bench::series::json_path_from_args;

const SEED: u64 = 2026;
const ARRAYS: usize = 4;
const SIDE: usize = 128;
const PER_ARRAY_RPS: f64 = 300.0;

fn print_points(points: &[BandwidthPoint]) {
    println!(
        "{:>12}{:>17}{:>14}{:>13}{:>9}{:>9}{:>11}",
        "channels", "planner", "achieved/s", "decode p99", "sharded", "refused", "stall ms"
    );
    for p in points {
        let tag = if p.starved { " (starved)" } else { "" };
        for r in [&p.oblivious, &p.aware] {
            println!(
                "{:>12}{:>17}{:>14.0}{:>11.1}us{:>9}{:>9}{:>11.1}",
                format!("{}{tag}", p.channels),
                r.planner,
                r.achieved_rps,
                r.decode_p99_us,
                r.sharded_batches,
                r.sharding_refused,
                r.stall_ms
            );
        }
    }
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (channels, requests): (Vec<usize>, usize) = if smoke {
        (vec![1, 2, 4, 8], 300)
    } else {
        (vec![1, 2, 3, 4, 8], 900)
    };

    println!(
        "Bandwidth-aware dispatch sweep — {ARRAYS}x {SIDE}x{SIDE} Axon arrays, \
         75% decode / 20% prefill / 5% gemv, {PER_ARRAY_RPS:.0} req/s per array, \
         {requests} requests/point, seed {SEED}"
    );
    println!("(starved = fewer channels than arrays; surplus channel counts never contend)\n");

    let points = bandwidth_sweep(ARRAYS, SIDE, &channels, PER_ARRAY_RPS, requests, SEED);
    print_points(&points);
    assert_bandwidth_invariants(&points);

    let most_starved = points.iter().find(|p| p.starved).expect("starved point");
    println!(
        "at {} channel(s) the bandwidth-aware planner refuses {} scale-out grid(s) and \
         cuts decode p99 {:.2}x ({:.1} -> {:.1} us)",
        most_starved.channels,
        most_starved.aware.sharding_refused,
        most_starved.oblivious.decode_p99_us / most_starved.aware.decode_p99_us,
        most_starved.oblivious.decode_p99_us,
        most_starved.aware.decode_p99_us
    );

    assert_planner_invariant_unconstrained(ARRAYS, SIDE, PER_ARRAY_RPS, requests, SEED);
    println!("unconstrained runs are planner-invariant (bit-identical completions and metrics)");

    if let Some(path) = json_path_from_args() {
        let json = bandwidth_sweep_to_json(ARRAYS, &points);
        json.write_to_file(&path).expect("write --json output");
        println!("\nwrote {}", path.display());
    }
}

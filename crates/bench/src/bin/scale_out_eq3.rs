//! Eq. 3 validation: scale-out runtime, analytical model vs the
//! cycle-accurate ensemble simulation.
//!
//! `tau_scaleout = (2R + C + T - 2) * ceil(S'_R/R) * ceil(S'_C/C)` with
//! `S' = S / P`; the ensemble simulator partitions the operands, runs
//! every array and reports the makespan.

use axon_core::runtime::{Accounting, Architecture, DrainPolicy, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow, GemmShape, Tiling};
use axon_sim::{random_matrix, simulate_gemm_scale_out, SimConfig};

fn main() {
    println!("Eq. 3 — scale-out: model vs ensemble simulation (OS dataflow)");
    println!(
        "{:>14}{:>8}{:>12}{:>14}{:>14}",
        "GEMM", "P_RxP_C", "model cyc", "sim makespan", "match"
    );
    let array = ArrayShape::square(8);
    for (g, pr, pc) in [
        (GemmShape::new(32, 10, 32), 2usize, 2usize),
        (GemmShape::new(48, 6, 24), 3, 1),
        (GemmShape::new(24, 16, 48), 2, 3),
        (GemmShape::new(17, 5, 19), 2, 2), // ragged slices
    ] {
        let spec = RuntimeSpec::new(array, Dataflow::Os)
            .with_tiling(Tiling::ScaleOut {
                partitions_r: pr,
                partitions_c: pc,
            })
            .with_accounting(Accounting::ExactEdges)
            .with_drain(DrainPolicy::PerTile);
        // The model's per-array cycle count is the makespan of the
        // largest slice; ExactEdges accounts ragged tiles like the sim.
        let model = spec.runtime(Architecture::Axon, g).cycles;

        let a = random_matrix(g.m, g.k, 1, 0.0);
        let b = random_matrix(g.k, g.n, 2, 0.0);
        let cfg = SimConfig::new(array);
        let run = simulate_gemm_scale_out(Architecture::Axon, &cfg, pr, pc, &a, &b)
            .expect("valid operands");
        assert_eq!(run.output, a.matmul(&b), "functional check");

        println!(
            "{:>14}{:>8}{:>12}{:>14}{:>14}",
            format!("{}x{}x{}", g.m, g.k, g.n),
            format!("{pr}x{pc}"),
            model,
            run.makespan_cycles,
            if model == run.makespan_cycles {
                "EXACT"
            } else {
                "within slice rounding"
            }
        );
    }
    println!();
    println!("Makespans agree with Eq. 3 whenever the partition divides the");
    println!("spatial dims evenly; ragged slices differ only by the smaller");
    println!("edge-slice geometry, which the ExactEdges model also captures");
    println!("when evaluated per slice.");
}

//! Table 2: closed-form runtimes of conventional SA vs Axon for all three
//! dataflows, cross-checked against the cycle-accurate simulator.
//!
//! The simulator executes real (small) GEMMs whose spatial dims fit the
//! array; its measured cycle counts must equal the closed forms exactly.

use axon_core::runtime::{table2_runtime, Architecture};
use axon_core::{ArrayShape, Dataflow, GemmShape};
use axon_sim::{random_matrix, simulate_gemm, SimConfig};

fn main() {
    println!("Table 2 — runtime closed forms, validated by simulation");
    println!(
        "{:<6}{:<12}{:>10}{:>10}{:>10}{:>10}{:>9}",
        "df", "M,K,N", "SA form", "SA sim", "Axon form", "Axon sim", "speedup"
    );

    // Shapes chosen so the mapped spatial dims fit a 16x16 array
    // (single tile), making the closed forms exact.
    let cases = [
        (Dataflow::Os, GemmShape::new(16, 40, 16)),
        (Dataflow::Os, GemmShape::new(12, 64, 16)),
        (Dataflow::Ws, GemmShape::new(16, 16, 40)),
        (Dataflow::Ws, GemmShape::new(10, 16, 25)),
        (Dataflow::Is, GemmShape::new(40, 16, 16)),
        (Dataflow::Is, GemmShape::new(33, 16, 9)),
    ];

    let mut all_match = true;
    for (df, g) in cases {
        let a = random_matrix(g.m, g.k, 7, 0.0);
        let b = random_matrix(g.k, g.n, 8, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(16)).with_dataflow(df);
        let sa_sim = simulate_gemm(Architecture::Conventional, &cfg, &a, &b)
            .expect("valid operands")
            .stats
            .cycles;
        let ax_sim = simulate_gemm(Architecture::Axon, &cfg, &a, &b)
            .expect("valid operands")
            .stats
            .cycles;
        let sa_form = table2_runtime(Architecture::Conventional, df, g);
        let ax_form = table2_runtime(Architecture::Axon, df, g);
        let ok = sa_sim == sa_form && ax_sim == ax_form;
        all_match &= ok;
        println!(
            "{:<6}{:<12}{:>10}{:>10}{:>10}{:>10}{:>8.2}x{}",
            df.name(),
            format!("{},{},{}", g.m, g.k, g.n),
            sa_form,
            sa_sim,
            ax_form,
            ax_sim,
            sa_form as f64 / ax_form as f64,
            if ok { "" } else { "  MISMATCH" }
        );
    }
    println!();
    println!(
        "closed forms (Table 2):\n  OS : SA 2M+K+N-2      Axon max(M,N)+M+K-1\n  WS : SA 2K+M+N-2      Axon max(M,K)+K+N-1\n  IS : SA 2K+M+N-2      Axon max(N,K)+K+M-1"
    );
    println!(
        "simulator vs closed forms: {}",
        if all_match {
            "ALL MATCH"
        } else {
            "MISMATCH FOUND"
        }
    );
}

//! Simulator self-benchmark: measures requests-simulated-per-wall-second
//! on the pinned perf scenario and gates against the committed
//! `BENCH_<n>.json` trajectory (>20% throughput loss fails).
//!
//! ```sh
//! cargo run --release -p axon-bench --bin perf_baseline
//! cargo run --release -p axon-bench --bin perf_baseline -- --smoke
//! cargo run --release -p axon-bench --bin perf_baseline -- --smoke --json out.json
//! cargo run --release -p axon-bench --bin perf_baseline -- --baseline BENCH_7.json
//! cargo run --release -p axon-bench --bin perf_baseline -- --smoke --budget-s 60
//! cargo run --release -p axon-bench --bin perf_baseline -- --reps 9
//! ```
//!
//! Measurement and gate live in [`axon_bench::perf`]; the schema is
//! documented in `docs/observability.md`. Full (non-smoke) mode times
//! its repetitions concurrently via `run_sweep_parallel` — the best-of-N
//! pick and every deterministic counter are independent of thread
//! timing (see `perf::measure_parallel`); `--smoke` stays serial so the
//! CI smoke number is comparable across runners regardless of core
//! count. Without `--baseline`, the gate compares against the
//! highest-index `BENCH_<n>.json` in the current directory and **skips
//! gracefully** when none exists (the first run of a fresh checkout has
//! nothing to regress against). Exits non-zero on a confirmed
//! regression, a blown `--budget-s`, or an invalid flag value.

use axon_bench::perf::{
    delta_line, find_baseline, measure, measure_parallel, regression_vs, PerfReport, MAX_SLOWDOWN,
};
use axon_bench::series::json_path_from_args;
use std::path::PathBuf;

/// Parsed command line. Every value flag is validated up front: a
/// malformed `--reps`/`--budget-s` is a hard error, not a silently
/// ignored or half-applied setting.
#[derive(Debug, PartialEq)]
struct Opts {
    smoke: bool,
    /// Override for the mode's default repetition count.
    reps: Option<usize>,
    budget_s: Option<f64>,
    baseline: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        smoke: false,
        reps: None,
        budget_s: None,
        baseline: None,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .ok_or(format!("{} requires a value", args[i]))
        };
        match args[i].as_str() {
            "--smoke" => i += 1,
            "--reps" => {
                let v = value(i)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--reps takes a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--reps must be at least 1".to_string());
                }
                opts.reps = Some(n);
                i += 2;
            }
            "--budget-s" => {
                let v = value(i)?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("--budget-s takes seconds, got `{v}`"))?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!(
                        "--budget-s must be a positive finite number of seconds, got `{v}`"
                    ));
                }
                opts.budget_s = Some(s);
                i += 2;
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(value(i)?));
                i += 2;
            }
            // `--json <path>` is handled by `json_path_from_args` (the
            // convention every bench binary shares); skip its value.
            "--json" => i += 2,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Re-scan for --smoke anywhere (it may precede a value we skipped).
    opts.smoke = args.iter().any(|a| a == "--smoke");
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            std::process::exit(2);
        }
    };
    // Smoke reps rose 3 -> 9 when round 2 pushed a rep under ~25ms of
    // wall clock: best-of-N over sub-hiccup reps needs a larger N for
    // the max estimator to stabilize, and 9 reps still finish in well
    // under a second. The deterministic counters are unaffected.
    let (requests, default_reps) = if opts.smoke { (300, 9) } else { (1200, 5) };
    let reps = opts.reps.unwrap_or(default_reps);

    println!(
        "Simulator self-benchmark — pinned perf scenario, {requests} requests, best of {reps} reps"
    );
    let current = if opts.smoke {
        measure(requests, reps)
    } else {
        measure_parallel(requests, reps)
    };
    println!(
        "  {:>10.0} requests/wall-second  ({} requests in {:.3}s)",
        current.requests_per_wall_s, current.requests, current.wall_s
    );
    println!(
        "  {:>10} events, {} dispatches, {} retime passes ({:.1} jobs/pass)",
        current.events, current.dispatches, current.retime_passes, current.mean_jobs_per_retime
    );
    println!(
        "  {:>10} plan-cache hits, {} misses, {} grids scored",
        current.plan_cache_hits, current.plan_cache_misses, current.plan_grids_scored
    );
    println!(
        "  {:>10} admitted, {} shed",
        current.requests_admitted, current.requests_shed
    );

    if let Some(budget_s) = opts.budget_s {
        if current.wall_s > budget_s {
            eprintln!(
                "wall-clock budget FAILED: best rep took {:.3}s, budget {budget_s:.3}s",
                current.wall_s
            );
            std::process::exit(1);
        }
        println!(
            "wall-clock budget ok: {:.3}s <= {budget_s:.3}s",
            current.wall_s
        );
    }

    if let Some(path) = json_path_from_args() {
        current
            .to_json()
            .write_to_file(&path)
            .expect("write --json output");
        println!("wrote {}", path.display());
    }

    let baseline = match opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let report = PerfReport::from_json_str(&text)
                .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
            Some((path, report))
        }
        None => find_baseline(&std::env::current_dir().expect("cwd")),
    };
    let Some((path, baseline)) = baseline else {
        println!("no committed BENCH_<n>.json baseline found — skipping the regression gate");
        return;
    };

    println!(
        "baseline {} (BENCH_{}): {:.0} requests/wall-second, gate at -{:.0}%",
        path.display(),
        baseline.bench_index,
        baseline.requests_per_wall_s,
        MAX_SLOWDOWN * 100.0
    );
    println!("delta: {}", delta_line(&current, &baseline));
    match regression_vs(&current, &baseline) {
        Ok(warnings) => {
            for w in &warnings {
                println!("  note: {w}");
            }
            println!("perf gate passed");
        }
        Err(e) => {
            eprintln!("perf gate FAILED: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn valid_flags_parse() {
        let opts = parse_opts(&args(&[
            "--smoke",
            "--reps",
            "7",
            "--budget-s",
            "1.5",
            "--baseline",
            "BENCH_7.json",
            "--json",
            "out.json",
        ]))
        .unwrap();
        assert!(opts.smoke);
        assert_eq!(opts.reps, Some(7));
        assert_eq!(opts.budget_s, Some(1.5));
        assert_eq!(opts.baseline, Some(PathBuf::from("BENCH_7.json")));
    }

    #[test]
    fn defaults_are_empty() {
        let opts = parse_opts(&[]).unwrap();
        assert_eq!(
            opts,
            Opts {
                smoke: false,
                reps: None,
                budget_s: None,
                baseline: None
            }
        );
    }

    #[test]
    fn invalid_reps_are_rejected() {
        for bad in [&["--reps", "0"][..], &["--reps", "three"], &["--reps"]] {
            let err = parse_opts(&args(bad)).unwrap_err();
            assert!(err.contains("--reps"), "{bad:?}: {err}");
        }
        // A following flag is not a value.
        let err = parse_opts(&args(&["--reps", "--smoke"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn invalid_budgets_are_rejected() {
        for bad in [
            &["--budget-s", "-1"][..],
            &["--budget-s", "0"],
            &["--budget-s", "NaN"],
            &["--budget-s", "inf"],
            &["--budget-s", "soon"],
            &["--budget-s"],
        ] {
            let err = parse_opts(&args(bad)).unwrap_err();
            assert!(err.contains("--budget-s"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse_opts(&args(&["--warmup", "2"])).unwrap_err();
        assert!(err.contains("--warmup"), "{err}");
    }
}

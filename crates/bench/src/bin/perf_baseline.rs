//! Simulator self-benchmark: measures requests-simulated-per-wall-second
//! on the pinned perf scenario and gates against the committed
//! `BENCH_<n>.json` trajectory (>20% throughput loss fails).
//!
//! ```sh
//! cargo run --release -p axon-bench --bin perf_baseline
//! cargo run --release -p axon-bench --bin perf_baseline -- --smoke
//! cargo run --release -p axon-bench --bin perf_baseline -- --smoke --json out.json
//! cargo run --release -p axon-bench --bin perf_baseline -- --baseline BENCH_7.json
//! cargo run --release -p axon-bench --bin perf_baseline -- --smoke --budget-s 60
//! ```
//!
//! Measurement and gate live in [`axon_bench::perf`]; the schema is
//! documented in `docs/observability.md`. Without `--baseline`, the
//! gate compares against the highest-index `BENCH_<n>.json` in the
//! current directory and **skips gracefully** when none exists (the
//! first run of a fresh checkout has nothing to regress against).
//! Exits non-zero only on a confirmed regression.

use axon_bench::perf::{
    delta_line, find_baseline, measure, regression_vs, PerfReport, MAX_SLOWDOWN,
};
use axon_bench::series::json_path_from_args;
use std::path::PathBuf;

fn baseline_flag() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// `--budget-s <seconds>`: fail when the best repetition's wall clock
/// exceeds the budget (the CI guard against the benchmark itself
/// growing unboundedly slow).
fn budget_flag() -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--budget-s")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--budget-s takes seconds (f64)"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (requests, reps) = if smoke { (300, 3) } else { (1200, 5) };

    println!(
        "Simulator self-benchmark — pinned perf scenario, {requests} requests, best of {reps} reps"
    );
    let current = measure(requests, reps);
    println!(
        "  {:>10.0} requests/wall-second  ({} requests in {:.3}s)",
        current.requests_per_wall_s, current.requests, current.wall_s
    );
    println!(
        "  {:>10} events, {} dispatches, {} retime passes ({:.1} jobs/pass)",
        current.events, current.dispatches, current.retime_passes, current.mean_jobs_per_retime
    );

    if let Some(budget_s) = budget_flag() {
        if current.wall_s > budget_s {
            eprintln!(
                "wall-clock budget FAILED: best rep took {:.3}s, budget {budget_s:.3}s",
                current.wall_s
            );
            std::process::exit(1);
        }
        println!(
            "wall-clock budget ok: {:.3}s <= {budget_s:.3}s",
            current.wall_s
        );
    }

    if let Some(path) = json_path_from_args() {
        current
            .to_json()
            .write_to_file(&path)
            .expect("write --json output");
        println!("wrote {}", path.display());
    }

    let baseline = match baseline_flag() {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let report = PerfReport::from_json_str(&text)
                .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
            Some((path, report))
        }
        None => find_baseline(&std::env::current_dir().expect("cwd")),
    };
    let Some((path, baseline)) = baseline else {
        println!("no committed BENCH_<n>.json baseline found — skipping the regression gate");
        return;
    };

    println!(
        "baseline {} (BENCH_{}): {:.0} requests/wall-second, gate at -{:.0}%",
        path.display(),
        baseline.bench_index,
        baseline.requests_per_wall_s,
        MAX_SLOWDOWN * 100.0
    );
    println!("delta: {}", delta_line(&current, &baseline));
    match regression_vs(&current, &baseline) {
        Ok(warnings) => {
            for w in &warnings {
                println!("  note: {w}");
            }
            println!("perf gate passed");
        }
        Err(e) => {
            eprintln!("perf gate FAILED: {e}");
            std::process::exit(1);
        }
    }
}

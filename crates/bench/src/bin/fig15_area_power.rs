//! Fig. 15: area and power of Axon (with im2col MUXes) versus a
//! Sauria-style feeder array, swept over array sizes at 45 nm and 7 nm.
//!
//! Paper: Axon averages ~3.93% less area and ~4.5% less power than
//! Sauria because a 2-to-1 MUX replaces the feeder's registers/counters.

use axon_hw::{sweep_vs_sauria, ComponentLibrary, TechNode};

fn main() {
    let lib = ComponentLibrary::calibrated_7nm();
    let sides = [8usize, 16, 32, 64, 128];
    for node in TechNode::paper_nodes() {
        println!("Fig. 15 — {} node", node);
        println!(
            "{:>8}{:>14}{:>14}{:>10}{:>12}{:>12}{:>10}",
            "array", "Axon mm^2", "Sauria mm^2", "area -%", "Axon mW", "Sauria mW", "pwr -%"
        );
        let pts = sweep_vs_sauria(node, &sides, &lib);
        let mut area_sum = 0.0;
        let mut power_sum = 0.0;
        for p in &pts {
            area_sum += p.area_advantage_pct();
            power_sum += p.power_advantage_pct();
            println!(
                "{:>8}{:>14.4}{:>14.4}{:>9.2}%{:>12.2}{:>12.2}{:>9.2}%",
                format!("{0}x{0}", p.side),
                p.axon.area_mm2,
                p.sauria.area_mm2,
                p.area_advantage_pct(),
                p.axon.power_mw,
                p.sauria.power_mw,
                p.power_advantage_pct()
            );
        }
        println!(
            "{:>8}{:>37}{:>9.2}%{:>24}{:>9.2}%",
            "AVG",
            "",
            area_sum / pts.len() as f64,
            "",
            power_sum / pts.len() as f64
        );
        println!();
    }
    println!("paper: Axon averages 3.93% less area and 4.5% less power than Sauria");
}

//! Fig. 6: the fill-latency factor — cycles for operands to reach the
//! farthest PE — for the conventional orchestration
//! (`f1(R,C) = R + C - 2`) versus Axon (`f2(R,C) = max(R,C) - 1`).

use axon_core::cmsa::cmsa_tile_fill;
use axon_core::runtime::{axon_tile_fill, sa_tile_fill};

fn main() {
    println!("Fig. 6 — operand fill factor (cycles to farthest PE)");
    println!(
        "{:>6}{:>6}{:>12}{:>12}{:>12}{:>10}",
        "R", "C", "f1 (SA)", "f2 (Axon)", "CMSA", "f1/f2"
    );
    // Square sweep (the paper's headline: 256x256 drops 510 -> 255).
    for side in [4usize, 8, 16, 32, 64, 128, 256, 512, 1024] {
        row(side, side);
    }
    println!();
    // Rectangular shapes: improvement shrinks but stays >= 1.
    for (r, c) in [
        (16usize, 64usize),
        (64, 16),
        (32, 256),
        (256, 32),
        (8, 1024),
    ] {
        row(r, c);
    }
}

fn row(r: usize, c: usize) {
    let f1 = sa_tile_fill(r, c);
    let f2 = axon_tile_fill(r, c);
    println!(
        "{:>6}{:>6}{:>12}{:>12}{:>12}{:>10.3}",
        r,
        c,
        f1,
        f2,
        cmsa_tile_fill(r, c),
        f1 as f64 / f2 as f64
    );
}

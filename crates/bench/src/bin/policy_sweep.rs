//! Scheduling-policy load sweep on one Axon pod (4x 128x128 arrays):
//! FIFO vs coalescing vs EDF vs EDF+preemption vs continuous batching
//! vs WFQ, on identical mixed SLO-class traffic per load point.
//!
//! ```sh
//! cargo run --release -p axon-bench --bin policy_sweep
//! cargo run --release -p axon-bench --bin policy_sweep -- --smoke
//! cargo run --release -p axon-bench --bin policy_sweep -- --json out.json
//! ```
//!
//! Computation in [`axon_bench::policy`]; policy semantics are
//! documented in `docs/scheduling.md`. The binary asserts the headline
//! result: EDF with continuous batching achieves strictly lower decode
//! p99 than FIFO at one or more swept loads.

use axon_bench::policy::{
    decode_p99_wins, policy_ladder, policy_sweep, policy_sweep_to_json, PolicyCurve,
};
use axon_bench::series::json_path_from_args;

const SEED: u64 = 2026;
const ARRAYS: usize = 4;
const SIDE: usize = 128;

fn print_curve(c: &PolicyCurve) {
    println!("--- {} ---", c.policy.label);
    println!(
        "{:>12}{:>12}{:>12}{:>13}{:>10}{:>13}{:>8}{:>9}{:>8}",
        "offered/s",
        "achieved/s",
        "goodput/s",
        "decode p99us",
        "dec viol",
        "prefill p99us",
        "batch",
        "preempt",
        "joins"
    );
    for p in &c.points {
        println!(
            "{:>12.0}{:>12.0}{:>12.0}{:>13.1}{:>10}{:>13.1}{:>8.2}{:>9}{:>8}",
            p.offered_rps,
            p.achieved_rps,
            p.goodput_rps,
            p.decode_p99_us,
            p.decode_violations,
            p.prefill_p99_us,
            p.mean_batch,
            p.preemptions,
            p.inflight_joins
        );
    }
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (loads, requests): (Vec<f64>, usize) = if smoke {
        (vec![60_000.0, 120_000.0, 200_000.0], 400)
    } else {
        (
            vec![
                30_000.0, 60_000.0, 100_000.0, 140_000.0, 180_000.0, 220_000.0, 260_000.0,
            ],
            2000,
        )
    };

    println!(
        "Scheduling-policy sweep — {ARRAYS}x {SIDE}x{SIDE} Axon pod, mixed SLO classes \
         (80% decode / 15% prefill / 5% gemv), seed {SEED}, {requests} requests/point"
    );
    println!("(identical request traces into every policy at each offered load)\n");

    let curves: Vec<PolicyCurve> = policy_ladder()
        .into_iter()
        .map(|p| policy_sweep(p, ARRAYS, SIDE, &loads, requests, SEED))
        .collect();
    for c in &curves {
        print_curve(c);
    }

    let fifo = curves
        .iter()
        .find(|c| c.policy.label == "fifo")
        .expect("ladder contains fifo");
    let cont = curves
        .iter()
        .find(|c| c.policy.label == "cont")
        .expect("ladder contains cont");
    let wins = decode_p99_wins(cont, fifo);
    assert!(
        !wins.is_empty(),
        "expected EDF + continuous batching to achieve strictly lower decode p99 \
         than FIFO at >= 1 swept load"
    );
    println!(
        "EDF + continuous batching beats FIFO decode p99 at {} of {} loads: {:?} req/s",
        wins.len(),
        loads.len(),
        wins
    );
    println!("\nhead-of-line blocking by loose-deadline prefills is the FIFO tail;");
    println!("deadline-ordered dispatch + in-flight decode joins remove it.");

    if let Some(path) = json_path_from_args() {
        let json = policy_sweep_to_json(&curves);
        json.write_to_file(&path).expect("write --json output");
        println!("\nwrote {}", path.display());
    }
}

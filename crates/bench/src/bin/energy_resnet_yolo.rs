//! §5.2.1 energy analysis: DRAM traffic, inference energy and the
//! bandwidth-limited speedup for ResNet-50 and YOLOv3 conv layers.
//!
//! Paper: ResNet50 261.2 -> 153.5 MB (saving ~12 mJ), YOLOv3 2540 ->
//! 1117 MB (saving ~170 mJ) at LPDDR3's 120 pJ/byte, and ~1.25x
//! throughput from the reduced traffic on a 6.4 GB/s interface.

use axon_core::runtime::{Architecture, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow};
use axon_im2col::{DramTrafficModel, OnchipPolicy};
use axon_mem::{BandwidthModel, DramConfig, EnergyReport};
use axon_workloads::{resnet50, yolov3, ConvNet};

fn main() {
    let dram = DramConfig::lpddr3();
    println!("§5.2.1 — conv-layer DRAM traffic, energy and bandwidth speedup");
    println!("DRAM: {dram}");
    println!();

    for net in [resnet50(), yolov3()] {
        println!("== {net} ==");
        for (label, policy) in [
            ("mux-chain feeder", OnchipPolicy::MuxChain),
            ("unique-ifmap ideal", OnchipPolicy::UniqueOnly),
        ] {
            let model = DramTrafficModel {
                policy,
                ..DramTrafficModel::default()
            };
            let t = net.dram_traffic(model);
            let report = EnergyReport::new(&dram, t.software_ifmap_bytes, t.onchip_ifmap_bytes);
            println!("  [{label}] ifmap stream: {report}");
        }
        bandwidth_speedup(&net);
        println!();
    }
    println!("paper: ResNet50 261.2 -> 153.5 MB (~12 mJ saved);");
    println!("       YOLOv3 2540 -> 1117 MB (~170 mJ saved); ~1.25x speedup");
}

/// Bandwidth-limited throughput gain: compute cycles from the Axon
/// runtime model at 16x16 (the implemented array), traffic from the DRAM
/// model, rooflined against LPDDR3.
fn bandwidth_speedup(net: &ConvNet) {
    // 500 MHz array clock for the implemented 16x16 configuration — the
    // regime where conv layers are partially memory-bound, matching the
    // paper's ~1.25x observation.
    let model = DramTrafficModel::default();
    let bw = BandwidthModel::new(500.0, DramConfig::lpddr3());
    let spec = RuntimeSpec::new(ArrayShape::square(16), Dataflow::Os);
    let mut compute_cycles = 0usize;
    for (l, c) in net.layers() {
        let rep = spec.runtime(Architecture::Axon, l.gemm_shape());
        compute_cycles += rep.cycles * c;
    }
    let t = net.dram_traffic(model);
    let before = t.software_ifmap_bytes + t.filter_bytes + t.ofmap_bytes;
    let after = t.onchip_ifmap_bytes + t.filter_bytes + t.ofmap_bytes;
    let s = bw.traffic_reduction_speedup(compute_cycles, before, after);
    println!("  bandwidth-limited speedup from im2col traffic cut: {s:.2}x (paper ~1.25x)");
}

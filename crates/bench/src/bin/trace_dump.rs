//! Request-lifecycle trace dump: runs a cluster scenario with a
//! recording [`TraceSink`](axon_serve::TraceSink) attached and writes
//! the Chrome trace-event JSON (open it at <https://ui.perfetto.dev>
//! or `chrome://tracing`), plus an aggregated text summary.
//!
//! ```sh
//! cargo run --release -p axon-bench --bin trace_dump
//! cargo run --release -p axon-bench --bin trace_dump -- --smoke
//! cargo run --release -p axon-bench --bin trace_dump -- --json axon.trace.json
//! ```
//!
//! The canned scenario exercises nearly the whole event taxonomy (see
//! `docs/observability.md`): a heterogeneous fleet with shared-DRAM
//! pods (retimes, bandwidth epochs), continuous batching (in-flight
//! joins), tile-boundary preemption (preempt/drain/resume), a mid-run
//! pod failure (reroutes) and a deterministic autoscaler (scale-ups).
//! (`ShardPlanned` needs idle peer arrays, which an overloaded fleet
//! never has; the sharding events are covered by the serve tests.)
//! The binary asserts the tracing contract: the traced run is
//! bit-identical to the untraced one, and the event stream satisfies
//! the lifecycle conservation laws.

use axon_bench::series::json_path_from_args;
use axon_core::runtime::Architecture;
use axon_serve::{
    check_conservation, chrome_trace_json, simulate_cluster, simulate_cluster_traced,
    AggregatingSink, AutoscaleConfig, ClusterConfig, ClusterPodConfig, MemoryModel, PodConfig,
    PreemptionMode, RecordingSink, RequestClass, RouterPolicy, SchedulerPolicy, SloBudgets,
    TrafficConfig, WorkloadMix,
};
use std::path::PathBuf;

const SEED: u64 = 2026;

fn scenario_cluster() -> ClusterConfig {
    // Few large arrays + long prefills + tight decode SLOs: the recipe
    // that makes tile-boundary preemption actually fire (see the
    // preemption tests in crates/serve/tests/policies.rs).
    let hot = PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
        .with_memory(MemoryModel::Shared { channels: 1 })
        .with_preemption(PreemptionMode::TileBoundary);
    let cold = PodConfig::homogeneous(2, Architecture::Conventional, 64)
        .with_scheduler(SchedulerPolicy::Batching { max_batch: 8 });
    let pods = vec![
        ClusterPodConfig::new(hot.clone()),
        // Dies mid-run: finished work survives, the rest re-routes.
        ClusterPodConfig::new(hot).with_fail_at(2_000_000),
        ClusterPodConfig::new(cold.clone()),
        // Spare: activated by the autoscaler once the fleet backs up.
        ClusterPodConfig::new(cold),
    ];
    ClusterConfig::new(pods, RouterPolicy::JoinShortestQueue)
        .with_autoscale(AutoscaleConfig::new(2, 2, 1, 100_000))
}

fn scenario_traffic(requests: usize) -> TrafficConfig {
    TrafficConfig::open_loop(SEED, requests, 150_000.0)
        .with_mix(WorkloadMix::new(vec![
            (RequestClass::Decode, 0.80),
            (RequestClass::Prefill, 0.15),
            (RequestClass::Gemv, 0.05),
        ]))
        .with_clients(24)
        .with_slo(SloBudgets::serving_default().with_decode(70_000))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests = if smoke { 150 } else { 500 };
    let cluster = scenario_cluster();
    let traffic = scenario_traffic(requests);
    let clock_mhz = cluster.pods[0].pod.clock_mhz;

    println!(
        "Trace dump — 2x Axon shared-DRAM pods (one fails mid-run) + 2x Conventional pods \
         (one autoscaled), JSQ router, seed {SEED}, {requests} requests"
    );

    let mut rec = RecordingSink::default();
    let traced = simulate_cluster_traced(&cluster, &traffic, &mut rec);

    // The tracing contract: the sink observes, never perturbs.
    let untraced = simulate_cluster(&cluster, &traffic);
    assert_eq!(traced, untraced, "tracing must not change the simulation");
    println!("observer neutrality: traced == untraced, bit for bit");

    check_conservation(&rec.events).expect("lifecycle conservation");
    println!(
        "conservation: every Arrived reached exactly one terminal event \
         ({} events total)\n",
        rec.events.len()
    );

    let mut agg = AggregatingSink::default();
    agg.replay(&rec.events);
    println!("event counts:");
    for (name, count) in &agg.event_counts {
        println!("  {name:<20}{count:>8}");
    }
    println!(
        "\npeak queue depth {} requests, peak {} busy arrays",
        agg.max_queue_depth(),
        agg.max_busy_arrays()
    );
    println!(
        "phase means over {} completions: queue {:.0} cycles, service {:.0} cycles, \
         bandwidth stall {:.0} cycles",
        agg.queue_hist.count,
        agg.queue_hist.mean(),
        agg.service_hist.mean(),
        agg.stall_hist.mean()
    );
    let m = &traced.metrics;
    println!(
        "fleet: {} completed, {} rerouted off {} failed pod(s), {} scale-up(s), \
         {} scale-down(s)",
        m.completed, m.rerouted, m.failed_pods, m.scale_ups, m.scale_downs
    );
    assert!(
        m.failed_pods >= 1,
        "scenario must exercise the failure path"
    );
    assert!(
        m.rerouted >= 1,
        "scenario must reroute work off the dead pod"
    );

    let path = json_path_from_args().unwrap_or_else(|| PathBuf::from("axon.trace.json"));
    let json = chrome_trace_json(&rec.events, clock_mhz);
    std::fs::write(&path, &json).expect("write trace JSON");
    println!(
        "\nwrote {} ({} bytes) — load it at https://ui.perfetto.dev",
        path.display(),
        json.len()
    );
}

//! Fig. 11: memory-access reduction of Axon's on-chip im2col for conv
//! shapes adopted from SOTA neural networks (paper claim: >60% for
//! typical shapes).

use axon_im2col::{access_reduction_pct, onchip_ifmap_loads, software_ifmap_loads};
use axon_workloads::fig11_shapes;

fn main() {
    let group = 16; // diagonal feeders of the implemented 16x16 array
    println!("Fig. 11 — ifmap memory-access reduction from on-chip im2col");
    println!("(feeder chain length {group}, per-tile ifmap stream)");
    println!(
        "{:<28}{:>6}{:>6}{:>14}{:>14}{:>12}",
        "conv shape", "k", "s", "sw loads", "axon loads", "reduction"
    );
    for nc in fig11_shapes() {
        let sw = software_ifmap_loads(&nc.layer);
        let hw = onchip_ifmap_loads(&nc.layer, group);
        println!(
            "{:<28}{:>6}{:>6}{:>14}{:>14}{:>11.1}%",
            nc.name,
            nc.layer.kernel,
            nc.layer.stride,
            sw,
            hw,
            access_reduction_pct(&nc.layer, group)
        );
    }
    println!();
    println!("paper: memory access reduced by more than 60% for SOTA conv shapes");
}

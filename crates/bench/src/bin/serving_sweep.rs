//! Serving load sweep: latency/throughput curves for a Conventional vs
//! an Axon pod (4x 128x128 arrays) on decode-heavy traffic, plus the
//! sustainable-throughput comparison at p99 SLO targets.
//!
//! ```sh
//! cargo run --release -p axon-bench --bin serving_sweep
//! cargo run --release -p axon-bench --bin serving_sweep -- --smoke
//! cargo run --release -p axon-bench --bin serving_sweep -- --json out.json
//! ```
//!
//! Computation in [`axon_bench::serving`]; both pods use the paper's
//! minimum-temporal mapping, the batching scheduler (max batch 8) and
//! scale-out sharding of large prefills.

use axon_bench::series::json_path_from_args;
use axon_bench::serving::{load_sweep, sustainable_rps, sweep_to_json, ServingCurve};
use axon_core::runtime::Architecture;

const SEED: u64 = 2025;
const ARRAYS: usize = 4;
const SIDE: usize = 128;
// Tail targets spanning tight to relaxed; the tail is set by the large
// recommender GEMVs in the mix, whose service time alone is ~1 ms on the
// conventional pod.
const SLOS_US: [f64; 3] = [1_500.0, 3_000.0, 8_000.0];

fn print_curve(c: &ServingCurve) {
    println!("--- {} pod ({ARRAYS}x {SIDE}x{SIDE}) ---", c.label);
    println!(
        "{:>12}{:>12}{:>10}{:>10}{:>10}{:>8}{:>8}{:>12}",
        "offered/s", "achieved/s", "p50 us", "p95 us", "p99 us", "batch", "util", "mJ/req"
    );
    for p in &c.points {
        println!(
            "{:>12.0}{:>12.0}{:>10.1}{:>10.1}{:>10.1}{:>8.2}{:>7.0}%{:>12.3}",
            p.offered_rps,
            p.achieved_rps,
            p.p50_us,
            p.p95_us,
            p.p99_us,
            p.mean_batch,
            100.0 * p.utilization,
            p.energy_per_request_mj
        );
    }
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (loads, requests): (Vec<f64>, usize) = if smoke {
        (vec![30_000.0, 90_000.0, 180_000.0], 400)
    } else {
        (
            vec![
                20_000.0, 40_000.0, 60_000.0, 90_000.0, 120_000.0, 160_000.0, 200_000.0, 260_000.0,
            ],
            2500,
        )
    };

    println!("Serving load sweep — decode-heavy mix, seed {SEED}, {requests} requests/point");
    println!("(identical request traces into both pods at each offered load)\n");

    let sa = load_sweep(
        Architecture::Conventional,
        ARRAYS,
        SIDE,
        &loads,
        requests,
        SEED,
    );
    let ax = load_sweep(Architecture::Axon, ARRAYS, SIDE, &loads, requests, SEED);
    print_curve(&sa);
    print_curve(&ax);

    println!("sustainable throughput at equal p99 SLO:");
    println!(
        "{:>12}{:>16}{:>14}{:>10}",
        "SLO (us)", "conventional/s", "axon/s", "gain"
    );
    let mut axon_always_ahead = true;
    for slo in SLOS_US {
        let s = sustainable_rps(&sa, slo);
        let a = sustainable_rps(&ax, slo);
        match (s, a) {
            (Some(s), Some(a)) => {
                println!("{:>12.0}{:>16.0}{:>14.0}{:>9.2}x", slo, s, a, a / s);
                axon_always_ahead &= a > s;
            }
            (None, Some(a)) => {
                println!("{slo:>12.0}{:>16}{a:>14.0}{:>10}", "unmet", "inf");
            }
            (Some(s), None) => {
                println!("{slo:>12.0}{s:>16.0}{:>14}{:>10}", "unmet", "-");
                axon_always_ahead = false;
            }
            (None, None) => {
                // Neither pod can meet this SLO at any swept load: no
                // comparison to draw.
                println!("{slo:>12.0}{:>16}{:>14}{:>10}", "unmet", "unmet", "-");
            }
        }
    }
    assert!(
        axon_always_ahead,
        "expected the Axon pod to sustain strictly more load at every SLO the conventional pod meets"
    );
    println!("\npaper: halved fill latency (2R-2 -> R-1) compounds over the");
    println!("many short, fill-bound kernels of decode-dominated serving traffic.");

    if let Some(path) = json_path_from_args() {
        let json = sweep_to_json(&[sa, ax], &SLOS_US);
        json.write_to_file(&path).expect("write --json output");
        println!("\nwrote {}", path.display());
    }
}

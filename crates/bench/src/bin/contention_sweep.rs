//! Shared-DRAM contention sweep: pod size x channel count on the
//! decode-heavy mix, plus the PR 3 policy ladder re-validated under
//! contention.
//!
//! ```sh
//! cargo run --release -p axon-bench --bin contention_sweep
//! cargo run --release -p axon-bench --bin contention_sweep -- --smoke
//! cargo run --release -p axon-bench --bin contention_sweep -- --json out.json
//! ```
//!
//! Computation in [`axon_bench::contention`]; model semantics in
//! `docs/memory.md`. The binary asserts the two contention invariants
//! on every measured pod size (shrinking channels never decreases p99
//! service latency; a single-array pod matches private bandwidth
//! exactly) and that EDF + continuous batching still beats FIFO decode
//! p99 with contention enabled.

use axon_bench::contention::{
    assert_contention_invariants, contention_sweep_to_json, sweep_pod_size, PodSizeSweep,
};
use axon_bench::policy::{decode_p99_wins, policy_ladder, policy_sweep_with_memory, PolicyCurve};
use axon_bench::series::json_path_from_args;
use axon_serve::MemoryModel;

const SEED: u64 = 2026;
const SIDE: usize = 128;
const PER_ARRAY_RPS: f64 = 25_000.0;
const LADDER_ARRAYS: usize = 4;
const LADDER_CHANNELS: usize = 2;

fn print_sweep(s: &PodSizeSweep) {
    println!(
        "--- {} array(s), {:.0} req/s offered ---",
        s.arrays, s.offered_rps
    );
    println!(
        "{:>14}{:>12}{:>15}{:>14}{:>14}{:>8}{:>12}",
        "memory", "achieved/s", "service p99us", "total p99us", "decode p99us", "util", "DRAM mJ"
    );
    for r in &s.rows {
        println!(
            "{:>14}{:>12.0}{:>15.1}{:>14.1}{:>14.1}{:>8.2}{:>12.2}",
            r.label,
            r.achieved_rps,
            r.service_p99_us,
            r.total_p99_us,
            r.decode_p99_us,
            r.utilization,
            r.dram_energy_mj
        );
    }
    println!();
}

fn print_ladder(c: &PolicyCurve) {
    println!("--- {} (contended) ---", c.policy.label);
    println!(
        "{:>12}{:>12}{:>12}{:>13}{:>10}",
        "offered/s", "achieved/s", "goodput/s", "decode p99us", "dec viol"
    );
    for p in &c.points {
        println!(
            "{:>12.0}{:>12.0}{:>12.0}{:>13.1}{:>10}",
            p.offered_rps, p.achieved_rps, p.goodput_rps, p.decode_p99_us, p.decode_violations
        );
    }
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (pod_sizes, channels, requests, ladder_loads): (Vec<usize>, Vec<usize>, usize, Vec<f64>) =
        if smoke {
            (vec![1, 2, 4], vec![1, 2, 4], 400, vec![60_000.0, 120_000.0])
        } else {
            (
                vec![1, 2, 4, 8],
                vec![1, 2, 4, 8],
                1200,
                vec![60_000.0, 120_000.0, 200_000.0],
            )
        };

    println!(
        "Shared-DRAM contention sweep — {SIDE}x{SIDE} Axon arrays, decode-heavy mix \
         (90% decode / 5% prefill / 5% gemv), {PER_ARRAY_RPS:.0} req/s per array, \
         {requests} requests/point, seed {SEED}"
    );
    println!("(compute-only = the pre-contention billing; private = channels == arrays)\n");

    let sweeps: Vec<PodSizeSweep> = pod_sizes
        .iter()
        .map(|&arrays| {
            let s = sweep_pod_size(arrays, SIDE, &channels, PER_ARRAY_RPS, requests, SEED);
            assert_contention_invariants(&s);
            s
        })
        .collect();
    for s in &sweeps {
        print_sweep(s);
    }

    let largest = sweeps.last().expect("at least one pod size");
    println!(
        "honest scale-out penalty at {} arrays: most-starved channel config runs \
         {:.2}x the private-bandwidth p99 service latency",
        largest.arrays,
        largest.starved_service_penalty()
    );

    // The PR 3 policy ladder, re-run with contention enabled.
    println!(
        "\nPolicy ladder under contention — {LADDER_ARRAYS}x {SIDE}x{SIDE} Axon pod, \
         {LADDER_CHANNELS} shared channels, mixed SLO classes:\n"
    );
    let memory = MemoryModel::Shared {
        channels: LADDER_CHANNELS,
    };
    let curves: Vec<PolicyCurve> = policy_ladder()
        .into_iter()
        .map(|p| {
            policy_sweep_with_memory(
                p,
                LADDER_ARRAYS,
                SIDE,
                memory,
                &ladder_loads,
                requests,
                SEED,
            )
        })
        .collect();
    for c in &curves {
        print_ladder(c);
    }
    let fifo = curves
        .iter()
        .find(|c| c.policy.label == "fifo")
        .expect("ladder contains fifo");
    let cont = curves
        .iter()
        .find(|c| c.policy.label == "cont")
        .expect("ladder contains cont");
    let wins = decode_p99_wins(cont, fifo);
    assert!(
        !wins.is_empty(),
        "EDF + continuous batching should still beat FIFO decode p99 under contention"
    );
    println!(
        "EDF + continuous batching still beats FIFO decode p99 at {} of {} contended \
         loads: {:?} req/s",
        wins.len(),
        ladder_loads.len(),
        wins
    );

    if let Some(path) = json_path_from_args() {
        let json = contention_sweep_to_json(&sweeps);
        json.write_to_file(&path).expect("write --json output");
        println!("\nwrote {}", path.display());
    }
}

//! Network-level traffic sweep: software vs on-chip im2col DRAM traffic
//! for all four conv networks in the workload zoo.

use axon_im2col::DramTrafficModel;
use axon_mem::{DramConfig, EnergyReport};
use axon_workloads::{efficientnet_b0, mobilenet_v1, resnet50, yolov3};

fn main() {
    let model = DramTrafficModel::default();
    let dram = DramConfig::lpddr3();
    println!("Conv-network DRAM ifmap traffic under the scale-up refetch model");
    println!(
        "{:<18}{:>8}{:>12}{:>12}{:>8}{:>12}",
        "network", "GMACs", "sw MB", "axon MB", "ratio", "saved mJ"
    );
    for net in [resnet50(), yolov3(), mobilenet_v1(), efficientnet_b0()] {
        let t = net.dram_traffic(model);
        let e = EnergyReport::new(&dram, t.software_ifmap_bytes, t.onchip_ifmap_bytes);
        println!(
            "{:<18}{:>8.2}{:>12.1}{:>12.1}{:>8.2}{:>12.1}",
            net.name(),
            net.total_macs() as f64 / 1e9,
            t.software_ifmap_bytes as f64 / 1e6,
            t.onchip_ifmap_bytes as f64 / 1e6,
            e.reduction_factor(),
            e.saved_mj()
        );
    }
    println!();
    println!("3x3-dominated nets (YOLOv3) benefit most; pointwise-dominated");
    println!("nets (MobileNet/EfficientNet) see smaller but nonzero savings");
    println!("from their depthwise and stem layers.");
}

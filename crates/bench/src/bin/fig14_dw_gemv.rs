//! Fig. 14: Axon speedup on the memory-bound workload classes — depthwise
//! convolution and GEMV (paper: ~1.8x average, approaching 2x, thanks to
//! the halved fill latency and absence of data skew). Computation in
//! [`axon_bench::fig14`].

use axon_bench::fig14::{speedup_series, SIDES};

fn main() {
    println!("Fig. 14 — Axon speedup on DW-Conv and GEMV workloads");
    let s = speedup_series(&SIDES);
    print!("{s}");
    let avgs = s.averages();
    let overall = avgs.iter().sum::<f64>() / avgs.len() as f64;
    println!();
    println!("average speedup {overall:.2}x over all workloads/sizes; paper: ~1.8x");
}

//! Table 3: the M, K, N values of the evaluation workloads.
//!
//! Pass `--json <path>` to also write the table machine-readably.

use axon_bench::series::{json_path_from_args, Json};
use axon_workloads::table3;

fn main() {
    println!("Table 3 — workload dimensions");
    println!(
        "{:<22}{:>8}{:>8}{:>8}{:>8}{:>14}{:>8}",
        "workload", "kind", "M", "K", "N", "MACs", "AI"
    );
    for w in table3() {
        println!(
            "{:<22}{:>8}{:>8}{:>8}{:>8}{:>14}{:>8.1}",
            w.name,
            w.kind.to_string(),
            w.shape.m,
            w.shape.k,
            w.shape.n,
            w.shape.macs(),
            w.shape.arithmetic_intensity()
        );
    }
    if let Some(path) = json_path_from_args() {
        let json = Json::obj([(
            "workloads",
            Json::arr(table3().into_iter().map(|w| {
                Json::obj([
                    ("name", Json::str(w.name)),
                    ("kind", Json::str(w.kind.to_string())),
                    ("m", Json::num(w.shape.m as f64)),
                    ("k", Json::num(w.shape.k as f64)),
                    ("n", Json::num(w.shape.n as f64)),
                    ("macs", Json::num(w.shape.macs() as f64)),
                    (
                        "arithmetic_intensity",
                        Json::num(w.shape.arithmetic_intensity()),
                    ),
                ])
            })),
        )]);
        json.write_to_file(&path).expect("write --json output");
        println!("wrote {}", path.display());
    }
}

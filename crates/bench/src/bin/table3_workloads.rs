//! Table 3: the M, K, N values of the evaluation workloads.

use axon_workloads::table3;

fn main() {
    println!("Table 3 — workload dimensions");
    println!(
        "{:<22}{:>8}{:>8}{:>8}{:>8}{:>14}{:>8}",
        "workload", "kind", "M", "K", "N", "MACs", "AI"
    );
    for w in table3() {
        println!(
            "{:<22}{:>8}{:>8}{:>8}{:>8}{:>14}{:>8.1}",
            w.name,
            w.kind.to_string(),
            w.shape.m,
            w.shape.k,
            w.shape.n,
            w.shape.macs(),
            w.shape.arithmetic_intensity()
        );
    }
}

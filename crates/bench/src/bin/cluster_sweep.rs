//! Cluster routing-policy load sweep on an equal-hardware heterogeneous
//! fleet (2x Axon + 2x Conventional pods, 4x 64x64 arrays each):
//! round-robin vs random vs join-shortest-queue vs power-of-two-choices
//! vs SLO-class-aware vs prefill/decode disaggregation, on identical
//! global arrival traces per load point.
//!
//! ```sh
//! cargo run --release -p axon-bench --bin cluster_sweep
//! cargo run --release -p axon-bench --bin cluster_sweep -- --smoke
//! cargo run --release -p axon-bench --bin cluster_sweep -- --json out.json
//! ```
//!
//! Computation in [`axon_bench::cluster`]; router semantics are
//! documented in `docs/cluster.md`. The binary asserts the headline
//! results: join-shortest-queue and prefill/decode disaggregation
//! achieve decode p99 no worse than round-robin at *every* swept load
//! on equal hardware, and a 1-pod cluster is bit-identical to the
//! single-pod simulator under every router.

use axon_bench::cluster::{
    assert_one_pod_equivalence, cluster_sweep, cluster_sweep_to_json, decode_p99_regressions,
    ClusterCurve,
};
use axon_bench::series::json_path_from_args;
use axon_serve::RouterPolicy;

const SEED: u64 = 2026;
const ARRAYS: usize = 4;
const SIDE: usize = 64;

fn print_curve(c: &ClusterCurve) {
    println!("--- {} ---", c.router.name());
    println!(
        "{:>12}{:>12}{:>12}{:>14}{:>15}{:>10}  routed/pod",
        "offered/s", "achieved/s", "goodput/s", "decode p99us", "prefill p99us", "slo viol"
    );
    for p in &c.points {
        println!(
            "{:>12.0}{:>12.0}{:>12.0}{:>14.1}{:>15.1}{:>10}  {:?}",
            p.offered_rps,
            p.achieved_rps,
            p.goodput_rps,
            p.decode_p99_us,
            p.prefill_p99_us,
            p.slo_violations,
            p.routed_per_pod
        );
    }
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The sweep deliberately stops short of decode-pod saturation:
    // with an 80% decode mix, the disaggregated router funnels ~85% of
    // the traffic onto half the hardware, so above ~120k req/s its
    // specialist pods saturate while round-robin still has headroom —
    // an honest structural trade-off, documented in docs/cluster.md.
    let (loads, requests): (Vec<f64>, usize) = if smoke {
        (vec![80_000.0, 90_000.0, 100_000.0], 400)
    } else {
        (
            vec![50_000.0, 70_000.0, 80_000.0, 90_000.0, 100_000.0, 110_000.0],
            1600,
        )
    };

    println!(
        "Cluster routing sweep — 2x Axon (decode role) + 2x Conventional (prefill role) pods, \
         {ARRAYS}x {SIDE}x{SIDE} arrays each, mixed SLO classes \
         (80% decode / 15% prefill / 5% gemv), seed {SEED}, {requests} requests/point"
    );
    println!("(identical global arrival traces into every router at each offered load)\n");

    // The cluster layer must collapse exactly onto the single-pod path
    // before any fleet comparison is meaningful.
    for router in RouterPolicy::ALL {
        assert_one_pod_equivalence(router, SEED);
    }
    println!("1-pod cluster == simulate_pod, bit for bit, under all 6 routers\n");

    let curves: Vec<ClusterCurve> = RouterPolicy::ALL
        .into_iter()
        .map(|r| cluster_sweep(r, ARRAYS, SIDE, &loads, requests, SEED))
        .collect();
    for c in &curves {
        print_curve(c);
    }

    let by_name = |name: &str| {
        curves
            .iter()
            .find(|c| c.router.name() == name)
            .expect("router in ladder")
    };
    let rr = by_name("round-robin");
    for challenger in ["jsq", "disaggregated"] {
        let regressions = decode_p99_regressions(by_name(challenger), rr);
        assert!(
            regressions.is_empty(),
            "{challenger} regressed decode p99 vs round-robin at loads {regressions:?} req/s"
        );
        println!(
            "{challenger} decode p99 <= round-robin at all {} swept loads",
            loads.len()
        );
    }

    println!("\nround-robin ignores load and class: a prefill landed on a busy pod blocks");
    println!("its decode stream; queue-aware and class-aware placement avoid both.");

    if let Some(path) = json_path_from_args() {
        let json = cluster_sweep_to_json(&curves);
        json.write_to_file(&path).expect("write --json output");
        println!("\nwrote {}", path.display());
    }
}

//! Fig. 12: Axon runtime speedup over the conventional systolic array on
//! the GEMM and Conv workloads of Table 3, for square arrays from 16x16
//! to 256x256. Computation in [`axon_bench::fig12`]; methodology notes in
//! EXPERIMENTS.md.
//!
//! Paper: average speedups 1.47x at 64x64 and 1.76x at 256x256.
//!
//! Pass `--json <path>` to also write the series machine-readably.

use axon_bench::fig12::{speedup_series, PAPER_SIDES};
use axon_bench::series::json_path_from_args;

fn main() {
    println!("Fig. 12 — Axon speedup over SA (normalized runtime SA/Axon)");
    let series = speedup_series(&PAPER_SIDES);
    print!("{series}");
    println!();
    println!("paper: average 1.47x at 64x64, 1.76x at 256x256");
    if let Some(path) = json_path_from_args() {
        series
            .to_json()
            .write_to_file(&path)
            .expect("write --json output");
        println!("wrote {}", path.display());
    }
}

//! The paper's two worked toy examples, executed rather than drawn:
//!
//! * **Fig. 4** — a 3x3 GEMM through Axon's diagonal orchestration,
//!   showing the per-PE first-MAC wavefront and verifying the product;
//! * **Fig. 7** — im2col of a 3x3 filter over a 6x6 ifmap, showing the
//!   MUX feeder's load schedule (18 of 36 elements from SRAM, 50%
//!   repetition reused from the adjacent feeder).

use axon_core::runtime::Architecture;
use axon_core::ArrayShape;
use axon_im2col::{simulate_feeder_group, ConvLayer, Tensor3};
use axon_sim::{simulate_gemm_traced, Matrix, SimConfig};

fn main() {
    fig4();
    println!();
    fig7();
}

fn fig4() {
    println!("Fig. 4 — 3x3 GEMM through Axon's orchestration");
    let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c + 1) as f32);
    let b = Matrix::from_fn(3, 3, |r, c| (r * 3 + c + 1) as f32);
    let cfg = SimConfig::new(ArrayShape::square(3));
    for arch in [Architecture::Conventional, Architecture::Axon] {
        let (result, activity) = simulate_gemm_traced(arch, &cfg, &a, &b).expect("valid operands");
        assert_eq!(result.output, a.matmul(&b));
        println!(
            "  {arch}: {} cycles, first-MAC wavefront:",
            result.stats.cycles
        );
        for line in activity.wavefront_string().lines() {
            println!("    {line}");
        }
    }
    println!("  product verified against the reference in both cases");
}

fn fig7() {
    println!("Fig. 7 — im2col MUX schedule, 3x3 filter over 6x6 ifmap");
    let layer = ConvLayer::new(1, 1, 6, 6, 3, 1, 0);
    let ifmap = Tensor3::from_fn(1, 6, 6, |_, y, x| (y * 6 + x) as f32);
    let (_, trace) =
        simulate_feeder_group(&layer, &ifmap, 0, 0, 4).expect("4 windows fit the first row");
    println!(
        "  4 conv windows x 9 elements = {} delivered; {} from SRAM, {} from the neighbour feeder ({:.0}% reuse)",
        trace.total_delivered(),
        trace.loads_from_sram,
        trace.loads_from_neighbor,
        100.0 * trace.reuse_fraction()
    );
    println!("  mux control per cycle (.=SRAM, ^=neighbour), feeders left to right:");
    for (cycle, ctl) in trace.controls.iter().enumerate() {
        let row: String = ctl.iter().map(|&c| if c { '^' } else { '.' }).collect();
        println!("    cycle {cycle}: {row}");
    }
    println!("  control is 0 for 1 cycle and 1 for the other n-1 = 2 cycles (paper §3.2)");
}

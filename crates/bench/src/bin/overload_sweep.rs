//! Overload sweep on one Axon pod (4x 128x128 arrays, FIFO): goodput
//! under accept-all vs queue-cap vs deadline-infeasible admission as
//! offered load climbs from half capacity to 2x overload.
//!
//! ```sh
//! cargo run --release -p axon-bench --bin overload_sweep
//! cargo run --release -p axon-bench --bin overload_sweep -- --smoke
//! cargo run --release -p axon-bench --bin overload_sweep -- --json out.json
//! ```
//!
//! Computation in [`axon_bench::overload`]; admission semantics are
//! documented in `docs/traffic.md`. The binary asserts the headline
//! result at every swept factor up to 2x: each admission policy's
//! goodput is at least accept-all's on the bit-identical trace, and
//! past saturation neither admission policy's goodput falls more than
//! `COLLAPSE_TOLERANCE` below its own 1x value (no congestion
//! collapse).

use axon_bench::overload::{
    collapse_violations, goodput_regressions, overload_ladder, overload_sweep, overload_to_json,
    OverloadCurve, BASE_RPS, COLLAPSE_TOLERANCE,
};
use axon_bench::series::json_path_from_args;

const SEED: u64 = 2026;

fn print_curve(c: &OverloadCurve) {
    println!("--- {} ---", c.config.label);
    println!(
        "{:>8}{:>12}{:>12}{:>12}{:>10}{:>8}{:>9}{:>9}",
        "factor", "offered/s", "achieved/s", "goodput/s", "admitted", "shed", "slo met", "late"
    );
    for p in &c.points {
        println!(
            "{:>8.2}{:>12.0}{:>12.0}{:>12.0}{:>10}{:>8}{:>9}{:>9}",
            p.factor,
            p.offered_rps,
            p.achieved_rps,
            p.goodput_rps,
            p.admitted,
            p.shed,
            p.slo_met,
            p.slo_violations
        );
    }
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (factors, requests): (Vec<f64>, usize) = if smoke {
        (vec![1.0, 1.5, 2.0], 400)
    } else {
        (vec![0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0], 2000)
    };

    println!(
        "Overload sweep — 4x 128x128 Axon pod, FIFO, mixed SLO classes, seed {SEED}, \
         {requests} requests/point, base load {BASE_RPS:.0} req/s"
    );
    println!("(identical request traces into every admission policy at each factor)\n");

    let curves: Vec<OverloadCurve> = overload_ladder()
        .into_iter()
        .map(|c| overload_sweep(c, &factors, requests, SEED))
        .collect();
    for c in &curves {
        print_curve(c);
    }

    let accept_all = curves
        .iter()
        .find(|c| c.config.label == "accept-all")
        .expect("ladder contains accept-all");
    for c in curves.iter().filter(|c| c.config.label != "accept-all") {
        let regressions = goodput_regressions(c, accept_all);
        assert!(
            regressions.is_empty(),
            "{} goodput fell below accept-all at (factor, ours, theirs): {regressions:?}",
            c.config.label
        );
        let collapses = collapse_violations(c);
        assert!(
            collapses.is_empty(),
            "{} goodput collapsed past saturation at (factor, goodput, floor): {collapses:?}",
            c.config.label
        );
        let top = c.points.last().expect("swept at least one factor");
        assert!(
            top.shed > 0,
            "{} should shed at {}x overload: {top:?}",
            c.config.label,
            top.factor
        );
        println!(
            "{}: goodput >= accept-all at all {} factors, \
             within {:.0}% of its 1x goodput past saturation",
            c.config.label,
            factors.len(),
            COLLAPSE_TOLERANCE * 100.0
        );
    }
    println!("\naccept-all queues every doomed request and its goodput collapses under");
    println!("overload; both admission policies shed early and hold their goodput.");

    if let Some(path) = json_path_from_args() {
        let json = overload_to_json(&curves);
        json.write_to_file(&path).expect("write --json output");
        println!("\nwrote {}", path.display());
    }
}

//! Array-energy comparison per workload: Axon's speedup at near-equal
//! power translates almost one-for-one into array-energy savings
//! (complementing the DRAM-energy analysis of `energy_resnet_yolo`).

use axon_core::runtime::{Architecture, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow};
use axon_hw::{execution_energy, ArrayDesign, ComponentLibrary, TechNode};
use axon_workloads::table3;

fn main() {
    let lib = ComponentLibrary::calibrated_7nm();
    let side = 16usize;
    let clock = 500.0;
    let array = ArrayShape::square(side);
    println!("Array energy per Table-3 workload at {side}x{side}, {clock:.0} MHz (7 nm)");
    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "workload", "SA cycles", "Axon cyc", "SA uJ", "Axon uJ", "ratio"
    );
    let mut sa_total = 0.0;
    let mut ax_total = 0.0;
    let mut log_ratio_sum = 0.0;
    let mut count = 0usize;
    for w in table3() {
        let df = Dataflow::min_temporal(w.shape);
        let spec = RuntimeSpec::new(array, df);
        let sa_cycles = spec.runtime(Architecture::Conventional, w.shape).cycles;
        let ax_cycles = spec.runtime(Architecture::Axon, w.shape).cycles;
        let sa = execution_energy(
            ArrayDesign::Conventional,
            array,
            TechNode::asap7(),
            &lib,
            sa_cycles,
            clock,
            0.0,
        );
        let ax = execution_energy(
            ArrayDesign::Axon {
                im2col: true,
                unified_pe: false,
            },
            array,
            TechNode::asap7(),
            &lib,
            ax_cycles,
            clock,
            0.0,
        );
        sa_total += sa.energy_uj();
        ax_total += ax.energy_uj();
        log_ratio_sum += (sa.energy_uj() / ax.energy_uj()).ln();
        count += 1;
        println!(
            "{:<22}{:>12}{:>12}{:>12.1}{:>12.1}{:>9.2}x",
            w.name,
            sa_cycles,
            ax_cycles,
            sa.energy_uj(),
            ax.energy_uj(),
            sa.energy_uj() / ax.energy_uj()
        );
    }
    println!(
        "\ntotal: SA {:.0} uJ -> Axon {:.0} uJ ({:.2}x summed; {:.2}x geomean per workload)",
        sa_total,
        ax_total,
        sa_total / ax_total,
        (log_ratio_sum / count as f64).exp()
    );
    println!("The sum is dominated by the largest (temporal-bound) workloads;");
    println!("per-workload, Axon's +0.17% power is dwarfed by its cycle");
    println!("reduction, so array energy falls nearly with the speedup.");
}

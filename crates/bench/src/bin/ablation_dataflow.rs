//! Ablation: per-workload dataflow policy. The Fig. 12 averages depend
//! strongly on how each workload is mapped; this sweep shows the three
//! candidate policies:
//!
//! * `OS only` — the implemented hardware's dataflow for everything;
//! * `min-T` — the fill-sensitive mapping (two largest dims spatial),
//!   identical on both architectures (the policy that reproduces the
//!   paper's averages);
//! * `best-per-arch` — each architecture independently picks its fastest
//!   mapping (lets the conventional array hide fills behind huge
//!   temporal dims, collapsing the ratio).

use axon_core::runtime::{Architecture, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow};
use axon_workloads::table3;

fn main() {
    println!("Ablation — dataflow policy vs average Table-3 speedup");
    println!(
        "{:>10}{:>12}{:>12}{:>16}",
        "array", "OS only", "min-T", "best-per-arch"
    );
    let ws = table3();
    for side in [16usize, 64, 256] {
        let array = ArrayShape::square(side);
        let mut os = 0.0;
        let mut tmin = 0.0;
        let mut best = 0.0;
        for w in &ws {
            let os_spec = RuntimeSpec::new(array, Dataflow::Os);
            os += os_spec.runtime(Architecture::Conventional, w.shape).cycles as f64
                / os_spec.runtime(Architecture::Axon, w.shape).cycles as f64;

            let t_spec = RuntimeSpec::new(array, Dataflow::min_temporal(w.shape));
            tmin += t_spec.runtime(Architecture::Conventional, w.shape).cycles as f64
                / t_spec.runtime(Architecture::Axon, w.shape).cycles as f64;

            let (_, sa) = os_spec.best_dataflow(Architecture::Conventional, w.shape);
            let (_, ax) = os_spec.best_dataflow(Architecture::Axon, w.shape);
            best += sa.cycles as f64 / ax.cycles as f64;
        }
        let n = ws.len() as f64;
        println!(
            "{:>10}{:>11.3}x{:>11.3}x{:>15.3}x",
            format!("{side}x{side}"),
            os / n,
            tmin / n,
            best / n
        );
    }
    println!();
    println!("paper Fig. 12 averages (1.47x @64, 1.76x @256) match the min-T policy");
}

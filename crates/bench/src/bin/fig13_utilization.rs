//! Fig. 13: PE utilization-rate improvement over the conventional
//! systolic array, Axon vs CMSA, at a 128x128 array under OS (the
//! implemented hardware's dataflow, which reproduces the paper's ~91%
//! GPT3 baseline). Computation in [`axon_bench::fig13`].

use axon_bench::fig13::{average_improvements, utilization_rows};

fn main() {
    let rows = utilization_rows(128);
    println!("Fig. 13 — utilization-rate improvement over SA at 128x128");
    println!(
        "{:<22}{:>10}{:>12}{:>12}",
        "workload", "SA UR", "CMSA +%", "Axon +%"
    );
    for r in &rows {
        println!(
            "{:<22}{:>9.1}%{:>11.1}%{:>11.1}%",
            r.name,
            100.0 * r.baseline_ur,
            r.cmsa_improvement_pct,
            r.axon_improvement_pct
        );
    }
    let (cmsa, axon) = average_improvements(&rows);
    println!("{:<22}{:>10}{:>11.1}%{:>11.1}%", "AVERAGE", "", cmsa, axon);
    println!();
    println!(
        "Axon's average UR improvement exceeds CMSA's by {:.0}% (relative), \
         {:.1} points (absolute); paper: ~27%",
        100.0 * (axon - cmsa) / cmsa,
        axon - cmsa
    );
}

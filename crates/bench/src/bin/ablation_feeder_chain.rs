//! Ablation: MUX feeder-chain length (= diagonal feeders sharing one
//! chain) vs ifmap access reduction. Longer chains amortize the first
//! feeder's full window load across more followers, saturating at
//! `1 - s/n` reuse.

use axon_im2col::{access_reduction_pct, ConvLayer};

fn main() {
    let shapes = [
        ("3x3 s1 (ResNet)", ConvLayer::new(64, 64, 56, 56, 3, 1, 1)),
        ("5x5 s1 (EffNet)", ConvLayer::new(240, 240, 28, 28, 5, 1, 2)),
        ("7x7 s2 (stem)", ConvLayer::new(3, 64, 224, 224, 7, 2, 3)),
        (
            "3x3 s2 (downsample)",
            ConvLayer::new(64, 128, 112, 112, 3, 2, 1),
        ),
    ];
    println!("Ablation — feeder-chain length vs ifmap access reduction (%)");
    print!("{:<22}", "conv shape");
    let chains = [2usize, 4, 8, 16, 32, 64, 128];
    for g in chains {
        print!("{g:>8}");
    }
    println!();
    for (name, layer) in shapes {
        print!("{name:<22}");
        for g in chains {
            print!("{:>7.1}%", access_reduction_pct(&layer, g));
        }
        println!();
    }
    println!();
    println!("asymptotes: 1 - s/n of the stream (66.7% for 3x3 s1, 80% for 5x5 s1,");
    println!("71.4% for 7x7 s2, 33.3% for 3x3 s2); the 16-chain of the implemented");
    println!("array already captures most of it.");
}

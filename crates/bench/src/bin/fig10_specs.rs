//! Fig. 10: the implemented 16x16 Axon configuration and its post-PnR
//! area/power, reproduced from the calibrated component model.

use axon_hw::{ComponentLibrary, ImplementationSpecs};

fn main() {
    let lib = ComponentLibrary::calibrated_7nm();
    let spec = ImplementationSpecs::paper_configuration(&lib);
    println!("Fig. 10 — implemented Axon specifications (ASAP 7nm)");
    println!("{spec}");
    println!("paper: SA 0.9992 mm^2 / 59.88 mW; Axon 0.9931 mm^2;");
    println!("       Axon+im2col 0.9951 mm^2 (+0.2%) / 59.98 mW");
}

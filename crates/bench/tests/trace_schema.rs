//! Schema checks on the Chrome trace-event export: the JSON
//! `trace_dump` writes must parse, carry the top-level keys Perfetto
//! expects, stamp every event with the phase-appropriate fields, and
//! pair every async-span begin with exactly one end. Also pins the
//! committed `BENCH_<n>.json` perf trajectory to the `axon-perf-v1`
//! schema: every file parses, indices match filenames and are unique,
//! and the gate's baseline discovery picks the newest entry.

use axon_bench::perf::{
    find_baseline, PerfReport, BENCH_INDEX, PERF_SCHEMA, PLANNER_FIELDS_SINCE, SHED_FIELDS_SINCE,
};
use axon_bench::series::Json;
use axon_core::runtime::Architecture;
use axon_serve::{
    chrome_trace_json, simulate_pod_traced, MemoryModel, PodConfig, PreemptionMode, RecordingSink,
    RequestClass, SchedulerPolicy, SloBudgets, TrafficConfig, WorkloadMix,
};
use std::collections::BTreeMap;
use std::path::Path;

/// A small single-pod run that still produces every slice kind the
/// exporter has: exec slices, queue slices, async request spans,
/// preempt instants, and retime/bandwidth counters.
fn traced_events() -> (Vec<(usize, axon_serve::TraceEvent)>, f64) {
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
        .with_memory(MemoryModel::Shared { channels: 1 })
        .with_preemption(PreemptionMode::TileBoundary);
    let traffic = TrafficConfig::open_loop(9, 80, 150_000.0)
        .with_mix(WorkloadMix::new(vec![
            (RequestClass::Prefill, 0.2),
            (RequestClass::Decode, 0.8),
        ]))
        .with_slo(SloBudgets::serving_default().with_decode(70_000));
    let mut rec = RecordingSink::default();
    let r = simulate_pod_traced(&pod, &traffic, &mut rec);
    assert_eq!(r.metrics.completed, 80);
    (rec.events, pod.clock_mhz)
}

fn field<'a>(event: &'a Json, key: &str) -> &'a Json {
    event
        .get(key)
        .unwrap_or_else(|| panic!("event missing {key:?}: {event:?}"))
}

#[test]
fn chrome_trace_export_satisfies_the_trace_event_schema() {
    let (events, clock_mhz) = traced_events();
    let text = chrome_trace_json(&events, clock_mhz);
    let doc = Json::parse(&text).expect("export must be valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let trace_events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());

    let mut spans: BTreeMap<i64, (usize, usize)> = BTreeMap::new();
    for e in trace_events {
        let ph = field(e, "ph").as_str().expect("ph is a string").to_string();
        assert!(field(e, "name").as_str().is_some(), "name is a string");
        let pid = field(e, "pid").as_f64().expect("pid is a number");
        assert!(pid >= 0.0 && pid.fract() == 0.0, "pid is an index");
        match ph.as_str() {
            "M" => {
                // Metadata names a process or thread track.
                let args = field(e, "args");
                assert!(args.get("name").and_then(Json::as_str).is_some());
            }
            "X" => {
                // Complete slices carry a track, a start and a duration.
                assert!(field(e, "tid").as_f64().is_some());
                let ts = field(e, "ts").as_f64().unwrap();
                let dur = field(e, "dur").as_f64().unwrap();
                assert!(ts >= 0.0 && dur >= 0.0, "ts {ts} dur {dur}");
                assert!(field(e, "cat").as_str().is_some());
            }
            "b" | "e" => {
                let id = field(e, "id").as_f64().expect("async span id") as i64;
                assert!(field(e, "ts").as_f64().is_some());
                let entry = spans.entry(id).or_default();
                if ph == "b" {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
            "i" => {
                // Instants carry a scope.
                let s = field(e, "s").as_str().expect("instant scope");
                assert!(matches!(s, "g" | "p" | "t"), "scope {s:?}");
            }
            "C" => {
                // Counters carry a numeric series in args.
                let Json::Obj(series) = field(e, "args") else {
                    panic!("counter args must be an object");
                };
                assert!(!series.is_empty());
                assert!(series.iter().all(|(_, v)| v.as_f64().is_some()));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    assert!(!spans.is_empty(), "export must contain async request spans");
    for (id, (begins, ends)) in spans {
        assert_eq!(begins, 1, "request {id}: exactly one span begin");
        assert_eq!(ends, 1, "request {id}: exactly one span end");
    }
}

#[test]
fn committed_perf_trajectory_parses_under_the_current_schema() {
    // Every committed BENCH_<n>.json — the whole trajectory, not just
    // the newest — must parse as axon-perf-v1, with the embedded index
    // agreeing with the filename and no duplicates.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(&root).expect("read repo root").flatten() {
        let path = entry.path();
        let Some(idx) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_prefix("BENCH_"))
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let report =
            PerfReport::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(report.schema, PERF_SCHEMA);
        assert_eq!(
            report.bench_index,
            idx,
            "{}: embedded index disagrees with filename",
            path.display()
        );
        assert!(report.requests_per_wall_s > 0.0, "{}", path.display());
        assert!(report.requests > 0 && report.reps > 0, "{}", path.display());
        // The planner counters joined the schema at BENCH_9: newer
        // entries must carry all three fields *in the raw JSON* (the
        // parser would default them on older files), older entries are
        // accepted either way.
        if idx >= PLANNER_FIELDS_SINCE {
            let raw = Json::parse(&text).expect("parsed once already");
            for key in ["plan_cache_hits", "plan_cache_misses", "plan_grids_scored"] {
                assert!(
                    raw.get(key).and_then(Json::as_f64).is_some(),
                    "{}: BENCH_{idx} must carry numeric `{key}`",
                    path.display()
                );
            }
            assert!(
                report.plan_grids_scored >= report.plan_cache_misses,
                "{}: every cold pass scores at least its 1x1 baseline",
                path.display()
            );
        }
        // The admission counters joined the schema at BENCH_10: newer
        // entries must carry both fields in the raw JSON, and the
        // pinned perf scenario is accept-all, so everything that
        // arrives is admitted and nothing sheds.
        if idx >= SHED_FIELDS_SINCE {
            let raw = Json::parse(&text).expect("parsed once already");
            for key in ["requests_admitted", "requests_shed"] {
                assert!(
                    raw.get(key).and_then(Json::as_f64).is_some(),
                    "{}: BENCH_{idx} must carry numeric `{key}`",
                    path.display()
                );
            }
            assert_eq!(
                report.requests_admitted,
                report.requests,
                "{}: the pinned scenario is accept-all",
                path.display()
            );
            assert_eq!(
                report.requests_shed,
                0,
                "{}: the pinned scenario never sheds",
                path.display()
            );
        }
        indices.push(idx);
    }
    indices.sort_unstable();
    assert!(
        indices.windows(2).all(|w| w[0] != w[1]),
        "duplicate trajectory indices: {indices:?}"
    );
    assert!(
        indices.contains(&BENCH_INDEX),
        "this PR's BENCH_{BENCH_INDEX}.json must be committed (found {indices:?})"
    );
    assert!(
        indices.len() >= 2,
        "trajectory should accumulate across PRs, found {indices:?}"
    );

    // The regression gate's discovery must land on the newest entry.
    let (path, newest) = find_baseline(&root).expect("baseline exists");
    assert_eq!(Some(&newest.bench_index), indices.last());
    assert!(path.ends_with(format!("BENCH_{}.json", newest.bench_index)));
}

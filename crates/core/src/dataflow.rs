//! Systolic-array dataflows and their GEMM-dimension mappings.

use crate::shape::{GemmShape, SpatioTemporal};
use std::fmt;

/// The three classical systolic dataflows (paper §2.1).
///
/// * **Output stationary (OS)** — partial sums stay in place; both operands
///   stream through the array.
/// * **Weight stationary (WS)** — weights are preloaded and held; inputs
///   stream and partial sums flow down the columns.
/// * **Input stationary (IS)** — like WS with the roles of the operands
///   swapped.
///
/// # Examples
///
/// ```
/// use axon_core::{Dataflow, GemmShape};
///
/// let g = GemmShape::new(8, 4, 16);
/// let st = Dataflow::Os.map(g);
/// assert_eq!((st.sr, st.sc, st.t), (8, 16, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Dataflow {
    /// Output stationary.
    #[default]
    Os,
    /// Weight stationary.
    Ws,
    /// Input stationary.
    Is,
}

impl Dataflow {
    /// All three dataflows, in the paper's presentation order.
    pub const ALL: [Dataflow; 3] = [Dataflow::Os, Dataflow::Ws, Dataflow::Is];

    /// Projects a GEMM onto the array's spatio-temporal dimensions,
    /// following the paper's Table 1:
    ///
    /// | Dataflow | Mapping                        |
    /// |----------|--------------------------------|
    /// | OS       | `S_R = M`, `S_C = N`, `T = K`  |
    /// | WS       | `S_R = K`, `S_C = M`, `T = N`  |
    /// | IS       | `S_R = K`, `S_C = N`, `T = M`  |
    pub fn map(self, gemm: GemmShape) -> SpatioTemporal {
        let GemmShape { m, k, n } = gemm;
        match self {
            Dataflow::Os => SpatioTemporal::new(m, n, k),
            Dataflow::Ws => SpatioTemporal::new(k, m, n),
            Dataflow::Is => SpatioTemporal::new(k, n, m),
        }
    }

    /// `true` for the dataflows that preload one operand (WS and IS) and
    /// therefore need Axon's bypass-add partial-sum synchronization
    /// (paper §4.2.2).
    pub fn preloads_operand(self) -> bool {
        matches!(self, Dataflow::Ws | Dataflow::Is)
    }

    /// The dataflow whose mapping (Table 1) gives `gemm` the smallest
    /// temporal dimension: OS when `K` is smallest, WS when `N` is,
    /// IS when `M` is.
    ///
    /// This is the fill-sensitive mapping: the two largest dimensions are
    /// laid out spatially, so per-tile time is dominated by the operand
    /// fill — the regime Axon accelerates. The paper's Fig. 12/14 speedups
    /// are reproduced under this per-workload mapping (see
    /// EXPERIMENTS.md).
    ///
    /// # Examples
    ///
    /// ```
    /// use axon_core::{Dataflow, GemmShape};
    ///
    /// assert_eq!(Dataflow::min_temporal(GemmShape::new(100, 2, 100)), Dataflow::Os);
    /// assert_eq!(Dataflow::min_temporal(GemmShape::new(100, 100, 2)), Dataflow::Ws);
    /// assert_eq!(Dataflow::min_temporal(GemmShape::new(2, 100, 100)), Dataflow::Is);
    /// ```
    pub fn min_temporal(gemm: GemmShape) -> Dataflow {
        if gemm.k <= gemm.m && gemm.k <= gemm.n {
            Dataflow::Os
        } else if gemm.n <= gemm.m {
            Dataflow::Ws
        } else {
            Dataflow::Is
        }
    }

    /// Short uppercase name used in report tables (`"OS"`, `"WS"`, `"IS"`).
    pub fn name(self) -> &'static str {
        match self {
            Dataflow::Os => "OS",
            Dataflow::Ws => "WS",
            Dataflow::Is => "IS",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mappings() {
        let g = GemmShape::new(10, 20, 30);
        assert_eq!(Dataflow::Os.map(g), SpatioTemporal::new(10, 30, 20));
        assert_eq!(Dataflow::Ws.map(g), SpatioTemporal::new(20, 10, 30));
        assert_eq!(Dataflow::Is.map(g), SpatioTemporal::new(20, 30, 10));
    }

    #[test]
    fn mapping_preserves_mac_count() {
        // S_R * S_C * T must always equal M * K * N: the projection is a
        // permutation of the loop nest, not a change of work.
        let g = GemmShape::new(7, 11, 13);
        for df in Dataflow::ALL {
            let st = df.map(g);
            assert_eq!(st.sr * st.sc * st.t, g.macs());
        }
    }

    #[test]
    fn preload_classification() {
        assert!(!Dataflow::Os.preloads_operand());
        assert!(Dataflow::Ws.preloads_operand());
        assert!(Dataflow::Is.preloads_operand());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Dataflow::Os.to_string(), "OS");
        assert_eq!(Dataflow::Ws.name(), "WS");
        assert_eq!(Dataflow::Is.name(), "IS");
    }

    #[test]
    fn default_is_os() {
        assert_eq!(Dataflow::default(), Dataflow::Os);
    }

    #[test]
    fn min_temporal_minimizes_t() {
        for (m, k, n) in [(5, 7, 9), (9, 7, 5), (7, 5, 9), (4, 4, 4), (1, 100, 1)] {
            let g = GemmShape::new(m, k, n);
            let df = Dataflow::min_temporal(g);
            let t = df.map(g).t;
            for other in Dataflow::ALL {
                assert!(t <= other.map(g).t, "{g}: {df} t={t} vs {other}");
            }
        }
    }
}

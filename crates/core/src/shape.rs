//! Geometric descriptions of systolic arrays and GEMM problems.

use crate::error::ShapeError;
use std::fmt;

/// Physical shape of a (possibly rectangular) systolic array: `rows x cols`
/// of processing elements.
///
/// # Examples
///
/// ```
/// use axon_core::ArrayShape;
///
/// let array = ArrayShape::square(16);
/// assert_eq!(array.num_pes(), 256);
/// assert_eq!(array.diagonal_len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayShape {
    rows: usize,
    cols: usize,
}

impl ArrayShape {
    /// Creates a new array shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero. Use [`ArrayShape::try_new`] for a
    /// fallible variant.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::try_new(rows, cols).expect("array dimensions must be non-zero")
    }

    /// Creates a new array shape, returning an error on a zero dimension.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDimension`] if `rows` or `cols` is zero.
    pub fn try_new(rows: usize, cols: usize) -> Result<Self, ShapeError> {
        if rows == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "rows" });
        }
        if cols == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "cols" });
        }
        Ok(Self { rows, cols })
    }

    /// Creates a square `n x n` array.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of processing elements.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Length of the principal diagonal, `min(rows, cols)`.
    ///
    /// In Axon these are the *feeder* PEs (plus edge feeders for the
    /// rectangular remainder, see the paper's Fig. 5).
    pub fn diagonal_len(&self) -> usize {
        self.rows.min(self.cols)
    }

    /// `true` when `rows == cols`.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The longer of the two dimensions.
    pub fn long_side(&self) -> usize {
        self.rows.max(self.cols)
    }

    /// Manhattan distance from the conventional feed corner (top-left) to the
    /// farthest PE: `rows + cols - 2`. This is the conventional-SA fill
    /// factor `f1` of the paper's Fig. 6.
    pub fn manhattan_fill(&self) -> usize {
        self.rows + self.cols - 2
    }

    /// Chebyshev-like distance from the principal diagonal to the farthest
    /// PE: `max(rows, cols) - 1`. This is Axon's fill factor `f2` of the
    /// paper's Fig. 6.
    pub fn diagonal_fill(&self) -> usize {
        self.long_side() - 1
    }
}

impl fmt::Display for ArrayShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl From<(usize, usize)> for ArrayShape {
    fn from((rows, cols): (usize, usize)) -> Self {
        Self::new(rows, cols)
    }
}

/// Dimensions of a GEMM problem `C[MxN] = A[MxK] * B[KxN]`.
///
/// # Examples
///
/// ```
/// use axon_core::GemmShape;
///
/// let g = GemmShape::new(128, 64, 256);
/// assert_eq!(g.macs(), 128 * 64 * 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Contraction dimension (cols of `A`, rows of `B`).
    pub k: usize,
    /// Cols of `B` and `C`.
    pub n: usize,
}

impl GemmShape {
    /// Creates a new GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero. Use [`GemmShape::try_new`] for a
    /// fallible variant.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self::try_new(m, k, n).expect("GEMM dimensions must be non-zero")
    }

    /// Creates a new GEMM shape, returning an error on a zero dimension.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDimension`] naming the offending dimension.
    pub fn try_new(m: usize, k: usize, n: usize) -> Result<Self, ShapeError> {
        if m == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "M" });
        }
        if k == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "K" });
        }
        if n == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "N" });
        }
        Ok(Self { m, k, n })
    }

    /// A matrix-vector product (`N = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `m` or `k` is zero.
    pub fn gemv(m: usize, k: usize) -> Self {
        Self::new(m, k, 1)
    }

    /// Total multiply-accumulate operations, `M * K * N`.
    pub fn macs(&self) -> usize {
        self.m * self.k * self.n
    }

    /// Total elements touched if every operand and the output are streamed
    /// once: `M*K + K*N + M*N`.
    pub fn operand_elements(&self) -> usize {
        self.m * self.k + self.k * self.n + self.m * self.n
    }

    /// Arithmetic intensity: MACs per operand/output element. Low values
    /// (e.g. GEMV) indicate memory-bound operation.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.macs() as f64 / self.operand_elements() as f64
    }

    /// `true` when this is a matrix-vector product in either orientation.
    pub fn is_gemv(&self) -> bool {
        self.m == 1 || self.n == 1
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M={} K={} N={}", self.m, self.k, self.n)
    }
}

/// The spatio-temporal projection of a GEMM onto an array: two spatial
/// dimensions and one temporal dimension (SCALE-sim terminology; paper §2.2).
///
/// `sr` maps along array rows, `sc` along array columns, and `t` is the
/// number of MACs each PE performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpatioTemporal {
    /// Spatial dimension mapped along array rows (`S_R`).
    pub sr: usize,
    /// Spatial dimension mapped along array columns (`S_C`).
    pub sc: usize,
    /// Temporal dimension (`T`).
    pub t: usize,
}

impl SpatioTemporal {
    /// Creates a new mapping.
    pub fn new(sr: usize, sc: usize, t: usize) -> Self {
        Self { sr, sc, t }
    }
}

impl fmt::Display for SpatioTemporal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S_R={} S_C={} T={}", self.sr, self.sc, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_shape_basicas() {
        let a = ArrayShape::new(8, 4);
        assert_eq!(a.rows(), 8);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.num_pes(), 32);
        assert_eq!(a.diagonal_len(), 4);
        assert!(!a.is_square());
        assert_eq!(a.long_side(), 8);
        assert_eq!(a.to_string(), "8x4");
    }

    #[test]
    fn array_shape_fill_factors() {
        // Paper Fig. 6 example: a 256x256 array's fill factor drops from
        // 510 to 255 cycles.
        let a = ArrayShape::square(256);
        assert_eq!(a.manhattan_fill(), 510);
        assert_eq!(a.diagonal_fill(), 255);
    }

    #[test]
    fn rectangular_fill_factors() {
        let a = ArrayShape::new(16, 64);
        assert_eq!(a.manhattan_fill(), 78);
        assert_eq!(a.diagonal_fill(), 63);
        // Improvement exists but is below 2x for rectangular arrays.
        assert!(a.manhattan_fill() > a.diagonal_fill());
        assert!(a.manhattan_fill() < 2 * a.diagonal_fill());
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(ArrayShape::try_new(0, 1).is_err());
        assert!(ArrayShape::try_new(1, 0).is_err());
        assert!(GemmShape::try_new(0, 1, 1).is_err());
        assert!(GemmShape::try_new(1, 0, 1).is_err());
        assert!(GemmShape::try_new(1, 1, 0).is_err());
    }

    #[test]
    fn gemm_shape_macs_and_intensity() {
        let g = GemmShape::new(4, 3, 2);
        assert_eq!(g.macs(), 24);
        assert_eq!(g.operand_elements(), 12 + 6 + 8);
        let gemv = GemmShape::gemv(1024, 1024);
        assert!(gemv.is_gemv());
        assert!(gemv.arithmetic_intensity() < 1.0);
        let square = GemmShape::new(1024, 1024, 1024);
        assert!(square.arithmetic_intensity() > 100.0);
    }

    #[test]
    fn from_tuple() {
        let a: ArrayShape = (3, 5).into();
        assert_eq!(a, ArrayShape::new(3, 5));
    }

    #[test]
    fn display_gemm() {
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "M=1 K=2 N=3");
    }
}

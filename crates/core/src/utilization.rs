//! PE utilization-rate models (paper §5.2.2, Fig. 13).
//!
//! Utilization rate (UR) is the fraction of PE-cycles that perform a useful
//! MAC: `UR = (M * K * N) / (R * C * cycles)`. Low UR comes from two
//! sources: *fill/drain bubbles* (while operands travel) and *spatial
//! under-fill* (workload tiles smaller than the array). Axon attacks the
//! first source; CMSA attacks it partially.

use crate::cmsa::cmsa_tile_fill;
use crate::dataflow::Dataflow;
use crate::runtime::{Accounting, Architecture, DrainPolicy, RuntimeSpec};
use crate::shape::{ArrayShape, GemmShape};
use crate::tile::{TileExtents, Tiling};

/// The three architectures compared in the paper's Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UtilArchitecture {
    /// Conventional systolic array.
    Conventional,
    /// CMSA (Xu et al.).
    Cmsa,
    /// Axon.
    Axon,
}

impl UtilArchitecture {
    fn tile_fill(self, r: usize, c: usize) -> usize {
        match self {
            UtilArchitecture::Conventional => Architecture::Conventional.tile_fill(r, c),
            UtilArchitecture::Cmsa => cmsa_tile_fill(r, c),
            UtilArchitecture::Axon => Architecture::Axon.tile_fill(r, c),
        }
    }
}

/// Computes the PE utilization rate of `gemm` on `array` under `dataflow`
/// for the given architecture.
///
/// The model uses steady-state (drain-overlapped) tile latencies and exact
/// edge-tile extents; useful work is the true MAC count `M * K * N`.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, Dataflow, GemmShape};
/// use axon_core::utilization::{utilization, UtilArchitecture};
///
/// let array = ArrayShape::square(128);
/// // GPT3 matmul1: already ~91% utilized conventionally (paper §5.2.2).
/// let g = GemmShape::new(1024, 2560, 7680);
/// let ur = utilization(UtilArchitecture::Conventional, array, Dataflow::Os, g);
/// assert!((0.88..0.94).contains(&ur));
/// ```
pub fn utilization(
    arch: UtilArchitecture,
    array: ArrayShape,
    dataflow: Dataflow,
    gemm: GemmShape,
) -> f64 {
    let st = dataflow.map(gemm);
    let mut cycles = 0usize;
    for (r, c) in TileExtents::new(st.sr, st.sc, array) {
        cycles += arch.tile_fill(r, c) + st.t;
    }
    let useful = gemm.macs() as f64;
    useful / (array.num_pes() as f64 * cycles as f64)
}

/// Relative utilization-rate improvement of `arch` over the conventional
/// array, in percent: `100 * (UR_arch - UR_sa) / UR_sa`.
///
/// This is the quantity plotted in the paper's Fig. 13.
pub fn utilization_improvement_pct(
    arch: UtilArchitecture,
    array: ArrayShape,
    dataflow: Dataflow,
    gemm: GemmShape,
) -> f64 {
    let base = utilization(UtilArchitecture::Conventional, array, dataflow, gemm);
    let new = utilization(arch, array, dataflow, gemm);
    100.0 * (new - base) / base
}

/// Utilization computed from the full [`RuntimeSpec`] machinery (including
/// tiling and drain policy) rather than the steady-state shortcut; exposed
/// for cross-checking the two paths in tests.
pub fn utilization_via_runtime(
    arch: Architecture,
    array: ArrayShape,
    dataflow: Dataflow,
    gemm: GemmShape,
) -> f64 {
    let spec = RuntimeSpec {
        array,
        dataflow,
        tiling: Tiling::ScaleUp,
        accounting: Accounting::ExactEdges,
        drain: DrainPolicy::Overlapped,
    };
    let rep = spec.runtime(arch, gemm);
    gemm.macs() as f64 / (array.num_pes() as f64 * rep.cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axon_beats_cmsa_beats_sa() {
        let array = ArrayShape::square(128);
        let g = GemmShape::new(512, 64, 512);
        let sa = utilization(UtilArchitecture::Conventional, array, Dataflow::Os, g);
        let cmsa = utilization(UtilArchitecture::Cmsa, array, Dataflow::Os, g);
        let axon = utilization(UtilArchitecture::Axon, array, Dataflow::Os, g);
        assert!(sa < cmsa && cmsa < axon, "sa={sa} cmsa={cmsa} axon={axon}");
    }

    #[test]
    fn utilization_bounded_by_one() {
        let array = ArrayShape::square(32);
        for g in [
            GemmShape::new(32, 32, 32),
            GemmShape::new(100, 1000, 100),
            GemmShape::new(1, 8, 1),
        ] {
            for arch in [
                UtilArchitecture::Conventional,
                UtilArchitecture::Cmsa,
                UtilArchitecture::Axon,
            ] {
                let ur = utilization(arch, array, Dataflow::Os, g);
                assert!(ur > 0.0 && ur <= 1.0, "{arch:?} {g} UR={ur}");
            }
        }
    }

    #[test]
    fn high_baseline_ur_leaves_little_headroom() {
        // GPT3 addmm-like shapes: improvement is small for both CMSA and
        // Axon because the conventional UR is already high.
        let array = ArrayShape::square(128);
        let g = GemmShape::new(1024, 2560, 10240);
        let axon = utilization_improvement_pct(UtilArchitecture::Axon, array, Dataflow::Os, g);
        assert!(axon < 12.0, "improvement {axon}%");
    }

    #[test]
    fn fill_bound_workload_improves_a_lot() {
        // Small-K workload on a large array: fill dominates.
        let array = ArrayShape::square(128);
        let g = GemmShape::new(2048, 10, 2048);
        let axon = utilization_improvement_pct(UtilArchitecture::Axon, array, Dataflow::Os, g);
        assert!(axon > 50.0, "improvement {axon}%");
    }

    #[test]
    fn steady_state_and_runtime_paths_agree() {
        let array = ArrayShape::square(64);
        let g = GemmShape::new(200, 80, 90);
        let a = utilization(UtilArchitecture::Axon, array, Dataflow::Os, g);
        let b = utilization_via_runtime(Architecture::Axon, array, Dataflow::Os, g);
        // The runtime path bills one final drain the steady-state path
        // ignores, so allow a small relative gap.
        let rel = (a - b).abs() / a;
        assert!(rel < 0.05, "a={a} b={b}");
    }
}

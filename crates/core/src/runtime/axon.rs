//! Axon latency laws (paper §3.1, Table 2).

/// Fill latency of an Axon tile occupying `r x c` PEs: operands enter at
/// the principal diagonal and propagate bidirectionally, so the farthest PE
/// is `max(r, c) - 1` hops away.
///
/// This is `f2(R, C)` in the paper's Fig. 6. For a square array it is half
/// of the conventional `2r - 2`; for rectangular arrays the improvement is
/// smaller but always at least 1x (columns beyond the diagonal are fed from
/// the array edge with conventional skew, paper Fig. 5).
///
/// # Examples
///
/// ```
/// use axon_core::runtime::axon_tile_fill;
///
/// assert_eq!(axon_tile_fill(256, 256), 255);
/// assert_eq!(axon_tile_fill(16, 64), 63);
/// ```
pub fn axon_tile_fill(r: usize, c: usize) -> usize {
    r.max(c).saturating_sub(1)
}

/// Full per-tile latency of an Axon array: `max(r, c) - 1 + t + r`
/// (fill, compute, drain). Matches the paper's Table 2 once the dataflow
/// mapping of Table 1 is substituted.
///
/// # Examples
///
/// ```
/// use axon_core::runtime::axon_tile_cycles;
///
/// // OS on a square 16x16 tile with T = K = 100:
/// // Table 2: max(M, N) + M + K - 1 = 16 + 16 + 100 - 1.
/// assert_eq!(axon_tile_cycles(16, 16, 100), 16 + 16 + 100 - 1);
/// ```
pub fn axon_tile_cycles(r: usize, c: usize, t: usize) -> usize {
    axon_tile_fill(r, c) + t + r
}

/// Convenience wrapper bundling the Axon laws, mirroring
/// [`SaRuntime`](crate::runtime::SaRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AxonRuntime;

impl AxonRuntime {
    /// See [`axon_tile_fill`].
    pub fn fill(&self, r: usize, c: usize) -> usize {
        axon_tile_fill(r, c)
    }

    /// See [`axon_tile_cycles`].
    pub fn tile_cycles(&self, r: usize, c: usize, t: usize) -> usize {
        axon_tile_cycles(r, c, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::sa_tile_fill;

    #[test]
    fn square_fill_halves() {
        for n in [2usize, 16, 64, 256, 1024] {
            assert_eq!(axon_tile_fill(n, n), n - 1);
            assert_eq!(sa_tile_fill(n, n), 2 * (n - 1));
        }
    }

    #[test]
    fn rectangular_improvement_bounded() {
        // max(r,c)-1 <= r+c-2 always (for r,c >= 1), with equality only
        // when min(r,c) == 1.
        for r in 1..20usize {
            for c in 1..20usize {
                assert!(axon_tile_fill(r, c) <= sa_tile_fill(r, c));
                if r.min(c) == 1 {
                    assert_eq!(axon_tile_fill(r, c), sa_tile_fill(r, c));
                } else {
                    assert!(axon_tile_fill(r, c) < sa_tile_fill(r, c));
                }
            }
        }
    }

    #[test]
    fn degenerate_single_pe() {
        assert_eq!(axon_tile_fill(1, 1), 0);
        assert_eq!(axon_tile_cycles(1, 1, 5), 6);
    }
}

//! Analytical runtime models for conventional systolic arrays and Axon.
//!
//! The conventional model follows SCALE-sim (paper Eq. 1–3); the Axon model
//! follows the paper's Table 2. Both decompose a tile's latency into three
//! components (paper §2.2):
//!
//! 1. **fill** — cycles for both operands to reach the farthest PE
//!    (`R + C - 2` conventionally, `max(R, C) - 1` for Axon);
//! 2. **compute** — `T` MACs per PE;
//! 3. **drain** — `R` cycles to read results out of the array.
//!
//! Two accounting choices are exposed because the paper itself uses both:
//!
//! * [`Accounting`] controls whether ragged edge tiles are billed at the
//!   full array size (`PaperCeil`, exactly Eq. 2) or at their true extents
//!   (`ExactEdges`).
//! * [`DrainPolicy`] controls whether every tile pays the drain latency
//!   (`PerTile`, the closed forms of Table 2) or drains overlap the next
//!   tile's fill so that only the final tile pays it (`Overlapped`). The
//!   paper's speedup evaluation (Fig. 12/14, "up to 2x" on GEMV/DW-conv)
//!   is only reachable under `Overlapped`; with `PerTile` the square-array
//!   speedup is capped at 1.5x. See EXPERIMENTS.md for the calibration.

mod axon;
mod sa;

pub use axon::{axon_tile_cycles, axon_tile_fill, AxonRuntime};
pub use sa::{sa_tile_cycles, sa_tile_fill, SaRuntime};

use crate::dataflow::Dataflow;
use crate::shape::{ArrayShape, GemmShape};
use crate::tile::{TileExtents, Tiling};
use std::fmt;

/// Which architecture's latency law to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Conventional unidirectional systolic array (SCALE-sim model).
    Conventional,
    /// Axon: diagonal feed, bidirectional propagation.
    Axon,
}

impl Architecture {
    /// Fill latency (cycles to reach the farthest PE) for a tile occupying
    /// `r x c` PEs.
    pub fn tile_fill(self, r: usize, c: usize) -> usize {
        match self {
            Architecture::Conventional => sa_tile_fill(r, c),
            Architecture::Axon => axon_tile_fill(r, c),
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Architecture::Conventional => f.write_str("systolic-array"),
            Architecture::Axon => f.write_str("axon"),
        }
    }
}

/// How edge tiles are billed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Accounting {
    /// Every tile is billed at the full array extents and the tile count is
    /// `ceil(S_R/R) * ceil(S_C/C)` — exactly the paper's Eq. 2/3.
    #[default]
    PaperCeil,
    /// Ragged edge tiles are billed at their true `r x c` extents.
    ExactEdges,
}

/// Whether the array-drain latency is paid per tile or amortized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DrainPolicy {
    /// Each tile pays `fill + T + drain` (the closed forms of Table 2).
    PerTile,
    /// Steady-state pipelining: a tile's drain overlaps the next tile's
    /// fill, so the total is `tiles * (fill + T) + drain_last`.
    #[default]
    Overlapped,
}

/// A fully-specified runtime model: array, dataflow, tiling and accounting.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, Dataflow, GemmShape};
/// use axon_core::runtime::{Architecture, RuntimeSpec};
///
/// let spec = RuntimeSpec::new(ArrayShape::square(64), Dataflow::Os);
/// let gemm = GemmShape::new(31999, 84, 1024); // TF0 from Table 3
/// let sa = spec.runtime(Architecture::Conventional, gemm);
/// let ax = spec.runtime(Architecture::Axon, gemm);
/// assert!(ax.cycles < sa.cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeSpec {
    /// Physical array shape.
    pub array: ArrayShape,
    /// Dataflow used for the mapping (Table 1).
    pub dataflow: Dataflow,
    /// Tiling strategy (scale-up / scale-out).
    pub tiling: Tiling,
    /// Edge-tile accounting.
    pub accounting: Accounting,
    /// Drain amortization policy.
    pub drain: DrainPolicy,
}

impl RuntimeSpec {
    /// Creates a spec with the paper's defaults: scale-up tiling, ceil
    /// accounting and overlapped drains.
    pub fn new(array: ArrayShape, dataflow: Dataflow) -> Self {
        Self {
            array,
            dataflow,
            tiling: Tiling::ScaleUp,
            accounting: Accounting::default(),
            drain: DrainPolicy::default(),
        }
    }

    /// Builder-style override of the tiling strategy.
    pub fn with_tiling(mut self, tiling: Tiling) -> Self {
        self.tiling = tiling;
        self
    }

    /// Builder-style override of the edge accounting.
    pub fn with_accounting(mut self, accounting: Accounting) -> Self {
        self.accounting = accounting;
        self
    }

    /// Builder-style override of the drain policy.
    pub fn with_drain(mut self, drain: DrainPolicy) -> Self {
        self.drain = drain;
        self
    }

    /// Computes the modeled runtime of `gemm` on `arch`.
    pub fn runtime(&self, arch: Architecture, gemm: GemmShape) -> RuntimeReport {
        let st = self.dataflow.map(gemm);
        let (sr, sc) = self.tiling.effective_spatial(st);
        let t = st.t;
        let (fill, compute, drain, tiles, last_drain) = match self.accounting {
            Accounting::PaperCeil => {
                let n = self.tiling.sequential_tiles(st, self.array);
                (
                    n * arch.tile_fill(self.array.rows(), self.array.cols()),
                    n * t,
                    n * self.array.rows(),
                    n,
                    self.array.rows(),
                )
            }
            Accounting::ExactEdges => {
                // Closed form of the row-major `TileExtents` walk. The
                // grid has at most four distinct extents — full tiles
                // `(R, C)`, a ragged last column `(R, rc)`, a ragged
                // last row `(rr, C)` and the corner `(rr, rc)` — and
                // every billed quantity is a sum of per-extent values,
                // so grouping is exact: same tile counts, same integer
                // sums, bit-identical to the per-tile loop (pinned by
                // `exact_edges_closed_form_matches_walk`).
                let (rows, cols) = (self.array.rows(), self.array.cols());
                let nr = (sr.max(1)).div_ceil(rows);
                let nc = (sc.max(1)).div_ceil(cols);
                let rr = sr - (nr - 1) * rows; // last row extent (0 when sr == 0)
                let rc = sc - (nc - 1) * cols; // last col extent (0 when sc == 0)
                let fill = (nr - 1) * (nc - 1) * arch.tile_fill(rows, cols)
                    + (nr - 1) * arch.tile_fill(rows, rc)
                    + (nc - 1) * arch.tile_fill(rr, cols)
                    + arch.tile_fill(rr, rc);
                let tiles = nr * nc;
                (fill, tiles * t, nc * ((nr - 1) * rows + rr), tiles, rr)
            }
        };

        let cycles = match self.drain {
            DrainPolicy::PerTile => fill + compute + drain,
            DrainPolicy::Overlapped => fill + compute + last_drain,
        };
        let drain_billed = match self.drain {
            DrainPolicy::PerTile => drain,
            DrainPolicy::Overlapped => last_drain,
        };
        RuntimeReport {
            cycles,
            tiles,
            fill_cycles: fill,
            compute_cycles: compute,
            drain_cycles: drain_billed,
        }
    }

    /// Speedup of Axon over the conventional array for `gemm`:
    /// `cycles_sa / cycles_axon`.
    pub fn speedup(&self, gemm: GemmShape) -> f64 {
        let sa = self.runtime(Architecture::Conventional, gemm);
        let ax = self.runtime(Architecture::Axon, gemm);
        sa.cycles as f64 / ax.cycles as f64
    }

    /// Runs all three dataflows and returns the one with the lowest cycle
    /// count for `arch`, together with its report.
    pub fn best_dataflow(&self, arch: Architecture, gemm: GemmShape) -> (Dataflow, RuntimeReport) {
        Dataflow::ALL
            .iter()
            .map(|&df| {
                let spec = RuntimeSpec {
                    dataflow: df,
                    ..*self
                };
                (df, spec.runtime(arch, gemm))
            })
            .min_by_key(|(_, r)| r.cycles)
            .expect("Dataflow::ALL is non-empty")
    }
}

/// One phase of an exact-edge tile walk: the tile's concrete extents,
/// its billed compute cycles, and the DRAM traffic attributed to it.
///
/// The `dram_bytes` attribution lets a serving simulator convert the
/// walk into per-tile demands on a shared memory system (see
/// `axon-mem`'s `SharedDram`): a tile's wall-clock under contention is
/// `max(cycles, transfer(dram_bytes) at the allocated bandwidth)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilePhase {
    /// Row extent of the tile (the drain cost if execution stops after
    /// it under overlapped drains).
    pub rows: usize,
    /// Column extent of the tile.
    pub cols: usize,
    /// Billed compute cycles: `fill + T` (+ `rows` under
    /// [`DrainPolicy::PerTile`]).
    pub cycles: u64,
    /// DRAM bytes attributed to this tile (area-proportional slice of
    /// the workload's total traffic; slices sum to the total exactly).
    pub dram_bytes: u64,
}

/// The exact-edge tile walk of a GEMM on one array: per-tile cycles and
/// DRAM traffic, plus the final drain billed once under
/// [`DrainPolicy::Overlapped`].
///
/// [`TileSchedule::total_cycles`] equals
/// [`RuntimeSpec::runtime`] under [`Accounting::ExactEdges`] for the
/// same spec — the schedule *is* that accounting, phase by phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TileSchedule {
    /// The tile phases, in execution order (never empty).
    pub tiles: Vec<TilePhase>,
    /// Drain cycles billed after the last tile (`0` under
    /// [`DrainPolicy::PerTile`], the last tile's rows under
    /// [`DrainPolicy::Overlapped`]).
    pub final_drain: u64,
}

impl TileSchedule {
    /// Total billed cycles: the per-tile sum plus the final drain.
    pub fn total_cycles(&self) -> u64 {
        self.tiles.iter().map(|t| t.cycles).sum::<u64>() + self.final_drain
    }

    /// Total attributed DRAM bytes (equals the `total_dram_bytes` the
    /// schedule was built with).
    pub fn total_dram_bytes(&self) -> u64 {
        self.tiles.iter().map(|t| t.dram_bytes).sum()
    }
}

impl RuntimeSpec {
    /// Builds the exact-edge tile walk of `gemm` on `arch`, attributing
    /// `total_dram_bytes` of DRAM traffic across the tiles
    /// proportionally to their PE area (cumulative rounding, so the
    /// slices sum to `total_dram_bytes` exactly).
    ///
    /// The walk follows the spec's dataflow, tiling and drain policy;
    /// edge tiles are billed at their true extents
    /// ([`Accounting::ExactEdges`] — the schedule is inherently
    /// exact-edge, whatever the spec's `accounting` field says).
    ///
    /// # Examples
    ///
    /// ```
    /// use axon_core::runtime::{Accounting, Architecture, RuntimeSpec};
    /// use axon_core::{ArrayShape, Dataflow, GemmShape};
    ///
    /// let spec = RuntimeSpec::new(ArrayShape::square(32), Dataflow::Os)
    ///     .with_accounting(Accounting::ExactEdges);
    /// let g = GemmShape::new(100, 16, 70);
    /// let sched = spec.tile_schedule(Architecture::Axon, g, 10_000);
    /// assert_eq!(sched.total_cycles(), spec.runtime(Architecture::Axon, g).cycles as u64);
    /// assert_eq!(sched.total_dram_bytes(), 10_000);
    /// ```
    pub fn tile_schedule(
        &self,
        arch: Architecture,
        gemm: GemmShape,
        total_dram_bytes: u64,
    ) -> TileSchedule {
        let st = self.dataflow.map(gemm);
        let (sr, sc) = self.tiling.effective_spatial(st);
        let extents: Vec<(usize, usize)> = TileExtents::new(sr, sc, self.array).collect();
        let total_area: u128 = extents.iter().map(|&(r, c)| (r * c) as u128).sum();

        let mut tiles = Vec::with_capacity(extents.len());
        let mut cum_area: u128 = 0;
        let mut cum_bytes: u64 = 0;
        let mut last_rows = 0usize;
        // The cumulative products stay within u64 for every realistic
        // workload; keep the u128 path as the exact fallback. Both
        // compute the identical floor, so the choice is invisible.
        let u64_ok = (total_dram_bytes as u128)
            .checked_mul(total_area)
            .is_some_and(|p| p <= u64::MAX as u128);
        for &(r, c) in &extents {
            cum_area += (r * c) as u128;
            // Largest-cumulative-floor rounding: per-tile slices differ
            // from the exact proportion by < 1 byte and sum exactly.
            let cum_target = if u64_ok {
                total_dram_bytes * cum_area as u64 / (total_area.max(1) as u64)
            } else {
                (total_dram_bytes as u128 * cum_area / total_area.max(1)) as u64
            };
            let dram_bytes = cum_target - cum_bytes;
            cum_bytes = cum_target;

            let fill = arch.tile_fill(r, c) as u64;
            let mut cycles = fill + st.t as u64;
            if matches!(self.drain, DrainPolicy::PerTile) {
                cycles += r as u64;
            }
            tiles.push(TilePhase {
                rows: r,
                cols: c,
                cycles,
                dram_bytes,
            });
            last_rows = r;
        }
        let final_drain = match self.drain {
            DrainPolicy::PerTile => 0,
            DrainPolicy::Overlapped => last_rows as u64,
        };
        TileSchedule { tiles, final_drain }
    }
}

/// Result of a runtime-model evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RuntimeReport {
    /// Total modeled cycles.
    pub cycles: usize,
    /// Number of sequential tile passes.
    pub tiles: usize,
    /// Cycles spent filling operands (summed over tiles).
    pub fill_cycles: usize,
    /// Cycles spent computing (`tiles * T`).
    pub compute_cycles: usize,
    /// Drain cycles actually billed under the drain policy.
    pub drain_cycles: usize,
}

impl RuntimeReport {
    /// Fraction of billed cycles spent on useful compute.
    pub fn compute_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.compute_cycles as f64 / self.cycles as f64
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles over {} tiles (fill {}, compute {}, drain {})",
            self.cycles, self.tiles, self.fill_cycles, self.compute_cycles, self.drain_cycles
        )
    }
}

/// Closed-form single-tile runtime per the paper's Table 2, for a GEMM that
/// fits the array (`S_R <= R`, `S_C <= C`), including the drain term.
///
/// | Dataflow | Systolic array      | Axon                     |
/// |----------|---------------------|--------------------------|
/// | OS       | `2M + K + N - 2`    | `max(M,N) + M + K - 1`   |
/// | WS       | `2K + M + N - 2`    | `max(M,K) + K + N - 1`   |
/// | IS       | `2K + M + N - 2`    | `max(N,K) + K + M - 1`   |
///
/// # Examples
///
/// ```
/// use axon_core::{Dataflow, GemmShape};
/// use axon_core::runtime::{table2_runtime, Architecture};
///
/// let g = GemmShape::new(16, 16, 16);
/// assert_eq!(table2_runtime(Architecture::Conventional, Dataflow::Os, g), 2 * 16 + 16 + 16 - 2);
/// assert_eq!(table2_runtime(Architecture::Axon, Dataflow::Os, g), 16 + 16 + 16 - 1);
/// ```
pub fn table2_runtime(arch: Architecture, dataflow: Dataflow, gemm: GemmShape) -> usize {
    let GemmShape { m, k, n } = gemm;
    match (arch, dataflow) {
        (Architecture::Conventional, Dataflow::Os) => 2 * m + k + n - 2,
        (Architecture::Conventional, Dataflow::Ws) | (Architecture::Conventional, Dataflow::Is) => {
            2 * k + m + n - 2
        }
        (Architecture::Axon, Dataflow::Os) => m.max(n) + m + k - 1,
        (Architecture::Axon, Dataflow::Ws) => m.max(k) + k + n - 1,
        (Architecture::Axon, Dataflow::Is) => n.max(k) + k + m - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec64() -> RuntimeSpec {
        RuntimeSpec::new(ArrayShape::square(64), Dataflow::Os)
    }

    #[test]
    fn table2_matches_spec_for_single_tile() {
        // A GEMM that exactly fills the array must reproduce Table 2 when
        // per-tile drains are billed.
        let g = GemmShape::new(64, 100, 64);
        let spec = spec64()
            .with_drain(DrainPolicy::PerTile)
            .with_accounting(Accounting::ExactEdges);
        for df in Dataflow::ALL {
            // Only OS maps S_R=M; WS/IS map S_R=K which exceeds the array
            // here, so restrict the closed-form check to shapes that fit.
            if df == Dataflow::Os {
                let spec = RuntimeSpec {
                    dataflow: df,
                    ..spec
                };
                let r = spec.runtime(Architecture::Conventional, g);
                assert_eq!(r.cycles, table2_runtime(Architecture::Conventional, df, g));
                let r = spec.runtime(Architecture::Axon, g);
                assert_eq!(r.cycles, table2_runtime(Architecture::Axon, df, g));
            }
        }
    }

    #[test]
    fn table2_ws_is_forms() {
        let g = GemmShape::new(10, 20, 30);
        assert_eq!(
            table2_runtime(Architecture::Conventional, Dataflow::Ws, g),
            2 * 20 + 10 + 30 - 2
        );
        assert_eq!(
            table2_runtime(Architecture::Axon, Dataflow::Ws, g),
            20 + 20 + 30 - 1 // max(20,10) = 20
        );
        assert_eq!(
            table2_runtime(Architecture::Axon, Dataflow::Is, g),
            30 + 20 + 10 - 1 // max(30,20) = 30
        );
    }

    #[test]
    fn axon_never_slower_square() {
        // For square arrays Axon's fill is strictly smaller whenever the
        // array has more than one row/column.
        for n in [2usize, 4, 16, 64, 256] {
            let a = ArrayShape::square(n);
            assert!(
                Architecture::Axon.tile_fill(a.rows(), a.cols())
                    < Architecture::Conventional.tile_fill(a.rows(), a.cols())
            );
        }
    }

    #[test]
    fn speedup_at_256_matches_paper_shape() {
        // TF0 (M=31999, K=84, N=1024) on a 256x256 array, OS dataflow,
        // overlapped drains: speedup should be ~1.75 (paper's Fig. 12
        // reports a 1.76x *average* at this size).
        let spec = RuntimeSpec::new(ArrayShape::square(256), Dataflow::Os);
        let s = spec.speedup(GemmShape::new(31999, 84, 1024));
        assert!((1.6..1.85).contains(&s), "speedup {s}");
    }

    #[test]
    fn gemv_speedup_approaches_two() {
        // Memory-bound GEMV under WS: T = N = 1, so per-tile time is almost
        // entirely fill latency and Axon approaches 2x (paper §1 bullet 1).
        // A large GEMV spans many tiles, amortizing the single final drain.
        let spec = RuntimeSpec::new(ArrayShape::square(128), Dataflow::Ws);
        let s = spec.speedup(GemmShape::gemv(4096, 4096));
        assert!(s > 1.9, "GEMV speedup {s}");
    }

    #[test]
    fn temporal_bound_workloads_see_little_gain() {
        // DB0-like: huge K under OS means T dominates; speedup ~1
        // (paper: "for some workloads... scaling up doesn't help").
        let spec = RuntimeSpec::new(ArrayShape::square(64), Dataflow::Os);
        let s = spec.speedup(GemmShape::new(1024, 50000, 16));
        assert!(s < 1.01, "speedup {s}");
    }

    #[test]
    fn paper_ceil_matches_eq2() {
        // Eq. 2: tau = (2R + C + T - 2) * ceil(S_R/R) * ceil(S_C/C)
        let array = ArrayShape::square(32);
        let g = GemmShape::new(100, 10, 70);
        let spec = RuntimeSpec::new(array, Dataflow::Os).with_drain(DrainPolicy::PerTile);
        let r = spec.runtime(Architecture::Conventional, g);
        let per_tile = 2 * 32 + 32 + 10 - 2;
        let tiles = 4 * 3;
        assert_eq!(r.cycles, per_tile * tiles);
        assert_eq!(r.tiles, tiles);
    }

    #[test]
    fn exact_edges_cheaper_than_ceil() {
        let g = GemmShape::new(65, 10, 65);
        let spec = spec64();
        let ceil = spec.runtime(Architecture::Conventional, g);
        let exact = spec
            .with_accounting(Accounting::ExactEdges)
            .runtime(Architecture::Conventional, g);
        assert!(exact.cycles < ceil.cycles);
        assert_eq!(exact.tiles, ceil.tiles);
    }

    #[test]
    fn overlapped_drain_cheaper_than_per_tile() {
        let g = GemmShape::new(512, 64, 512);
        let spec = spec64();
        let overlapped = spec.runtime(Architecture::Axon, g);
        let per_tile = spec
            .with_drain(DrainPolicy::PerTile)
            .runtime(Architecture::Axon, g);
        assert!(overlapped.cycles < per_tile.cycles);
    }

    #[test]
    fn best_dataflow_picks_minimum() {
        let spec = spec64();
        let g = GemmShape::new(64, 4096, 64);
        let (df, rep) = spec.best_dataflow(Architecture::Conventional, g);
        for other in Dataflow::ALL {
            let r = RuntimeSpec {
                dataflow: other,
                ..spec
            }
            .runtime(Architecture::Conventional, g);
            assert!(rep.cycles <= r.cycles, "{df} not optimal vs {other}");
        }
    }

    #[test]
    fn scale_out_runtime_scales_down() {
        let g = GemmShape::new(1024, 64, 1024);
        let base = spec64();
        let so = base.with_tiling(Tiling::ScaleOut {
            partitions_r: 2,
            partitions_c: 2,
        });
        let mono = base.runtime(Architecture::Axon, g);
        let part = so.runtime(Architecture::Axon, g);
        assert!(part.cycles * 3 < mono.cycles);
    }

    #[test]
    fn tile_schedule_matches_exact_edge_runtime() {
        for shape in [
            GemmShape::new(1, 512, 2048),
            GemmShape::new(128, 512, 512),
            GemmShape::new(8, 512, 8192),
            GemmShape::new(4096, 4096, 1),
            GemmShape::new(3, 3, 3),
        ] {
            for drain in [DrainPolicy::Overlapped, DrainPolicy::PerTile] {
                for df in Dataflow::ALL {
                    for arch in [Architecture::Conventional, Architecture::Axon] {
                        let spec = RuntimeSpec::new(ArrayShape::square(32), df)
                            .with_accounting(Accounting::ExactEdges)
                            .with_drain(drain);
                        let sched = spec.tile_schedule(arch, shape, 123_456);
                        assert!(!sched.tiles.is_empty());
                        assert_eq!(
                            sched.total_cycles(),
                            spec.runtime(arch, shape).cycles as u64,
                            "{arch} {df} {drain:?} {shape}"
                        );
                        assert_eq!(sched.total_dram_bytes(), 123_456);
                    }
                }
            }
        }
    }

    #[test]
    fn tile_schedule_bytes_are_area_proportional() {
        let spec = RuntimeSpec::new(ArrayShape::square(16), Dataflow::Os);
        // 40x16 under OS: sr = 40 -> tiles of 16, 16, 8 rows; equal cols.
        let sched = spec.tile_schedule(Architecture::Axon, GemmShape::new(40, 8, 16), 1000);
        assert_eq!(sched.tiles.len(), 3);
        let bytes: Vec<u64> = sched.tiles.iter().map(|t| t.dram_bytes).collect();
        assert_eq!(bytes.iter().sum::<u64>(), 1000);
        // Full tiles carry equal slices; the half-height edge tile half.
        assert_eq!(bytes[0], bytes[1]);
        assert!(bytes[2] < bytes[0]);
        // Zero traffic stays zero per tile.
        let dry = spec.tile_schedule(Architecture::Axon, GemmShape::new(40, 8, 16), 0);
        assert!(dry.tiles.iter().all(|t| t.dram_bytes == 0));
    }

    #[test]
    fn tile_schedule_scale_out_slices() {
        let g = GemmShape::new(1024, 64, 1024);
        let base = spec64().with_accounting(Accounting::ExactEdges);
        let so = base.with_tiling(Tiling::ScaleOut {
            partitions_r: 2,
            partitions_c: 2,
        });
        let sched = so.tile_schedule(Architecture::Axon, g, 4096);
        assert_eq!(
            sched.total_cycles(),
            so.runtime(Architecture::Axon, g).cycles as u64
        );
    }

    #[test]
    fn report_display_and_fraction() {
        let spec = spec64();
        let rep = spec.runtime(Architecture::Axon, GemmShape::new(64, 64, 64));
        assert!(rep.compute_fraction() > 0.0 && rep.compute_fraction() < 1.0);
        assert!(rep.to_string().contains("cycles"));
    }
}

//! Conventional systolic-array latency laws (SCALE-sim, paper Eq. 1).

/// Fill latency of a conventional systolic array tile occupying `r x c`
/// PEs: the Manhattan distance from the feed corner to the farthest PE,
/// `r + c - 2`.
///
/// This is `f1(R, C)` in the paper's Fig. 6. The skew of the operand
/// streams is what makes both the row and the column distance appear.
///
/// # Examples
///
/// ```
/// use axon_core::runtime::sa_tile_fill;
///
/// assert_eq!(sa_tile_fill(256, 256), 510);
/// assert_eq!(sa_tile_fill(1, 1), 0);
/// ```
pub fn sa_tile_fill(r: usize, c: usize) -> usize {
    (r + c).saturating_sub(2)
}

/// Full per-tile latency of a conventional systolic array:
/// `2r + c + t - 2` (fill `r + c - 2`, compute `t`, drain `r`).
///
/// # Examples
///
/// ```
/// use axon_core::runtime::sa_tile_cycles;
///
/// // Eq. 1 with S_R = 16, S_C = 16, T = 100:
/// assert_eq!(sa_tile_cycles(16, 16, 100), 2 * 16 + 16 + 100 - 2);
/// ```
pub fn sa_tile_cycles(r: usize, c: usize, t: usize) -> usize {
    sa_tile_fill(r, c) + t + r
}

/// Convenience wrapper bundling the conventional laws, mirroring
/// [`AxonRuntime`](crate::runtime::AxonRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SaRuntime;

impl SaRuntime {
    /// See [`sa_tile_fill`].
    pub fn fill(&self, r: usize, c: usize) -> usize {
        sa_tile_fill(r, c)
    }

    /// See [`sa_tile_cycles`].
    pub fn tile_cycles(&self, r: usize, c: usize, t: usize) -> usize {
        sa_tile_cycles(r, c, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_manhattan_distance() {
        assert_eq!(sa_tile_fill(4, 4), 6);
        assert_eq!(sa_tile_fill(1, 8), 7);
        assert_eq!(sa_tile_fill(8, 1), 7);
    }

    #[test]
    fn degenerate_single_pe() {
        assert_eq!(sa_tile_fill(1, 1), 0);
        assert_eq!(sa_tile_cycles(1, 1, 5), 6);
    }

    #[test]
    fn eq1_decomposition() {
        // 2 S_R + S_C + T - 2 must equal fill + T + readout.
        for (r, c, t) in [(16, 16, 16), (8, 32, 100), (64, 4, 1)] {
            assert_eq!(sa_tile_cycles(r, c, t), 2 * r + c + t - 2);
        }
    }
}

//! Error types shared by the Axon crates.

use std::error::Error;
use std::fmt;

/// Error raised when a shape (GEMM, array or tile) is invalid for the
/// requested operation.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, ShapeError};
///
/// let err = ArrayShape::try_new(0, 4).unwrap_err();
/// assert!(matches!(err, ShapeError::ZeroDimension { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShapeError {
    /// A dimension that must be strictly positive was zero.
    ZeroDimension {
        /// Name of the offending dimension (e.g. `"rows"`, `"M"`).
        dimension: &'static str,
    },
    /// A tile exceeded the physical array bounds.
    TileTooLarge {
        /// Requested tile rows.
        tile_rows: usize,
        /// Requested tile columns.
        tile_cols: usize,
        /// Physical array rows.
        array_rows: usize,
        /// Physical array columns.
        array_cols: usize,
    },
    /// Two operands disagreed on their shared (contraction) dimension.
    DimensionMismatch {
        /// Description of the context (e.g. `"lhs cols vs rhs rows"`).
        context: &'static str,
        /// Left-hand value.
        left: usize,
        /// Right-hand value.
        right: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDimension { dimension } => {
                write!(f, "dimension `{dimension}` must be non-zero")
            }
            ShapeError::TileTooLarge {
                tile_rows,
                tile_cols,
                array_rows,
                array_cols,
            } => write!(
                f,
                "tile {tile_rows}x{tile_cols} exceeds array {array_rows}x{array_cols}"
            ),
            ShapeError::DimensionMismatch {
                context,
                left,
                right,
            } => write!(f, "dimension mismatch ({context}): {left} != {right}"),
        }
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero_dimension() {
        let err = ShapeError::ZeroDimension { dimension: "rows" };
        assert_eq!(err.to_string(), "dimension `rows` must be non-zero");
    }

    #[test]
    fn display_tile_too_large() {
        let err = ShapeError::TileTooLarge {
            tile_rows: 32,
            tile_cols: 8,
            array_rows: 16,
            array_cols: 16,
        };
        assert_eq!(err.to_string(), "tile 32x8 exceeds array 16x16");
    }

    #[test]
    fn display_dimension_mismatch() {
        let err = ShapeError::DimensionMismatch {
            context: "lhs cols vs rhs rows",
            left: 3,
            right: 4,
        };
        assert!(err.to_string().contains("3 != 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}

//! Analytical model of the Configurable Multi-directional Systolic Array
//! (CMSA, Xu et al., ACM TACO 2021) used as the paper's second baseline
//! (§5.2.2, Fig. 13).
//!
//! CMSA augments a conventional systolic array with an additional data path
//! so that one operand can be streamed into the array from *two opposite
//! edges* simultaneously. The farthest PE is then at distance
//! `ceil(r / 2) + c - 2` instead of `r + c - 2`: the vertical half of the
//! Manhattan distance is halved while the horizontal component (and the
//! stream skew that produces it) is unchanged.
//!
//! This is a *substitute model*: the original work drives RTL; here we keep
//! only its latency law, which is the quantity the Axon paper compares
//! against. Axon's diagonal feed shortens **both** components at once
//! (`max(r, c) - 1`), which is why it wins on utilization-rate improvement
//! (by ~27% on average in the paper's Fig. 13).

use crate::shape::ArrayShape;

/// Fill latency of a CMSA tile occupying `r x c` PEs:
/// `ceil(r/2) + c - 2`.
///
/// # Examples
///
/// ```
/// use axon_core::cmsa::cmsa_tile_fill;
///
/// // 128x128: conventional fill is 254, CMSA cuts it to 190.
/// assert_eq!(cmsa_tile_fill(128, 128), 64 + 128 - 2);
/// ```
pub fn cmsa_tile_fill(r: usize, c: usize) -> usize {
    (r.div_ceil(2) + c).saturating_sub(2)
}

/// Full per-tile latency for CMSA: fill + compute + drain (`r`).
pub fn cmsa_tile_cycles(r: usize, c: usize, t: usize) -> usize {
    cmsa_tile_fill(r, c) + t + r
}

/// Latency-law wrapper for CMSA, mirroring
/// [`SaRuntime`](crate::runtime::SaRuntime) and
/// [`AxonRuntime`](crate::runtime::AxonRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CmsaRuntime;

impl CmsaRuntime {
    /// See [`cmsa_tile_fill`].
    pub fn fill(&self, r: usize, c: usize) -> usize {
        cmsa_tile_fill(r, c)
    }

    /// See [`cmsa_tile_cycles`].
    pub fn tile_cycles(&self, r: usize, c: usize, t: usize) -> usize {
        cmsa_tile_cycles(r, c, t)
    }

    /// Fill latency for a full array.
    pub fn array_fill(&self, array: ArrayShape) -> usize {
        cmsa_tile_fill(array.rows(), array.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{axon_tile_fill, sa_tile_fill};

    #[test]
    fn cmsa_between_sa_and_axon_on_squares() {
        for n in [8usize, 16, 64, 128, 256] {
            let sa = sa_tile_fill(n, n);
            let cmsa = cmsa_tile_fill(n, n);
            let axon = axon_tile_fill(n, n);
            assert!(axon < cmsa, "axon {axon} !< cmsa {cmsa} at {n}");
            assert!(cmsa < sa, "cmsa {cmsa} !< sa {sa} at {n}");
        }
    }

    #[test]
    fn cmsa_fill_formula() {
        assert_eq!(cmsa_tile_fill(16, 16), 8 + 16 - 2);
        assert_eq!(cmsa_tile_fill(15, 16), 8 + 16 - 2);
        assert_eq!(cmsa_tile_fill(1, 1), 0);
    }

    #[test]
    fn cmsa_never_worse_than_sa() {
        for r in 1..40usize {
            for c in 1..40usize {
                assert!(cmsa_tile_fill(r, c) <= sa_tile_fill(r, c));
            }
        }
    }
}

//! # axon-core
//!
//! Core types and analytical models for the **Axon** systolic-array
//! architecture (Nayan et al., DATE 2025): a conventional systolic array
//! whose operands are fed through the PEs on the principal diagonal and
//! propagate **bidirectionally**, halving the operand fill latency of a
//! square array from `2R - 2` to `R - 1` cycles and removing the input
//! skew entirely.
//!
//! This crate provides:
//!
//! * geometric types ([`ArrayShape`], [`GemmShape`], [`SpatioTemporal`]);
//! * the three classical dataflows and their GEMM mappings ([`Dataflow`],
//!   paper Table 1);
//! * tiling for workloads larger than the array ([`tile::Tiling`],
//!   scale-up / scale-out, paper Eq. 2–3);
//! * analytical runtime models for the conventional array (SCALE-sim,
//!   Eq. 1), Axon (Table 2) and the CMSA baseline ([`runtime`], [`cmsa`]);
//! * PE utilization-rate models ([`utilization`], Fig. 13).
//!
//! Cycle-accurate simulation lives in the `axon-sim` crate; this crate is
//! pure arithmetic and has no dependencies.
//!
//! ## Example
//!
//! ```
//! use axon_core::{ArrayShape, Dataflow, GemmShape};
//! use axon_core::runtime::{Architecture, RuntimeSpec};
//!
//! // TF0 from the paper's Table 3 on a 64x64 array, output stationary.
//! let spec = RuntimeSpec::new(ArrayShape::square(64), Dataflow::Os);
//! let gemm = GemmShape::new(31999, 84, 1024);
//!
//! let sa = spec.runtime(Architecture::Conventional, gemm);
//! let axon = spec.runtime(Architecture::Axon, gemm);
//! let speedup = sa.cycles as f64 / axon.cycles as f64;
//! assert!(speedup > 1.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
mod error;
mod shape;

pub mod cmsa;
pub mod mapper;
pub mod runtime;
pub mod tile;
pub mod utilization;

pub use dataflow::Dataflow;
pub use error::ShapeError;
pub use shape::{ArrayShape, GemmShape, SpatioTemporal};
pub use tile::Tiling;

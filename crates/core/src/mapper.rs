//! Mapping-space exploration: enumerate (dataflow, tiling) choices for a
//! GEMM on an array and rank them by modeled runtime.
//!
//! This is the decision problem SCALE-sim-family tools answer before
//! running a workload: which dataflow to program and whether to
//! partition. Axon's unified PE (paper §4.3) makes the dataflow choice a
//! runtime knob, so the explorer is part of the usable API, not just an
//! offline study.

use crate::dataflow::Dataflow;
use crate::runtime::{Architecture, RuntimeReport, RuntimeSpec};
use crate::shape::{ArrayShape, GemmShape};
use crate::tile::Tiling;
use std::fmt;

/// One evaluated mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingCandidate {
    /// Dataflow programmed into the array.
    pub dataflow: Dataflow,
    /// Tiling strategy.
    pub tiling: Tiling,
    /// Modeled runtime.
    pub report: RuntimeReport,
    /// PE utilization under this mapping (useful MACs per PE-cycle,
    /// aggregated over all parallel arrays).
    pub utilization: f64,
}

impl fmt::Display for MappingCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {}: {} cycles, {:.1}% utilized",
            self.dataflow,
            self.tiling,
            self.report.cycles,
            100.0 * self.utilization
        )
    }
}

/// Explores all dataflows and the given scale-out partitionings for
/// `gemm` on `array`, returning candidates sorted by ascending cycles.
///
/// `partition_options` lists the `(P_R, P_C)` grids to consider in
/// addition to monolithic scale-up; pass `&[]` to consider scale-up only.
/// The utilization accounts for all `P_R * P_C` arrays, so scale-out
/// trades utilization for makespan honestly.
///
/// # Examples
///
/// ```
/// use axon_core::mapper::explore;
/// use axon_core::runtime::Architecture;
/// use axon_core::{ArrayShape, GemmShape};
///
/// let ranked = explore(
///     Architecture::Axon,
///     ArrayShape::square(32),
///     GemmShape::new(256, 16, 256),
///     &[(2, 2)],
/// );
/// // Candidates are sorted fastest-first.
/// assert!(ranked.windows(2).all(|w| w[0].report.cycles <= w[1].report.cycles));
/// ```
pub fn explore(
    arch: Architecture,
    array: ArrayShape,
    gemm: GemmShape,
    partition_options: &[(usize, usize)],
) -> Vec<MappingCandidate> {
    let mut tilings = vec![Tiling::ScaleUp];
    tilings.extend(partition_options.iter().map(|&(pr, pc)| Tiling::ScaleOut {
        partitions_r: pr.max(1),
        partitions_c: pc.max(1),
    }));

    let mut out = Vec::with_capacity(3 * tilings.len());
    for df in Dataflow::ALL {
        for &tiling in &tilings {
            let spec = RuntimeSpec::new(array, df).with_tiling(tiling);
            let report = spec.runtime(arch, gemm);
            let pe_cycles =
                array.num_pes() as f64 * tiling.parallel_arrays() as f64 * report.cycles as f64;
            out.push(MappingCandidate {
                dataflow: df,
                tiling,
                report,
                utilization: gemm.macs() as f64 / pe_cycles,
            });
        }
    }
    out.sort_by(|a, b| {
        a.report
            .cycles
            .cmp(&b.report.cycles)
            .then(b.utilization.total_cmp(&a.utilization))
    });
    out
}

/// The fastest mapping from [`explore`].
pub fn best_mapping(
    arch: Architecture,
    array: ArrayShape,
    gemm: GemmShape,
    partition_options: &[(usize, usize)],
) -> MappingCandidate {
    explore(arch, array, gemm, partition_options)
        .into_iter()
        .next()
        .expect("explore always yields at least the three scale-up mappings")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_covers_all_dataflows() {
        let ranked = explore(
            Architecture::Axon,
            ArrayShape::square(16),
            GemmShape::new(64, 64, 64),
            &[],
        );
        assert_eq!(ranked.len(), 3);
        let mut dfs: Vec<_> = ranked.iter().map(|c| c.dataflow).collect();
        dfs.sort_by_key(|d| d.name());
        dfs.dedup();
        assert_eq!(dfs.len(), 3);
    }

    #[test]
    fn best_matches_best_dataflow_for_scale_up() {
        let array = ArrayShape::square(32);
        let gemm = GemmShape::new(100, 500, 80);
        let best = best_mapping(Architecture::Conventional, array, gemm, &[]);
        let spec = RuntimeSpec::new(array, Dataflow::Os);
        let (df, report) = spec.best_dataflow(Architecture::Conventional, gemm);
        assert_eq!(best.dataflow, df);
        assert_eq!(best.report.cycles, report.cycles);
    }

    #[test]
    fn scale_out_wins_on_makespan_but_loses_utilization() {
        let array = ArrayShape::square(16);
        let gemm = GemmShape::new(512, 8, 512);
        let ranked = explore(Architecture::Axon, array, gemm, &[(4, 4)]);
        let best = &ranked[0];
        assert!(matches!(best.tiling, Tiling::ScaleOut { .. }));
        let scale_up_best = ranked
            .iter()
            .find(|c| c.tiling == Tiling::ScaleUp)
            .expect("scale-up candidates present");
        assert!(best.report.cycles < scale_up_best.report.cycles);
        assert!(best.utilization <= scale_up_best.utilization + 1e-12);
    }

    #[test]
    fn utilization_bounded() {
        for c in explore(
            Architecture::Axon,
            ArrayShape::square(8),
            GemmShape::new(31, 17, 23),
            &[(2, 2), (3, 1)],
        ) {
            assert!(c.utilization > 0.0 && c.utilization <= 1.0, "{c}");
        }
    }

    #[test]
    fn display_is_informative() {
        let best = best_mapping(
            Architecture::Axon,
            ArrayShape::square(8),
            GemmShape::new(8, 8, 8),
            &[],
        );
        let s = best.to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains("utilized"));
    }
}

//! Tiling of large GEMMs onto finite arrays (scale-up and scale-out,
//! paper §2.2 Fig. 2).

use crate::shape::{ArrayShape, SpatioTemporal};
use std::fmt;

/// Integer ceiling division. Helper used throughout the runtime models.
pub(crate) fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// How a workload larger than the array is partitioned.
///
/// * **Scale-up** — one large monolithic array; the operand matrices are cut
///   into `ceil(S_R/R) * ceil(S_C/C)` tiles executed back to back (Eq. 2).
/// * **Scale-out** — `partitions_r x partitions_c` smaller arrays working in
///   parallel on disjoint slices (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tiling {
    /// Single monolithic array executing all tiles sequentially.
    #[default]
    ScaleUp,
    /// Multiple arrays; the workload is pre-partitioned `p_r x p_c` ways and
    /// each array handles its slice sequentially.
    ScaleOut {
        /// Partitions across the row dimension (`P_R`).
        partitions_r: usize,
        /// Partitions across the column dimension (`P_C`).
        partitions_c: usize,
    },
}

impl Tiling {
    /// Number of sequential tile passes one array performs for the given
    /// mapped workload.
    ///
    /// For scale-up this is `ceil(S_R/R) * ceil(S_C/C)`; for scale-out the
    /// spatial dimensions are first divided by the partition counts
    /// (`S'_R = S_R / P_R`, `S'_C = S_C / P_C`, rounded up).
    pub fn sequential_tiles(&self, st: SpatioTemporal, array: ArrayShape) -> usize {
        let (sr, sc) = self.effective_spatial(st);
        div_ceil(sr, array.rows()) * div_ceil(sc, array.cols())
    }

    /// The per-array spatial extents after scale-out partitioning.
    pub fn effective_spatial(&self, st: SpatioTemporal) -> (usize, usize) {
        match *self {
            Tiling::ScaleUp => (st.sr, st.sc),
            Tiling::ScaleOut {
                partitions_r,
                partitions_c,
            } => (
                div_ceil(st.sr, partitions_r.max(1)),
                div_ceil(st.sc, partitions_c.max(1)),
            ),
        }
    }

    /// Total number of arrays executing in parallel.
    pub fn parallel_arrays(&self) -> usize {
        match *self {
            Tiling::ScaleUp => 1,
            Tiling::ScaleOut {
                partitions_r,
                partitions_c,
            } => partitions_r.max(1) * partitions_c.max(1),
        }
    }
}

impl fmt::Display for Tiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Tiling::ScaleUp => f.write_str("scale-up"),
            Tiling::ScaleOut {
                partitions_r,
                partitions_c,
            } => write!(f, "scale-out {partitions_r}x{partitions_c}"),
        }
    }
}

/// Iterator over the concrete (rows, cols) extents of every tile in a
/// scale-up execution, including the ragged edge tiles.
///
/// Useful for exact (rather than ceil-multiplied) runtime accounting and for
/// driving the cycle-accurate simulator tile by tile.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, tile::TileExtents};
///
/// let tiles: Vec<_> = TileExtents::new(5, 3, ArrayShape::new(4, 2)).collect();
/// // rows split 4+1, cols split 2+1 -> four tiles
/// assert_eq!(tiles, vec![(4, 2), (4, 1), (1, 2), (1, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct TileExtents {
    sr: usize,
    sc: usize,
    array: ArrayShape,
    row_idx: usize,
    col_idx: usize,
    row_tiles: usize,
    col_tiles: usize,
}

impl TileExtents {
    /// Creates the tile iterator for a workload with spatial extents
    /// `sr x sc` on `array`.
    pub fn new(sr: usize, sc: usize, array: ArrayShape) -> Self {
        Self {
            sr,
            sc,
            array,
            row_idx: 0,
            col_idx: 0,
            row_tiles: div_ceil(sr.max(1), array.rows()),
            col_tiles: div_ceil(sc.max(1), array.cols()),
        }
    }

    fn extent(total: usize, tile_size: usize, idx: usize) -> usize {
        let start = idx * tile_size;
        (total - start).min(tile_size)
    }
}

impl Iterator for TileExtents {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.row_idx >= self.row_tiles {
            return None;
        }
        let r = Self::extent(self.sr, self.array.rows(), self.row_idx);
        let c = Self::extent(self.sc, self.array.cols(), self.col_idx);
        self.col_idx += 1;
        if self.col_idx >= self.col_tiles {
            self.col_idx = 0;
            self.row_idx += 1;
        }
        Some((r, c))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let done = self.row_idx * self.col_tiles + self.col_idx;
        let total = self.row_tiles * self.col_tiles;
        let rem = total - done;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TileExtents {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::SpatioTemporal;

    #[test]
    fn scale_up_tile_count() {
        let st = SpatioTemporal::new(100, 50, 7);
        let array = ArrayShape::square(32);
        assert_eq!(Tiling::ScaleUp.sequential_tiles(st, array), 4 * 2);
    }

    #[test]
    fn scale_out_divides_spatial_dims() {
        let st = SpatioTemporal::new(100, 50, 7);
        let array = ArrayShape::square(32);
        let t = Tiling::ScaleOut {
            partitions_r: 2,
            partitions_c: 2,
        };
        // S'_R = 50, S'_C = 25 -> ceil(50/32)*ceil(25/32) = 2*1
        assert_eq!(t.sequential_tiles(st, array), 2);
        assert_eq!(t.parallel_arrays(), 4);
    }

    #[test]
    fn exact_fit_single_tile() {
        let st = SpatioTemporal::new(32, 32, 1);
        assert_eq!(
            Tiling::ScaleUp.sequential_tiles(st, ArrayShape::square(32)),
            1
        );
    }

    #[test]
    fn tile_extents_cover_workload() {
        let array = ArrayShape::new(4, 3);
        let tiles: Vec<_> = TileExtents::new(10, 7, array).collect();
        assert_eq!(tiles.len(), 3 * 3);
        let area: usize = tiles.iter().map(|&(r, c)| r * c).sum();
        assert_eq!(area, 10 * 7);
        // No tile exceeds the array.
        assert!(tiles.iter().all(|&(r, c)| r <= 4 && c <= 3));
    }

    #[test]
    fn tile_extents_exact_size() {
        let it = TileExtents::new(9, 9, ArrayShape::square(4));
        assert_eq!(it.len(), 9);
    }

    #[test]
    fn display_variants() {
        assert_eq!(Tiling::ScaleUp.to_string(), "scale-up");
        let t = Tiling::ScaleOut {
            partitions_r: 2,
            partitions_c: 3,
        };
        assert_eq!(t.to_string(), "scale-out 2x3");
    }
}

//! Property tests of the analytical model's structural invariants.

use axon_core::cmsa::cmsa_tile_fill;
use axon_core::runtime::{
    axon_tile_fill, sa_tile_fill, table2_runtime, Accounting, Architecture, DrainPolicy,
    RuntimeSpec,
};
use axon_core::tile::TileExtents;
use axon_core::{ArrayShape, Dataflow, GemmShape, Tiling};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fill_laws_ordering(r in 1usize..2000, c in 1usize..2000) {
        // axon <= cmsa <= sa, everywhere.
        prop_assert!(axon_tile_fill(r, c) <= cmsa_tile_fill(r, c).max(axon_tile_fill(r, c)));
        prop_assert!(cmsa_tile_fill(r, c) <= sa_tile_fill(r, c));
        prop_assert!(axon_tile_fill(r, c) <= sa_tile_fill(r, c));
        // Axon's improvement is bounded by 2x (paper §3.1).
        prop_assert!(sa_tile_fill(r, c) <= 2 * axon_tile_fill(r, c).max(1));
    }

    #[test]
    fn runtime_monotone_in_every_dimension(
        m in 1usize..300,
        k in 1usize..300,
        n in 1usize..300,
        side in 2usize..64,
        df_idx in 0usize..3,
        arch_idx in 0usize..2,
    ) {
        let df = Dataflow::ALL[df_idx];
        let arch = [Architecture::Conventional, Architecture::Axon][arch_idx];
        let spec = RuntimeSpec::new(ArrayShape::square(side), df)
            .with_accounting(Accounting::ExactEdges)
            .with_drain(DrainPolicy::PerTile);
        let base = spec.runtime(arch, GemmShape::new(m, k, n)).cycles;
        for (dm, dk, dn) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
            let grown = spec
                .runtime(arch, GemmShape::new(m + dm, k + dk, n + dn))
                .cycles;
            prop_assert!(grown >= base, "shrinking with larger GEMM: {m},{k},{n} +({dm},{dk},{dn})");
        }
    }

    #[test]
    fn tiles_cover_workload_exactly(
        sr in 1usize..500,
        sc in 1usize..500,
        r in 1usize..32,
        c in 1usize..32,
    ) {
        let array = ArrayShape::new(r, c);
        let mut area = 0usize;
        let mut count = 0usize;
        for (tr, tc) in TileExtents::new(sr, sc, array) {
            prop_assert!(tr >= 1 && tr <= r);
            prop_assert!(tc >= 1 && tc <= c);
            area += tr * tc;
            count += 1;
        }
        prop_assert_eq!(area, sr * sc);
        prop_assert_eq!(count, sr.div_ceil(r) * sc.div_ceil(c));
    }

    #[test]
    fn paper_ceil_upper_bounds_exact_edges(
        m in 1usize..200,
        k in 1usize..200,
        n in 1usize..200,
        side in 2usize..32,
        arch_idx in 0usize..2,
    ) {
        let arch = [Architecture::Conventional, Architecture::Axon][arch_idx];
        let g = GemmShape::new(m, k, n);
        let base = RuntimeSpec::new(ArrayShape::square(side), Dataflow::Os);
        let ceil = base.runtime(arch, g).cycles;
        let exact = base
            .with_accounting(Accounting::ExactEdges)
            .runtime(arch, g)
            .cycles;
        prop_assert!(exact <= ceil, "exact {exact} > ceil {ceil}");
    }

    #[test]
    fn overlapped_never_slower_than_per_tile(
        m in 1usize..200,
        k in 1usize..200,
        n in 1usize..200,
        side in 2usize..32,
        df_idx in 0usize..3,
    ) {
        let g = GemmShape::new(m, k, n);
        let df = Dataflow::ALL[df_idx];
        let base = RuntimeSpec::new(ArrayShape::square(side), df);
        for arch in [Architecture::Conventional, Architecture::Axon] {
            let overlapped = base.runtime(arch, g).cycles;
            let per_tile = base.with_drain(DrainPolicy::PerTile).runtime(arch, g).cycles;
            prop_assert!(overlapped <= per_tile);
        }
    }

    #[test]
    fn scale_out_parallelism_never_hurts_makespan(
        m in 1usize..300,
        k in 1usize..100,
        n in 1usize..300,
        side in 2usize..16,
        p in 1usize..5,
    ) {
        let g = GemmShape::new(m, k, n);
        let mono = RuntimeSpec::new(ArrayShape::square(side), Dataflow::Os);
        let part = mono.with_tiling(Tiling::ScaleOut {
            partitions_r: p,
            partitions_c: p,
        });
        let up = mono.runtime(Architecture::Axon, g).cycles;
        let out = part.runtime(Architecture::Axon, g).cycles;
        prop_assert!(out <= up, "scale-out {out} > scale-up {up}");
    }

    #[test]
    fn table2_speedup_bounded_by_two(
        m in 1usize..500,
        k in 1usize..500,
        n in 1usize..500,
        df_idx in 0usize..3,
    ) {
        let g = GemmShape::new(m, k, n);
        let df = Dataflow::ALL[df_idx];
        let sa = table2_runtime(Architecture::Conventional, df, g);
        let ax = table2_runtime(Architecture::Axon, df, g);
        prop_assert!(ax <= sa, "{g} {df}");
        prop_assert!(sa <= 2 * ax, "{g} {df}: speedup beyond 2x");
    }

    #[test]
    fn min_temporal_maps_largest_dims_spatially(
        m in 1usize..1000,
        k in 1usize..1000,
        n in 1usize..1000,
    ) {
        let g = GemmShape::new(m, k, n);
        let st = Dataflow::min_temporal(g).map(g);
        prop_assert_eq!(st.t, m.min(k).min(n));
        prop_assert!(st.sr >= st.t && st.sc >= st.t);
    }

    /// `runtime` under `ExactEdges` uses a 4-group closed form of the
    /// row-major tile walk; this pins it bit-identical to summing the
    /// per-tile quantities over `TileExtents` directly, across both
    /// architectures, all dataflows, both drain policies and ragged
    /// scale-out partitions.
    #[test]
    fn exact_edges_closed_form_matches_walk(
        m in 1usize..600,
        k in 1usize..600,
        n in 1usize..600,
        rows in 1usize..64,
        cols in 1usize..64,
        df_idx in 0usize..3,
        arch_idx in 0usize..2,
        drain_idx in 0usize..2,
        pr in 1usize..5,
        pc in 1usize..5,
    ) {
        let g = GemmShape::new(m, k, n);
        let df = Dataflow::ALL[df_idx];
        let arch = [Architecture::Conventional, Architecture::Axon][arch_idx];
        let drain = [DrainPolicy::PerTile, DrainPolicy::Overlapped][drain_idx];
        let tiling = if pr == 1 && pc == 1 {
            Tiling::ScaleUp
        } else {
            Tiling::ScaleOut { partitions_r: pr, partitions_c: pc }
        };
        let array = ArrayShape::new(rows.max(2), cols.max(2));
        let spec = RuntimeSpec::new(array, df)
            .with_accounting(Accounting::ExactEdges)
            .with_drain(drain)
            .with_tiling(tiling);
        let report = spec.runtime(arch, g);

        // Reference: the explicit per-tile walk.
        let st = df.map(g);
        let (sr, sc) = tiling.effective_spatial(st);
        let mut fill = 0usize;
        let mut tiles = 0usize;
        let mut drain_sum = 0usize;
        let mut last_drain = 0usize;
        for (r, c) in TileExtents::new(sr, sc, array) {
            fill += match arch {
                Architecture::Conventional => sa_tile_fill(r, c),
                Architecture::Axon => axon_tile_fill(r, c),
            };
            drain_sum += r;
            last_drain = r;
            tiles += 1;
        }
        let compute = tiles * st.t;
        let cycles = match drain {
            DrainPolicy::PerTile => fill + compute + drain_sum,
            DrainPolicy::Overlapped => fill + compute + last_drain,
        };
        prop_assert_eq!(report.cycles, cycles);
        prop_assert_eq!(report.tiles, tiles);
        prop_assert_eq!(report.fill_cycles, fill);
        prop_assert_eq!(report.compute_cycles, compute);
        prop_assert_eq!(
            report.drain_cycles,
            match drain {
                DrainPolicy::PerTile => drain_sum,
                DrainPolicy::Overlapped => last_drain,
            }
        );
    }
}

//! Scale-out correctness property: for random partition grids, GEMM
//! shapes, operand sparsity and all three dataflows, the assembled
//! `p_r x p_c` scale-out product must equal the single-array
//! `simulate_gemm` output (which itself equals the naive reference
//! product), and the ensemble must conserve total work.

use axon_core::runtime::Architecture;
use axon_core::{ArrayShape, Dataflow};
use axon_sim::{random_matrix, simulate_gemm, simulate_gemm_scale_out, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn scale_out_matches_scale_up_product(
        m in 1usize..24,
        k in 1usize..16,
        n in 1usize..24,
        pr in 1usize..5,
        pc in 1usize..5,
        side in 2usize..7,
        df_idx in 0usize..3,
        arch_idx in 0usize..2,
        seed in 0u64..1000,
        sparsity in 0.0f64..0.5,
    ) {
        let a = random_matrix(m, k, seed, sparsity);
        let b = random_matrix(k, n, seed + 1, sparsity);
        let arch = [Architecture::Conventional, Architecture::Axon][arch_idx];
        let df = Dataflow::ALL[df_idx];
        let cfg = SimConfig::new(ArrayShape::square(side)).with_dataflow(df);

        let up = simulate_gemm(arch, &cfg, &a, &b).expect("valid operands");
        let out = simulate_gemm_scale_out(arch, &cfg, pr, pc, &a, &b)
            .expect("valid operands and partitions");

        // The assembled product equals the monolithic simulation (and,
        // transitively, the naive reference product).
        prop_assert_eq!(&out.output, &up.output,
            "arch={} df={} M={} K={} N={} grid={}x{} side={}",
            arch, df, m, k, n, pr, pc, side);
        prop_assert_eq!(&up.output, &a.matmul(&b));

        // Work is conserved across the partitioning.
        prop_assert_eq!(out.total_stats().macs_performed, up.stats.macs_performed);

        // The grid is clamped to the workload, never over-allocated.
        prop_assert!(out.per_array.len() <= pr.min(m) * pc.min(n));

        // Wall clock is the slowest slice, and no slice beats it.
        let max_cycles = out.per_array.iter().map(|s| s.cycles).max().unwrap_or(0);
        prop_assert_eq!(out.makespan_cycles, max_cycles);
    }
}

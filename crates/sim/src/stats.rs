//! Execution statistics collected by the simulators.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated during a simulated execution.
///
/// All counters are totals over every tile pass of a (possibly tiled) GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Total simulated cycles, including per-tile preload/fill and the
    /// billed drain cycles.
    pub cycles: usize,
    /// Multiply-accumulates actually performed by the MAC units.
    pub macs_performed: usize,
    /// MACs skipped by zero gating (an operand was zero, so the multiplier
    /// and adder were not toggled; paper §4.1).
    pub macs_gated: usize,
    /// Elements read from the operand SRAM buffers into the array.
    pub buffer_reads: usize,
    /// Number of sequential tile passes executed.
    pub tiles: usize,
    /// Preload cycles (WS/IS stationary-operand loading), included in
    /// `cycles`.
    pub preload_cycles: usize,
    /// Drain/readout cycles billed, included in `cycles`.
    pub drain_cycles: usize,
}

impl SimStats {
    /// Creates an all-zero statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total MAC slots visited (performed + gated).
    pub fn macs_total(&self) -> usize {
        self.macs_performed + self.macs_gated
    }

    /// Fraction of MAC slots suppressed by zero gating.
    pub fn gating_fraction(&self) -> f64 {
        let total = self.macs_total();
        if total == 0 {
            0.0
        } else {
            self.macs_gated as f64 / total as f64
        }
    }

    /// PE utilization: useful MACs per PE-cycle.
    pub fn utilization(&self, num_pes: usize) -> f64 {
        if self.cycles == 0 || num_pes == 0 {
            return 0.0;
        }
        self.macs_total() as f64 / (num_pes as f64 * self.cycles as f64)
    }
}

impl AddAssign for SimStats {
    fn add_assign(&mut self, rhs: Self) {
        *self += &rhs;
    }
}

impl AddAssign<&SimStats> for SimStats {
    fn add_assign(&mut self, rhs: &SimStats) {
        self.cycles += rhs.cycles;
        self.macs_performed += rhs.macs_performed;
        self.macs_gated += rhs.macs_gated;
        self.buffer_reads += rhs.buffer_reads;
        self.tiles += rhs.tiles;
        self.preload_cycles += rhs.preload_cycles;
        self.drain_cycles += rhs.drain_cycles;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} MACs ({} gated), {} buffer reads, {} tiles",
            self.cycles, self.macs_performed, self.macs_gated, self.buffer_reads, self.tiles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate() {
        let mut a = SimStats {
            cycles: 10,
            macs_performed: 100,
            macs_gated: 5,
            buffer_reads: 20,
            tiles: 1,
            preload_cycles: 2,
            drain_cycles: 3,
        };
        a += a;
        assert_eq!(a.cycles, 20);
        assert_eq!(a.macs_total(), 210);
        assert_eq!(a.tiles, 2);
    }

    #[test]
    fn accumulate_by_reference() {
        let unit = SimStats {
            cycles: 1,
            macs_performed: 2,
            ..SimStats::default()
        };
        let mut total = SimStats::new();
        for s in [&unit, &unit, &unit] {
            total += s;
        }
        assert_eq!(total.cycles, 3);
        assert_eq!(total.macs_performed, 6);
    }

    #[test]
    fn gating_fraction_and_utilization() {
        let s = SimStats {
            cycles: 100,
            macs_performed: 90,
            macs_gated: 10,
            ..SimStats::default()
        };
        assert!((s.gating_fraction() - 0.1).abs() < 1e-12);
        assert!((s.utilization(1) - 1.0).abs() < 1e-12);
        assert_eq!(SimStats::new().gating_fraction(), 0.0);
        assert_eq!(SimStats::new().utilization(16), 0.0);
    }
}

//! A minimal dense row-major matrix used as the simulator's operand type.

use axon_core::ShapeError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f32` matrix.
///
/// The simulator models an FP16 datapath; `f32` storage is used for the
/// *values* because the numeric format does not affect cycle counts or
/// traffic, and it keeps reference comparisons exact for small integers.
///
/// # Examples
///
/// ```
/// use axon_sim::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transposed()[(2, 1)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::DimensionMismatch`] if `data.len() != rows * cols`
    /// and [`ShapeError::ZeroDimension`] on a zero dimension.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if rows == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "rows" });
        }
        if cols == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "cols" });
        }
        if data.len() != rows * cols {
            return Err(ShapeError::DimensionMismatch {
                context: "data length vs rows*cols",
                left: data.len(),
                right: rows * cols,
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns element `(r, c)` or `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// A new matrix that is the transpose of `self`.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// A sub-matrix view copied out as a new matrix, clamped to bounds.
    ///
    /// `row0/col0` are inclusive starts; `rows/cols` the extents.
    pub fn sub(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Self {
        let rows = rows.min(self.rows.saturating_sub(row0)).max(1);
        let cols = cols.min(self.cols.saturating_sub(col0)).max(1);
        Self::from_fn(rows, cols, |r, c| self[(row0 + r, col0 + c)])
    }

    /// Reference matrix product `self * rhs` computed with a naive triple
    /// loop; the ground truth for simulator verification.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Number of zero elements (used by the sparsity/zero-gating models).
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&v| v == 0.0).count()
    }

    /// Fraction of elements that are exactly zero.
    pub fn sparsity(&self) -> f64 {
        self.count_zeros() as f64 / self.data.len() as f64
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.2} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(3, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.get(3, 0), None);
        assert_eq!(m.get(0, 2), None);
        assert_eq!(m.get(2, 1), Some(21.0));
    }

    #[test]
    fn from_vec_validates() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.matmul(&b), b);
    }

    #[test]
    fn matmul_known_values() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(4, 7, |r, c| (r * 31 + c * 17) as f32);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn sub_matrix_clamps() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = m.sub(2, 2, 10, 10);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 2);
        assert_eq!(s[(0, 0)], 10.0);
    }

    #[test]
    fn sparsity_counting() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(m.count_zeros(), 2);
        assert!((m.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let m = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        assert_eq!(m.max_abs_diff(&m), 0.0);
    }
}

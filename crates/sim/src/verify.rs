//! Verification helpers: reference comparison and deterministic operand
//! generation.

use crate::matrix::Matrix;
use crate::{simulate_gemm, SimConfig};
use axon_core::runtime::Architecture;
use axon_core::ShapeError;

/// Outcome of checking a simulated GEMM against the naive reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyReport {
    /// Largest absolute element-wise deviation from the reference product.
    pub max_abs_diff: f32,
    /// Simulated cycle count.
    pub cycles: usize,
    /// Whether the result matched within `tolerance`.
    pub matches: bool,
}

/// Runs the simulator and compares its output against `a.matmul(b)`.
///
/// # Errors
///
/// Propagates [`ShapeError`] from the simulator (e.g. mismatched inner
/// dimensions).
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, runtime::Architecture};
/// use axon_sim::{verify_gemm, Matrix, SimConfig};
///
/// # fn main() -> Result<(), axon_core::ShapeError> {
/// let a = Matrix::from_fn(5, 7, |r, c| (r + 2 * c) as f32);
/// let b = Matrix::from_fn(7, 6, |r, c| (3 * r + c) as f32);
/// let cfg = SimConfig::new(ArrayShape::square(4));
/// let report = verify_gemm(Architecture::Axon, &cfg, &a, &b, 1e-3)?;
/// assert!(report.matches);
/// # Ok(())
/// # }
/// ```
pub fn verify_gemm(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
    tolerance: f32,
) -> Result<VerifyReport, ShapeError> {
    let result = simulate_gemm(arch, cfg, a, b)?;
    let reference = a.matmul(b);
    let max_abs_diff = result.output.max_abs_diff(&reference);
    Ok(VerifyReport {
        max_abs_diff,
        cycles: result.stats.cycles,
        matches: max_abs_diff <= tolerance,
    })
}

/// Deterministic pseudo-random matrix with nonzero elements in
/// `{-4..-1, 1..4}`, independently zeroed with probability `sparsity`.
///
/// Small integers keep `f32` accumulation exact, so simulator-vs-reference
/// comparisons can use zero tolerance, and dense values are never zero so
/// the zero-gating studies see exactly the requested sparsity. The
/// generator is a self-contained xorshift so the library itself stays
/// dependency-free.
///
/// # Examples
///
/// ```
/// use axon_sim::random_matrix;
///
/// let m = random_matrix(8, 8, 42, 0.5);
/// assert!(m.sparsity() > 0.2 && m.sparsity() < 0.8);
/// assert_eq!(random_matrix(8, 8, 42, 0.0).sparsity(), 0.0);
/// let m2 = random_matrix(8, 8, 42, 0.5);
/// assert_eq!(m, m2); // deterministic per seed
/// ```
pub fn random_matrix(rows: usize, cols: usize, seed: u64, sparsity: f64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    Matrix::from_fn(rows, cols, |_, _| {
        let r = next();
        if ((r >> 32) as f64 / u32::MAX as f64) < sparsity {
            0.0
        } else {
            let v = (r % 8) as i64;
            (if v < 4 { v + 1 } else { 3 - v }) as f32
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axon_core::ArrayShape;

    #[test]
    fn verify_accepts_exact_match() {
        let a = random_matrix(6, 5, 1, 0.0);
        let b = random_matrix(5, 7, 2, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(4));
        for arch in [Architecture::Conventional, Architecture::Axon] {
            let r = verify_gemm(arch, &cfg, &a, &b, 0.0).unwrap();
            assert!(r.matches, "{arch} diff {}", r.max_abs_diff);
        }
    }

    #[test]
    fn random_matrix_sparsity_controls_zeros() {
        let dense = random_matrix(32, 32, 7, 0.0);
        assert_eq!(dense.sparsity(), 0.0, "dense values must be nonzero");
        let sparse = random_matrix(32, 32, 7, 0.9);
        assert!(sparse.sparsity() > 0.8);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_matrix(8, 8, 1, 0.0);
        let b = random_matrix(8, 8, 2, 0.0);
        assert_ne!(a, b);
    }
}

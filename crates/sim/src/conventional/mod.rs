//! Tile engines for the conventional (unidirectional) systolic array.

pub(crate) mod os;
pub(crate) mod stationary;

//! Cycle-accurate stationary-operand (WS/IS) tile engine for the
//! conventional systolic array.
//!
//! One operand is preloaded into the array and held; the other streams in
//! from the left edge with a one-cycle skew per row while partial sums
//! flow down the columns and exit from the bottom row (paper §2.1).
//!
//! The engine is dataflow-agnostic: with the paper's Table 1 mapping,
//! weight-stationary holds `A` transposed (`S_R = K`, `S_C = M`, `T = N`)
//! and input-stationary holds `B` (`S_R = K`, `S_C = N`, `T = M`). The
//! wrappers in `lib.rs` perform those projections.

use crate::matrix::Matrix;
use crate::pe::{mac, Lattice};
use crate::probe::{FeedOperand, Probe};
use crate::stats::SimStats;

/// Simulates one stationary tile.
///
/// * `stationary` — the preloaded `sr x sc` grid (`stationary[(k, j)]` sits
///   in PE `(k, j)`).
/// * `stream` — the `t_len x sr` streaming operand; `stream[(t, k)]` is
///   consumed by row `k` at logical step `t`.
///
/// Returns the `t_len x sc` output, where
/// `out[(t, j)] = sum_k stationary[(k, j)] * stream[(t, k)]`.
///
/// The per-tile cycle count is `2*sr + sc + t_len - 2` (Eq. 1): `sr`
/// preload cycles plus `t_len + sr + sc - 2` streaming cycles.
pub(crate) fn simulate_tile(
    stationary: &Matrix,
    stream: &Matrix,
    zero_gating: bool,
    stats: &mut SimStats,
    probe: &mut dyn Probe,
) -> Matrix {
    let sr = stationary.rows();
    let sc = stationary.cols();
    let t_len = stream.rows();
    debug_assert_eq!(stream.cols(), sr);

    let mut flow = Lattice::new(sr, sc);
    let mut psum = Lattice::new(sr, sc);
    let mut out = Matrix::zeros(t_len, sc);
    let mut collected = vec![0usize; sc];
    let mut done = 0usize;
    let mut cycle = 0usize;

    // Preload: one stationary row per cycle via the vertical interconnect.
    stats.preload_cycles += sr;
    stats.buffer_reads += sr * sc;

    while done < sc * t_len {
        // Stream propagation: left-edge feed with skew k, then rightward.
        for k in 0..sr {
            for j in 0..sc {
                let v = if j == 0 {
                    cycle
                        .checked_sub(k)
                        .and_then(|t| stream.get(t, k).map(|v| (t, v)))
                        .map(|(t, v)| {
                            stats.buffer_reads += 1;
                            probe.feed(cycle, FeedOperand::Stream, (t, k));
                            v
                        })
                } else {
                    flow.get(k, j - 1)
                };
                flow.set_next(k, j, v);
            }
        }
        flow.advance();

        // MAC + partial-sum descent. A PE fires when its stream operand is
        // present; the skew guarantees the psum from above arrives the same
        // cycle.
        for k in 0..sr {
            for j in 0..sc {
                if let Some(sv) = flow.get(k, j) {
                    let psum_in = if k == 0 {
                        0.0
                    } else {
                        psum.get(k - 1, j)
                            .expect("skew keeps psums aligned with the stream wavefront")
                    };
                    let acc = mac(psum_in, stationary[(k, j)], sv, zero_gating, stats);
                    probe.mac(cycle, k, j);
                    psum.set_next(k, j, Some(acc));
                    if k == sr - 1 {
                        let t = collected[j];
                        out[(t, j)] = acc;
                        collected[j] += 1;
                        done += 1;
                    }
                }
            }
        }
        psum.advance();
        cycle += 1;
    }

    stats.cycles += sr + cycle;
    stats.tiles += 1;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c + 1) as f32)
    }

    fn reference(stationary: &Matrix, stream: &Matrix) -> Matrix {
        // out = stream * stationary
        stream.matmul(stationary)
    }

    #[test]
    fn computes_correct_output() {
        let s = seq(4, 3);
        let y = seq(5, 4);
        let mut stats = SimStats::new();
        let out = simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(out, reference(&s, &y));
    }

    #[test]
    fn cycle_count_matches_eq1() {
        for (sr, sc, t) in [(4usize, 3usize, 5usize), (1, 1, 1), (8, 8, 2), (3, 9, 7)] {
            let s = seq(sr, sc);
            let y = seq(t, sr);
            let mut stats = SimStats::new();
            simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
            assert_eq!(stats.cycles, 2 * sr + sc + t - 2, "sr={sr} sc={sc} t={t}");
            assert_eq!(stats.preload_cycles, sr);
        }
    }

    #[test]
    fn mac_and_read_counts() {
        let s = seq(4, 3);
        let y = seq(5, 4);
        let mut stats = SimStats::new();
        simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(stats.macs_performed, 4 * 3 * 5);
        // Preload reads + streaming reads.
        assert_eq!(stats.buffer_reads, 4 * 3 + 5 * 4);
    }

    #[test]
    fn zero_gating_passthrough_keeps_result() {
        let mut s = seq(3, 3);
        s[(1, 1)] = 0.0;
        let mut y = seq(4, 3);
        y[(2, 0)] = 0.0;
        let mut stats = SimStats::new();
        let out = simulate_tile(&s, &y, true, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(out, reference(&s, &y));
        // One stationary zero hits every t; one stream zero hits every
        // column; the overlap (t=2, j=1, k=... ) is counted once per slot.
        assert!(stats.macs_gated >= 4 + 3 - 1);
    }
}

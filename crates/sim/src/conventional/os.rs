//! Cycle-accurate output-stationary tile engine for the conventional
//! systolic array.
//!
//! Operands enter at the left column (ifmap/`A`) and the top row
//! (filters/`B`), skewed by one cycle per row/column, and propagate
//! unidirectionally (paper Fig. 1). Each PE accumulates its output in
//! place; after the last MAC the array drains for `r` cycles.

use crate::matrix::Matrix;
use crate::pe::{mac, Lattice};
use crate::probe::{FeedOperand, Probe};
use crate::stats::SimStats;

/// Simulates one OS tile: `a` is `r x k`, `b` is `k x c`, with `r`/`c` not
/// exceeding the physical array (enforced by the callers in `lib.rs`).
///
/// Returns the `r x c` output tile and updates `stats` in place. The total
/// cycle count per tile is `2r + c + k - 2` (Eq. 1 with `T = k`), split as
/// `k + r + c - 2` active cycles plus `r` drain cycles.
pub(crate) fn simulate_tile(
    a: &Matrix,
    b: &Matrix,
    zero_gating: bool,
    stats: &mut SimStats,
    probe: &mut dyn Probe,
) -> Matrix {
    let r = a.rows();
    let k = a.cols();
    let c = b.cols();
    debug_assert_eq!(k, b.rows());

    let mut a_flow = Lattice::new(r, c);
    let mut b_flow = Lattice::new(r, c);
    let mut acc = Matrix::zeros(r, c);
    let mut slots = 0usize;
    let expected = r * c * k;
    let mut cycle = 0usize;

    while slots < expected {
        // Propagate into the current cycle: left/top edges are fed with the
        // skewed streams; interior PEs take their neighbour's previous value.
        for i in 0..r {
            for j in 0..c {
                let av = if j == 0 {
                    // Row i is skewed by i cycles.
                    cycle
                        .checked_sub(i)
                        .and_then(|t| a.get(i, t).map(|v| (t, v)))
                        .map(|(t, v)| {
                            stats.buffer_reads += 1;
                            probe.feed(cycle, FeedOperand::A, (i, t));
                            v
                        })
                } else {
                    a_flow.get(i, j - 1)
                };
                a_flow.set_next(i, j, av);

                let bv = if i == 0 {
                    cycle
                        .checked_sub(j)
                        .and_then(|t| b.get(t, j).map(|v| (t, v)))
                        .map(|(t, v)| {
                            stats.buffer_reads += 1;
                            probe.feed(cycle, FeedOperand::B, (t, j));
                            v
                        })
                } else {
                    b_flow.get(i - 1, j)
                };
                b_flow.set_next(i, j, bv);
            }
        }
        a_flow.advance();
        b_flow.advance();

        // MAC phase: every PE holding both operands fires.
        for i in 0..r {
            for j in 0..c {
                if let (Some(av), Some(bv)) = (a_flow.get(i, j), b_flow.get(i, j)) {
                    acc[(i, j)] = mac(acc[(i, j)], av, bv, zero_gating, stats);
                    probe.mac(cycle, i, j);
                    slots += 1;
                }
            }
        }
        cycle += 1;
    }

    // Drain: outputs shift out row by row (r cycles). The values are
    // already in `acc`; only the latency is billed.
    stats.cycles += cycle + r;
    stats.drain_cycles += r;
    stats.tiles += 1;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c + 1) as f32)
    }

    #[test]
    fn computes_correct_product() {
        let a = seq(3, 4);
        let b = seq(4, 2);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(c, a.matmul(&b));
    }

    #[test]
    fn cycle_count_matches_eq1() {
        // 2r + c + k - 2
        for (r, k, c) in [(4usize, 7usize, 5usize), (1, 1, 1), (8, 3, 8), (2, 16, 9)] {
            let a = seq(r, k);
            let b = seq(k, c);
            let mut stats = SimStats::new();
            simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
            assert_eq!(stats.cycles, 2 * r + c + k - 2, "r={r} k={k} c={c}");
        }
    }

    #[test]
    fn mac_count_is_rkc() {
        let a = seq(3, 5);
        let b = seq(5, 4);
        let mut stats = SimStats::new();
        simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(stats.macs_performed, 3 * 5 * 4);
        assert_eq!(stats.buffer_reads, 3 * 5 + 5 * 4);
    }

    #[test]
    fn zero_gating_skips_zero_macs() {
        let mut a = seq(3, 3);
        a[(0, 0)] = 0.0;
        a[(1, 2)] = 0.0;
        let b = seq(3, 3);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, true, &mut stats, &mut crate::probe::NoProbe);
        // Each zero A element feeds a full row of 3 output columns.
        assert_eq!(stats.macs_gated, 2 * 3);
        assert_eq!(stats.macs_performed, 27 - 6);
        // Result is still exact: gated MACs contribute zero anyway.
        assert_eq!(c, a.matmul(&b));
    }
}

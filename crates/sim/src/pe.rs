//! Processing-element primitives shared by the simulation engines.

use crate::stats::SimStats;

/// Performs one MAC with optional zero gating, updating the statistics.
///
/// When `zero_gating` is enabled and either operand is exactly zero, the
/// multiplier and adder are not exercised (the paper's §4.1 power-saving
/// technique); the MAC slot is counted in [`SimStats::macs_gated`] and the
/// accumulator input passes through unchanged.
pub(crate) fn mac(acc_in: f32, a: f32, b: f32, zero_gating: bool, stats: &mut SimStats) -> f32 {
    if zero_gating && (a == 0.0 || b == 0.0) {
        stats.macs_gated += 1;
        acc_in
    } else {
        stats.macs_performed += 1;
        acc_in + a * b
    }
}

/// A double-buffered grid of optional in-flight values.
///
/// Systolic propagation must be wavefront-correct: a value written this
/// cycle may not be observed by a neighbour until the next cycle. `Lattice`
/// keeps a *current* and a *next* plane; engines read `cur`, write `nxt`,
/// then [`Lattice::advance`] swaps the planes.
#[derive(Debug, Clone)]
pub(crate) struct Lattice {
    rows: usize,
    cols: usize,
    cur: Vec<Option<f32>>,
    nxt: Vec<Option<f32>>,
}

impl Lattice {
    pub(crate) fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            cur: vec![None; rows * cols],
            nxt: vec![None; rows * cols],
        }
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Value present at `(r, c)` in the current cycle.
    #[inline]
    pub(crate) fn get(&self, r: usize, c: usize) -> Option<f32> {
        self.cur[self.idx(r, c)]
    }

    /// Sets the value visible at `(r, c)` in the *next* cycle.
    #[inline]
    pub(crate) fn set_next(&mut self, r: usize, c: usize, v: Option<f32>) {
        let i = self.idx(r, c);
        self.nxt[i] = v;
    }

    /// Ends the cycle: the next plane becomes current and the stale plane
    /// is cleared for reuse.
    pub(crate) fn advance(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.nxt);
        self.nxt.iter_mut().for_each(|v| *v = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_accumulates() {
        let mut s = SimStats::new();
        let acc = mac(1.0, 2.0, 3.0, false, &mut s);
        assert_eq!(acc, 7.0);
        assert_eq!(s.macs_performed, 1);
        assert_eq!(s.macs_gated, 0);
    }

    #[test]
    fn mac_gates_zero_operand() {
        let mut s = SimStats::new();
        let acc = mac(5.0, 0.0, 3.0, true, &mut s);
        assert_eq!(acc, 5.0);
        assert_eq!(s.macs_gated, 1);
        assert_eq!(s.macs_performed, 0);
        // Without gating the zero MAC is still executed.
        let acc = mac(5.0, 0.0, 3.0, false, &mut s);
        assert_eq!(acc, 5.0);
        assert_eq!(s.macs_performed, 1);
    }

    #[test]
    fn lattice_is_wavefront_correct() {
        let mut l = Lattice::new(1, 3);
        l.set_next(0, 0, Some(1.0));
        l.advance();
        assert_eq!(l.get(0, 0), Some(1.0));
        assert_eq!(l.get(0, 1), None);
        // Shift right one step per advance.
        l.set_next(0, 1, l.get(0, 0));
        l.advance();
        assert_eq!(l.get(0, 0), None);
        assert_eq!(l.get(0, 1), Some(1.0));
    }
}

//! Cycle-accurate output-stationary tile engine for the Axon array.
//!
//! Both operand matrices enter through the PEs on the principal diagonal —
//! *unskewed* — and propagate bidirectionally: ifmap (`A`) elements travel
//! left and right along their row, filter (`B`) elements up and down their
//! column (paper Fig. 3a). For rectangular tiles the rows/columns without
//! a diagonal PE are fed from the array edge with the conventional skew
//! (paper Fig. 5).

use crate::matrix::Matrix;
use crate::pe::{mac, Lattice};
use crate::probe::{FeedOperand, Probe};
use crate::stats::SimStats;

/// Simulates one Axon OS tile: `a` is `r x k`, `b` is `k x c`.
///
/// Returns the `r x c` output tile and updates `stats`. The per-tile cycle
/// count is `max(r, c) + r + k - 1` (paper Table 2, OS row, with
/// `M -> r`, `N -> c`, `K -> k`): `k + max(r, c) - 1` active cycles plus
/// `r` drain cycles.
pub(crate) fn simulate_tile(
    a: &Matrix,
    b: &Matrix,
    zero_gating: bool,
    stats: &mut SimStats,
    probe: &mut dyn Probe,
) -> Matrix {
    let r = a.rows();
    let k = a.cols();
    let c = b.cols();
    debug_assert_eq!(k, b.rows());
    let diag = r.min(c);

    let mut a_flow = Lattice::new(r, c);
    let mut b_flow = Lattice::new(r, c);
    let mut acc = Matrix::zeros(r, c);
    let mut slots = 0usize;
    let expected = r * c * k;
    let mut cycle = 0usize;

    while slots < expected {
        for i in 0..r {
            for j in 0..c {
                // --- A (ifmap) propagation along row i ---
                let av = if i < diag {
                    // Row has a diagonal feeder at (i, i).
                    if j == i {
                        a.get(i, cycle).inspect(|_| {
                            stats.buffer_reads += 1;
                            probe.feed(cycle, FeedOperand::A, (i, cycle));
                        })
                    } else if j > i {
                        a_flow.get(i, j - 1) // moving right, away from diagonal
                    } else {
                        a_flow.get(i, j + 1) // moving left
                    }
                } else {
                    // Tall tile (r > c): row i >= diag is fed from the
                    // right edge, skewed by its distance below the
                    // diagonal, and propagates left (mirror of Fig. 5).
                    let skew = i - (diag - 1);
                    if j == c - 1 {
                        cycle
                            .checked_sub(skew)
                            .and_then(|t| a.get(i, t).map(|v| (t, v)))
                            .map(|(t, v)| {
                                stats.buffer_reads += 1;
                                probe.feed(cycle, FeedOperand::A, (i, t));
                                v
                            })
                    } else {
                        a_flow.get(i, j + 1)
                    }
                };
                a_flow.set_next(i, j, av);

                // --- B (filter) propagation along column j ---
                let bv = if j < diag {
                    if i == j {
                        b.get(cycle, j).inspect(|_| {
                            stats.buffer_reads += 1;
                            probe.feed(cycle, FeedOperand::B, (cycle, j));
                        })
                    } else if i > j {
                        b_flow.get(i - 1, j) // moving down
                    } else {
                        b_flow.get(i + 1, j) // moving up
                    }
                } else {
                    // Wide tile (c > r): column j >= diag is fed from the
                    // bottom edge with zero-padding proportional to its
                    // distance past the diagonal (paper Fig. 5), and
                    // propagates upward.
                    let skew = j - (diag - 1);
                    if i == r - 1 {
                        cycle
                            .checked_sub(skew)
                            .and_then(|t| b.get(t, j).map(|v| (t, v)))
                            .map(|(t, v)| {
                                stats.buffer_reads += 1;
                                probe.feed(cycle, FeedOperand::B, (t, j));
                                v
                            })
                    } else {
                        b_flow.get(i + 1, j)
                    }
                };
                b_flow.set_next(i, j, bv);
            }
        }
        a_flow.advance();
        b_flow.advance();

        for i in 0..r {
            for j in 0..c {
                if let (Some(av), Some(bv)) = (a_flow.get(i, j), b_flow.get(i, j)) {
                    acc[(i, j)] = mac(acc[(i, j)], av, bv, zero_gating, stats);
                    probe.mac(cycle, i, j);
                    slots += 1;
                }
            }
        }
        cycle += 1;
    }

    stats.cycles += cycle + r;
    stats.drain_cycles += r;
    stats.tiles += 1;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c + 1) as f32)
    }

    #[test]
    fn square_tile_correct_product() {
        let a = seq(4, 6);
        let b = seq(6, 4);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(c, a.matmul(&b));
    }

    #[test]
    fn paper_toy_example_3x3() {
        // The paper's Fig. 4 validates Axon with a 3x3 GEMM.
        let a = seq(3, 3);
        let b = seq(3, 3);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(c, a.matmul(&b));
        // Table 2, OS: max(M,N) + M + K - 1 = 3 + 3 + 3 - 1 = 8.
        assert_eq!(stats.cycles, 8);
    }

    #[test]
    fn wide_tile_correct_and_timed() {
        // c > r exercises the bottom-edge skewed feeding of Fig. 5.
        let a = seq(3, 5);
        let b = seq(5, 7);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(c, a.matmul(&b));
        // max(r,c) + r + k - 1 = 7 + 3 + 5 - 1 = 14.
        assert_eq!(stats.cycles, 14);
    }

    #[test]
    fn tall_tile_correct_and_timed() {
        let a = seq(7, 4);
        let b = seq(4, 3);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(c, a.matmul(&b));
        // max(r,c) + r + k - 1 = 7 + 7 + 4 - 1 = 17.
        assert_eq!(stats.cycles, 17);
    }

    #[test]
    fn single_pe_degenerate() {
        let a = seq(1, 3);
        let b = seq(3, 1);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(c, a.matmul(&b));
        // max(1,1) + 1 + 3 - 1 = 4.
        assert_eq!(stats.cycles, 4);
    }

    #[test]
    fn faster_than_conventional_square() {
        let a = seq(8, 4);
        let b = seq(4, 8);
        let mut ax = SimStats::new();
        simulate_tile(&a, &b, false, &mut ax, &mut crate::probe::NoProbe);
        let mut sa = SimStats::new();
        crate::conventional::os::simulate_tile(&a, &b, false, &mut sa, &mut crate::probe::NoProbe);
        assert!(
            ax.cycles < sa.cycles,
            "axon {} vs sa {}",
            ax.cycles,
            sa.cycles
        );
        assert_eq!(ax.macs_performed, sa.macs_performed);
    }

    #[test]
    fn zero_gating_preserves_result() {
        let mut a = seq(5, 5);
        for i in 0..5 {
            a[(i, i)] = 0.0;
        }
        let b = seq(5, 5);
        let mut stats = SimStats::new();
        let c = simulate_tile(&a, &b, true, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(c, a.matmul(&b));
        assert_eq!(stats.macs_gated, 5 * 5);
    }
}

//! Tile engines for the Axon (diagonal-fed, bidirectional) array.

pub(crate) mod os;
pub(crate) mod stationary;

//! Cycle-accurate stationary-operand (WS/IS) tile engine for the Axon
//! array, including the paper's bypass-add partial-sum synchronization
//! (§4.2.2, Fig. 8b).
//!
//! The streaming operand enters *unskewed* through the diagonal PEs and
//! propagates left/right along its row. Because operands move in both
//! directions, the partial sums of one output column are generated in two
//! wavefronts separated by the diagonal PE of that column:
//!
//! * the **lower segment** (`k >= j`) starts at the diagonal and
//!   accumulates flowing *down*, exiting at the bottom edge;
//! * the **upper segment** (`k < j`) starts just above the diagonal and
//!   accumulates flowing *up*, exiting at the top edge.
//!
//! Each wavefront's arrival time at the next PE matches that PE's own
//! compute cycle, so no stalls are needed. The two partial outputs are
//! added at collection (the "bypass and add" of Fig. 8b); the paper bills
//! no extra cycle for this, and neither do we — the totals then match
//! Table 2 exactly.

use crate::matrix::Matrix;
use crate::pe::{mac, Lattice};
use crate::probe::{FeedOperand, Probe};
use crate::stats::SimStats;

/// Simulates one Axon stationary tile; same contract as
/// [`crate::conventional::stationary::simulate_tile`].
///
/// The per-tile cycle count is `max(sr, sc) + sr + t_len - 1` (paper
/// Table 2, WS/IS rows): `sr` preload cycles plus
/// `t_len + max(sr, sc) - 1` streaming cycles.
pub(crate) fn simulate_tile(
    stationary: &Matrix,
    stream: &Matrix,
    zero_gating: bool,
    stats: &mut SimStats,
    probe: &mut dyn Probe,
) -> Matrix {
    let sr = stationary.rows();
    let sc = stationary.cols();
    let t_len = stream.rows();
    debug_assert_eq!(stream.cols(), sr);
    let diag = sr.min(sc);

    let mut flow = Lattice::new(sr, sc);
    let mut psum_down = Lattice::new(sr, sc);
    let mut psum_up = Lattice::new(sr, sc);
    let mut out = Matrix::zeros(t_len, sc);
    // Per-column collection counters for the two segments.
    let mut got_low = vec![0usize; sc];
    let mut got_up = vec![0usize; sc];
    let mut done = 0usize;
    let mut expected = 0usize;
    for j in 0..sc {
        if j < sr {
            expected += t_len; // lower segment exists
        }
        if j >= 1 {
            expected += t_len; // upper segment exists
        }
    }
    let mut cycle = 0usize;

    stats.preload_cycles += sr;
    stats.buffer_reads += sr * sc;

    while done < expected {
        // Stream propagation: diagonal feed, bidirectional along rows;
        // rows below a short diagonal (sr > sc) are fed from the right
        // edge with skew, mirroring the rectangular rule of Fig. 5.
        for k in 0..sr {
            for j in 0..sc {
                let v = if k < diag {
                    if j == k {
                        stream.get(cycle, k).inspect(|_| {
                            stats.buffer_reads += 1;
                            probe.feed(cycle, FeedOperand::Stream, (cycle, k));
                        })
                    } else if j > k {
                        flow.get(k, j - 1)
                    } else {
                        flow.get(k, j + 1)
                    }
                } else {
                    let skew = k - (diag - 1);
                    if j == sc - 1 {
                        cycle
                            .checked_sub(skew)
                            .and_then(|t| stream.get(t, k).map(|v| (t, v)))
                            .map(|(t, v)| {
                                stats.buffer_reads += 1;
                                probe.feed(cycle, FeedOperand::Stream, (t, k));
                                v
                            })
                    } else {
                        flow.get(k, j + 1)
                    }
                };
                flow.set_next(k, j, v);
            }
        }
        flow.advance();

        for k in 0..sr {
            for j in 0..sc {
                let Some(sv) = flow.get(k, j) else { continue };
                if k >= j {
                    // Lower segment: fresh psum at the diagonal, then
                    // accumulate downward.
                    let psum_in = if k == j {
                        0.0
                    } else {
                        psum_down
                            .get(k - 1, j)
                            .expect("lower-segment psum wavefront aligned")
                    };
                    let acc = mac(psum_in, stationary[(k, j)], sv, zero_gating, stats);
                    probe.mac(cycle, k, j);
                    psum_down.set_next(k, j, Some(acc));
                    if k == sr - 1 {
                        let t = got_low[j];
                        out[(t, j)] += acc;
                        got_low[j] += 1;
                        done += 1;
                    }
                } else {
                    // Upper segment: fresh psum just above the diagonal
                    // (or at the bottom-most used row for columns past a
                    // short diagonal), then accumulate upward.
                    let upper_start = (j - 1).min(sr - 1);
                    let psum_in = if k == upper_start {
                        0.0
                    } else {
                        psum_up
                            .get(k + 1, j)
                            .expect("upper-segment psum wavefront aligned")
                    };
                    let acc = mac(psum_in, stationary[(k, j)], sv, zero_gating, stats);
                    probe.mac(cycle, k, j);
                    psum_up.set_next(k, j, Some(acc));
                    if k == 0 {
                        let t = got_up[j];
                        out[(t, j)] += acc;
                        got_up[j] += 1;
                        done += 1;
                    }
                }
            }
        }
        psum_down.advance();
        psum_up.advance();
        cycle += 1;
    }

    stats.cycles += sr + cycle;
    stats.tiles += 1;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c + 1) as f32)
    }

    #[test]
    fn computes_correct_output_square() {
        let s = seq(4, 4);
        let y = seq(6, 4);
        let mut stats = SimStats::new();
        let out = simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(out, y.matmul(&s));
    }

    #[test]
    fn computes_correct_output_wide_and_tall() {
        // Wide: sc > sr (upper-only columns past the diagonal).
        let s = seq(3, 7);
        let y = seq(4, 3);
        let mut stats = SimStats::new();
        let out = simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(out, y.matmul(&s));

        // Tall: sr > sc (right-edge skewed stream feeding).
        let s = seq(7, 3);
        let y = seq(4, 7);
        let mut stats = SimStats::new();
        let out = simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(out, y.matmul(&s));
    }

    #[test]
    fn cycle_count_matches_table2() {
        // max(sr, sc) + sr + t - 1
        for (sr, sc, t) in [
            (4usize, 4usize, 6usize),
            (3, 7, 4),
            (7, 3, 4),
            (1, 1, 1),
            (5, 1, 3),
        ] {
            let s = seq(sr, sc);
            let y = seq(t, sr);
            let mut stats = SimStats::new();
            simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
            assert_eq!(
                stats.cycles,
                sr.max(sc) + sr + t - 1,
                "sr={sr} sc={sc} t={t}"
            );
        }
    }

    #[test]
    fn faster_than_conventional_square() {
        let s = seq(8, 8);
        let y = seq(4, 8);
        let mut ax = SimStats::new();
        simulate_tile(&s, &y, false, &mut ax, &mut crate::probe::NoProbe);
        let mut sa = SimStats::new();
        crate::conventional::stationary::simulate_tile(
            &s,
            &y,
            false,
            &mut sa,
            &mut crate::probe::NoProbe,
        );
        assert!(ax.cycles < sa.cycles);
        assert_eq!(ax.macs_performed, sa.macs_performed);
    }

    #[test]
    fn zero_gating_preserves_result() {
        let mut s = seq(5, 5);
        s[(0, 4)] = 0.0;
        s[(4, 0)] = 0.0;
        let mut y = seq(3, 5);
        y[(1, 2)] = 0.0;
        let mut stats = SimStats::new();
        let out = simulate_tile(&s, &y, true, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(out, y.matmul(&s));
        assert!(stats.macs_gated > 0);
    }

    #[test]
    fn single_column_has_no_upper_segment() {
        let s = seq(4, 1);
        let y = seq(3, 4);
        let mut stats = SimStats::new();
        let out = simulate_tile(&s, &y, false, &mut stats, &mut crate::probe::NoProbe);
        assert_eq!(out, y.matmul(&s));
    }
}

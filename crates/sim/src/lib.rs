//! # axon-sim
//!
//! Cycle-accurate, functionally-verified simulator for conventional and
//! Axon systolic arrays.
//!
//! Four tile engines model per-cycle operand movement with explicit
//! wavefront semantics (a value written in cycle `t` is observable only in
//! cycle `t + 1`):
//!
//! * conventional OS — left/top skewed feeds, unidirectional propagation;
//! * conventional WS/IS — preloaded stationary operand, psums flow down;
//! * Axon OS — unskewed diagonal feed, bidirectional propagation (paper
//!   Fig. 3a), with edge-fed skewed columns/rows for rectangular tiles
//!   (Fig. 5);
//! * Axon WS/IS — diagonal feed plus the bypass-add partial-sum
//!   synchronization of Fig. 8b.
//!
//! All engines implement zero gating (paper §4.1) and count cycles, MACs,
//! gated MACs and SRAM buffer reads. GEMMs larger than the array are tiled
//! exactly as the paper's scale-up scheme: spatial dimensions are cut to
//! the array, the temporal dimension runs in full per tile pass.
//!
//! The simulated cycle counts reproduce the paper's closed forms *exactly*
//! (Eq. 1 for the conventional array, Table 2 for Axon); this is asserted
//! by unit and property tests and is the core validation of the
//! reproduction.
//!
//! ## Example
//!
//! ```
//! use axon_core::{ArrayShape, Dataflow, runtime::Architecture};
//! use axon_sim::{simulate_gemm, Matrix, SimConfig};
//!
//! # fn main() -> Result<(), axon_core::ShapeError> {
//! let a = Matrix::from_fn(10, 6, |r, c| (r + c) as f32);
//! let b = Matrix::from_fn(6, 9, |r, c| (r * 2 + c) as f32);
//!
//! let cfg = SimConfig::new(ArrayShape::square(4)).with_dataflow(Dataflow::Os);
//! let sa = simulate_gemm(Architecture::Conventional, &cfg, &a, &b)?;
//! let ax = simulate_gemm(Architecture::Axon, &cfg, &a, &b)?;
//!
//! assert_eq!(sa.output, a.matmul(&b));
//! assert_eq!(ax.output, a.matmul(&b));
//! assert!(ax.stats.cycles < sa.stats.cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axon;
mod conventional;
mod matrix;
mod pe;
mod probe;
mod scaleout;
mod stats;
mod verify;

pub use matrix::Matrix;
pub use probe::{Activity, DemandTrace, FeedEvent, FeedOperand};
pub use scaleout::{scale_up_vs_out, simulate_gemm_scale_out, ScaleOutResult};
pub use stats::SimStats;
pub use verify::{random_matrix, verify_gemm, VerifyReport};

use axon_core::runtime::{Architecture, DrainPolicy};
use axon_core::{ArrayShape, Dataflow, ShapeError};

/// Configuration of a simulated array: shape, dataflow and zero gating.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, Dataflow};
/// use axon_sim::SimConfig;
///
/// let cfg = SimConfig::new(ArrayShape::new(16, 16))
///     .with_dataflow(Dataflow::Ws)
///     .with_zero_gating(true);
/// assert_eq!(cfg.dataflow, Dataflow::Ws);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Physical array shape.
    pub array: ArrayShape,
    /// Dataflow; defaults to output stationary.
    pub dataflow: Dataflow,
    /// Whether MACs with a zero operand are skipped (power model input).
    pub zero_gating: bool,
    /// Inter-tile pipelining. `PerTile` (default) executes tile passes
    /// back to back, each paying its full drain/preload — the literal
    /// Table 2 accounting. `Overlapped` hides every tile's trailing
    /// drain (OS) or preload (WS/IS) under the next tile's activity
    /// except the last — the steady-state regime of the paper's speedup
    /// figures, matching the analytical model's
    /// [`DrainPolicy::Overlapped`].
    pub pipelining: DrainPolicy,
}

impl SimConfig {
    /// Creates a configuration with OS dataflow, zero gating disabled and
    /// per-tile (non-pipelined) accounting.
    pub fn new(array: ArrayShape) -> Self {
        Self {
            array,
            dataflow: Dataflow::Os,
            zero_gating: false,
            pipelining: DrainPolicy::PerTile,
        }
    }

    /// Builder-style pipelining override.
    pub fn with_pipelining(mut self, pipelining: DrainPolicy) -> Self {
        self.pipelining = pipelining;
        self
    }

    /// Builder-style dataflow override.
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Builder-style zero-gating override.
    pub fn with_zero_gating(mut self, zero_gating: bool) -> Self {
        self.zero_gating = zero_gating;
        self
    }
}

/// Output of a simulated (possibly tiled) GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The `M x N` product matrix.
    pub output: Matrix,
    /// Accumulated execution statistics over all tile passes.
    pub stats: SimStats,
}

/// Simulates `C = A * B` on the configured array, tiling the spatial
/// dimensions to the array exactly as the paper's scale-up scheme.
///
/// * OS: `M` and `N` are tiled; each tile runs the full `K` temporally.
/// * WS (Table 1: `S_R = K`, `S_C = M`, `T = N`): `K` and `M` are tiled;
///   partial products over `K`-tiles accumulate in the output buffer.
/// * IS (`S_R = K`, `S_C = N`, `T = M`): as WS with `N` in place of `M`.
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn simulate_gemm(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<SimResult, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::DimensionMismatch {
            context: "A cols vs B rows",
            left: a.cols(),
            right: b.rows(),
        });
    }
    simulate_gemm_probed(arch, cfg, a, b, &mut probe::NoProbe)
}

/// Like [`simulate_gemm`], additionally recording per-PE [`Activity`]
/// (MAC counts and first/last firing cycles) on the physical array —
/// which makes the two orchestrations' wavefronts directly observable.
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Examples
///
/// See [`Activity`].
pub fn simulate_gemm_traced(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<(SimResult, Activity), ShapeError> {
    let mut activity = Activity::new(cfg.array.rows(), cfg.array.cols());
    let result = simulate_gemm_probed(arch, cfg, a, b, &mut activity)?;
    Ok((result, activity))
}

/// Like [`simulate_gemm`], additionally recording the [`DemandTrace`] of
/// SRAM feed events — the observable SCALE-sim exports as read traces.
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if `a.cols() != b.rows()`.
///
/// # Examples
///
/// See [`DemandTrace`].
pub fn simulate_gemm_demand_trace(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<(SimResult, DemandTrace), ShapeError> {
    let mut trace = DemandTrace::new();
    let result = simulate_gemm_probed(arch, cfg, a, b, &mut trace)?;
    Ok((result, trace))
}

fn simulate_gemm_probed(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
    probe: &mut dyn probe::Probe,
) -> Result<SimResult, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::DimensionMismatch {
            context: "A cols vs B rows",
            left: a.cols(),
            right: b.rows(),
        });
    }
    match cfg.dataflow {
        Dataflow::Os => Ok(simulate_os(arch, cfg, a, b, probe)),
        Dataflow::Ws => Ok(simulate_ws(arch, cfg, a, b, probe)),
        Dataflow::Is => Ok(simulate_is(arch, cfg, a, b, probe)),
    }
}

fn os_tile(
    arch: Architecture,
    a: &Matrix,
    b: &Matrix,
    zero_gating: bool,
    stats: &mut SimStats,
    probe: &mut dyn probe::Probe,
) -> Matrix {
    match arch {
        Architecture::Conventional => {
            conventional::os::simulate_tile(a, b, zero_gating, stats, probe)
        }
        Architecture::Axon => axon::os::simulate_tile(a, b, zero_gating, stats, probe),
    }
}

fn stationary_tile(
    arch: Architecture,
    stationary: &Matrix,
    stream: &Matrix,
    zero_gating: bool,
    stats: &mut SimStats,
    probe: &mut dyn probe::Probe,
) -> Matrix {
    match arch {
        Architecture::Conventional => {
            conventional::stationary::simulate_tile(stationary, stream, zero_gating, stats, probe)
        }
        Architecture::Axon => {
            axon::stationary::simulate_tile(stationary, stream, zero_gating, stats, probe)
        }
    }
}

fn simulate_os(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
    probe: &mut dyn probe::Probe,
) -> SimResult {
    let (m, n) = (a.rows(), b.cols());
    let (tr, tc) = (cfg.array.rows(), cfg.array.cols());
    let mut output = Matrix::zeros(m, n);
    let mut stats = SimStats::new();
    let mut overlap = OverlapTracker::new(cfg.pipelining);
    let mut m0 = 0;
    while m0 < m {
        let mt = tr.min(m - m0);
        let a_sub = a.sub(m0, 0, mt, a.cols());
        let mut n0 = 0;
        while n0 < n {
            let nt = tc.min(n - n0);
            let b_sub = b.sub(0, n0, b.rows(), nt);
            let tile = os_tile(arch, &a_sub, &b_sub, cfg.zero_gating, &mut stats, probe);
            overlap.tile(mt);
            for i in 0..mt {
                for j in 0..nt {
                    output[(m0 + i, n0 + j)] = tile[(i, j)];
                }
            }
            n0 += nt;
        }
        m0 += mt;
    }
    overlap.settle(&mut stats, Overlappable::Drain);
    SimResult { output, stats }
}

/// Which per-tile latency component pipelining hides.
enum Overlappable {
    /// OS: the output drain.
    Drain,
    /// WS/IS: the stationary-operand preload.
    Preload,
}

/// Accumulates the per-tile overlappable latencies and, under
/// [`DrainPolicy::Overlapped`], removes all but the last from the billed
/// cycle count when the run settles.
struct OverlapTracker {
    policy: DrainPolicy,
    total: usize,
    last: usize,
}

impl OverlapTracker {
    fn new(policy: DrainPolicy) -> Self {
        Self {
            policy,
            total: 0,
            last: 0,
        }
    }

    fn tile(&mut self, overlappable: usize) {
        self.total += overlappable;
        self.last = overlappable;
    }

    fn settle(self, stats: &mut SimStats, kind: Overlappable) {
        if self.policy == DrainPolicy::Overlapped {
            let hidden = self.total - self.last;
            stats.cycles -= hidden;
            match kind {
                Overlappable::Drain => stats.drain_cycles -= hidden,
                Overlappable::Preload => stats.preload_cycles -= hidden,
            }
        }
    }
}

fn simulate_ws(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
    probe: &mut dyn probe::Probe,
) -> SimResult {
    // Stationary grid holds A transposed: stationary[(k, m)] = a[(m, k)].
    // Stream holds B transposed: stream[(n, k)] = b[(k, n)]; T = N.
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (tr, tc) = (cfg.array.rows(), cfg.array.cols());
    let mut output = Matrix::zeros(m, n);
    let mut stats = SimStats::new();
    let mut overlap = OverlapTracker::new(cfg.pipelining);
    let mut k0 = 0;
    while k0 < k {
        let kt = tr.min(k - k0);
        let mut m0 = 0;
        while m0 < m {
            let mt = tc.min(m - m0);
            let stationary = Matrix::from_fn(kt, mt, |kk, mm| a[(m0 + mm, k0 + kk)]);
            let stream = Matrix::from_fn(n, kt, |nn, kk| b[(k0 + kk, nn)]);
            let tile = stationary_tile(
                arch,
                &stationary,
                &stream,
                cfg.zero_gating,
                &mut stats,
                probe,
            );
            overlap.tile(kt);
            for nn in 0..n {
                for mm in 0..mt {
                    output[(m0 + mm, nn)] += tile[(nn, mm)];
                }
            }
            m0 += mt;
        }
        k0 += kt;
    }
    overlap.settle(&mut stats, Overlappable::Preload);
    SimResult { output, stats }
}

fn simulate_is(
    arch: Architecture,
    cfg: &SimConfig,
    a: &Matrix,
    b: &Matrix,
    probe: &mut dyn probe::Probe,
) -> SimResult {
    // Stationary grid holds B: stationary[(k, n)] = b[(k, n)].
    // Stream holds A: stream[(m, k)] = a[(m, k)]; T = M.
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let (tr, tc) = (cfg.array.rows(), cfg.array.cols());
    let mut output = Matrix::zeros(m, n);
    let mut stats = SimStats::new();
    let mut overlap = OverlapTracker::new(cfg.pipelining);
    let mut k0 = 0;
    while k0 < k {
        let kt = tr.min(k - k0);
        let mut n0 = 0;
        while n0 < n {
            let nt = tc.min(n - n0);
            let stationary = b.sub(k0, n0, kt, nt);
            let stream = a.sub(0, k0, m, kt);
            let tile = stationary_tile(
                arch,
                &stationary,
                &stream,
                cfg.zero_gating,
                &mut stats,
                probe,
            );
            overlap.tile(kt);
            for mm in 0..m {
                for nn in 0..nt {
                    output[(mm, n0 + nn)] += tile[(mm, nn)];
                }
            }
            n0 += nt;
        }
        k0 += kt;
    }
    overlap.settle(&mut stats, Overlappable::Preload);
    SimResult { output, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(m: usize, k: usize, n: usize, array: ArrayShape) {
        let a = random_matrix(m, k, 11, 0.0);
        let b = random_matrix(k, n, 22, 0.0);
        let reference = a.matmul(&b);
        for arch in [Architecture::Conventional, Architecture::Axon] {
            for df in Dataflow::ALL {
                let cfg = SimConfig::new(array).with_dataflow(df);
                let r = simulate_gemm(arch, &cfg, &a, &b).unwrap();
                assert_eq!(
                    r.output, reference,
                    "arch={arch} df={df} M={m} K={k} N={n} array={array}"
                );
                assert_eq!(r.stats.macs_performed, m * k * n);
            }
        }
    }

    #[test]
    fn tiled_correctness_all_dataflows() {
        check_all(10, 7, 9, ArrayShape::square(4));
        check_all(3, 3, 3, ArrayShape::square(8)); // smaller than array
        check_all(16, 16, 16, ArrayShape::square(4)); // exact multiples
        check_all(5, 17, 2, ArrayShape::new(3, 5)); // rectangular array
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let cfg = SimConfig::new(ArrayShape::square(4));
        assert!(simulate_gemm(Architecture::Axon, &cfg, &a, &b).is_err());
    }

    #[test]
    fn axon_cycles_beat_conventional_when_fill_bound() {
        let a = random_matrix(64, 4, 1, 0.0);
        let b = random_matrix(4, 64, 2, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(16));
        let sa = simulate_gemm(Architecture::Conventional, &cfg, &a, &b).unwrap();
        let ax = simulate_gemm(Architecture::Axon, &cfg, &a, &b).unwrap();
        let speedup = sa.stats.cycles as f64 / ax.stats.cycles as f64;
        assert!(speedup > 1.2, "speedup {speedup}");
    }

    #[test]
    fn sparsity_reflected_in_gating() {
        let a = random_matrix(16, 16, 5, 0.3);
        let b = random_matrix(16, 16, 6, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(8)).with_zero_gating(true);
        let r = simulate_gemm(Architecture::Axon, &cfg, &a, &b).unwrap();
        assert!(r.stats.macs_gated > 0);
        assert_eq!(r.output, a.matmul(&b));
        let frac = r.stats.gating_fraction();
        // Gating fraction tracks operand sparsity (zeros in A alone reach
        // ~30%; zeros in B's sampled values add a little).
        assert!(frac > 0.2 && frac < 0.6, "gating fraction {frac}");
    }

    #[test]
    fn ws_accumulates_over_k_tiles() {
        // K larger than the array rows forces multi-pass accumulation.
        let a = random_matrix(4, 20, 9, 0.0);
        let b = random_matrix(20, 4, 10, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(4)).with_dataflow(Dataflow::Ws);
        for arch in [Architecture::Conventional, Architecture::Axon] {
            let r = simulate_gemm(arch, &cfg, &a, &b).unwrap();
            assert_eq!(r.output, a.matmul(&b));
            assert_eq!(r.stats.tiles, 5);
        }
    }
}

//! Per-PE activity probing: which PE fired when.
//!
//! The probe records, for every physical PE, its MAC count and the first
//! and last cycle it fired. This makes the data orchestration directly
//! observable: on a square tile the first-MAC cycle of PE `(i, j)` is
//! `i + j` under the conventional corner feed and `|i - j|` under Axon's
//! diagonal feed — the two wavefronts of the paper's Figs. 1 and 3.

use std::fmt;

/// Internal observation hook threaded through the tile engines.
pub(crate) trait Probe {
    /// Called when the PE at tile-local `(r, c)` fires a MAC in `cycle`
    /// (local to the current tile's streaming phase).
    fn mac(&mut self, cycle: usize, r: usize, c: usize);

    /// Called when an operand element is fetched from its SRAM buffer in
    /// `cycle`. `index` is the element's logical position in the operand
    /// matrix being streamed.
    #[allow(unused_variables)]
    #[inline]
    fn feed(&mut self, cycle: usize, operand: FeedOperand, index: (usize, usize)) {}
}

/// The default no-op probe.
pub(crate) struct NoProbe;

impl Probe for NoProbe {
    #[inline]
    fn mac(&mut self, _cycle: usize, _r: usize, _c: usize) {}
}

/// Which operand buffer a feed event read (SCALE-sim's demand-trace
/// nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedOperand {
    /// The `A` / ifmap operand (OS engines).
    A,
    /// The `B` / filter operand (OS engines).
    B,
    /// The streaming operand of a WS/IS tile.
    Stream,
}

/// One SRAM feed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedEvent {
    /// Tile-local streaming cycle of the fetch.
    pub cycle: usize,
    /// Which buffer was read.
    pub operand: FeedOperand,
    /// Logical element position in the streamed operand matrix.
    pub index: (usize, usize),
}

/// A demand trace: the ordered list of SRAM feed events of a run — the
/// observable SCALE-sim exports as its read traces.
///
/// The trace shows the *skew* directly: a conventional OS tile fetches
/// `a[(i, t)]` at cycle `t + i`, while Axon's diagonal feeders fetch
/// `a[(i, t)]` at cycle `t` for every row — unskewed, which is exactly
/// the property that makes the im2col MUX chain possible (paper §3.2).
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, runtime::Architecture};
/// use axon_sim::{simulate_gemm_demand_trace, FeedOperand, Matrix, SimConfig};
///
/// # fn main() -> Result<(), axon_core::ShapeError> {
/// let a = Matrix::from_fn(4, 5, |r, c| (r + c + 1) as f32);
/// let b = Matrix::from_fn(5, 4, |r, c| (r * 2 + c + 1) as f32);
/// let cfg = SimConfig::new(ArrayShape::square(4));
/// let (_, trace) = simulate_gemm_demand_trace(Architecture::Axon, &cfg, &a, &b)?;
/// // Axon feeds are unskewed: element a[(i, t)] is always fetched at cycle t.
/// assert!(trace
///     .events()
///     .iter()
///     .filter(|e| e.operand == FeedOperand::A)
///     .all(|e| e.cycle == e.index.1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DemandTrace {
    events: Vec<FeedEvent>,
}

impl DemandTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in fetch order.
    pub fn events(&self) -> &[FeedEvent] {
        &self.events
    }

    /// Number of recorded feed events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no feeds were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum skew of an operand's fetch schedule: the largest
    /// difference between an element's fetch cycle and its stream
    /// position `t` (`index.1` for `A`/`Stream`, `index.0` for `B`).
    pub fn max_skew(&self, operand: FeedOperand) -> usize {
        self.events
            .iter()
            .filter(|e| e.operand == operand)
            .map(|e| {
                // Stream position of the element: `a[(i, t)]` is fetched
                // for step t = index.1; `b[(t, j)]` and `stream[(t, k)]`
                // for step t = index.0.
                let t = match operand {
                    FeedOperand::A => e.index.1,
                    FeedOperand::B | FeedOperand::Stream => e.index.0,
                };
                e.cycle.saturating_sub(t)
            })
            .max()
            .unwrap_or(0)
    }
}

impl Probe for DemandTrace {
    #[inline]
    fn mac(&mut self, _cycle: usize, _r: usize, _c: usize) {}

    fn feed(&mut self, cycle: usize, operand: FeedOperand, index: (usize, usize)) {
        self.events.push(FeedEvent {
            cycle,
            operand,
            index,
        });
    }
}

/// Per-PE activity accumulated over a simulation.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, runtime::Architecture};
/// use axon_sim::{simulate_gemm_traced, Matrix, SimConfig};
///
/// # fn main() -> Result<(), axon_core::ShapeError> {
/// let a = Matrix::from_fn(4, 6, |r, c| (r + c + 1) as f32);
/// let b = Matrix::from_fn(6, 4, |r, c| (r * 2 + c + 1) as f32);
/// let cfg = SimConfig::new(ArrayShape::square(4));
/// let (_, activity) = simulate_gemm_traced(Architecture::Axon, &cfg, &a, &b)?;
/// // Diagonal PEs fire first under Axon's orchestration.
/// assert_eq!(activity.first_mac(2, 2), Some(0));
/// assert_eq!(activity.first_mac(0, 3), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Activity {
    rows: usize,
    cols: usize,
    macs: Vec<usize>,
    first: Vec<Option<usize>>,
    last: Vec<Option<usize>>,
}

impl Activity {
    pub(crate) fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            macs: vec![0; rows * cols],
            first: vec![None; rows * cols],
            last: vec![None; rows * cols],
        }
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Physical array rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Physical array columns covered.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// MACs fired by PE `(r, c)` over the whole run.
    pub fn mac_count(&self, r: usize, c: usize) -> usize {
        self.macs[self.idx(r, c)]
    }

    /// First streaming-phase cycle in which PE `(r, c)` fired, or `None`
    /// if it never did.
    pub fn first_mac(&self, r: usize, c: usize) -> Option<usize> {
        self.first[self.idx(r, c)]
    }

    /// Last streaming-phase cycle in which PE `(r, c)` fired.
    pub fn last_mac(&self, r: usize, c: usize) -> Option<usize> {
        self.last[self.idx(r, c)]
    }

    /// Number of PEs that fired at least once.
    pub fn active_pes(&self) -> usize {
        self.macs.iter().filter(|&&m| m > 0).count()
    }

    /// ASCII heatmap of per-PE MAC counts, normalized to the busiest PE
    /// (`.` = idle, `1`–`9` = deciles of the maximum).
    pub fn heatmap_string(&self) -> String {
        let max = self.macs.iter().copied().max().unwrap_or(0).max(1);
        let mut s = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let m = self.mac_count(r, c);
                let ch = if m == 0 {
                    '.'
                } else {
                    let decile = (9 * m).div_ceil(max).min(9);
                    char::from(b'0' + decile as u8)
                };
                s.push(ch);
            }
            s.push('\n');
        }
        s
    }

    /// ASCII rendering of the first-MAC wavefront (`.` = never fired).
    /// Cycles above 35 render as `*`.
    pub fn wavefront_string(&self) -> String {
        let mut s = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let ch = match self.first_mac(r, c) {
                    None => '.',
                    Some(t) if t < 10 => char::from(b'0' + t as u8),
                    Some(t) if t < 36 => char::from(b'a' + (t - 10) as u8),
                    Some(_) => '*',
                };
                s.push(ch);
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} active PEs of {}; wavefront:\n{}",
            self.active_pes(),
            self.rows * self.cols,
            self.wavefront_string()
        )
    }
}

impl Probe for Activity {
    fn mac(&mut self, cycle: usize, r: usize, c: usize) {
        let i = self.idx(r, c);
        self.macs[i] += 1;
        if self.first[i].is_none() {
            self.first[i] = Some(cycle);
        }
        self.last[i] = Some(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_first_and_last() {
        let mut a = Activity::new(2, 2);
        a.mac(3, 0, 1);
        a.mac(5, 0, 1);
        assert_eq!(a.first_mac(0, 1), Some(3));
        assert_eq!(a.last_mac(0, 1), Some(5));
        assert_eq!(a.mac_count(0, 1), 2);
        assert_eq!(a.mac_count(1, 1), 0);
        assert_eq!(a.active_pes(), 1);
    }

    #[test]
    fn heatmap_rendering() {
        let mut a = Activity::new(2, 2);
        for _ in 0..10 {
            a.mac(0, 0, 0);
        }
        a.mac(0, 1, 0);
        let s = a.heatmap_string();
        // Busiest PE renders 9; the 1/10th PE renders its decile; idle '.'
        assert_eq!(s, "9.\n1.\n");
    }

    #[test]
    fn wavefront_rendering() {
        let mut a = Activity::new(2, 2);
        a.mac(0, 0, 0);
        a.mac(11, 1, 1);
        let s = a.wavefront_string();
        assert_eq!(s, "0.\n.b\n");
    }
}

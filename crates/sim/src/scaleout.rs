//! Scale-out execution: multiple smaller arrays working on disjoint
//! slices of one GEMM in parallel (paper Fig. 2b, Eq. 3).
//!
//! The workload's spatial dimensions are pre-partitioned `p_r x p_c`
//! ways; each array runs its slice with the ordinary scale-up driver and
//! the ensemble finishes when the slowest array does. The outputs of the
//! slices assemble into the full product (for WS/IS, slices along the
//! `K` partitioning are summed).

use crate::matrix::Matrix;
use crate::stats::SimStats;
use crate::{simulate_gemm, SimConfig, SimResult};
use axon_core::runtime::Architecture;
use axon_core::ShapeError;

/// Result of a scale-out ensemble run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleOutResult {
    /// The assembled `M x N` product.
    pub output: Matrix,
    /// Wall-clock cycles: the maximum over the per-array runs.
    pub makespan_cycles: usize,
    /// Per-array statistics, row-major over the partition grid.
    pub per_array: Vec<SimStats>,
}

impl ScaleOutResult {
    /// Aggregate statistics summed over all arrays (total energy-relevant
    /// counts; *not* wall-clock). Sums by reference via
    /// `AddAssign<&SimStats>`, so it stays valid even if `SimStats` grows
    /// non-`Copy` fields.
    pub fn total_stats(&self) -> SimStats {
        let mut total = SimStats::new();
        for s in &self.per_array {
            total += s;
        }
        total
    }
}

/// Simulates `C = A * B` on a `p_r x p_c` grid of identical arrays.
///
/// The `M` dimension is partitioned `p_r` ways and `N` `p_c` ways (the
/// paper's `S'_R = S_R / P_R`, `S'_C = S_C / P_C` for the OS mapping;
/// for WS/IS the same row/column slicing applies to the mapped
/// dimensions through the scale-up driver each array runs internally).
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if the operand inner
/// dimensions disagree, and [`ShapeError::ZeroDimension`] if a partition
/// count is zero.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, runtime::Architecture};
/// use axon_sim::{simulate_gemm_scale_out, Matrix, SimConfig};
///
/// # fn main() -> Result<(), axon_core::ShapeError> {
/// let a = Matrix::from_fn(12, 5, |r, c| (r + c) as f32);
/// let b = Matrix::from_fn(5, 12, |r, c| (r * 2 + c) as f32);
/// let cfg = SimConfig::new(ArrayShape::square(4));
/// let run = simulate_gemm_scale_out(Architecture::Axon, &cfg, 2, 2, &a, &b)?;
/// assert_eq!(run.output, a.matmul(&b));
/// assert_eq!(run.per_array.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn simulate_gemm_scale_out(
    arch: Architecture,
    cfg: &SimConfig,
    partitions_r: usize,
    partitions_c: usize,
    a: &Matrix,
    b: &Matrix,
) -> Result<ScaleOutResult, ShapeError> {
    if partitions_r == 0 {
        return Err(ShapeError::ZeroDimension {
            dimension: "partitions_r",
        });
    }
    if partitions_c == 0 {
        return Err(ShapeError::ZeroDimension {
            dimension: "partitions_c",
        });
    }
    if a.cols() != b.rows() {
        return Err(ShapeError::DimensionMismatch {
            context: "A cols vs B rows",
            left: a.cols(),
            right: b.rows(),
        });
    }
    let (m, n) = (a.rows(), b.cols());
    let pr = partitions_r.min(m);
    let pc = partitions_c.min(n);
    let m_slice = m.div_ceil(pr);
    let n_slice = n.div_ceil(pc);

    let mut output = Matrix::zeros(m, n);
    let mut per_array = Vec::with_capacity(pr * pc);
    let mut makespan = 0usize;

    for pi in 0..pr {
        let m0 = pi * m_slice;
        if m0 >= m {
            break;
        }
        let mt = m_slice.min(m - m0);
        let a_slice = a.sub(m0, 0, mt, a.cols());
        for pj in 0..pc {
            let n0 = pj * n_slice;
            if n0 >= n {
                break;
            }
            let nt = n_slice.min(n - n0);
            let b_slice = b.sub(0, n0, b.rows(), nt);
            let SimResult {
                output: tile,
                stats,
            } = simulate_gemm(arch, cfg, &a_slice, &b_slice)?;
            for i in 0..mt {
                for j in 0..nt {
                    output[(m0 + i, n0 + j)] = tile[(i, j)];
                }
            }
            makespan = makespan.max(stats.cycles);
            per_array.push(stats);
        }
    }

    Ok(ScaleOutResult {
        output,
        makespan_cycles: makespan,
        per_array,
    })
}

/// Convenience: compare scale-up vs scale-out for the same GEMM.
///
/// Returns `(scale_up_cycles, scale_out_makespan)`.
///
/// # Errors
///
/// Propagates [`ShapeError`] from the underlying simulations.
pub fn scale_up_vs_out(
    arch: Architecture,
    cfg: &SimConfig,
    partitions: (usize, usize),
    a: &Matrix,
    b: &Matrix,
) -> Result<(usize, usize), ShapeError> {
    let up = simulate_gemm(arch, cfg, a, b)?;
    let out = simulate_gemm_scale_out(arch, cfg, partitions.0, partitions.1, a, b)?;
    debug_assert_eq!(up.output, out.output);
    Ok((up.stats.cycles, out.makespan_cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_matrix;
    use axon_core::{ArrayShape, Dataflow};

    #[test]
    fn scale_out_output_matches_reference() {
        let a = random_matrix(10, 6, 1, 0.0);
        let b = random_matrix(6, 14, 2, 0.0);
        for arch in [Architecture::Conventional, Architecture::Axon] {
            for df in Dataflow::ALL {
                let cfg = SimConfig::new(ArrayShape::square(4)).with_dataflow(df);
                let run = simulate_gemm_scale_out(arch, &cfg, 2, 3, &a, &b).unwrap();
                assert_eq!(run.output, a.matmul(&b), "arch={arch} df={df}");
            }
        }
    }

    #[test]
    fn scale_out_speeds_up_wall_clock() {
        let a = random_matrix(32, 4, 3, 0.0);
        let b = random_matrix(4, 32, 4, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(8));
        let (up, out) = scale_up_vs_out(Architecture::Axon, &cfg, (2, 2), &a, &b).unwrap();
        assert!(out < up, "scale-out {out} should beat scale-up {up}");
    }

    #[test]
    fn total_work_is_conserved() {
        let a = random_matrix(16, 5, 5, 0.0);
        let b = random_matrix(5, 16, 6, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(4));
        let up = simulate_gemm(Architecture::Axon, &cfg, &a, &b).unwrap();
        let out = simulate_gemm_scale_out(Architecture::Axon, &cfg, 2, 2, &a, &b).unwrap();
        assert_eq!(out.total_stats().macs_performed, up.stats.macs_performed);
    }

    #[test]
    fn degenerate_partitions_clamped() {
        let a = random_matrix(3, 3, 7, 0.0);
        let b = random_matrix(3, 3, 8, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(4));
        // More partitions than rows/cols: clamped, still correct.
        let run = simulate_gemm_scale_out(Architecture::Axon, &cfg, 8, 8, &a, &b).unwrap();
        assert_eq!(run.output, a.matmul(&b));
        assert!(run.per_array.len() <= 9);
    }

    #[test]
    fn zero_partitions_rejected() {
        let a = random_matrix(2, 2, 1, 0.0);
        let b = random_matrix(2, 2, 2, 0.0);
        let cfg = SimConfig::new(ArrayShape::square(2));
        assert!(simulate_gemm_scale_out(Architecture::Axon, &cfg, 0, 1, &a, &b).is_err());
        assert!(simulate_gemm_scale_out(Architecture::Axon, &cfg, 1, 0, &a, &b).is_err());
    }
}

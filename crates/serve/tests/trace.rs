//! The tracing contract, end to end: observer neutrality (a sink must
//! never change the simulation, bit for bit, under every scheduler and
//! every router), lifecycle conservation (every `Arrived` reaches
//! exactly one terminal event, preempt/drain/resume balance per job),
//! and exact phase decomposition (the terminal outcome's queue +
//! service cycles reproduce the completion record's latency split).

use axon_core::runtime::Architecture;
use axon_serve::{
    check_conservation, simulate_cluster, simulate_cluster_traced, simulate_pod,
    simulate_pod_traced, AdmissionPolicy, AggregatingSink, AutoscaleConfig, ClusterConfig,
    ClusterPodConfig, MemoryModel, PodConfig, PreemptionMode, RecordingSink, RequestClass,
    RouterPolicy, SchedulerPolicy, ShardPlanner, SloBudgets, TraceEvent, TrafficConfig,
    WorkloadMix,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Every scheduler variant, built by hand (there is deliberately no
/// `SchedulerPolicy::ALL` — adding a policy must force a look at the
/// tests that enumerate them).
fn all_schedulers() -> Vec<SchedulerPolicy> {
    vec![
        SchedulerPolicy::Fifo,
        SchedulerPolicy::Batching { max_batch: 8 },
        SchedulerPolicy::Edf { max_batch: 8 },
        SchedulerPolicy::Continuous { max_batch: 8 },
        SchedulerPolicy::Wfq { max_batch: 8 },
    ]
}

fn mixed_traffic(seed: u64, requests: usize, mean: f64) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, mean)
        .with_mix(WorkloadMix::balanced())
        .with_clients(6)
}

/// The preemption recipe (few large arrays, long prefills, tight decode
/// SLO, sparse arrivals) — the config under which tile-boundary
/// preemption actually fires.
fn preempting_pod(scheduler: SchedulerPolicy) -> PodConfig {
    PodConfig::homogeneous(1, Architecture::Axon, 64)
        .with_scheduler(scheduler)
        .with_preemption(PreemptionMode::TileBoundary)
        .with_shard_min_macs(None)
}

fn preempting_traffic(seed: u64, requests: usize) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, 150_000.0)
        .with_mix(WorkloadMix::new(vec![
            (RequestClass::Prefill, 0.2),
            (RequestClass::Decode, 0.8),
        ]))
        .with_slo(SloBudgets::serving_default().with_decode(70_000))
}

/// A fleet with a mid-run failure and a spare for the autoscaler, so
/// the cluster-scope events (Routed/Rerouted/PodFailed/ScaleUp) all
/// appear in the stream.
fn failing_fleet() -> ClusterConfig {
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 32);
    let pods = vec![
        ClusterPodConfig::new(pod.clone()),
        ClusterPodConfig::new(pod.clone()).with_fail_at(400_000),
        ClusterPodConfig::new(pod.clone()),
        ClusterPodConfig::new(pod),
    ];
    ClusterConfig::new(pods, RouterPolicy::JoinShortestQueue)
        .with_autoscale(AutoscaleConfig::new(2, 2, 1, 50_000))
}

// ---------------------------------------------------------------------
// Observer neutrality: any attached sink must leave the report
// bit-identical to the untraced run.
// ---------------------------------------------------------------------

#[test]
fn recording_sink_is_neutral_under_every_scheduler() {
    for scheduler in all_schedulers() {
        let pod = PodConfig::homogeneous(3, Architecture::Axon, 32)
            .with_scheduler(scheduler)
            .with_memory(MemoryModel::Shared { channels: 2 });
        let traffic = mixed_traffic(7, 120, 400.0);
        let untraced = simulate_pod(&pod, &traffic);
        let mut rec = RecordingSink::default();
        let traced = simulate_pod_traced(&pod, &traffic, &mut rec);
        assert_eq!(traced, untraced, "{scheduler:?}: sink changed the run");
        assert!(!rec.events.is_empty(), "{scheduler:?}: sink saw nothing");
    }
}

#[test]
fn aggregating_sink_is_neutral_live_not_just_on_replay() {
    let pod = preempting_pod(SchedulerPolicy::Edf { max_batch: 8 });
    let traffic = preempting_traffic(21, 60);
    let untraced = simulate_pod(&pod, &traffic);
    let mut agg = AggregatingSink::default();
    let traced = simulate_pod_traced(&pod, &traffic, &mut agg);
    assert_eq!(traced, untraced);
    assert_eq!(
        agg.queue_hist.count as usize, untraced.metrics.completed,
        "one queue-phase sample per terminal event"
    );
}

#[test]
fn recording_sink_is_neutral_under_every_router() {
    let traffic = mixed_traffic(42, 150, 800.0);
    for router in RouterPolicy::ALL {
        let cluster = ClusterConfig::new(
            vec![
                ClusterPodConfig::new(PodConfig::homogeneous(4, Architecture::Axon, 32)),
                ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Conventional, 32)),
                ClusterPodConfig::new(PodConfig::homogeneous(3, Architecture::Axon, 64)),
            ],
            router,
        );
        let untraced = simulate_cluster(&cluster, &traffic);
        let mut rec = RecordingSink::default();
        let traced = simulate_cluster_traced(&cluster, &traffic, &mut rec);
        assert_eq!(traced, untraced, "{}: sink changed the run", router.name());
        check_conservation(&rec.events).unwrap_or_else(|e| panic!("{}: {e}", router.name()));
    }
}

#[test]
fn heap_engine_is_neutral_and_conserving_per_scheduler_under_the_full_fast_path() {
    // Every PR-8 hot-path mechanism in one config per scheduler: shared
    // DRAM (heap-tracked incremental re-timing), tile-boundary
    // preemption, bandwidth-aware sharding, and client weights (the
    // indexed EDF/WFQ head structures).
    for scheduler in all_schedulers() {
        let pod = PodConfig::homogeneous(4, Architecture::Axon, 32)
            .with_scheduler(scheduler)
            .with_memory(MemoryModel::Shared { channels: 2 })
            .with_preemption(PreemptionMode::TileBoundary)
            .with_planner(ShardPlanner::BandwidthAware)
            .with_shard_min_macs(Some(1 << 20))
            .with_client_weights(vec![2.0, 1.0, 3.0]);
        let traffic = mixed_traffic(5_108, 110, 450.0);
        let untraced = simulate_pod(&pod, &traffic);
        let mut rec = RecordingSink::default();
        let traced = simulate_pod_traced(&pod, &traffic, &mut rec);
        assert_eq!(
            traced, untraced,
            "{scheduler:?}: sink changed the fast path"
        );
        check_conservation(&rec.events).unwrap_or_else(|e| panic!("{scheduler:?}: {e}"));
    }
}

#[test]
fn parallel_replay_event_stream_is_deterministic_per_router() {
    // Cluster replay runs pods on worker threads; the recorded stream
    // must be identical run to run under every router — events are
    // forwarded in ascending pod order after the join, never in
    // thread-finish order.
    let traffic = mixed_traffic(640, 160, 500.0);
    for router in RouterPolicy::ALL {
        let cluster = ClusterConfig::new(
            vec![
                ClusterPodConfig::new(PodConfig::homogeneous(4, Architecture::Axon, 32)),
                ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Conventional, 32)),
                ClusterPodConfig::new(PodConfig::homogeneous(3, Architecture::Axon, 64)),
            ],
            router,
        );
        let mut a = RecordingSink::default();
        let mut b = RecordingSink::default();
        let ra = simulate_cluster_traced(&cluster, &traffic, &mut a);
        let rb = simulate_cluster_traced(&cluster, &traffic, &mut b);
        assert_eq!(ra, rb, "{}: report not deterministic", router.name());
        assert_eq!(
            a.events,
            b.events,
            "{}: event order not deterministic",
            router.name()
        );
        check_conservation(&a.events).unwrap_or_else(|e| panic!("{}: {e}", router.name()));
    }
}

#[test]
fn tracing_failure_and_autoscale_paths_is_neutral_and_conserving() {
    let cluster = failing_fleet();
    let traffic = mixed_traffic(3, 200, 300.0);
    let untraced = simulate_cluster(&cluster, &traffic);
    let mut rec = RecordingSink::default();
    let traced = simulate_cluster_traced(&cluster, &traffic, &mut rec);
    assert_eq!(traced, untraced, "failure-path tracing changed the run");
    check_conservation(&rec.events).expect("conservation across a pod failure");

    let count =
        |pred: &dyn Fn(&TraceEvent) -> bool| rec.events.iter().filter(|(_, e)| pred(e)).count();
    let m = &traced.metrics;
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::PodFailed { .. })),
        m.failed_pods,
        "one PodFailed per dead pod"
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::Rerouted { .. })),
        m.rerouted,
        "one Rerouted per rescued request"
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::ScaleUp { .. })),
        m.scale_ups,
        "one ScaleUp per activation"
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::ScaleDown { .. })),
        m.scale_downs,
        "one ScaleDown per drain"
    );
    assert!(m.failed_pods >= 1, "scenario must kill a pod");
    assert!(m.rerouted >= 1, "scenario must reroute work");
    // Every request is routed exactly once (reroutes are separate events).
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::Routed { .. })),
        traffic.num_requests
    );
}

// ---------------------------------------------------------------------
// Conservation and balance laws.
// ---------------------------------------------------------------------

#[test]
fn conservation_holds_across_schedulers_memory_models_and_preemption() {
    let memories = [
        MemoryModel::Unconstrained,
        MemoryModel::Shared { channels: 1 },
    ];
    let preemptions = [PreemptionMode::Disabled, PreemptionMode::TileBoundary];
    for scheduler in all_schedulers() {
        for memory in memories {
            for preemption in preemptions {
                let pod = PodConfig::homogeneous(2, Architecture::Axon, 32)
                    .with_scheduler(scheduler)
                    .with_memory(memory)
                    .with_preemption(preemption);
                let traffic = mixed_traffic(11, 100, 500.0);
                let mut rec = RecordingSink::default();
                let r = simulate_pod_traced(&pod, &traffic, &mut rec);
                assert_eq!(r.metrics.completed, 100);
                check_conservation(&rec.events)
                    .unwrap_or_else(|e| panic!("{scheduler:?}/{memory:?}/{preemption:?}: {e}"));
            }
        }
    }
}

#[test]
fn preempt_drain_resume_balance_exactly() {
    let pod = preempting_pod(SchedulerPolicy::Edf { max_batch: 8 });
    let traffic = preempting_traffic(21, 60);
    let mut rec = RecordingSink::default();
    let r = simulate_pod_traced(&pod, &traffic, &mut rec);
    assert!(r.metrics.preemptions > 0, "scenario must preempt");

    let mut preempted: BTreeMap<usize, usize> = BTreeMap::new();
    let mut drained: BTreeMap<usize, usize> = BTreeMap::new();
    let mut resumed: BTreeMap<usize, usize> = BTreeMap::new();
    for (_, e) in &rec.events {
        match e {
            TraceEvent::Preempted { seq, .. } => *preempted.entry(*seq).or_default() += 1,
            TraceEvent::CheckpointDrained { seq, .. } => *drained.entry(*seq).or_default() += 1,
            TraceEvent::Resumed { seq, .. } => *resumed.entry(*seq).or_default() += 1,
            _ => {}
        }
    }
    let total: usize = preempted.values().sum();
    assert_eq!(total, r.metrics.preemptions, "one Preempted per preemption");
    assert_eq!(preempted, drained, "every preemption drains a checkpoint");
    assert_eq!(
        drained, resumed,
        "every drained job resumes (and completes)"
    );
    // check_conservation enforces the same laws — keep them agreeing.
    check_conservation(&rec.events).expect("conservation");
}

#[test]
fn sharding_events_match_the_planner_counters() {
    // Light load on a wide pod: arrays idle together, prefills shard.
    let traffic = TrafficConfig::open_loop(2026, 150, 420_000.0).with_mix(WorkloadMix::new(vec![
        (RequestClass::Decode, 0.75),
        (RequestClass::Prefill, 0.20),
        (RequestClass::Gemv, 0.05),
    ]));
    let pod = PodConfig::homogeneous(4, Architecture::Axon, 128)
        .with_memory(MemoryModel::Shared { channels: 1 })
        .with_planner(ShardPlanner::BandwidthAware);
    let mut rec = RecordingSink::default();
    let r = simulate_pod_traced(&pod, &traffic, &mut rec);
    check_conservation(&rec.events).expect("conservation");

    let planned = rec
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::ShardPlanned { .. }))
        .count();
    let refused = rec
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::ShardRefused { .. }))
        .count();
    assert_eq!(
        planned, r.metrics.sharded_batches,
        "one ShardPlanned per sharded dispatch"
    );
    assert_eq!(
        refused, r.metrics.sharding_refused,
        "one ShardRefused per refusal"
    );
    assert!(planned > 0, "scenario must shard");
    assert!(refused > 0, "scenario must refuse");
    // Every ShardPlanned pairs with a multi-array Dispatched at the
    // same seq, with a grid that covers exactly the occupied arrays.
    let dispatched: BTreeMap<usize, usize> = rec
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::Dispatched { seq, arrays, .. } => Some((*seq, *arrays)),
            _ => None,
        })
        .collect();
    for (_, e) in &rec.events {
        if let TraceEvent::ShardPlanned { seq, pr, pc, .. } = e {
            assert_eq!(
                dispatched.get(seq),
                Some(&(pr * pc)),
                "grid covers the arrays"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Shed conservation: with admission control in the path the law
// becomes arrivals = completions + deadline-missed + shed, and a shed
// request must be terminal-only (Arrived, never Enqueued).
// ---------------------------------------------------------------------

#[test]
fn shed_conservation_holds_per_scheduler_under_overload() {
    for admission in [
        AdmissionPolicy::QueueCap { max_depth: 4 },
        AdmissionPolicy::DeadlineInfeasible,
    ] {
        for scheduler in all_schedulers() {
            // One small array under a dense open-loop stream: far past
            // saturation, so both policies must actually shed.
            let pod = PodConfig::homogeneous(1, Architecture::Axon, 32)
                .with_scheduler(scheduler)
                .with_admission(admission);
            let traffic = mixed_traffic(17, 120, 40.0);
            let untraced = simulate_pod(&pod, &traffic);
            let mut rec = RecordingSink::default();
            let r = simulate_pod_traced(&pod, &traffic, &mut rec);
            assert_eq!(
                r, untraced,
                "{admission:?}/{scheduler:?}: sink changed the run"
            );
            check_conservation(&rec.events)
                .unwrap_or_else(|e| panic!("{admission:?}/{scheduler:?}: {e}"));

            assert_eq!(
                r.metrics.completed + r.metrics.shed,
                traffic.num_requests,
                "{admission:?}/{scheduler:?}: arrivals must split into served + shed"
            );
            assert!(
                r.metrics.shed > 0,
                "{admission:?}/{scheduler:?}: overload scenario must shed"
            );
            assert_eq!(
                r.shed.len(),
                r.metrics.shed,
                "{admission:?}/{scheduler:?}: one ShedRecord per shed"
            );
            let shed_events = rec
                .events
                .iter()
                .filter(|(_, e)| matches!(e, TraceEvent::Shed { .. }))
                .count();
            assert_eq!(
                shed_events, r.metrics.shed,
                "{admission:?}/{scheduler:?}: one Shed event per shed"
            );
            // A shed request arrives but is never enqueued.
            for (_, e) in &rec.events {
                if let TraceEvent::Shed { id, .. } = e {
                    assert!(
                        !rec.events.iter().any(
                            |(_, e2)| matches!(e2, TraceEvent::Enqueued { id: id2, .. } if id2 == id)
                        ),
                        "{admission:?}/{scheduler:?}: shed request {id} was enqueued"
                    );
                }
            }
        }
    }
}

#[test]
fn cluster_front_door_sheds_conserve_per_router() {
    // Two small pods under a stream they cannot absorb: the router's
    // front door (deadline-infeasible at the booked slot) must shed,
    // and a router-shed request is never routed, booked, or enqueued.
    let traffic = mixed_traffic(29, 180, 60.0);
    for router in RouterPolicy::ALL {
        let cluster = ClusterConfig::new(
            vec![
                ClusterPodConfig::new(PodConfig::homogeneous(1, Architecture::Axon, 32)),
                ClusterPodConfig::new(PodConfig::homogeneous(1, Architecture::Axon, 32)),
            ],
            router,
        )
        .with_admission(AdmissionPolicy::DeadlineInfeasible);
        let untraced = simulate_cluster(&cluster, &traffic);
        let mut rec = RecordingSink::default();
        let m = simulate_cluster_traced(&cluster, &traffic, &mut rec).metrics;
        assert_eq!(
            m,
            untraced.metrics,
            "{}: sink changed the run",
            router.name()
        );
        check_conservation(&rec.events).unwrap_or_else(|e| panic!("{}: {e}", router.name()));

        assert_eq!(
            m.completed + m.shed,
            traffic.num_requests,
            "{}: fleet-wide served + shed must cover every arrival",
            router.name()
        );
        assert!(m.shed > 0, "{}: overloaded fleet must shed", router.name());
        let count =
            |pred: &dyn Fn(&TraceEvent) -> bool| rec.events.iter().filter(|(_, e)| pred(e)).count();
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::Shed { .. })),
            m.shed,
            "{}: one Shed event per shed",
            router.name()
        );
        // Router sheds happen instead of routing: Routed + Shed
        // partition the arrival stream (pods are accept-all here).
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::Routed { .. })) + m.shed,
            traffic.num_requests,
            "{}: Routed and Shed must partition arrivals",
            router.name()
        );
    }
}

#[test]
fn shed_conservation_survives_a_pod_failure() {
    // The failure scenario with a queue-cap front door: sheds recorded
    // before the failure survive truncation, refugees re-admitted at
    // rescue pods can shed again, and the fleet ledger still balances.
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 32);
    let cluster = ClusterConfig::new(
        vec![
            ClusterPodConfig::new(pod.clone()),
            ClusterPodConfig::new(pod.clone()).with_fail_at(300_000),
            ClusterPodConfig::new(pod),
        ],
        RouterPolicy::JoinShortestQueue,
    )
    .with_admission(AdmissionPolicy::QueueCap { max_depth: 3 });
    let traffic = mixed_traffic(3, 200, 80.0);
    let untraced = simulate_cluster(&cluster, &traffic);
    let mut rec = RecordingSink::default();
    let m = simulate_cluster_traced(&cluster, &traffic, &mut rec).metrics;
    assert_eq!(m, untraced.metrics, "failure-path tracing changed the run");
    check_conservation(&rec.events).expect("conservation across failure + shedding");

    assert!(m.failed_pods >= 1, "scenario must kill a pod");
    assert!(m.shed > 0, "scenario must shed");
    assert_eq!(
        m.completed + m.shed,
        traffic.num_requests,
        "served + shed must cover every arrival even across a failure"
    );
    // Sheds are terminal: a shed id must never also complete or reroute
    // to a completion.
    let shed_ids: Vec<usize> = rec
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::Shed { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    assert_eq!(shed_ids.len(), m.shed, "one Shed event per shed");
    for id in &shed_ids {
        assert!(
            !rec.events.iter().any(|(_, e)| matches!(
                e,
                TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) if o.id == *id
            )),
            "shed request {id} also reached a served terminal"
        );
    }
}

#[test]
fn queue_cap_backpressures_closed_loop_clients_instead_of_shedding() {
    // Closed-loop clients cannot be shed — a rejected offer blocks the
    // client, whose request is re-offered before new arrivals. The
    // visible effects: zero Shed events, every request still completes,
    // and the queue depth never exceeds the cap.
    let cap = 4;
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 32)
        .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 })
        .with_admission(AdmissionPolicy::QueueCap { max_depth: cap });
    let traffic = TrafficConfig::closed_loop(47, 200, 12, 500);
    let untraced = simulate_pod(&pod, &traffic);
    let mut agg = AggregatingSink::default();
    let r = simulate_pod_traced(&pod, &traffic, &mut agg);
    assert_eq!(r, untraced, "sink changed the closed-loop run");

    assert_eq!(r.metrics.shed, 0, "closed-loop never sheds");
    assert_eq!(agg.event_counts.get("shed").copied().unwrap_or(0), 0);
    assert_eq!(
        r.metrics.completed, 200,
        "backpressure must not lose requests"
    );
    assert!(
        agg.max_queue_depth() <= cap as u64,
        "queue depth {} exceeded the admission cap {cap}",
        agg.max_queue_depth()
    );
    // The cap binds: 12 always-on clients against a depth-4 door.
    assert_eq!(
        agg.max_queue_depth(),
        cap as u64,
        "the cap should be reached"
    );
}

// ---------------------------------------------------------------------
// Phase decomposition: the terminal outcome reproduces the completion
// record's latency split exactly.
// ---------------------------------------------------------------------

#[test]
fn terminal_outcomes_decompose_latency_exactly() {
    for scheduler in all_schedulers() {
        let pod = PodConfig::homogeneous(2, Architecture::Axon, 64)
            .with_scheduler(scheduler)
            .with_memory(MemoryModel::Shared { channels: 1 })
            .with_preemption(PreemptionMode::TileBoundary);
        let traffic = preempting_traffic(9, 80);
        let mut rec = RecordingSink::default();
        let r = simulate_pod_traced(&pod, &traffic, &mut rec);

        let mut outcomes = BTreeMap::new();
        for (_, e) in &rec.events {
            match e {
                TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) => {
                    assert!(
                        outcomes.insert(o.id, *o).is_none(),
                        "{scheduler:?}: dup terminal"
                    );
                }
                _ => {}
            }
        }
        assert_eq!(outcomes.len(), r.completions.len(), "{scheduler:?}");
        for c in &r.completions {
            let o = outcomes[&c.id];
            assert_eq!(o.client, c.client);
            assert_eq!(o.class, c.class);
            assert_eq!(o.arrival, c.arrival);
            assert_eq!(o.dispatch, c.dispatch);
            assert_eq!(o.completion, c.completion);
            assert_eq!(o.deadline, c.deadline);
            assert_eq!(o.array, c.array);
            assert_eq!(o.batch_size, c.batch_size);
            assert_eq!(o.sharded_over, c.sharded_over);
            assert_eq!(
                o.stall_cycles, c.bandwidth_stall_cycles,
                "{scheduler:?} id {}",
                c.id
            );
            // The decomposition sums exactly — no cycle unaccounted.
            assert_eq!(o.queue_cycles() + o.service_cycles(), o.total_cycles());
            assert_eq!(
                o.queue_cycles(),
                c.queue_cycles(),
                "{scheduler:?} id {}",
                c.id
            );
            assert_eq!(
                o.service_cycles(),
                c.service_cycles(),
                "{scheduler:?} id {}",
                c.id
            );
            // Terminal kind agrees with the deadline.
            let on_time = c.completion <= c.deadline;
            let event_on_time = rec
                .events
                .iter()
                .any(|(_, e)| matches!(e, TraceEvent::Completed(o2) if o2.id == c.id));
            assert_eq!(on_time, event_on_time, "{scheduler:?} id {}", c.id);
        }
    }
}

#[test]
fn aggregating_sink_counts_match_the_report() {
    let pod = preempting_pod(SchedulerPolicy::Continuous { max_batch: 8 });
    let traffic = preempting_traffic(33, 70);
    let mut rec = RecordingSink::default();
    let r = simulate_pod_traced(&pod, &traffic, &mut rec);
    let mut agg = AggregatingSink::default();
    agg.replay(&rec.events);

    let count = |name: &str| agg.event_counts.get(name).copied().unwrap_or(0) as usize;
    assert_eq!(count("arrived"), 70);
    assert_eq!(count("enqueued"), 70);
    assert_eq!(
        count("completed") + count("deadline_missed"),
        r.metrics.completed
    );
    assert_eq!(count("batch_joined"), r.metrics.inflight_joins);
    assert_eq!(count("preempted"), r.metrics.preemptions);
    assert_eq!(agg.outcomes.len(), r.metrics.completed);
    assert!(agg.max_queue_depth() > 0);
    assert!(agg.max_busy_arrays() >= 1);
}

// ---------------------------------------------------------------------
// Property: neutrality and conservation hold over random seeds.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tracing_is_neutral_and_conserving_for_any_seed(
        seed in 0u64..1_000_000,
        requests in 40usize..120,
    ) {
        let pod = PodConfig::homogeneous(2, Architecture::Axon, 32)
            .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
            .with_memory(MemoryModel::Shared { channels: 1 })
            .with_preemption(PreemptionMode::TileBoundary);
        let traffic = mixed_traffic(seed, requests, 600.0);
        let untraced = simulate_pod(&pod, &traffic);
        let mut rec = RecordingSink::default();
        let traced = simulate_pod_traced(&pod, &traffic, &mut rec);
        prop_assert_eq!(&traced, &untraced);
        prop_assert_eq!(traced.metrics.completed, requests);
        check_conservation(&rec.events).expect("conservation");
    }

    #[test]
    fn cluster_tracing_is_neutral_for_any_seed(seed in 0u64..1_000_000) {
        let cluster = failing_fleet();
        let traffic = mixed_traffic(seed, 100, 400.0);
        let untraced = simulate_cluster(&cluster, &traffic);
        let mut rec = RecordingSink::default();
        let traced = simulate_cluster_traced(&cluster, &traffic, &mut rec);
        prop_assert_eq!(&traced, &untraced);
        check_conservation(&rec.events).expect("conservation");
    }
}

//! Differential harness: the optimized engine (heap next-event
//! selection, memoized runtime model, incremental re-timing, indexed
//! EDF/WFQ heads, parallel cluster replay) against the frozen
//! pre-optimization copy in `axon_serve::reference`.
//!
//! Every comparison is **bit-for-bit**: the full [`ServingReport`]
//! (trace, completion-by-completion records with their f64 energy
//! fields, all derived metrics) *and* the recorded trace event
//! streams, in order. Any divergence — a reordered completion, an
//! off-by-one cycle, a missing `Retimed` event — fails here first.
//!
//! The matrix sweeps scheduler x memory model x preemption mode, the
//! proptest adds random seeds/rates/closed-loop think times on random
//! matrix cells, and the cluster section pins a 1-pod fleet under all
//! six routers to the reference pod engine.

use axon_core::runtime::{Architecture, DrainPolicy};
use axon_serve::reference::{
    simulate_pod_reference, simulate_pod_reference_traced, simulate_pod_trace_reference_traced,
};
use axon_serve::{
    parse_trace, simulate_cluster_traced, simulate_pod, simulate_pod_trace_traced,
    simulate_pod_traced, write_trace, ArrivalProcess, ClusterConfig, ClusterPodConfig, MemoryModel,
    MmppState, PodConfig, PreemptionMode, RateSegment, RecordingSink, Request, RequestGenerator,
    RouterPolicy, SchedulerPolicy, ShardPlanner, SpikeWindow, TraceEvent, TrafficConfig,
    WorkloadMix,
};
use proptest::prelude::*;

const SCHEDULERS: [SchedulerPolicy; 5] = [
    SchedulerPolicy::Fifo,
    SchedulerPolicy::Batching { max_batch: 4 },
    SchedulerPolicy::Edf { max_batch: 4 },
    SchedulerPolicy::Continuous { max_batch: 4 },
    SchedulerPolicy::Wfq { max_batch: 4 },
];

const MEMORIES: [MemoryModel; 3] = [
    MemoryModel::Unconstrained,
    MemoryModel::Shared { channels: 1 },
    MemoryModel::Shared { channels: 2 },
];

const PREEMPTIONS: [PreemptionMode; 2] = [PreemptionMode::Disabled, PreemptionMode::TileBoundary];

/// A pod that exercises every engine path the cell asks for: four
/// arrays (so sharding and resume have peers), a low shard threshold,
/// and the bandwidth-aware planner whenever memory is shared.
fn matrix_pod(
    scheduler: SchedulerPolicy,
    memory: MemoryModel,
    preemption: PreemptionMode,
) -> PodConfig {
    let planner = match memory {
        MemoryModel::Unconstrained => ShardPlanner::ComputeOnly,
        MemoryModel::Shared { .. } => ShardPlanner::BandwidthAware,
    };
    PodConfig::homogeneous(4, Architecture::Axon, 32)
        .with_scheduler(scheduler)
        .with_memory(memory)
        .with_preemption(preemption)
        .with_planner(planner)
        .with_shard_min_macs(Some(1 << 20))
        .with_client_weights(vec![3.0, 1.0, 1.0, 2.0])
}

fn matrix_traffic(seed: u64, requests: usize, mean: f64) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, mean)
        .with_mix(WorkloadMix::balanced())
        .with_clients(4)
}

/// The core differential assertion: fast engine vs frozen reference,
/// full report and full event stream.
fn assert_pod_identical(pod: &PodConfig, traffic: &TrafficConfig, label: &str) {
    let mut fast_sink = RecordingSink::default();
    let mut ref_sink = RecordingSink::default();
    let fast = simulate_pod_traced(pod, traffic, &mut fast_sink);
    let reference = simulate_pod_reference_traced(pod, traffic, &mut ref_sink);

    // Completion-by-completion first, so a divergence points at the
    // exact record rather than dumping two whole reports.
    assert_eq!(
        fast.completions.len(),
        reference.completions.len(),
        "{label}: completion count diverged"
    );
    for (i, (f, r)) in fast
        .completions
        .iter()
        .zip(reference.completions.iter())
        .enumerate()
    {
        assert_eq!(f, r, "{label}: completion #{i} diverged");
    }
    assert_eq!(fast, reference, "{label}: reports diverged");

    assert_eq!(
        fast_sink.events.len(),
        ref_sink.events.len(),
        "{label}: event count diverged"
    );
    for (i, (f, r)) in fast_sink
        .events
        .iter()
        .zip(ref_sink.events.iter())
        .enumerate()
    {
        assert_eq!(f, r, "{label}: trace event #{i} diverged");
    }
}

/// The full scheduler x memory x preemption matrix on a seeded
/// open-loop mixed stream.
#[test]
fn matrix_fast_engine_matches_reference_bit_for_bit() {
    for scheduler in SCHEDULERS {
        for memory in MEMORIES {
            for preemption in PREEMPTIONS {
                let pod = matrix_pod(scheduler, memory, preemption);
                let traffic = matrix_traffic(1201, 40, 700.0);
                let label = format!("{scheduler:?} / {memory:?} / {preemption:?}");
                assert_pod_identical(&pod, &traffic, &label);
            }
        }
    }
}

/// Closed-loop arrivals re-issue from completion edges, so they
/// exercise the engine's event ordering under feedback.
#[test]
fn closed_loop_fast_engine_matches_reference() {
    for scheduler in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::Continuous { max_batch: 4 },
        SchedulerPolicy::Wfq { max_batch: 4 },
    ] {
        let pod = matrix_pod(
            scheduler,
            MemoryModel::Shared { channels: 2 },
            PreemptionMode::TileBoundary,
        );
        let traffic = TrafficConfig {
            arrival: ArrivalProcess::ClosedLoop {
                think_cycles: 2_000,
            },
            ..matrix_traffic(77, 30, 500.0)
        };
        assert_pod_identical(&pod, &traffic, &format!("closed-loop {scheduler:?}"));
    }
}

/// Pre-built trace entry point: identical streams through
/// `simulate_pod_trace*` on both engines.
#[test]
fn trace_entry_point_matches_reference() {
    let pod = matrix_pod(
        SchedulerPolicy::Continuous { max_batch: 4 },
        MemoryModel::Shared { channels: 2 },
        PreemptionMode::TileBoundary,
    );
    let traffic = matrix_traffic(5150, 50, 400.0);
    let mut gen = RequestGenerator::new(&traffic);
    let trace = gen.open_loop_trace(400.0, 4);
    let mut fast_sink = RecordingSink::default();
    let mut ref_sink = RecordingSink::default();
    let fast = simulate_pod_trace_traced(&pod, &trace, &mut fast_sink);
    let reference = simulate_pod_trace_reference_traced(&pod, &trace, &mut ref_sink);
    assert_eq!(fast, reference, "trace entry point diverged");
    assert_eq!(fast_sink.events, ref_sink.events, "event streams diverged");
}

/// A 1-pod cluster under every router must collapse onto the reference
/// pod engine: same per-pod report, and the cluster's event stream —
/// minus the router-level `Routed` records the pod engine never emits
/// — must equal the reference pod's stream event-for-event.
#[test]
fn one_pod_cluster_matches_reference_under_every_router() {
    let pod = matrix_pod(
        SchedulerPolicy::Continuous { max_batch: 4 },
        MemoryModel::Shared { channels: 2 },
        PreemptionMode::TileBoundary,
    );
    let traffic = matrix_traffic(31, 40, 600.0);
    let mut ref_sink = RecordingSink::default();
    let reference = simulate_pod_reference_traced(&pod, &traffic, &mut ref_sink);
    for router in RouterPolicy::ALL {
        let cluster = ClusterConfig::new(vec![ClusterPodConfig::new(pod.clone())], router);
        let mut sink = RecordingSink::default();
        let r = simulate_cluster_traced(&cluster, &traffic, &mut sink);
        assert_eq!(r.per_pod.len(), 1);
        assert_eq!(
            r.per_pod[0],
            reference,
            "{}: report diverged",
            router.name()
        );
        let pod_events: Vec<_> = sink
            .events
            .iter()
            .filter(|(_, e)| !matches!(e, TraceEvent::Routed { .. }))
            .cloned()
            .collect();
        assert_eq!(
            pod_events,
            ref_sink.events,
            "{}: event stream diverged",
            router.name()
        );
    }
}

/// Sharding-heavy streams through the dispatch-plan cache: a low shard
/// threshold sends most dispatches through the planner, and the
/// repeated decode/GEMV shapes of the mix make the warm cache answer
/// most of them from memo entries — under both drain policies (the
/// `PerTile` cold pass prunes dominated grids, `Overlapped` enumerates
/// fully) and both planners (compute-only and contended). The reference
/// engine re-enumerates every grid on every dispatch; any cache-key or
/// prune defect diverges here.
#[test]
fn sharding_heavy_stream_matches_reference() {
    for drain in [DrainPolicy::PerTile, DrainPolicy::Overlapped] {
        for (memory, planner) in [
            (MemoryModel::Unconstrained, ShardPlanner::ComputeOnly),
            (
                MemoryModel::Shared { channels: 2 },
                ShardPlanner::BandwidthAware,
            ),
        ] {
            let mut pod = matrix_pod(SchedulerPolicy::Fifo, memory, PreemptionMode::TileBoundary);
            pod.drain = drain;
            // Low threshold + sparse arrivals: free peers are usually
            // available, so the planner runs on most dispatches.
            let pod = pod.with_shard_min_macs(Some(1 << 14));
            let traffic = matrix_traffic(4242, 60, 2_500.0);
            assert_pod_identical(
                &pod,
                &traffic,
                &format!("sharding-heavy {planner:?} / {drain:?}"),
            );
        }
    }
}

/// Calendar-queue stress: zero think time makes every completion
/// reissue an arrival at the completion cycle itself (a push exactly at
/// the window anchor), and a dense open-loop burst piles many requests
/// into single buckets with duplicated arrival cycles — both must drain
/// in the exact `(arrival, id)` order of the reference engine's heap.
#[test]
fn bursty_and_zero_think_arrivals_match_reference() {
    let pod = matrix_pod(
        SchedulerPolicy::Continuous { max_batch: 4 },
        MemoryModel::Shared { channels: 2 },
        PreemptionMode::TileBoundary,
    );
    let zero_think = TrafficConfig {
        arrival: ArrivalProcess::ClosedLoop { think_cycles: 0 },
        ..matrix_traffic(909, 40, 400.0)
    };
    assert_pod_identical(&pod, &zero_think, "closed-loop zero think");
    let burst = matrix_traffic(911, 80, 10.0);
    assert_pod_identical(&pod, &burst, "dense arrival burst");
}

/// Every new trace-driven arrival model — MMPP bursts, a diurnal rate
/// curve, a flash crowd, and a replayed trace file — runs through the
/// same generation path the frozen reference dispatches to, so the
/// engines stay bit-for-bit comparable on bursty and overloaded
/// streams too (admission stays accept-all: the reference predates
/// admission control, and generation — not admission — is what these
/// models change).
#[test]
fn trace_driven_arrival_models_match_reference() {
    let pod = matrix_pod(
        SchedulerPolicy::Continuous { max_batch: 4 },
        MemoryModel::Shared { channels: 2 },
        PreemptionMode::TileBoundary,
    );
    let replay_entries = {
        // Round-trip a generated trace through the on-disk format so
        // the replayed stream is exactly what a file would carry.
        let mut gen = RequestGenerator::new(&matrix_traffic(1807, 50, 120.0));
        parse_trace(&write_trace(&gen.open_loop_trace(120.0, 4))).expect("own format parses")
    };
    let cases: Vec<(&str, ArrivalProcess)> = vec![
        (
            "mmpp burst/lull",
            ArrivalProcess::MarkovModulatedPoisson {
                states: vec![
                    MmppState {
                        mean_interarrival: 60.0,
                        mean_dwell: 8_000.0,
                    },
                    MmppState {
                        mean_interarrival: 1_200.0,
                        mean_dwell: 20_000.0,
                    },
                ],
            },
        ),
        (
            "diurnal ramp",
            ArrivalProcess::Diurnal {
                segments: vec![
                    RateSegment {
                        duration: 15_000,
                        mean_interarrival: 900.0,
                    },
                    RateSegment {
                        duration: 15_000,
                        mean_interarrival: 150.0,
                    },
                    RateSegment {
                        duration: 15_000,
                        mean_interarrival: 2_000.0,
                    },
                ],
            },
        ),
        (
            "flash crowd",
            ArrivalProcess::FlashCrowd {
                base_interarrival: 1_000.0,
                spikes: vec![SpikeWindow {
                    start: 10_000,
                    duration: 8_000,
                    mean_interarrival: 50.0,
                }],
            },
        ),
        (
            "trace replay",
            ArrivalProcess::TraceReplay {
                entries: replay_entries,
            },
        ),
    ];
    for (label, arrival) in cases {
        let traffic = TrafficConfig {
            arrival,
            ..matrix_traffic(1807, 60, 300.0)
        };
        assert_pod_identical(&pod, &traffic, label);
    }
}

/// Multi-pod cluster replay with the fleet-wide shared `ModelCache`
/// (the public entry point always shares): every pod's report and event
/// stream must equal the frozen reference engine run on exactly the
/// sub-trace the router assigned that pod — recovered here from the
/// `Routed` events, which the routing pass records in trace order.
#[test]
fn multi_pod_shared_cache_cluster_matches_reference_per_pod() {
    let pods = vec![
        ClusterPodConfig::new(matrix_pod(
            SchedulerPolicy::Continuous { max_batch: 4 },
            MemoryModel::Shared { channels: 2 },
            PreemptionMode::TileBoundary,
        )),
        ClusterPodConfig::new(matrix_pod(
            SchedulerPolicy::Fifo,
            MemoryModel::Shared { channels: 2 },
            PreemptionMode::Disabled,
        )),
        ClusterPodConfig::new(matrix_pod(
            SchedulerPolicy::Continuous { max_batch: 4 },
            MemoryModel::Shared { channels: 2 },
            PreemptionMode::TileBoundary,
        )),
    ];
    let cluster = ClusterConfig::new(pods.clone(), RouterPolicy::JoinShortestQueue);
    let traffic = matrix_traffic(313, 60, 500.0);
    let mut sink = RecordingSink::default();
    let r = simulate_cluster_traced(&cluster, &traffic, &mut sink);

    // The cluster generates this exact stream internally, then routes
    // request-by-request in trace order.
    let mut gen = RequestGenerator::new(&traffic);
    let trace = gen.open_loop_trace(500.0, 4);
    let mut assigned: Vec<Vec<Request>> = vec![Vec::new(); pods.len()];
    for (_, e) in &sink.events {
        if let TraceEvent::Routed { id, pod, .. } = e {
            let req = trace
                .iter()
                .find(|r| r.id == *id)
                .copied()
                .expect("routed id must come from the generated trace");
            assigned[*pod].push(req);
        }
    }
    assert_eq!(
        assigned.iter().map(Vec::len).sum::<usize>(),
        trace.len(),
        "every request routes exactly once"
    );

    for (i, sub) in assigned.iter().enumerate() {
        let mut ref_sink = RecordingSink::default();
        let reference = simulate_pod_trace_reference_traced(&pods[i].pod, sub, &mut ref_sink);
        assert_eq!(r.per_pod[i], reference, "pod {i}: report diverged");
        let pod_events: Vec<TraceEvent> = sink
            .events
            .iter()
            .filter(|(p, e)| *p == i && !matches!(e, TraceEvent::Routed { .. }))
            .map(|(_, e)| e.clone())
            .collect();
        let ref_events: Vec<TraceEvent> = ref_sink.events.into_iter().map(|(_, e)| e).collect();
        assert_eq!(pod_events, ref_events, "pod {i}: event stream diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random cells of the matrix under random seeds and arrival rates.
    #[test]
    fn random_streams_match_reference(
        seed in 0u64..10_000,
        mean in 150.0f64..3_000.0,
        si in 0usize..SCHEDULERS.len(),
        mi in 0usize..MEMORIES.len(),
        pi in 0usize..PREEMPTIONS.len(),
    ) {
        let pod = matrix_pod(SCHEDULERS[si], MEMORIES[mi], PREEMPTIONS[pi]);
        let traffic = matrix_traffic(seed, 30, mean);
        let fast = simulate_pod(&pod, &traffic);
        let reference = simulate_pod_reference(&pod, &traffic);
        prop_assert_eq!(fast, reference);
    }
}

//! End-to-end tests of bandwidth-aware dispatch: the sharding planner's
//! refusal path, planner invariance when memory is unconstrained, and
//! the bandwidth-stall accounting surfaced through [`PodMetrics`].

use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, MemoryModel, PodConfig, PreemptionMode, RequestClass, SchedulerPolicy,
    ServingReport, ShardPlanner, SloBudgets, TrafficConfig, WorkloadMix,
};

/// Decode-dominated traffic with enough shardable prefill that the two
/// planners regularly disagree, at a load light enough that arrays are
/// often idle together (the precondition for sharding at all).
fn shardy_traffic(seed: u64, requests: usize) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, 420_000.0).with_mix(WorkloadMix::new(vec![
        (RequestClass::Decode, 0.75),
        (RequestClass::Prefill, 0.20),
        (RequestClass::Gemv, 0.05),
    ]))
}

fn starved_pod(planner: ShardPlanner) -> PodConfig {
    PodConfig::homogeneous(4, Architecture::Axon, 128)
        .with_memory(MemoryModel::Shared { channels: 1 })
        .with_planner(planner)
}

/// The refusal path: on a starved pod the bandwidth-aware planner must
/// decline scale-out grids the compute-only planner takes — and end no
/// slower for it, with a decode tail no worse.
#[test]
fn starved_pod_refuses_sharding_and_ends_no_slower() {
    let traffic = shardy_traffic(2026, 150);
    let oblivious = simulate_pod(&starved_pod(ShardPlanner::ComputeOnly), &traffic);
    let aware = simulate_pod(&starved_pod(ShardPlanner::BandwidthAware), &traffic);

    assert!(
        oblivious.metrics.sharded_batches > 0,
        "scenario must make the oblivious planner shard"
    );
    assert_eq!(oblivious.metrics.sharding_refused, 0);
    assert!(
        aware.metrics.sharding_refused > 0,
        "starved pod must refuse at least one grid the oblivious planner took"
    );
    assert!(
        aware.metrics.makespan_cycles <= oblivious.metrics.makespan_cycles,
        "refusing unfeedable scale-out must not slow the run: {} vs {}",
        aware.metrics.makespan_cycles,
        oblivious.metrics.makespan_cycles
    );
    let decode_p99 = |r: &ServingReport| {
        r.metrics
            .class_metrics(RequestClass::Decode)
            .expect("decode traffic present")
            .total
            .p99
    };
    assert!(
        decode_p99(&aware) <= decode_p99(&oblivious),
        "bandwidth-aware decode p99 {} must not exceed oblivious {}",
        decode_p99(&aware),
        decode_p99(&oblivious)
    );
}

/// Without a shared memory model there is no bandwidth to be aware of:
/// the two planners must produce bit-identical reports (the PR 4
/// results reproduce exactly under either).
#[test]
fn planners_identical_when_memory_unconstrained() {
    let traffic = shardy_traffic(7, 120);
    let run = |planner: ShardPlanner| {
        simulate_pod(
            &PodConfig::homogeneous(4, Architecture::Axon, 128).with_planner(planner),
            &traffic,
        )
    };
    let oblivious = run(ShardPlanner::ComputeOnly);
    let aware = run(ShardPlanner::BandwidthAware);
    assert_eq!(oblivious.completions, aware.completions);
    assert_eq!(oblivious.metrics, aware.metrics);
    assert_eq!(aware.metrics.sharding_refused, 0);
    assert_eq!(aware.metrics.bandwidth_stall_cycles, 0);
}

/// Stall accounting: starved pods report positive bandwidth-stall time
/// that decomposes exactly over completions and classes; unconstrained
/// pods report none.
#[test]
fn bandwidth_stall_accounting_is_consistent() {
    let traffic = shardy_traffic(11, 120);
    let starved = simulate_pod(&starved_pod(ShardPlanner::BandwidthAware), &traffic);
    assert!(
        starved.metrics.bandwidth_stall_cycles > 0,
        "a 4-array pod on 1 channel must stall on bandwidth"
    );
    let from_completions: u64 = starved
        .completions
        .iter()
        .map(|c| c.bandwidth_stall_cycles)
        .sum();
    assert_eq!(from_completions, starved.metrics.bandwidth_stall_cycles);
    let from_classes: u64 = starved
        .metrics
        .per_class
        .iter()
        .map(|c| c.bandwidth_stall_cycles)
        .sum();
    assert_eq!(from_classes, starved.metrics.bandwidth_stall_cycles);

    let free = simulate_pod(
        &PodConfig::homogeneous(4, Architecture::Axon, 128),
        &traffic,
    );
    assert_eq!(free.metrics.bandwidth_stall_cycles, 0);
    assert!(free
        .completions
        .iter()
        .all(|c| c.bandwidth_stall_cycles == 0));
}

/// Preemption under the shared model composes with the planner and the
/// epoch-tracking checkpoint tail: everything completes, preempted jobs
/// carry their counts, and determinism holds bit for bit.
#[test]
fn preemption_under_contention_is_deterministic_and_complete() {
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 })
        .with_preemption(PreemptionMode::TileBoundary)
        .with_memory(MemoryModel::Shared { channels: 1 })
        .with_shard_min_macs(None);
    let traffic = TrafficConfig::open_loop(21, 80, 100_000.0)
        .with_mix(WorkloadMix::new(vec![
            (RequestClass::Prefill, 0.2),
            (RequestClass::Decode, 0.8),
        ]))
        .with_slo(SloBudgets::serving_default().with_decode(150_000));
    let a = simulate_pod(&pod, &traffic);
    let b = simulate_pod(&pod, &traffic);
    assert_eq!(a.metrics.completed, 80);
    assert!(a.metrics.preemptions > 0, "scenario must preempt");
    assert!(a.completions.iter().any(|c| c.preemptions > 0));
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.metrics, b.metrics);
}

//! Statistical pinning of the trace-driven arrival models.
//!
//! Every generative model reduces to the piecewise-constant-rate engine
//! in `generator.rs`, which reports the realized [`RateWindow`]s next
//! to the trace it drew. These tests check the *distributional*
//! contract that differential tests cannot: inside each window the
//! empirical rate matches the configured rate, a diurnal curve's
//! per-segment volume matches its integral, and a flash crowd's burst
//! mass lands inside the spike window. Seeds are fixed, so the
//! tolerances are deterministic assertions, not flaky confidence
//! intervals — they are sized at several Poisson standard deviations
//! so a same-family reseed would pass too.

use axon_serve::{
    ArrivalProcess, MmppState, RateSegment, RateWindow, RequestGenerator, SloBudgets, SpikeWindow,
    TrafficConfig,
};

/// A traffic config for `arrival` with everything else fixed.
fn traffic(seed: u64, requests: usize, arrival: ArrivalProcess) -> TrafficConfig {
    TrafficConfig {
        arrival,
        ..TrafficConfig::open_loop(seed, requests, 1_000.0)
    }
    .with_clients(4)
}

/// Draws the trace and realized windows for `arrival`.
fn draw(
    seed: u64,
    requests: usize,
    arrival: ArrivalProcess,
) -> (Vec<axon_serve::Request>, Vec<RateWindow>) {
    let cfg = traffic(seed, requests, arrival);
    RequestGenerator::new(&cfg)
        .arrival_trace_with_windows(&cfg.arrival, cfg.num_clients)
        .expect("trace-driven model")
}

/// Arrivals inside `[start, end)` of `window`.
fn count_in(trace: &[axon_serve::Request], w: &RateWindow) -> usize {
    trace
        .iter()
        .filter(|r| w.start <= r.arrival && r.arrival < w.end)
        .count()
}

#[test]
fn mmpp_empirical_rate_matches_each_state() {
    // Two states an order of magnitude apart: the empirical mean gap
    // aggregated over every window a state realized must recover that
    // state's configured mean.
    let states = vec![
        MmppState {
            mean_interarrival: 50.0,
            mean_dwell: 60_000.0,
        },
        MmppState {
            mean_interarrival: 2_000.0,
            mean_dwell: 120_000.0,
        },
    ];
    let (trace, windows) = draw(
        4242,
        8_000,
        ArrivalProcess::MarkovModulatedPoisson {
            states: states.clone(),
        },
    );
    assert_eq!(trace.len(), 8_000);
    assert!(windows.len() >= 4, "expected several dwells: {windows:?}");
    for s in &states {
        let mine: Vec<&RateWindow> = windows
            .iter()
            .filter(|w| w.mean_interarrival == s.mean_interarrival)
            .collect();
        assert!(!mine.is_empty(), "state {s:?} never realized a window");
        let span: u64 = mine.iter().map(|w| w.end - w.start).sum();
        let arrivals: usize = mine.iter().map(|w| count_in(&trace, w)).sum();
        assert!(arrivals > 30, "state {s:?} too thin to test: {arrivals}");
        let empirical = span as f64 / arrivals as f64;
        let rel = (empirical - s.mean_interarrival).abs() / s.mean_interarrival;
        // Poisson relative sd is 1/sqrt(n); 30+ arrivals at worst gives
        // sd < 0.19, and the dense state has thousands.
        assert!(
            rel < 0.25,
            "state mean {} recovered as {empirical:.1} over {arrivals} arrivals ({span} cycles)",
            s.mean_interarrival
        );
    }
}

#[test]
fn diurnal_volume_matches_the_curve_integral() {
    // Each fully elapsed window must carry ~duration/mean arrivals —
    // the discrete integral of the rate curve over that segment.
    let segments = vec![
        RateSegment {
            duration: 200_000,
            mean_interarrival: 100.0,
        },
        RateSegment {
            duration: 400_000,
            mean_interarrival: 400.0,
        },
        RateSegment {
            duration: 100_000,
            mean_interarrival: 50.0,
        },
    ];
    let (trace, windows) = draw(
        99,
        20_000,
        ArrivalProcess::Diurnal {
            segments: segments.clone(),
        },
    );
    // The last window is truncated at budget exhaustion; every earlier
    // one spans its full configured duration.
    assert!(windows.len() >= 4, "budget should outlast one full cycle");
    let mut checked = 0;
    for w in &windows[..windows.len() - 1] {
        let expected = (w.end - w.start) as f64 / w.mean_interarrival;
        let got = count_in(&trace, w) as f64;
        let sigma = expected.sqrt();
        assert!(
            (got - expected).abs() < 6.0 * sigma,
            "window {w:?}: {got} arrivals, integral predicts {expected:.0} (sigma {sigma:.1})"
        );
        checked += 1;
    }
    assert!(checked >= 3, "should check at least one full cycle");
    // Windows tile the timeline back to back in segment order.
    for pair in windows.windows(2) {
        assert_eq!(pair[0].end, pair[1].start, "windows must tile: {pair:?}");
    }
}

#[test]
fn flash_crowd_mass_concentrates_in_the_spike() {
    let spike = SpikeWindow {
        start: 150_000,
        duration: 60_000,
        mean_interarrival: 50.0,
    };
    let (trace, _) = draw(
        7,
        4_000,
        ArrivalProcess::FlashCrowd {
            base_interarrival: 5_000.0,
            spikes: vec![spike],
        },
    );
    let in_spike = trace
        .iter()
        .filter(|r| spike.start <= r.arrival && r.arrival < spike.start + spike.duration)
        .count();
    // An equal-length window of pure baseline immediately before.
    let before = trace
        .iter()
        .filter(|r| spike.start - spike.duration <= r.arrival && r.arrival < spike.start)
        .count();
    let expected = spike.duration as f64 / spike.mean_interarrival;
    assert!(
        (in_spike as f64 - expected).abs() < 6.0 * expected.sqrt(),
        "spike carried {in_spike} arrivals, expected ~{expected:.0}"
    );
    assert!(
        in_spike > 20 * before.max(1),
        "burst mass must dwarf the baseline: {in_spike} in-spike vs {before} before"
    );
}

type ModelCase = (&'static str, Box<dyn Fn() -> ArrivalProcess>);

#[test]
fn trace_driven_models_are_deterministic_and_ordered() {
    let models: Vec<ModelCase> = vec![
        (
            "open-loop",
            Box::new(|| ArrivalProcess::OpenLoop {
                mean_interarrival: 300.0,
            }),
        ),
        (
            "mmpp",
            Box::new(|| ArrivalProcess::MarkovModulatedPoisson {
                states: vec![
                    MmppState {
                        mean_interarrival: 80.0,
                        mean_dwell: 10_000.0,
                    },
                    MmppState {
                        mean_interarrival: 900.0,
                        mean_dwell: 30_000.0,
                    },
                ],
            }),
        ),
        (
            "diurnal",
            Box::new(|| ArrivalProcess::Diurnal {
                segments: vec![
                    RateSegment {
                        duration: 20_000,
                        mean_interarrival: 150.0,
                    },
                    RateSegment {
                        duration: 20_000,
                        mean_interarrival: 1_500.0,
                    },
                ],
            }),
        ),
        (
            "flash-crowd",
            Box::new(|| ArrivalProcess::FlashCrowd {
                base_interarrival: 1_200.0,
                spikes: vec![SpikeWindow {
                    start: 8_000,
                    duration: 6_000,
                    mean_interarrival: 60.0,
                }],
            }),
        ),
    ];
    let slo = SloBudgets::serving_default();
    for (label, make) in models {
        let (a, wa) = draw(31, 500, make());
        let (b, wb) = draw(31, 500, make());
        assert_eq!(a, b, "{label}: same seed must be bit-identical");
        assert_eq!(wa, wb, "{label}: windows must be bit-identical too");
        let (c, _) = draw(32, 500, make());
        assert_ne!(a, c, "{label}: a reseed must move the trace");

        assert_eq!(a.len(), 500, "{label}: full budget drawn");
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i, "{label}: ids are issue-order");
            assert!(r.client < 4, "{label}: client in range");
            assert_eq!(
                r.deadline,
                r.arrival + slo.budget(r.class),
                "{label}: deadline is arrival + class budget"
            );
        }
        // Nondecreasing arrivals + sequential ids = the trace is already
        // in the exact `(arrival, id)` order the pod's calendar queue
        // consumes, so simulation order is pinned by construction.
        for (i, w) in a.windows(2).enumerate() {
            assert!(
                (w[0].arrival, w[0].id) < (w[1].arrival, w[1].id),
                "{label}: order violated at {i}: {:?} then {:?}",
                (w[0].arrival, w[0].id),
                (w[1].arrival, w[1].id)
            );
        }
    }
}

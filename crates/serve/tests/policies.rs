//! Scheduling-policy guarantees: the EDF-vs-FIFO head-of-line
//! regression guard and bit-identical determinism for every policy.

use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, PodConfig, PreemptionMode, RequestClass, SchedulerPolicy, ServingReport,
    TrafficConfig, WorkloadMix,
};

fn policy_pod(scheduler: SchedulerPolicy, preemption: PreemptionMode) -> PodConfig {
    PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(scheduler)
        .with_preemption(preemption)
}

fn mixed_traffic(seed: u64, requests: usize, mean_interarrival: f64) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, mean_interarrival).with_mix(WorkloadMix::new(vec![
        (RequestClass::Decode, 0.80),
        (RequestClass::Prefill, 0.15),
        (RequestClass::Gemv, 0.05),
    ]))
}

/// Decode request ids that completed within their SLO deadline.
fn decode_slo_met(report: &ServingReport) -> Vec<usize> {
    report
        .completions
        .iter()
        .filter(|c| c.class == RequestClass::Decode && c.met_deadline())
        .map(|c| c.id)
        .collect()
}

/// The head-of-line regression guard: EDF never violates a decode SLO
/// that FIFO meets at the same load.
///
/// Two tiers, because strict per-request dominance is only guaranteed
/// while reordering is surgical: at light load (where EDF's only effect
/// is pulling tight-deadline decodes ahead of loose prefills) the set
/// of FIFO-met decode requests must be a *subset* of the EDF-met set,
/// request for request. Under pressure EDF may trade one late decode
/// for many rescued ones, so there the guard is on the aggregate: EDF's
/// decode-violation count may never exceed FIFO's at the same load.
#[test]
fn edf_never_violates_a_decode_slo_fifo_meets() {
    // Light load: per-request subset dominance.
    let traffic = mixed_traffic(77, 500, 8000.0);
    let fifo = simulate_pod(
        &policy_pod(SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        &traffic,
    );
    let edf = simulate_pod(
        &policy_pod(
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        &traffic,
    );
    let fifo_met = decode_slo_met(&fifo);
    let edf_met = decode_slo_met(&edf);
    let missing: Vec<usize> = fifo_met
        .iter()
        .copied()
        .filter(|id| !edf_met.contains(id))
        .collect();
    assert!(
        missing.is_empty(),
        "EDF violated decode SLOs FIFO met for request ids {missing:?} \
         ({} FIFO-met vs {} EDF-met)",
        fifo_met.len(),
        edf_met.len()
    );

    // Every load: aggregate dominance.
    for mean_interarrival in [8000.0, 4000.0, 2500.0] {
        let traffic = mixed_traffic(77, 500, mean_interarrival);
        let fifo = simulate_pod(
            &policy_pod(SchedulerPolicy::Fifo, PreemptionMode::Disabled),
            &traffic,
        );
        let edf = simulate_pod(
            &policy_pod(
                SchedulerPolicy::Edf { max_batch: 8 },
                PreemptionMode::Disabled,
            ),
            &traffic,
        );
        let fifo_met = decode_slo_met(&fifo).len();
        let edf_met = decode_slo_met(&edf).len();
        assert!(
            edf_met >= fifo_met,
            "at mean interarrival {mean_interarrival}: EDF met {edf_met} decode \
             SLOs but FIFO met {fifo_met}"
        );
    }
}

/// EDF's decode tail is no worse than FIFO's on the same traffic, and
/// strictly better at the load where prefills block the queue.
#[test]
fn edf_decode_p99_beats_fifo_under_blocking() {
    let traffic = mixed_traffic(77, 500, 2500.0);
    let fifo = simulate_pod(
        &policy_pod(SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        &traffic,
    );
    let edf = simulate_pod(
        &policy_pod(
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        &traffic,
    );
    let p99 = |r: &ServingReport| {
        r.metrics
            .class_metrics(RequestClass::Decode)
            .expect("decode traffic present")
            .total
            .p99
    };
    assert!(
        p99(&edf) < p99(&fifo),
        "edf decode p99 {} should beat fifo {}",
        p99(&edf),
        p99(&fifo)
    );
}

/// Same seed + same policy => bit-identical report, for every policy in
/// the ladder (preemption and continuous batching included).
#[test]
fn every_policy_is_deterministic() {
    let ladder: [(SchedulerPolicy, PreemptionMode); 6] = [
        (SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        (
            SchedulerPolicy::Batching { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Continuous { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Wfq { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
    ];
    for (scheduler, preemption) in ladder {
        let pod = policy_pod(scheduler, preemption);
        let traffic = mixed_traffic(31, 250, 1500.0);
        let a = simulate_pod(&pod, &traffic);
        let b = simulate_pod(&pod, &traffic);
        assert_eq!(a.trace, b.trace, "{scheduler:?} trace diverged");
        assert_eq!(
            a.completions, b.completions,
            "{scheduler:?} completions diverged"
        );
        assert_eq!(a.metrics, b.metrics, "{scheduler:?} metrics diverged");
    }
}

/// Every policy completes all requests and preserves per-client FIFO
/// dispatch order.
#[test]
fn every_policy_preserves_per_client_fifo() {
    let ladder: [(SchedulerPolicy, PreemptionMode); 4] = [
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Continuous { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Wfq { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
    ];
    for (scheduler, preemption) in ladder {
        let pod = policy_pod(scheduler, preemption);
        let traffic = mixed_traffic(5, 300, 500.0).with_clients(6);
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 300, "{scheduler:?} lost requests");
        for client in 0..6 {
            let mut own: Vec<_> = r
                .completions
                .iter()
                .filter(|c| c.client == client)
                .collect();
            own.sort_by_key(|c| c.id);
            for w in own.windows(2) {
                assert!(
                    w[1].dispatch >= w[0].dispatch,
                    "{scheduler:?} client {client}: {} (dispatch {}) overtook {} ({})",
                    w[1].id,
                    w[1].dispatch,
                    w[0].id,
                    w[0].dispatch
                );
            }
        }
    }
}

/// Preemption accounting: a preempted job's total billed service equals
/// its uninterrupted cost plus one checkpoint drain per preemption —
/// visible as all requests completing with energy and latency metrics
/// still internally consistent.
#[test]
fn preemption_keeps_reports_consistent() {
    let pod = PodConfig::homogeneous(1, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 })
        .with_preemption(PreemptionMode::TileBoundary)
        .with_shard_min_macs(None);
    let traffic = TrafficConfig::open_loop(21, 60, 150_000.0)
        .with_mix(WorkloadMix::new(vec![
            (RequestClass::Prefill, 0.2),
            (RequestClass::Decode, 0.8),
        ]))
        .with_slo(axon_serve::SloBudgets::serving_default().with_decode(70_000));
    let r = simulate_pod(&pod, &traffic);
    assert_eq!(r.metrics.completed, 60);
    assert!(r.metrics.preemptions > 0, "scenario should preempt");
    for c in &r.completions {
        assert!(c.completion > c.dispatch);
        assert!(c.dispatch >= c.arrival);
        assert!(c.array_energy_uj > 0.0);
    }
    // A preempted completion's service spans its suspension, so it is
    // strictly longer than any unpreempted completion of the same shape.
    assert!(r.completions.iter().any(|c| c.preemptions > 0));
}

//! Scheduling-policy guarantees: the EDF-vs-FIFO head-of-line
//! regression guard and bit-identical determinism for every policy.

use axon_core::runtime::Architecture;
use axon_core::GemmShape;
use axon_serve::{
    simulate_pod, simulate_pod_trace_with_policy, Batch, LatencySummary, MemoryModel, PodConfig,
    PreemptionMode, Request, RequestClass, SchedulerPolicy, SchedulingPolicy, ServingReport,
    TrafficConfig, WfqPolicy, WorkloadMix,
};
use axon_workloads::{GemmWorkload, WorkloadKind};
use std::collections::VecDeque;

fn policy_pod(scheduler: SchedulerPolicy, preemption: PreemptionMode) -> PodConfig {
    PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(scheduler)
        .with_preemption(preemption)
}

fn mixed_traffic(seed: u64, requests: usize, mean_interarrival: f64) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, mean_interarrival).with_mix(WorkloadMix::new(vec![
        (RequestClass::Decode, 0.80),
        (RequestClass::Prefill, 0.15),
        (RequestClass::Gemv, 0.05),
    ]))
}

/// Decode request ids that completed within their SLO deadline.
fn decode_slo_met(report: &ServingReport) -> Vec<usize> {
    report
        .completions
        .iter()
        .filter(|c| c.class == RequestClass::Decode && c.met_deadline())
        .map(|c| c.id)
        .collect()
}

/// The head-of-line regression guard: EDF never violates a decode SLO
/// that FIFO meets at the same load.
///
/// Two tiers, because strict per-request dominance is only guaranteed
/// while reordering is surgical: at light load (where EDF's only effect
/// is pulling tight-deadline decodes ahead of loose prefills) the set
/// of FIFO-met decode requests must be a *subset* of the EDF-met set,
/// request for request. Under pressure EDF may trade one late decode
/// for many rescued ones, so there the guard is on the aggregate: EDF's
/// decode-violation count may never exceed FIFO's at the same load.
#[test]
fn edf_never_violates_a_decode_slo_fifo_meets() {
    // Light load: per-request subset dominance.
    let traffic = mixed_traffic(77, 500, 8000.0);
    let fifo = simulate_pod(
        &policy_pod(SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        &traffic,
    );
    let edf = simulate_pod(
        &policy_pod(
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        &traffic,
    );
    let fifo_met = decode_slo_met(&fifo);
    let edf_met = decode_slo_met(&edf);
    let missing: Vec<usize> = fifo_met
        .iter()
        .copied()
        .filter(|id| !edf_met.contains(id))
        .collect();
    assert!(
        missing.is_empty(),
        "EDF violated decode SLOs FIFO met for request ids {missing:?} \
         ({} FIFO-met vs {} EDF-met)",
        fifo_met.len(),
        edf_met.len()
    );

    // Every load: aggregate dominance.
    for mean_interarrival in [8000.0, 4000.0, 2500.0] {
        let traffic = mixed_traffic(77, 500, mean_interarrival);
        let fifo = simulate_pod(
            &policy_pod(SchedulerPolicy::Fifo, PreemptionMode::Disabled),
            &traffic,
        );
        let edf = simulate_pod(
            &policy_pod(
                SchedulerPolicy::Edf { max_batch: 8 },
                PreemptionMode::Disabled,
            ),
            &traffic,
        );
        let fifo_met = decode_slo_met(&fifo).len();
        let edf_met = decode_slo_met(&edf).len();
        assert!(
            edf_met >= fifo_met,
            "at mean interarrival {mean_interarrival}: EDF met {edf_met} decode \
             SLOs but FIFO met {fifo_met}"
        );
    }
}

/// EDF's decode tail is no worse than FIFO's on the same traffic, and
/// strictly better at the load where prefills block the queue.
#[test]
fn edf_decode_p99_beats_fifo_under_blocking() {
    let traffic = mixed_traffic(77, 500, 2500.0);
    let fifo = simulate_pod(
        &policy_pod(SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        &traffic,
    );
    let edf = simulate_pod(
        &policy_pod(
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        &traffic,
    );
    let p99 = |r: &ServingReport| {
        r.metrics
            .class_metrics(RequestClass::Decode)
            .expect("decode traffic present")
            .total
            .p99
    };
    assert!(
        p99(&edf) < p99(&fifo),
        "edf decode p99 {} should beat fifo {}",
        p99(&edf),
        p99(&fifo)
    );
}

/// Same seed + same policy => bit-identical report, for every policy in
/// the ladder (preemption and continuous batching included).
#[test]
fn every_policy_is_deterministic() {
    let ladder: [(SchedulerPolicy, PreemptionMode); 6] = [
        (SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        (
            SchedulerPolicy::Batching { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Continuous { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Wfq { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
    ];
    for (scheduler, preemption) in ladder {
        let pod = policy_pod(scheduler, preemption);
        let traffic = mixed_traffic(31, 250, 1500.0);
        let a = simulate_pod(&pod, &traffic);
        let b = simulate_pod(&pod, &traffic);
        assert_eq!(a.trace, b.trace, "{scheduler:?} trace diverged");
        assert_eq!(
            a.completions, b.completions,
            "{scheduler:?} completions diverged"
        );
        assert_eq!(a.metrics, b.metrics, "{scheduler:?} metrics diverged");
    }
}

/// Every policy completes all requests and preserves per-client FIFO
/// dispatch order.
#[test]
fn every_policy_preserves_per_client_fifo() {
    let ladder: [(SchedulerPolicy, PreemptionMode); 4] = [
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Continuous { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Wfq { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
    ];
    for (scheduler, preemption) in ladder {
        let pod = policy_pod(scheduler, preemption);
        let traffic = mixed_traffic(5, 300, 500.0).with_clients(6);
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 300, "{scheduler:?} lost requests");
        for client in 0..6 {
            let mut own: Vec<_> = r
                .completions
                .iter()
                .filter(|c| c.client == client)
                .collect();
            own.sort_by_key(|c| c.id);
            for w in own.windows(2) {
                assert!(
                    w[1].dispatch >= w[0].dispatch,
                    "{scheduler:?} client {client}: {} (dispatch {}) overtook {} ({})",
                    w[1].id,
                    w[1].dispatch,
                    w[0].id,
                    w[0].dispatch
                );
            }
        }
    }
}

/// Preemption accounting: a preempted job's total billed service equals
/// its uninterrupted cost plus one checkpoint drain per preemption —
/// visible as all requests completing with energy and latency metrics
/// still internally consistent.
#[test]
fn preemption_keeps_reports_consistent() {
    let pod = PodConfig::homogeneous(1, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 })
        .with_preemption(PreemptionMode::TileBoundary)
        .with_shard_min_macs(None);
    let traffic = TrafficConfig::open_loop(21, 60, 150_000.0)
        .with_mix(WorkloadMix::new(vec![
            (RequestClass::Prefill, 0.2),
            (RequestClass::Decode, 0.8),
        ]))
        .with_slo(axon_serve::SloBudgets::serving_default().with_decode(70_000));
    let r = simulate_pod(&pod, &traffic);
    assert_eq!(r.metrics.completed, 60);
    assert!(r.metrics.preemptions > 0, "scenario should preempt");
    for c in &r.completions {
        assert!(c.completion > c.dispatch);
        assert!(c.dispatch >= c.arrival);
        assert!(c.array_energy_uj > 0.0);
    }
    // A preempted completion's service spans its suspension, so it is
    // strictly longer than any unpreempted completion of the same shape.
    assert!(r.completions.iter().any(|c| c.preemptions > 0));
}

/// WFQ billed on compute cycles alone — the pre-fix behavior, kept
/// here as the regression baseline for the fairness blind spot.
struct ComputeBilledWfq(WfqPolicy);

impl SchedulingPolicy for ComputeBilledWfq {
    fn name(&self) -> &'static str {
        "wfq-compute-billed"
    }
    fn next_batch(&mut self, queue: &mut VecDeque<Request>, now: u64) -> Option<Batch> {
        self.0.next_batch(queue, now)
    }
    fn on_dispatch(&mut self, batch: &Batch, service_cycles: u64) {
        self.0.on_dispatch(batch, service_cycles);
    }
    // on_complete deliberately NOT forwarded: memory stalls go unbilled.
}

fn tenant_request(id: usize, client: usize, shape: GemmShape, kind: WorkloadKind) -> Request {
    Request {
        id,
        client,
        class: if client == 0 {
            RequestClass::ResNet50
        } else {
            RequestClass::Gemv
        },
        workload: GemmWorkload {
            name: "tenant",
            shape,
            kind,
        },
        arrival: 0,
        deadline: u64::MAX / 2,
    }
}

/// Both tenants fully backlogged at cycle 0: client 0 is the
/// well-behaved compute-bound tenant (40 small GEMMs), client 1 a deep
/// queue of 200 `co_shape` jobs that outlasts the victim's work.
fn two_tenant_trace(co_shape: GemmShape, co_kind: WorkloadKind) -> Vec<Request> {
    let mut trace = Vec::new();
    for id in 0..40 {
        trace.push(tenant_request(
            id,
            0,
            GemmShape::new(256, 256, 256),
            WorkloadKind::Gemm,
        ));
    }
    for id in 40..240 {
        trace.push(tenant_request(id, 1, co_shape, co_kind));
    }
    trace
}

fn victim_p99(report: &ServingReport) -> u64 {
    let cycles: Vec<u64> = report
        .completions
        .iter()
        .filter(|c| c.client == 0)
        .map(|c| c.total_cycles())
        .collect();
    assert!(!cycles.is_empty(), "victim completed nothing");
    LatencySummary::from_cycles(cycles).p99
}

/// The WFQ fairness blind spot, closed: billing *contended* service
/// (compute + memory stalls) instead of compute cycles alone keeps a
/// well-behaved tenant's p99 bounded under a memory-hog co-tenant.
///
/// The hog issues weight-streaming GEMVs whose contended service runs
/// ~9x their compute cycles on the pod's single DRAM channel:
/// compute-only billing thinks they are cheap, keeps granting them
/// array time, and the victim's share of the pod collapses. Billing
/// the contended time charges the hog what it actually occupied.
#[test]
fn wfq_contended_billing_isolates_victim_from_memory_hog() {
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Wfq { max_batch: 1 })
        .with_memory(MemoryModel::Shared { channels: 1 })
        .with_shard_min_macs(None);
    let trace = two_tenant_trace(GemmShape::new(1, 2048, 2048), WorkloadKind::Gemv);

    let mut contended = WfqPolicy::new(1, &[1.0, 1.0]);
    let fixed = simulate_pod_trace_with_policy(&pod, &trace, &mut contended);
    let mut compute_only = ComputeBilledWfq(WfqPolicy::new(1, &[1.0, 1.0]));
    let blind = simulate_pod_trace_with_policy(&pod, &trace, &mut compute_only);

    assert_eq!(fixed.metrics.completed, trace.len());
    assert_eq!(blind.metrics.completed, trace.len());
    // The hog really does stall the pod.
    assert!(fixed.metrics.bandwidth_stall_cycles > 0);

    // Closing the blind spot must strictly improve the victim's tail.
    let (p99_fixed, p99_blind) = (victim_p99(&fixed), victim_p99(&blind));
    assert!(
        p99_fixed < p99_blind,
        "contended billing should cut the victim's p99: {p99_fixed} vs {p99_blind}"
    );

    // Isolation bound: against the hog, the victim's p99 stays within a
    // small constant of its p99 next to a *well-behaved* co-tenant (a
    // second compute-bound stream), instead of degrading unboundedly
    // with the hog's memory traffic.
    let benign = two_tenant_trace(GemmShape::new(256, 256, 256), WorkloadKind::Gemm);
    let mut wfq = WfqPolicy::new(1, &[1.0, 1.0]);
    let fair_share = simulate_pod_trace_with_policy(&pod, &benign, &mut wfq);
    let p99_benign = victim_p99(&fair_share);
    assert!(
        p99_fixed <= 2 * p99_benign,
        "victim p99 under the hog ({p99_fixed}) blew past 2x its \
         well-behaved-co-tenant p99 ({p99_benign})"
    );
}

//! Serving-layer guarantees: bit-identical determinism from `(seed,
//! config)` and per-client FIFO under the batching scheduler.

use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, PodConfig, SchedulerPolicy, SpotCheckConfig, TrafficConfig, WorkloadMix,
};
use proptest::prelude::*;

fn reference_pod() -> PodConfig {
    PodConfig::homogeneous(3, Architecture::Axon, 32).with_spot_check(SpotCheckConfig {
        max_macs: 1 << 21,
        every: 7,
    })
}

fn reference_traffic(seed: u64) -> TrafficConfig {
    TrafficConfig::open_loop(seed, 250, 1500.0).with_mix(WorkloadMix::decode_heavy())
}

#[test]
fn same_seed_same_config_is_bit_identical() {
    let pod = reference_pod();
    let traffic = reference_traffic(99);
    let a = simulate_pod(&pod, &traffic);
    let b = simulate_pod(&pod, &traffic);
    // The full request trace, every completion record, and all derived
    // metrics (p50/p99, energy, utilization) must match exactly — f64
    // fields included, since the arithmetic is identical.
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn different_seed_changes_the_trace() {
    let pod = reference_pod();
    let a = simulate_pod(&pod, &reference_traffic(1));
    let b = simulate_pod(&pod, &reference_traffic(2));
    assert_ne!(a.trace, b.trace);
}

#[test]
fn closed_loop_is_deterministic_too() {
    let pod = reference_pod();
    let traffic = TrafficConfig::closed_loop(31, 120, 12, 400);
    let a = simulate_pod(&pod, &traffic);
    let b = simulate_pod(&pod, &traffic);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn spot_checks_ran_and_matched() {
    let r = simulate_pod(&reference_pod(), &reference_traffic(7));
    assert!(r.metrics.spot_checks > 0);
    assert_eq!(r.metrics.spot_check_mismatches, 0);
}

/// Per-client FIFO: under the batching scheduler, a client's requests
/// are dispatched in issue order (a later request may share a batch
/// with — but never overtake — an earlier one).
fn assert_per_client_fifo(report: &axon_serve::ServingReport, clients: usize) {
    for client in 0..clients {
        let mut own: Vec<_> = report
            .completions
            .iter()
            .filter(|c| c.client == client)
            .collect();
        own.sort_by_key(|c| c.id);
        for w in own.windows(2) {
            assert!(
                w[1].dispatch >= w[0].dispatch,
                "client {client}: request {} (dispatch {}) overtook {} (dispatch {})",
                w[1].id,
                w[1].dispatch,
                w[0].id,
                w[0].dispatch
            );
        }
    }
}

#[test]
fn batching_preserves_per_client_fifo_decode_storm() {
    // A hot queue (fast arrivals, many clients) maximizes coalescing
    // opportunities and therefore reordering risk.
    let pod = PodConfig::homogeneous(2, Architecture::Axon, 32)
        .with_scheduler(SchedulerPolicy::Batching { max_batch: 16 });
    let traffic = TrafficConfig::open_loop(5, 400, 20.0)
        .with_mix(WorkloadMix::decode_heavy())
        .with_clients(6);
    let r = simulate_pod(&pod, &traffic);
    assert!(r.metrics.mean_batch_size > 1.2, "storm should batch");
    assert_per_client_fifo(&r, 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batching_preserves_per_client_fifo_random_traffic(
        seed in 0u64..1000,
        clients in 1usize..10,
        mean in 10.0f64..5000.0,
        max_batch in 2usize..20,
    ) {
        let pod = PodConfig::homogeneous(2, Architecture::Axon, 32)
            .with_scheduler(SchedulerPolicy::Batching { max_batch });
        let traffic = TrafficConfig::open_loop(seed, 120, mean)
            .with_mix(WorkloadMix::balanced())
            .with_clients(clients);
        let r = simulate_pod(&pod, &traffic);
        prop_assert_eq!(r.metrics.completed, 120);
        assert_per_client_fifo(&r, clients);
    }
}

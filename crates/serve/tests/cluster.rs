//! Cluster-scope re-pins of the single-pod invariants: bit determinism
//! per router, fleet-wide per-client FIFO, single-pod equivalence,
//! failure injection without loss or double-completion, autoscale
//! warm-up billing, and declaration-order invariance of the
//! order-insensitive routers.

use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_cluster, simulate_pod, AutoscaleConfig, ClusterConfig, ClusterPodConfig, PodConfig,
    PodRole, RouterPolicy, ServeRng, TrafficConfig, WorkloadMix,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A deliberately lopsided fleet: mixed array counts, mixed
/// architectures, mixed array sizes, and disaggregation roles.
fn hetero_fleet() -> Vec<ClusterPodConfig> {
    vec![
        ClusterPodConfig::new(PodConfig::homogeneous(4, Architecture::Axon, 32))
            .with_role(PodRole::Decode),
        ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Conventional, 32))
            .with_role(PodRole::Prefill),
        ClusterPodConfig::new(PodConfig::homogeneous(3, Architecture::Axon, 64)),
    ]
}

fn mixed_traffic(seed: u64, requests: usize, mean: f64) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, mean)
        .with_mix(WorkloadMix::balanced())
        .with_clients(8)
}

#[test]
fn every_router_is_bit_deterministic() {
    let traffic = mixed_traffic(42, 150, 800.0);
    for router in RouterPolicy::ALL {
        let cluster = ClusterConfig::new(hetero_fleet(), router);
        let a = simulate_cluster(&cluster, &traffic);
        let b = simulate_cluster(&cluster, &traffic);
        // The full report — per-pod traces, every completion record,
        // and all derived metrics, f64 fields included — must match
        // exactly across identical runs.
        assert_eq!(a, b, "{} is not bit-deterministic", router.name());
        assert_eq!(a.metrics.completed, 150, "{} lost requests", router.name());
    }
}

/// Sticky session affinity lifts the pod-level per-client FIFO
/// invariant to the fleet: within a client (or within a `(client,
/// class)` pair for the class-scoped specialist routers, which reorder
/// across classes by design), dispatch order follows issue order.
#[test]
fn fleet_preserves_per_client_fifo() {
    let traffic = mixed_traffic(17, 250, 120.0);
    for router in RouterPolicy::ALL {
        let cluster = ClusterConfig::new(hetero_fleet(), router);
        let class_scoped = router.build(0).class_scoped();
        let r = simulate_cluster(&cluster, &traffic);
        assert_eq!(r.metrics.completed, 250);
        let mut by_group: BTreeMap<(usize, String), Vec<(usize, u64)>> = BTreeMap::new();
        for c in &r.completions {
            let scope = if class_scoped {
                format!("{:?}", c.completion.class)
            } else {
                String::new()
            };
            by_group
                .entry((c.completion.client, scope))
                .or_default()
                .push((c.completion.id, c.completion.dispatch));
        }
        for ((client, scope), mut reqs) in by_group {
            reqs.sort_unstable();
            for w in reqs.windows(2) {
                assert!(
                    w[1].1 >= w[0].1,
                    "{}: client {client} {scope}: request {} (dispatch {}) \
                     overtook {} (dispatch {})",
                    router.name(),
                    w[1].0,
                    w[1].1,
                    w[0].0,
                    w[0].1
                );
            }
        }
    }
}

/// The cluster layer collapses exactly onto the single-pod simulator:
/// a 1-pod fleet is bit-identical to `simulate_pod` under every router
/// (with one pod, every router is the trivial router).
#[test]
fn one_pod_cluster_matches_simulate_pod_bit_for_bit() {
    let pod = PodConfig::homogeneous(3, Architecture::Axon, 32);
    let traffic = mixed_traffic(99, 200, 600.0);
    let single = simulate_pod(&pod, &traffic);
    for router in RouterPolicy::ALL {
        let cluster = ClusterConfig::new(vec![ClusterPodConfig::new(pod.clone())], router);
        let r = simulate_cluster(&cluster, &traffic);
        assert_eq!(r.per_pod.len(), 1);
        assert_eq!(r.per_pod[0].trace, single.trace, "{}", router.name());
        assert_eq!(
            r.per_pod[0].completions,
            single.completions,
            "{}",
            router.name()
        );
        assert_eq!(r.per_pod[0].metrics, single.metrics, "{}", router.name());
        assert_eq!(r.metrics.completed, single.metrics.completed);
        assert_eq!(r.metrics.makespan_cycles, single.metrics.makespan_cycles);
    }
}

/// Kill a pod mid-run: its survivors stand, its unfinished work is
/// re-routed, and the fleet neither loses nor double-completes a
/// single request. The fleet metrics decompose exactly over the pods.
#[test]
fn pod_failure_reroutes_without_loss_or_duplication() {
    let requests = 200;
    let mut pods = hetero_fleet();
    let fail_at = 40_000;
    pods[1] = pods[1].clone().with_fail_at(fail_at);
    let cluster = ClusterConfig::new(pods, RouterPolicy::JoinShortestQueue);
    let r = simulate_cluster(&cluster, &mixed_traffic(7, requests, 400.0));

    assert_eq!(r.metrics.failed_pods, 1);
    assert!(r.metrics.rerouted > 0, "the dead pod had no queued work");

    // No request lost, none double-completed.
    let ids: Vec<usize> = r.completions.iter().map(|c| c.completion.id).collect();
    let unique: BTreeSet<usize> = ids.iter().copied().collect();
    assert_eq!(
        ids.len(),
        requests,
        "lost {} requests",
        requests - ids.len()
    );
    assert_eq!(unique.len(), ids.len(), "double-completed a request");
    assert_eq!(unique, (0..requests).collect::<BTreeSet<_>>());

    // The dead pod stopped at the failure edge; its survivors are
    // exactly the completions it finished by then.
    for c in &r.per_pod[1].completions {
        assert!(c.completion <= fail_at, "completion after the failure");
    }

    // Fleet metrics decompose exactly over the pods.
    let pod_sum: usize = r.metrics.per_pod.iter().map(|m| m.completed).sum();
    assert_eq!(pod_sum, r.metrics.completed);
    let routed: usize = r.metrics.routed_per_pod.iter().sum();
    assert_eq!(routed, requests + r.metrics.rerouted);
    let array_uj: f64 = r.metrics.per_pod.iter().map(|m| m.array_energy_uj).sum();
    assert!((array_uj - r.metrics.array_energy_uj).abs() < 1e-9);
}

#[test]
fn autoscale_activates_under_load_and_bills_warmup() {
    let warmup = 25_000;
    let auto = AutoscaleConfig::new(1, 3, 1, warmup);
    let fleet: Vec<ClusterPodConfig> = (0..3)
        .map(|_| ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Axon, 32)))
        .collect();

    // Heavy load: the single initial pod saturates, spares come online.
    let cluster =
        ClusterConfig::new(fleet.clone(), RouterPolicy::JoinShortestQueue).with_autoscale(auto);
    let heavy = simulate_cluster(&cluster, &mixed_traffic(3, 200, 150.0));
    assert!(heavy.metrics.scale_ups > 0, "heavy load never scaled up");
    assert_eq!(heavy.metrics.completed, 200);
    // Warm-up is billed through the clock: nothing dispatches on an
    // autoscaled pod before its ready edge.
    for (i, report) in heavy.per_pod.iter().enumerate() {
        for c in &report.completions {
            assert!(
                c.dispatch >= heavy.ready_at[i],
                "pod {i} dispatched at {} before its ready edge {}",
                c.dispatch,
                heavy.ready_at[i]
            );
        }
    }

    // Light load (slow decode trickle): the initial pod suffices, the
    // spares never activate.
    let trickle = TrafficConfig::open_loop(3, 60, 150_000.0)
        .with_mix(WorkloadMix::decode_heavy())
        .with_clients(8);
    let light = simulate_cluster(&cluster, &trickle);
    assert_eq!(light.metrics.scale_ups, 0, "light load scaled up");
    assert_eq!(light.metrics.routed_per_pod[1], 0);
    assert_eq!(light.metrics.routed_per_pod[2], 0);
    assert_eq!(light.metrics.completed, 60);
}

/// Fisher–Yates permutation of `0..n` drawn from a seeded generator.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = ServeRng::new(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Declaration order is presentation, not behavior: for the
    /// order-insensitive routers, shuffling the fleet's pod list leaves
    /// the completion count and every request's timing untouched.
    /// (Round-robin is excluded by construction — it deals in
    /// declaration order on purpose.)
    #[test]
    fn routing_is_invariant_under_pod_declaration_order(
        seed in 0u64..500,
        perm_seed in 0u64..10_000,
        mean in 200.0f64..2000.0,
    ) {
        // Two identical pods (indices 0 and 3) make the permutation
        // exercise the symmetric-pod case, not just relabeling.
        let mut base = hetero_fleet();
        base.push(base[0].clone());
        let traffic = mixed_traffic(seed, 120, mean);
        let perm = permutation(base.len(), perm_seed);
        let shuffled: Vec<ClusterPodConfig> =
            perm.iter().map(|&i| base[i].clone()).collect();

        for router in [RouterPolicy::JoinShortestQueue, RouterPolicy::PowerOfTwoChoices] {
            let a = simulate_cluster(&ClusterConfig::new(base.clone(), router), &traffic);
            let b = simulate_cluster(&ClusterConfig::new(shuffled.clone(), router), &traffic);
            prop_assert_eq!(a.metrics.completed, b.metrics.completed);
            let timing = |r: &axon_serve::ClusterReport| -> BTreeMap<usize, (u64, u64)> {
                r.completions
                    .iter()
                    .map(|c| (c.completion.id, (c.completion.dispatch, c.completion.completion)))
                    .collect()
            };
            prop_assert_eq!(timing(&a), timing(&b));
        }
    }
}

//! Shared-DRAM contention guarantees: the scheduling-policy invariants
//! of `tests/policies.rs` re-pinned with the contended memory model
//! enabled, plus the contention-specific ones — bit determinism,
//! channel monotonicity, and exact equivalence to private bandwidth
//! when nothing shares.

use axon_core::runtime::Architecture;
use axon_serve::{
    simulate_pod, MemoryModel, PodConfig, PreemptionMode, RequestClass, SchedulerPolicy,
    ServingReport, TrafficConfig, WorkloadMix,
};

/// Two channels on a four-array pod: every saturated instant contends.
const CONTENDED: MemoryModel = MemoryModel::Shared { channels: 2 };

fn contended_pod(scheduler: SchedulerPolicy, preemption: PreemptionMode) -> PodConfig {
    PodConfig::homogeneous(4, Architecture::Axon, 64)
        .with_scheduler(scheduler)
        .with_preemption(preemption)
        .with_memory(CONTENDED)
}

fn mixed_traffic(seed: u64, requests: usize, mean_interarrival: f64) -> TrafficConfig {
    TrafficConfig::open_loop(seed, requests, mean_interarrival).with_mix(WorkloadMix::new(vec![
        (RequestClass::Decode, 0.80),
        (RequestClass::Prefill, 0.15),
        (RequestClass::Gemv, 0.05),
    ]))
}

fn all_policies() -> Vec<(SchedulerPolicy, PreemptionMode)> {
    vec![
        (SchedulerPolicy::Fifo, PreemptionMode::Disabled),
        (
            SchedulerPolicy::Batching { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
        (
            SchedulerPolicy::Edf { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Continuous { max_batch: 8 },
            PreemptionMode::TileBoundary,
        ),
        (
            SchedulerPolicy::Wfq { max_batch: 8 },
            PreemptionMode::Disabled,
        ),
    ]
}

/// Every policy stays bit-deterministic with contention enabled: the
/// same `(pod, traffic)` pair produces the identical report.
#[test]
fn every_policy_is_bit_deterministic_under_contention() {
    let traffic = mixed_traffic(909, 300, 900.0);
    for (scheduler, preemption) in all_policies() {
        let pod = contended_pod(scheduler, preemption);
        let a = simulate_pod(&pod, &traffic);
        let b = simulate_pod(&pod, &traffic);
        assert_eq!(a.trace, b.trace, "{scheduler:?}");
        assert_eq!(a.completions, b.completions, "{scheduler:?}");
        assert_eq!(a.metrics, b.metrics, "{scheduler:?}");
        assert_eq!(a.metrics.completed, 300, "{scheduler:?}");
    }
}

/// Per-client FIFO survives contention: under every policy, a client's
/// own requests are dispatched in arrival (= id) order even as the
/// shared-DRAM retiming reshuffles completion edges.
#[test]
fn per_client_fifo_holds_under_contention() {
    let traffic = mixed_traffic(4242, 400, 700.0).with_clients(5);
    for (scheduler, preemption) in all_policies() {
        let r = simulate_pod(&contended_pod(scheduler, preemption), &traffic);
        for client in 0..5 {
            let mut cs: Vec<_> = r
                .completions
                .iter()
                .filter(|c| c.client == client)
                .collect();
            cs.sort_by_key(|c| c.id);
            for w in cs.windows(2) {
                assert!(
                    w[1].dispatch >= w[0].dispatch,
                    "{scheduler:?}: client {client} reordered: \
                     #{} dispatched {} before #{} at {}",
                    w[1].id,
                    w[1].dispatch,
                    w[0].id,
                    w[0].dispatch
                );
            }
        }
    }
}

/// Decode request ids that completed within their SLO deadline.
fn decode_slo_met(report: &ServingReport) -> Vec<usize> {
    report
        .completions
        .iter()
        .filter(|c| c.class == RequestClass::Decode && c.met_deadline())
        .map(|c| c.id)
        .collect()
}

/// The EDF-vs-FIFO decode-SLO guard, re-pinned under contention: at
/// every swept load, EDF meets at least as many decode SLOs as FIFO on
/// the identical contended pod.
#[test]
fn edf_never_meets_fewer_decode_slos_than_fifo_under_contention() {
    for mean_interarrival in [8000.0, 4000.0, 2500.0] {
        let traffic = mixed_traffic(77, 500, mean_interarrival);
        let fifo = simulate_pod(
            &contended_pod(SchedulerPolicy::Fifo, PreemptionMode::Disabled),
            &traffic,
        );
        let edf = simulate_pod(
            &contended_pod(
                SchedulerPolicy::Edf { max_batch: 8 },
                PreemptionMode::Disabled,
            ),
            &traffic,
        );
        let fifo_met = decode_slo_met(&fifo).len();
        let edf_met = decode_slo_met(&edf).len();
        assert!(
            edf_met >= fifo_met,
            "at mean interarrival {mean_interarrival} under contention: \
             EDF met {edf_met} decode SLOs but FIFO met {fifo_met}"
        );
    }
}

/// Nothing-shares equivalence, end to end: with `channels >= arrays`
/// every array holds a private channel, so any such channel count —
/// including absurdly large ones — produces the bit-identical report.
#[test]
fn private_channels_match_regardless_of_surplus() {
    let traffic = mixed_traffic(31, 250, 1200.0);
    let run = |channels: usize| {
        simulate_pod(
            &PodConfig::homogeneous(4, Architecture::Axon, 64)
                .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
                .with_preemption(PreemptionMode::TileBoundary)
                .with_memory(MemoryModel::Shared { channels }),
            &traffic,
        )
    };
    let base = run(4);
    for channels in [5, 16, usize::MAX / 2] {
        let r = run(channels);
        assert_eq!(r.completions, base.completions, "channels {channels}");
        assert_eq!(r.metrics, base.metrics, "channels {channels}");
    }
}

/// Shrinking the channel count never improves the tail: p99 service
/// latency is monotone non-increasing in channels at fixed load.
#[test]
fn channel_count_is_monotone_in_service_tail() {
    let traffic = mixed_traffic(55, 300, 700.0);
    let mut last = u64::MAX;
    for channels in [1usize, 2, 4] {
        let r = simulate_pod(
            &PodConfig::homogeneous(4, Architecture::Axon, 64)
                .with_memory(MemoryModel::Shared { channels }),
            &traffic,
        );
        assert_eq!(r.metrics.completed, 300);
        assert!(
            r.metrics.service.p99 <= last,
            "{channels} channels: service p99 {} > {last}",
            r.metrics.service.p99
        );
        last = r.metrics.service.p99;
    }
}

/// Contention only ever delays completions relative to the
/// unconstrained billing: per request, the contended completion time is
/// never earlier than the compute-only one on the same FIFO schedule.
#[test]
fn contended_completions_never_beat_compute_only_billing() {
    // FIFO, no sharding: both runs make identical dispatch decisions in
    // identical order at light load, so per-request comparison is fair.
    let traffic = mixed_traffic(7, 150, 20_000.0);
    let base = PodConfig::homogeneous(2, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Fifo)
        .with_shard_min_macs(None);
    let unconstrained = simulate_pod(&base, &traffic);
    let contended = simulate_pod(
        &base
            .clone()
            .with_memory(MemoryModel::Shared { channels: 1 }),
        &traffic,
    );
    assert_eq!(unconstrained.metrics.completed, contended.metrics.completed);
    let mut by_id: Vec<_> = contended.completions.clone();
    by_id.sort_by_key(|c| c.id);
    let mut base_by_id: Vec<_> = unconstrained.completions.clone();
    base_by_id.sort_by_key(|c| c.id);
    for (c, u) in by_id.iter().zip(&base_by_id) {
        assert_eq!(c.id, u.id);
        assert!(
            c.completion >= u.completion,
            "request {} finished at {} contended but {} unconstrained",
            c.id,
            c.completion,
            u.completion
        );
    }
}

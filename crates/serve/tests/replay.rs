//! The `axon-trace-v1` format contract, pinned end to end.
//!
//! Round trip: a generated arrival trace, serialized with
//! [`write_trace`] and parsed back with [`parse_trace`], must drive a
//! **bit-identical** run — same [`ServingReport`], same recorded event
//! stream — as simulating the generated trace directly. And the
//! rejection table pins the *exact* error message for every malformed
//! input the parser documents, so the format's failure modes are API,
//! not incidental strings.

use axon_core::runtime::Architecture;
use axon_serve::{
    parse_trace, simulate_pod_traced, write_trace, ArrivalProcess, MemoryModel, MmppState,
    PodConfig, RecordingSink, RequestGenerator, SchedulerPolicy, TraceEvent, TrafficConfig,
    WorkloadMix, TRACE_SCHEMA,
};

fn replay_pod() -> PodConfig {
    PodConfig::homogeneous(4, Architecture::Axon, 64)
        .with_scheduler(SchedulerPolicy::Edf { max_batch: 4 })
        .with_memory(MemoryModel::Shared { channels: 2 })
}

/// Round trip on a bursty source: generate -> serialize -> parse ->
/// replay, asserting the replayed run is bit-identical to the
/// generated one.
#[test]
fn replayed_file_drives_a_bit_identical_run() {
    let source = TrafficConfig {
        arrival: ArrivalProcess::MarkovModulatedPoisson {
            states: vec![
                MmppState {
                    mean_interarrival: 90.0,
                    mean_dwell: 12_000.0,
                },
                MmppState {
                    mean_interarrival: 1_100.0,
                    mean_dwell: 25_000.0,
                },
            ],
        },
        ..TrafficConfig::open_loop(613, 80, 300.0)
    }
    .with_mix(WorkloadMix::balanced())
    .with_clients(4);
    let pod = replay_pod();

    let mut direct_sink = RecordingSink::default();
    let direct = simulate_pod_traced(&pod, &source, &mut direct_sink);

    // Serialize the same trace the direct run consumed.
    let trace = RequestGenerator::new(&source)
        .arrival_trace(&source.arrival, source.num_clients)
        .expect("trace-driven");
    let text = write_trace(&trace);
    assert!(text.starts_with(TRACE_SCHEMA), "file carries the header");
    let entries = parse_trace(&text).expect("own output parses");
    assert_eq!(entries.len(), trace.len());

    // Replay it. `num_clients` is pinned to the source's so the two
    // configs describe the same client population even if a tail
    // client drew no requests.
    let replay = TrafficConfig {
        num_clients: source.num_clients,
        ..TrafficConfig::trace_replay(613, entries)
    };
    let mut replay_sink = RecordingSink::default();
    let replayed = simulate_pod_traced(&pod, &replay, &mut replay_sink);

    assert_eq!(direct, replayed, "reports diverged across the round trip");
    assert_eq!(
        direct_sink.events, replay_sink.events,
        "event streams diverged across the round trip"
    );
    // Sanity: the run did real work.
    assert_eq!(direct.metrics.completed, 80);
    assert!(direct_sink
        .events
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::Completed { .. })));
}

/// A replayed file is self-describing: volume and client count come
/// from the entries.
#[test]
fn replay_config_is_inferred_from_the_file() {
    let text =
        format!("{TRACE_SCHEMA}\n10 decode 0 500 xf_decode_qkv\n20 decode 2 900 xf_decode_qkv\n");
    let entries = parse_trace(&text).unwrap();
    let cfg = TrafficConfig::trace_replay(1, entries);
    assert_eq!(cfg.num_requests, 2);
    assert_eq!(cfg.num_clients, 3, "max client index + 1");
}

/// The rejection table: one malformed file per documented failure
/// mode, each pinned to its exact error message.
#[test]
fn malformed_files_are_rejected_with_exact_messages() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "wrong header",
            "axon-trace-v2\n10 decode 0 500 xf_decode_qkv\n",
            "line 1: bad header `axon-trace-v2` (expected `axon-trace-v1`)",
        ),
        (
            "missing header",
            "# nothing but comments\n\n",
            "missing header: expected `axon-trace-v1`",
        ),
        (
            "truncated line",
            "axon-trace-v1\n10 decode 0 500\n",
            "line 2: truncated line (want `<arrival> <class> <client> <deadline> <workload>`)",
        ),
        (
            "missing workload name",
            "axon-trace-v1\n10 decode 0 500   \n",
            "line 2: truncated line (want `<arrival> <class> <client> <deadline> <workload>`)",
        ),
        (
            "bad arrival",
            "axon-trace-v1\nten decode 0 500 xf_decode_qkv\n",
            "line 2: invalid number `ten` for <arrival>",
        ),
        (
            "bad client",
            "axon-trace-v1\n10 decode -1 500 xf_decode_qkv\n",
            "line 2: invalid number `-1` for <client>",
        ),
        (
            "bad deadline",
            "axon-trace-v1\n10 decode 0 5.5 xf_decode_qkv\n",
            "line 2: invalid number `5.5` for <deadline>",
        ),
        (
            "unknown class",
            "axon-trace-v1\n10 embedding 0 500 xf_decode_qkv\n",
            "line 2: unknown class `embedding`",
        ),
        (
            "unknown workload",
            "axon-trace-v1\n10 decode 0 500 xf_decode_qkv_v2\n",
            "line 2: unknown workload `xf_decode_qkv_v2` for class `decode`",
        ),
        (
            "non-monotone arrival",
            "axon-trace-v1\n20 decode 0 500 xf_decode_qkv\n10 decode 0 500 xf_decode_qkv\n",
            "line 3: non-monotone arrival 10 after 20",
        ),
    ];
    for (label, text, want) in cases {
        let got = parse_trace(text).expect_err(label);
        assert_eq!(&got, want, "{label}: message drifted");
    }
    // Line numbers count raw lines, comments and blanks included.
    let text = format!("# c\n\n{TRACE_SCHEMA}\n# c\n10 decode 0 500 nope\n");
    assert_eq!(
        parse_trace(&text).unwrap_err(),
        "line 5: unknown workload `nope` for class `decode`"
    );
}

//! # axon-serve
//!
//! Request-level inference serving on simulated accelerator pods — the
//! layer that turns the kernel simulator into a traffic simulator.
//!
//! The paper argues Axon's halved operand-fill latency (`2R-2 -> R-1`)
//! matters most for short, latency-bound kernels: the GEMV-decode and
//! small-GEMM shapes that dominate real serving traffic. This crate
//! quantifies that claim end to end:
//!
//! * [`RequestGenerator`] draws a deterministic, seeded request stream
//!   from the `axon-workloads` definitions (transformer prefill/decode,
//!   ResNet-50 and YOLOv3 conv-GEMMs, Fig. 14 GEMVs) under open-loop
//!   (Poisson-like) or closed-loop arrival processes;
//! * [`SchedulerPolicy`] configures the queue discipline — FIFO, GEMV
//!   coalescing, earliest-deadline-first over per-request SLO classes,
//!   vLLM-style continuous batching, or per-client weighted fair
//!   queueing — all implementations of the [`SchedulingPolicy`] trait,
//!   and all preserving per-client FIFO order (see
//!   `docs/scheduling.md` for the policy guide);
//! * [`simulate_pod`] runs the stream through a pod of `n` arrays
//!   (Conventional or Axon, mixed allowed), billing each dispatch with
//!   the analytical [`RuntimeSpec`](axon_core::runtime::RuntimeSpec)
//!   model (exact-edge accounting), optionally sharding large kernels
//!   across idle arrays via the scale-out partitioner, checkpointing
//!   running jobs at tile boundaries for urgent work
//!   ([`PreemptionMode::TileBoundary`]), admitting late decode GEMVs
//!   into in-flight batches ([`SchedulerPolicy::Continuous`]), and
//!   spot-checking billed latencies cycle-for-cycle against
//!   [`axon_sim::simulate_gemm`];
//! * [`MemoryModel`] selects how service time couples to the memory
//!   system: the default compute-only billing, or a shared-DRAM pod
//!   ([`axon_mem::SharedDram`]) whose channels are fair-share sliced
//!   across co-running jobs so scale-out pays an honest bandwidth
//!   penalty (see `docs/memory.md`);
//! * [`PodMetrics`] reports throughput, p50/p95/p99 queueing + service
//!   latency, per-array utilization and per-request energy (array power
//!   from `axon-hw`, DRAM transfer energy from `axon-mem`, checkpoint
//!   spill/refill traffic included);
//! * [`simulate_cluster`] lifts all of the above to a fleet of
//!   heterogeneous pods behind a pluggable router ([`RouterPolicy`]:
//!   round-robin, random, join-shortest-queue, power-of-two-choices,
//!   SLO-class-aware, prefill/decode disaggregation), with
//!   deterministic autoscaling ([`AutoscaleConfig`]), failure
//!   injection, and fleet-wide [`ClusterMetrics`] — every single-pod
//!   invariant re-pinned at cluster scope (see `docs/cluster.md`).
//!
//! ## Example
//!
//! ```
//! use axon_core::runtime::Architecture;
//! use axon_serve::{
//!     simulate_pod, PodConfig, RequestClass, SchedulerPolicy, TrafficConfig, WorkloadMix,
//! };
//!
//! // Identical decode-heavy traffic into two 4-array pods, FIFO so the
//! // runs are dispatch-for-dispatch comparable.
//! let traffic = TrafficConfig::open_loop(42, 200, 3000.0)
//!     .with_mix(WorkloadMix::single(RequestClass::Decode));
//! let fifo = SchedulerPolicy::Fifo;
//! let sa = PodConfig::homogeneous(4, Architecture::Conventional, 64).with_scheduler(fifo);
//! let ax = PodConfig::homogeneous(4, Architecture::Axon, 64).with_scheduler(fifo);
//! let (sa, ax) = (simulate_pod(&sa, &traffic), simulate_pod(&ax, &traffic));
//!
//! // Axon's halved fill latency shows up as lower end-to-end latency.
//! assert!(ax.metrics.total.p50 <= sa.metrics.total.p50);
//! assert!(ax.metrics.makespan_cycles <= sa.metrics.makespan_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod cluster;
mod generator;
mod metrics;
mod pod;
#[cfg(any(test, feature = "reference-engine"))]
#[doc(hidden)]
pub mod reference;
mod replay;
mod request;
mod rng;
mod router;
mod scheduler;
mod trace;

pub use cluster::{
    simulate_cluster, simulate_cluster_traced, AutoscaleConfig, ClusterCompletion, ClusterConfig,
    ClusterMetrics, ClusterPodConfig, ClusterReport,
};
pub use generator::{
    ArrivalProcess, MmppState, RateSegment, RateWindow, RequestGenerator, SpikeWindow,
    TrafficConfig, WorkloadMix,
};
pub use metrics::{percentile, ClassMetrics, Completion, LatencySummary, PodMetrics, ShedRecord};
pub use pod::{
    service_cycles, simulate_pod, simulate_pod_trace, simulate_pod_trace_traced,
    simulate_pod_trace_with_policy, simulate_pod_traced, simulate_pod_with_policy, ArrayConfig,
    MappingPolicy, MemoryModel, PodConfig, PreemptionMode, ServingReport, ShardPlanner,
    SpotCheckConfig,
};
pub use replay::{parse_trace, write_trace, ReplayEntry, TRACE_SCHEMA};
pub use request::{
    batch_key_of, coalesced_shape, serving_transformer, BatchAxis, BatchKey, Request, RequestClass,
    SloBudgets,
};
pub use rng::ServeRng;
pub use router::{
    DisaggregatedRouter, JsqRouter, PodRole, PodView, PowerOfTwoRouter, RandomRouter,
    RoundRobinRouter, RouterPolicy, RoutingPolicy, SloAwareRouter,
};
pub use scheduler::{
    AdmissionOutlook, AdmissionPolicy, Batch, CoalescingPolicy, EdfPolicy, FifoPolicy,
    SchedulerPolicy, SchedulingPolicy, ShedReason, WfqPolicy,
};
pub use trace::{
    check_conservation, chrome_trace_json, AggregatingSink, Histogram, NullSink, ProfileReport,
    RecordingSink, RequestOutcome, SimProfile, TraceEvent, TraceSink,
};

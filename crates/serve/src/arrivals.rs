//! Bucketed (calendar-queue) arrival structure for the pod event loop.
//!
//! The fast engine admits arrivals in exact `(arrival, id)` order — the
//! canonical key the frozen reference engine pops its `BinaryHeap` by —
//! so any replacement must reproduce that order bit-for-bit, not merely
//! a stable arrival order. [`ArrivalCalendar`] does, while turning the
//! common operations O(1):
//!
//! * **peek** (the event loop reads the next arrival edge every
//!   iteration to advance the clock) answers from a cached exact
//!   minimum;
//! * **push** appends to a ring slot and updates the cached minimum by
//!   one key comparison;
//! * **pop** removes the cached minimum and re-scans forward from the
//!   current day — the cursor only ever advances (the simulation clock
//!   is monotone and every push carries `arrival ≥ now`, including
//!   closed-loop reissues, whose issuing job finalizes at `end = now`),
//!   so the scan cost telescopes into the total day span plus one slot
//!   per pop.
//!
//! Arrivals beyond the ring's day window live in an overflow
//! `BTreeMap` keyed by the canonical key and migrate into the ring as
//! the cursor advances. The ring window is exactly `slots.len()` days
//! wide, so a slot never holds two distinct days at once and the
//! first non-empty slot in a forward window scan is the minimum day.

use crate::request::Request;
use std::collections::BTreeMap;

/// Exact-ordered bucketed arrival queue: pops strictly by
/// `(arrival, id)`.
#[derive(Debug)]
pub(crate) struct ArrivalCalendar {
    /// Bucket width in cycles; a "day" is `arrival / width`.
    width: u64,
    /// Ring of unsorted buckets; slot `d % slots.len()` holds day `d`
    /// of the current window `[day, day + slots.len())`.
    slots: Vec<Vec<Request>>,
    /// Day of the cached minimum — the window's lower edge. Every
    /// queued entry's day is `≥ day` (keys only arrive at or after the
    /// current minimum).
    day: u64,
    /// The exact minimum: `(arrival, id, slot, index)`. `None` iff the
    /// queue is empty. A push never moves other entries in a slot and a
    /// pop `swap_remove`s only the minimum itself, so the cached index
    /// stays valid between recomputes.
    min: Option<(u64, usize, usize, usize)>,
    /// Entries beyond the ring window, exact-ordered by key.
    overflow: BTreeMap<(u64, usize), Request>,
    len: usize,
}

impl ArrivalCalendar {
    /// Builds the calendar sized for `trace` (the seeded arrivals) and
    /// pushes every request. Width targets one request per day over the
    /// seeded span; later (closed-loop) pushes beyond the window fall
    /// into the overflow map and migrate in as the cursor advances.
    pub(crate) fn seed(trace: &[Request]) -> Self {
        let n = trace.len().max(1);
        let span = trace.iter().map(|r| r.arrival).max().unwrap_or(0) + 1;
        let width = (span / n as u64).max(1);
        let nslots = n.next_power_of_two().min(1 << 16);
        let mut cal = ArrivalCalendar {
            width,
            slots: vec![Vec::new(); nslots],
            day: 0,
            min: None,
            overflow: BTreeMap::new(),
            len: 0,
        };
        // Seed in canonical order: `push` requires days to never move
        // below the window anchor (generator traces arrive unsorted).
        let mut sorted: Vec<Request> = trace.to_vec();
        sorted.sort_unstable_by_key(|r| (r.arrival, r.id));
        for r in sorted {
            cal.push(r);
        }
        cal
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arrival cycle of the exact `(arrival, id)` minimum, O(1).
    pub(crate) fn peek_arrival(&self) -> Option<u64> {
        self.min.map(|(a, ..)| a)
    }

    /// Inserts `r`. Requires `r.arrival`'s day at or after the window
    /// anchor (the current minimum's day): the pod loop only pushes
    /// reissues with `arrival ≥ now`, and [`seed`](Self::seed) inserts
    /// in canonical order.
    pub(crate) fn push(&mut self, r: Request) {
        let d = r.arrival / self.width;
        self.len += 1;
        if self.len == 1 {
            // Empty queue: re-anchor the window at the newcomer.
            self.day = d;
        }
        debug_assert!(d >= self.day, "push below the calendar window");
        let b = self.slots.len() as u64;
        if d >= self.day + b {
            // Beyond the window. The cached minimum (if any) is at day
            // `self.day < d`, so it cannot change.
            self.overflow.insert((r.arrival, r.id), r);
            return;
        }
        let s = (d % b) as usize;
        self.slots[s].push(r);
        if self
            .min
            .is_none_or(|(a, id, ..)| (r.arrival, r.id) < (a, id))
        {
            self.min = Some((r.arrival, r.id, s, self.slots[s].len() - 1));
        }
    }

    /// Removes and returns the exact `(arrival, id)` minimum.
    pub(crate) fn pop(&mut self) -> Option<Request> {
        let (_, _, s, i) = self.min?;
        let r = self.slots[s].swap_remove(i);
        self.len -= 1;
        self.recompute_min();
        Some(r)
    }

    /// Re-derives the cached minimum after a pop: scan the window
    /// forward from the current day to the first non-empty slot (its
    /// day is minimal because a slot holds one day at a time), take
    /// that slot's key minimum, then migrate overflow entries the
    /// advanced cursor has brought into the window.
    fn recompute_min(&mut self) {
        self.min = None;
        if self.len == 0 {
            return;
        }
        let b = self.slots.len() as u64;
        for k in 0..self.slots.len() {
            let s = ((self.day + k as u64) % b) as usize;
            let Some(first) = self.slots[s].first() else {
                continue;
            };
            let (mut key, mut at) = ((first.arrival, first.id), 0usize);
            for (i, r) in self.slots[s].iter().enumerate().skip(1) {
                if (r.arrival, r.id) < key {
                    key = (r.arrival, r.id);
                    at = i;
                }
            }
            self.day = key.0 / self.width;
            self.min = Some((key.0, key.1, s, at));
            break;
        }
        if self.min.is_none() {
            // Ring drained: jump the cursor straight to the overflow's
            // first day (no day-by-day walk across the idle gap).
            let (&(a, _), _) = self.overflow.first_key_value().expect("len > 0");
            self.day = a / self.width;
        }
        while let Some((&key, _)) = self.overflow.first_key_value() {
            let d = key.0 / self.width;
            if d >= self.day + b {
                break;
            }
            let r = self.overflow.remove(&key).expect("peeked");
            let s = (d % b) as usize;
            self.slots[s].push(r);
            if self.min.is_none_or(|(a, id, ..)| key < (a, id)) {
                self.min = Some((key.0, key.1, s, self.slots[s].len() - 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, RequestClass};
    use axon_core::GemmShape;
    use axon_workloads::{GemmWorkload, WorkloadKind};

    fn req(id: usize, arrival: u64) -> Request {
        Request {
            id,
            client: id % 7,
            class: RequestClass::Decode,
            workload: GemmWorkload {
                name: "test",
                shape: GemmShape::new(1, 64, 64),
                kind: WorkloadKind::Gemm,
            },
            arrival,
            deadline: u64::MAX,
        }
    }

    /// Deterministic xorshift — keeps the tests seed-stable without
    /// pulling in an RNG dependency.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self, bound: u64) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0 % bound
        }
    }

    #[test]
    fn drains_in_exact_key_order() {
        let mut rng = Lcg(0x9E3779B97F4A7C15);
        // Duplicated arrival cycles force the id tie-break.
        let trace: Vec<Request> = (0..500).map(|id| req(id, rng.next(800))).collect();
        let mut cal = ArrivalCalendar::seed(&trace);
        let mut keys: Vec<(u64, usize)> = trace.iter().map(|r| (r.arrival, r.id)).collect();
        keys.sort_unstable();
        for want in keys {
            assert_eq!(cal.peek_arrival(), Some(want.0));
            let got = cal.pop().expect("non-empty");
            assert_eq!((got.arrival, got.id), want);
        }
        assert!(cal.is_empty());
        assert_eq!(cal.pop().map(|r| r.id), None);
    }

    /// The closed-loop usage pattern: pops drain everything due by a
    /// monotone `now`, pushes inject future arrivals (far beyond the
    /// seeded window, exercising overflow migration). Mirrors a
    /// `BinaryHeap` oracle key-for-key.
    #[test]
    fn interleaved_pushes_match_heap_oracle() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut rng = Lcg(42);
        let seed: Vec<Request> = (0..64).map(|id| req(id, rng.next(64))).collect();
        let mut cal = ArrivalCalendar::seed(&seed);
        let mut oracle: BinaryHeap<Reverse<(u64, usize)>> =
            seed.iter().map(|r| Reverse((r.arrival, r.id))).collect();

        let mut now = 0u64;
        let mut next_id = seed.len();
        for step in 0..2000 {
            now += rng.next(5000);
            while oracle.peek().is_some_and(|Reverse((a, _))| *a <= now) {
                let Reverse(want) = oracle.pop().expect("peeked");
                assert_eq!(cal.peek_arrival(), Some(want.0));
                let got = cal.pop().expect("oracle non-empty");
                assert_eq!((got.arrival, got.id), want);
                // Reissue-style push: never in the past, often far
                // beyond the seeded span.
                if step % 3 != 0 {
                    let r = req(next_id, now + rng.next(200_000));
                    next_id += 1;
                    oracle.push(Reverse((r.arrival, r.id)));
                    cal.push(r);
                }
            }
            assert_eq!(cal.peek_arrival(), oracle.peek().map(|Reverse((a, _))| *a));
            assert_eq!(cal.is_empty(), oracle.is_empty());
        }
    }

    #[test]
    fn empty_and_single_element() {
        let mut cal = ArrivalCalendar::seed(&[]);
        assert!(cal.is_empty());
        assert_eq!(cal.peek_arrival(), None);
        assert_eq!(cal.pop().map(|r| r.id), None);
        cal.push(req(3, 17));
        assert_eq!(cal.peek_arrival(), Some(17));
        assert_eq!(cal.pop().map(|r| r.id), Some(3));
        assert!(cal.is_empty());
    }
}

//! The `axon-trace-v1` arrival-trace replay format: a dependency-free
//! line format for replaying production arrival traces through
//! [`ArrivalProcess::TraceReplay`](crate::ArrivalProcess::TraceReplay).
//!
//! The format is deliberately minimal (in the spirit of the
//! hand-rolled `axon_bench::series` JSON layer — no serde):
//!
//! ```text
//! axon-trace-v1
//! # comment lines and blank lines are skipped
//! <arrival> <class> <client> <deadline> <workload name>
//! ```
//!
//! * `arrival` / `deadline` — absolute cycles (`u64`), arrivals
//!   non-decreasing top to bottom;
//! * `class` — a [`RequestClass`] display name (`prefill`, `decode`,
//!   `resnet50`, `yolov3`, `gemv`);
//! * `client` — the client-stream index (`usize`);
//! * `workload name` — the rest of the line, matched verbatim against
//!   the class's default catalog ([`RequestClass::catalog`]); workload
//!   names may contain spaces, which is why the field comes last.
//!
//! [`write_trace`] emits this format from a generated request trace and
//! [`parse_trace`] reads it back; `tests/replay.rs` pins the round trip
//! bit-for-bit (reports + event streams) and the exact rejection
//! message for each malformed-input case.

use crate::request::{Request, RequestClass};
use axon_workloads::GemmWorkload;

/// The header line every trace file must start with.
pub const TRACE_SCHEMA: &str = "axon-trace-v1";

/// One parsed line of an `axon-trace-v1` file: everything a replayed
/// request carries except its id (ids are reassigned in file order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayEntry {
    /// Absolute arrival cycle.
    pub arrival: u64,
    /// Workload family.
    pub class: RequestClass,
    /// The resolved workload (looked up by name in the class catalog).
    pub workload: GemmWorkload,
    /// Client stream.
    pub client: usize,
    /// Absolute completion deadline in cycles.
    pub deadline: u64,
}

/// Serializes a request trace into the `axon-trace-v1` line format.
///
/// The output round-trips through [`parse_trace`]: replaying it yields
/// a bit-identical run provided the requests were in `(arrival, id)`
/// order with ids `0..n` (what every generator trace satisfies).
pub fn write_trace(requests: &[Request]) -> String {
    let mut out = String::with_capacity(32 * (requests.len() + 1));
    out.push_str(TRACE_SCHEMA);
    out.push('\n');
    for r in requests {
        out.push_str(&format!(
            "{} {} {} {} {}\n",
            r.arrival, r.class, r.client, r.deadline, r.workload.name
        ));
    }
    out
}

/// Parses an `axon-trace-v1` file into replay entries.
///
/// # Errors
///
/// Returns the first violation with its 1-based line number; the exact
/// messages are part of the format contract (pinned in
/// `tests/replay.rs`):
///
/// * missing / wrong header,
/// * `truncated line` — fewer than the five required fields,
/// * `invalid number` — an unparsable `arrival`, `client` or `deadline`,
/// * `unknown class` — a class token outside the catalog names,
/// * `unknown workload` — a name absent from the class's catalog,
/// * `non-monotone arrival` — an arrival earlier than its predecessor.
pub fn parse_trace(text: &str) -> Result<Vec<ReplayEntry>, String> {
    let catalogs: Vec<(RequestClass, Vec<GemmWorkload>)> = RequestClass::ALL
        .iter()
        .map(|&c| (c, c.catalog()))
        .collect();
    let mut entries: Vec<ReplayEntry> = Vec::new();
    let mut saw_header = false;
    let mut prev_arrival = 0u64;
    for (i, raw) in text.lines().enumerate() {
        let n = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !saw_header {
            if line != TRACE_SCHEMA {
                return Err(format!(
                    "line {n}: bad header `{line}` (expected `{TRACE_SCHEMA}`)"
                ));
            }
            saw_header = true;
            continue;
        }
        let truncated = || {
            format!(
                "line {n}: truncated line (want `<arrival> <class> <client> <deadline> <workload>`)"
            )
        };
        let (arrival_tok, rest) = split_field(line).ok_or_else(truncated)?;
        let (class_tok, rest) = split_field(rest).ok_or_else(truncated)?;
        let (client_tok, rest) = split_field(rest).ok_or_else(truncated)?;
        let (deadline_tok, name) = split_field(rest).ok_or_else(truncated)?;
        let name = name.trim();
        if name.is_empty() {
            return Err(truncated());
        }
        let arrival: u64 = arrival_tok
            .parse()
            .map_err(|_| format!("line {n}: invalid number `{arrival_tok}` for <arrival>"))?;
        let client: usize = client_tok
            .parse()
            .map_err(|_| format!("line {n}: invalid number `{client_tok}` for <client>"))?;
        let deadline: u64 = deadline_tok
            .parse()
            .map_err(|_| format!("line {n}: invalid number `{deadline_tok}` for <deadline>"))?;
        let Some((class, catalog)) = catalogs
            .iter()
            .find(|(c, _)| c.to_string() == class_tok)
            .map(|(c, cat)| (*c, cat))
        else {
            return Err(format!("line {n}: unknown class `{class_tok}`"));
        };
        let Some(workload) = catalog.iter().find(|w| w.name == name).copied() else {
            return Err(format!(
                "line {n}: unknown workload `{name}` for class `{class}`"
            ));
        };
        if arrival < prev_arrival {
            return Err(format!(
                "line {n}: non-monotone arrival {arrival} after {prev_arrival}"
            ));
        }
        prev_arrival = arrival;
        entries.push(ReplayEntry {
            arrival,
            class,
            workload,
            client,
            deadline,
        });
    }
    if !saw_header {
        return Err(format!("missing header: expected `{TRACE_SCHEMA}`"));
    }
    Ok(entries)
}

/// Splits one whitespace-delimited field off the front of `s`,
/// returning `(field, rest)`; `None` if nothing is left.
fn split_field(s: &str) -> Option<(&str, &str)> {
    let s = s.trim_start();
    if s.is_empty() {
        return None;
    }
    let end = s.find(char::is_whitespace).unwrap_or(s.len());
    Some((&s[..end], &s[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{RequestGenerator, TrafficConfig};

    #[test]
    fn write_then_parse_preserves_every_field() {
        let cfg = TrafficConfig::open_loop(3, 50, 400.0);
        let trace = RequestGenerator::new(&cfg).open_loop_trace(400.0, cfg.num_clients);
        let text = write_trace(&trace);
        let entries = parse_trace(&text).unwrap();
        assert_eq!(entries.len(), trace.len());
        for (e, r) in entries.iter().zip(&trace) {
            assert_eq!(e.arrival, r.arrival);
            assert_eq!(e.class, r.class);
            assert_eq!(e.workload, r.workload);
            assert_eq!(e.client, r.client);
            assert_eq!(e.deadline, r.deadline);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# preamble\n\naxon-trace-v1\n# body comment\n10 decode 0 500 xf_decode_qkv\n";
        let entries = parse_trace(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].arrival, 10);
        assert_eq!(entries[0].workload.name, "xf_decode_qkv");
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = parse_trace("# only comments\n").unwrap_err();
        assert_eq!(err, "missing header: expected `axon-trace-v1`");
        let err = parse_trace("axon-trace-v2\n").unwrap_err();
        assert_eq!(
            err,
            "line 1: bad header `axon-trace-v2` (expected `axon-trace-v1`)"
        );
    }
}

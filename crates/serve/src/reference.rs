//! The frozen reference engine: a verbatim copy of the pre-heap pod
//! event loop (linear next-event scans, full O(running-jobs) re-timing
//! on every concurrency change) and the scan-based policy head
//! selection, kept solely so `crates/serve/tests/differential.rs` can
//! pin the optimized engine bit-for-bit against the original.
//!
//! **Never edit this module to track engine changes.** Its whole value
//! is that it does *not* move: any divergence between
//! [`simulate_pod_trace_reference`] and
//! [`simulate_pod_trace`](crate::simulate_pod_trace) is a correctness
//! bug in the fast path, not a drift to paper over here. The module is
//! compiled only for tests (`cfg(test)` or the `reference-engine`
//! feature the crate's own dev-dependency enables), so it costs
//! production builds nothing.

use crate::generator::{ArrivalProcess, RequestGenerator, TrafficConfig};
use crate::metrics::{ClassMetrics, Completion, LatencySummary, PodMetrics};
use crate::pod::{
    ArrayConfig, MappingPolicy, MemoryModel, PodConfig, PreemptionMode, ServingReport, ShardPlanner,
};
use crate::request::{coalesced_shape, BatchKey, Request};
use crate::scheduler::{Batch, SchedulerPolicy, SchedulingPolicy};
use crate::trace::{NullSink, RequestOutcome, TraceEvent, TraceSink};
use axon_core::runtime::{
    Accounting, Architecture, DrainPolicy, RuntimeSpec, TilePhase, TileSchedule,
};
use axon_core::{Dataflow, GemmShape, Tiling};
use axon_hw::{execution_energy, ArrayDesign, ComponentLibrary, TechNode};
use axon_mem::SharedDram;
use axon_sim::{random_matrix, simulate_gemm, SimConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

const CHECKPOINT_BYTES_PER_PARTIAL: u64 = 4;

// ---------------------------------------------------------------------------
// Reference (scan-based) policy head selection
// ---------------------------------------------------------------------------

fn eligible_indices_ref(queue: &VecDeque<Request>) -> Vec<usize> {
    let mut seen: HashSet<usize> = HashSet::new();
    let mut out = Vec::new();
    for (i, r) in queue.iter().enumerate() {
        if seen.insert(r.client) {
            out.push(i);
        }
    }
    out
}

fn coalesce_with_head_ref(head: Request, queue: &mut VecDeque<Request>, max_batch: usize) -> Batch {
    let mut requests = vec![head];
    let mut shape = head.workload.shape;
    if let Some(key) = head.batch_key() {
        let mut blocked: HashSet<usize> = HashSet::new();
        let mut i = 0;
        while i < queue.len() && requests.len() < max_batch {
            let candidate = &queue[i];
            if !blocked.contains(&candidate.client) && candidate.batch_key() == Some(key) {
                let taken = queue.remove(i).expect("index in bounds");
                requests.push(taken);
            } else {
                blocked.insert(candidate.client);
                i += 1;
            }
        }
        shape = coalesced_shape(key, requests.len());
    }
    Batch { requests, shape }
}

struct RefFifo;

impl SchedulingPolicy for RefFifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        let head = queue.pop_front()?;
        let shape = head.workload.shape;
        Some(Batch {
            requests: vec![head],
            shape,
        })
    }
}

struct RefCoalescing {
    max_batch: usize,
}

impl SchedulingPolicy for RefCoalescing {
    fn name(&self) -> &'static str {
        "coalescing"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        let head = queue.pop_front()?;
        Some(coalesce_with_head_ref(head, queue, self.max_batch))
    }
}

struct RefEdf {
    max_batch: usize,
}

impl SchedulingPolicy for RefEdf {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        let head_idx = eligible_indices_ref(queue)
            .into_iter()
            .min_by_key(|&i| (queue[i].deadline, queue[i].id))?;
        let head = queue.remove(head_idx).expect("index in bounds");
        Some(coalesce_with_head_ref(head, queue, self.max_batch))
    }
}

struct RefWfq {
    max_batch: usize,
    weights: Vec<f64>,
    served: Vec<f64>,
}

impl RefWfq {
    fn weight(&self, client: usize) -> f64 {
        self.weights.get(client).copied().unwrap_or(1.0)
    }

    fn served(&self, client: usize) -> f64 {
        self.served.get(client).copied().unwrap_or(0.0)
    }

    fn credit(&mut self, client: usize, cycles: f64) {
        if self.served.len() <= client {
            self.served.resize(client + 1, 0.0);
        }
        self.served[client] += cycles;
    }
}

impl SchedulingPolicy for RefWfq {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        let head_idx = eligible_indices_ref(queue).into_iter().min_by(|&a, &b| {
            let fa = self.served(queue[a].client) / self.weight(queue[a].client);
            let fb = self.served(queue[b].client) / self.weight(queue[b].client);
            fa.total_cmp(&fb)
                .then(queue[a].client.cmp(&queue[b].client))
        })?;
        let head = queue.remove(head_idx).expect("index in bounds");
        Some(coalesce_with_head_ref(head, queue, self.max_batch))
    }

    fn on_dispatch(&mut self, batch: &Batch, service_cycles: u64) {
        let share = service_cycles as f64 / batch.len() as f64;
        for r in &batch.requests {
            self.credit(r.client, share);
        }
    }

    fn on_complete(&mut self, batch: &Batch, billed_cycles: u64, baseline_cycles: u64) {
        let stall = billed_cycles.saturating_sub(baseline_cycles);
        if stall == 0 {
            return;
        }
        let share = stall as f64 / batch.len() as f64;
        for r in &batch.requests {
            self.credit(r.client, share);
        }
    }
}

fn build_reference(
    scheduler: SchedulerPolicy,
    client_weights: &[f64],
) -> Box<dyn SchedulingPolicy> {
    match scheduler {
        SchedulerPolicy::Fifo => Box::new(RefFifo),
        SchedulerPolicy::Batching { max_batch } => Box::new(RefCoalescing { max_batch }),
        SchedulerPolicy::Edf { max_batch } | SchedulerPolicy::Continuous { max_batch } => {
            Box::new(RefEdf { max_batch })
        }
        SchedulerPolicy::Wfq { max_batch } => {
            assert!(
                client_weights.iter().all(|&w| w > 0.0),
                "WFQ weights must be positive"
            );
            Box::new(RefWfq {
                max_batch,
                weights: client_weights.to_vec(),
                served: Vec::new(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Reference runtime-model helpers (uncached)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingReq(Request);

impl Ord for PendingReq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.arrival, self.0.id).cmp(&(other.0.arrival, other.0.id))
    }
}

impl PartialOrd for PendingReq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn design_of(arch: Architecture) -> ArrayDesign {
    match arch {
        Architecture::Conventional => ArrayDesign::Conventional,
        Architecture::Axon => ArrayDesign::Axon {
            im2col: true,
            unified_pe: true,
        },
    }
}

fn service_cycles_ref(
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    tiling: Tiling,
    shape: GemmShape,
) -> (Dataflow, usize) {
    let eval = |df: Dataflow| {
        RuntimeSpec::new(cfg.array, df)
            .with_accounting(Accounting::ExactEdges)
            .with_drain(drain)
            .with_tiling(tiling)
            .runtime(cfg.arch, shape)
            .cycles
    };
    match mapping {
        MappingPolicy::Fixed(df) => (df, eval(df)),
        MappingPolicy::MinTemporal => {
            let df = Dataflow::min_temporal(shape);
            (df, eval(df))
        }
        MappingPolicy::BestPerRequest => Dataflow::ALL
            .iter()
            .map(|&df| (df, eval(df)))
            .min_by_key(|&(_, c)| c)
            .expect("Dataflow::ALL is non-empty"),
    }
}

fn shard_grids(free_peers: usize) -> impl Iterator<Item = (usize, usize)> {
    let cap = free_peers.min(4);
    (1..=cap).flat_map(move |pr| {
        (1..=cap).filter_map(move |pc| {
            let arrays = pr * pc;
            (2..=free_peers).contains(&arrays).then_some((pr, pc))
        })
    })
}

fn plan_sharding(
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    shape: GemmShape,
    free_peers: usize,
) -> (usize, usize, Dataflow, usize) {
    let mut best = {
        let (df, cycles) = service_cycles_ref(cfg, mapping, drain, Tiling::ScaleUp, shape);
        (1usize, 1usize, df, cycles)
    };
    for (pr, pc) in shard_grids(free_peers) {
        let tiling = Tiling::ScaleOut {
            partitions_r: pr,
            partitions_c: pc,
        };
        let (df, cycles) = service_cycles_ref(cfg, mapping, drain, tiling, shape);
        if cycles < best.3 {
            best = (pr, pc, df, cycles);
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn plan_sharding_contended(
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    shape: GemmShape,
    free_peers: usize,
    shared: &SharedDram,
    clock_mhz: f64,
    co_running_weight: usize,
) -> (usize, usize, Dataflow, usize, bool) {
    let (df1, cycles1) = service_cycles_ref(cfg, mapping, drain, Tiling::ScaleUp, shape);
    let est1 = {
        let sched = plan_tiles(cfg, drain, df1, shape);
        shared.schedule_cycles(
            clock_mhz,
            sched.tiles.iter().map(|t| (t.cycles, t.dram_bytes)),
            1,
            co_running_weight + 1,
        ) + sched.final_drain
    };
    let mut best = (1usize, 1usize, df1, cycles1);
    let mut best_est = est1;
    let mut best_compute = (1usize, cycles1);
    for (pr, pc) in shard_grids(free_peers) {
        let arrays = pr * pc;
        let tiling = Tiling::ScaleOut {
            partitions_r: pr,
            partitions_c: pc,
        };
        let (df, cycles) = service_cycles_ref(cfg, mapping, drain, tiling, shape);
        let est = shared.leg_cycles(
            clock_mhz,
            cycles as u64,
            dispatch_dram_bytes(shape, pr, pc),
            arrays,
            co_running_weight + arrays,
        );
        if est < best_est {
            best = (pr, pc, df, cycles);
            best_est = est;
        }
        if cycles < best_compute.1 {
            best_compute = (arrays, cycles);
        }
    }
    let refused = best_compute.0 > best.0 * best.1;
    (best.0, best.1, best.2, best.3, refused)
}

fn dispatch_dram_bytes(shape: GemmShape, pr: usize, pc: usize) -> u64 {
    (shape.m * shape.k * pc + shape.k * shape.n * pr + shape.m * shape.n) as u64
}

fn plan_tiles(
    cfg: &ArrayConfig,
    drain: DrainPolicy,
    df: Dataflow,
    shape: GemmShape,
) -> TileSchedule {
    RuntimeSpec::new(cfg.array, df)
        .with_accounting(Accounting::ExactEdges)
        .with_drain(drain)
        .with_tiling(Tiling::ScaleUp)
        .tile_schedule(cfg.arch, shape, dispatch_dram_bytes(shape, 1, 1))
}

#[derive(Debug, Clone, Copy)]
struct MemTiming {
    shared: Option<SharedDram>,
    clock_mhz: f64,
}

impl MemTiming {
    fn new(pod: &PodConfig) -> Self {
        let shared = match pod.memory {
            MemoryModel::Unconstrained => None,
            MemoryModel::Shared { channels } => Some(SharedDram::new(pod.dram, channels)),
        };
        MemTiming {
            shared,
            clock_mhz: pod.clock_mhz,
        }
    }

    fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    fn tile_time(&self, tile: &TilePhase, weight: usize, total_weight: usize) -> u64 {
        match self.shared {
            None => tile.cycles,
            Some(s) => s.leg_cycles(
                self.clock_mhz,
                tile.cycles,
                tile.dram_bytes,
                weight,
                total_weight.max(weight),
            ),
        }
    }

    fn transfer_time(&self, bytes: u64, weight: usize, total_weight: usize) -> u64 {
        match self.shared {
            None => 0,
            Some(s) => s
                .transfer_cycles(
                    bytes as usize,
                    self.clock_mhz,
                    weight,
                    total_weight.max(weight),
                )
                .ceil() as u64,
        }
    }
}

fn ceil_mul_div(a: u64, b: u64, d: u64) -> u64 {
    debug_assert!(d > 0);
    ((a as u128 * b as u128).div_ceil(d as u128)) as u64
}

#[derive(Debug, Clone)]
struct RunningJob {
    seq: usize,
    batch: Batch,
    dispatch_times: Vec<u64>,
    joined: Vec<bool>,
    key: Option<BatchKey>,
    cfg: ArrayConfig,
    dataflow: Dataflow,
    used: Vec<usize>,
    pr: usize,
    pc: usize,
    tiles: Vec<TilePhase>,
    final_drain: u64,
    next_tile: usize,
    cur_consumed: u64,
    cur_scheduled: u64,
    last_update: u64,
    timed_total_weight: usize,
    segment_start: u64,
    end: u64,
    suspend_after: Option<usize>,
    ckpt_drain: u64,
    spill_bytes: u64,
    billed: u64,
    baseline_cycles: u64,
    preemptions: u32,
    checkpoint_dram_bytes: u64,
}

impl RunningJob {
    fn deadline(&self) -> u64 {
        self.batch.deadline()
    }

    fn weight(&self) -> usize {
        self.used.len()
    }

    fn remaining_cycles(&self) -> u64 {
        self.tiles[self.next_tile.min(self.tiles.len())..]
            .iter()
            .map(|t| t.cycles)
            .sum::<u64>()
            + self.final_drain
    }

    fn phase_time(&self, idx: usize, timing: &MemTiming, total_weight: usize) -> u64 {
        if let Some(j) = self.suspend_after {
            if idx > j {
                return if idx == j + 1 {
                    self.ckpt_drain
                } else {
                    timing.transfer_time(self.spill_bytes, self.weight(), total_weight)
                };
            }
        }
        if idx < self.tiles.len() {
            timing.tile_time(&self.tiles[idx], self.weight(), total_weight)
        } else {
            self.final_drain
        }
    }

    fn last_phase(&self) -> usize {
        match self.suspend_after {
            Some(j) => j + 2,
            None => self.tiles.len(),
        }
    }

    fn advance_to(&mut self, now: u64, timing: &MemTiming) {
        let mut elapsed = now - self.last_update;
        self.last_update = now;
        loop {
            let rem = self.cur_scheduled - self.cur_consumed;
            if rem > elapsed {
                self.cur_consumed += elapsed;
                return;
            }
            elapsed -= rem;
            if self.next_tile >= self.last_phase() {
                self.cur_consumed = self.cur_scheduled;
                return;
            }
            self.next_tile += 1;
            self.cur_consumed = 0;
            self.cur_scheduled = self.phase_time(self.next_tile, timing, self.timed_total_weight);
        }
    }

    fn reproject(&mut self, timing: &MemTiming, total_weight: usize) {
        let t_new = self.phase_time(self.next_tile, timing, total_weight);
        let rem_old = self.cur_scheduled - self.cur_consumed;
        let rem_new = if rem_old == 0 || t_new == self.cur_scheduled {
            rem_old.min(t_new)
        } else {
            ceil_mul_div(t_new, rem_old, self.cur_scheduled)
        };
        self.cur_scheduled = t_new;
        self.cur_consumed = t_new - rem_new;
        let mut remaining = rem_new;
        for idx in self.next_tile + 1..=self.last_phase() {
            remaining += self.phase_time(idx, timing, total_weight);
        }
        self.timed_total_weight = total_weight;
        self.end = self.last_update + remaining;
    }

    fn next_boundary(&self, now: u64, timing: &MemTiming) -> Option<(usize, u64)> {
        if self.suspend_after.is_some() || self.used.len() != 1 {
            return None;
        }
        if self.next_tile >= self.tiles.len() {
            return None;
        }
        let mut t = self.last_update + (self.cur_scheduled - self.cur_consumed);
        for j in self.next_tile..self.tiles.len().saturating_sub(1) {
            if j > self.next_tile {
                t += self.phase_time(j, timing, self.timed_total_weight);
            }
            if t > now {
                return Some((j, t));
            }
        }
        None
    }

    fn checkpoint_drain(&self, j: usize, drain: DrainPolicy) -> u64 {
        match drain {
            DrainPolicy::PerTile => 0,
            DrainPolicy::Overlapped => self.tiles[j].rows as u64,
        }
    }

    fn checkpoint_context_bytes(&self, j: usize) -> u64 {
        CHECKPOINT_BYTES_PER_PARTIAL * (self.tiles[j].rows * self.tiles[j].cols) as u64
    }
}

/// The reference re-timing pass: advances and re-projects **every**
/// running job on each concurrency change — the O(running-jobs x
/// remaining-tiles) cost the fast path's incremental epoch tracking
/// exists to avoid, and the semantics it must reproduce exactly.
fn retime(running: &mut [RunningJob], now: u64, timing: &MemTiming, free_at: &mut [u64]) {
    let total_weight: usize = running.iter().map(|j| j.weight()).sum();
    for job in running.iter_mut() {
        job.advance_to(now, timing);
        job.reproject(timing, total_weight);
        for &i in &job.used {
            free_at[i] = job.end;
        }
    }
}

// ---------------------------------------------------------------------------
// Reference entry points
// ---------------------------------------------------------------------------

/// Reference analogue of [`simulate_pod`](crate::simulate_pod).
pub fn simulate_pod_reference(pod: &PodConfig, traffic: &TrafficConfig) -> ServingReport {
    simulate_pod_reference_traced(pod, traffic, &mut NullSink)
}

/// Reference analogue of [`simulate_pod_traced`](crate::simulate_pod_traced).
///
/// Admission control is the one documented carve-out from the
/// differential surface: the frozen engine predates it, so it only
/// accepts pods configured with
/// [`AdmissionPolicy::AcceptAll`](crate::AdmissionPolicy) (asserted
/// here rather than silently diverging). Trace *generation* is shared
/// with the fast engine, so every trace-driven arrival model — Poisson,
/// MMPP, diurnal, flash crowd, replay — is pinned differentially; only
/// the shedding/backpressure admission behavior is carved out.
pub fn simulate_pod_reference_traced(
    pod: &PodConfig,
    traffic: &TrafficConfig,
    sink: &mut dyn TraceSink,
) -> ServingReport {
    assert_eq!(
        pod.admission,
        crate::scheduler::AdmissionPolicy::AcceptAll,
        "the reference engine predates admission control"
    );
    let mut policy = build_reference(pod.scheduler, &pod.client_weights);
    let mut gen = RequestGenerator::new(traffic);
    match &traffic.arrival {
        ArrivalProcess::ClosedLoop { think_cycles } => {
            let think_cycles = *think_cycles;
            let mut trace = Vec::new();
            for client in 0..traffic.num_clients {
                match gen.next_request(client, 0) {
                    Some(r) => trace.push(r),
                    None => break,
                }
            }
            run_pod_loop_reference(
                pod,
                policy.as_mut(),
                trace,
                Some((&mut gen, think_cycles)),
                sink,
                0,
            )
        }
        trace_driven => {
            let trace = gen
                .arrival_trace(trace_driven, traffic.num_clients)
                .expect("every non-closed-loop arrival process is trace-driven");
            run_pod_loop_reference(pod, policy.as_mut(), trace, None, sink, 0)
        }
    }
}

/// Reference analogue of [`simulate_pod_trace`](crate::simulate_pod_trace).
pub fn simulate_pod_trace_reference(pod: &PodConfig, trace: &[Request]) -> ServingReport {
    simulate_pod_trace_reference_traced(pod, trace, &mut NullSink)
}

/// Reference analogue of
/// [`simulate_pod_trace_traced`](crate::simulate_pod_trace_traced).
pub fn simulate_pod_trace_reference_traced(
    pod: &PodConfig,
    trace: &[Request],
    sink: &mut dyn TraceSink,
) -> ServingReport {
    assert_eq!(
        pod.admission,
        crate::scheduler::AdmissionPolicy::AcceptAll,
        "the reference engine predates admission control"
    );
    let mut policy = build_reference(pod.scheduler, &pod.client_weights);
    run_pod_loop_reference(pod, policy.as_mut(), trace.to_vec(), None, sink, 0)
}

/// The pre-heap event loop, verbatim: linear finalization partition +
/// sort, linear next-event scan over `running`, full re-time of every
/// job on each dirty shared-memory event.
fn run_pod_loop_reference(
    pod: &PodConfig,
    policy: &mut dyn SchedulingPolicy,
    trace: Vec<Request>,
    mut reissue: Option<(&mut RequestGenerator, u64)>,
    sink: &mut dyn TraceSink,
    pod_id: usize,
) -> ServingReport {
    assert!(!pod.arrays.is_empty(), "a pod needs at least one array");
    let mut trace = trace;
    let mut pending: BinaryHeap<Reverse<PendingReq>> = BinaryHeap::new();
    for r in &trace {
        pending.push(Reverse(PendingReq(*r)));
    }

    let lib = ComponentLibrary::calibrated_7nm();
    let node = TechNode::asap7();
    let dram = pod.dram;
    let timing = MemTiming::new(pod);

    let n_arrays = pod.arrays.len();
    let mut free_at = vec![pod.available_from; n_arrays];
    let mut busy = vec![0u64; n_arrays];
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut running: Vec<RunningJob> = Vec::new();
    let mut suspended: Vec<RunningJob> = Vec::new();
    let mut completions: Vec<Completion> = Vec::new();
    let mut now = 0u64;
    let mut seq = 0usize;
    let mut batches = 0usize;
    let mut sharded_batches = 0usize;
    let mut sharding_refused = 0usize;
    let mut bandwidth_stall_cycles = 0u64;
    let mut preemptions = 0usize;
    let mut inflight_joins = 0usize;
    let mut array_energy_uj = 0.0f64;
    let mut dram_energy_mj = 0.0f64;
    let mut checkpoint_dram_mj = 0.0f64;
    let mut spot_checks = 0usize;
    let mut spot_check_mismatches = 0usize;

    let eligible_min_deadline = |queue: &VecDeque<Request>| -> Option<u64> {
        eligible_indices_ref(queue)
            .into_iter()
            .map(|i| queue[i].deadline)
            .min()
    };
    let eligible_most_urgent = |queue: &VecDeque<Request>| -> Option<usize> {
        eligible_indices_ref(queue)
            .into_iter()
            .min_by_key(|&i| (queue[i].deadline, queue[i].id))
    };

    loop {
        let mut finalized: Vec<RunningJob> = Vec::new();
        let mut keep: Vec<RunningJob> = Vec::with_capacity(running.len());
        for job in running.drain(..) {
            if job.end <= now {
                finalized.push(job);
            } else {
                keep.push(job);
            }
        }
        let mut dirty = !finalized.is_empty();
        finalized.sort_by_key(|j| (j.end, j.seq));
        running = keep;
        for mut job in finalized {
            let segment = job.end - job.segment_start;
            job.billed += segment;
            for &i in &job.used {
                busy[i] += segment;
            }
            if let Some(j) = job.suspend_after.take() {
                let ctx = job.checkpoint_context_bytes(j);
                job.checkpoint_dram_bytes += 2 * ctx;
                job.baseline_cycles += job.ckpt_drain;
                job.ckpt_drain = 0;
                job.spill_bytes = 0;
                job.next_tile = j + 1;
                job.tiles[job.next_tile].dram_bytes += ctx;
                job.cur_consumed = 0;
                job.cur_scheduled = 0;
                job.preemptions += 1;
                preemptions += 1;
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::CheckpointDrained {
                            seq: job.seq,
                            cycle: job.end,
                        },
                    );
                }
                suspended.push(job);
                continue;
            }
            let per_array = execution_energy(
                design_of(job.cfg.arch),
                job.cfg.array,
                node,
                &lib,
                job.billed as usize,
                pod.clock_mhz,
                0.0,
            )
            .energy_uj();
            let job_array_uj = per_array * (job.pr * job.pc) as f64;
            let bytes = dispatch_dram_bytes(job.batch.shape, job.pr, job.pc);
            let ckpt_mj = dram.transfer_energy_mj(job.checkpoint_dram_bytes as usize);
            let job_dram_mj = dram.transfer_energy_mj(bytes as usize) + ckpt_mj;
            array_energy_uj += job_array_uj;
            dram_energy_mj += job_dram_mj;
            checkpoint_dram_mj += ckpt_mj;

            let job_stall = job.billed.saturating_sub(job.baseline_cycles);
            bandwidth_stall_cycles += job_stall;
            policy.on_complete(&job.batch, job.billed, job.baseline_cycles);

            let share = job.batch.requests.len() as f64;
            let stall_share = job_stall / job.batch.requests.len() as u64;
            let stall_rem = job_stall % job.batch.requests.len() as u64;
            for (ri, r) in job.batch.requests.iter().enumerate() {
                completions.push(Completion {
                    id: r.id,
                    client: r.client,
                    class: r.class,
                    shape: job.batch.shape,
                    arrival: r.arrival,
                    deadline: r.deadline,
                    dispatch: job.dispatch_times[ri],
                    completion: job.end,
                    array: job.used[0],
                    batch_size: job.batch.requests.len(),
                    sharded_over: job.pr * job.pc,
                    preemptions: job.preemptions,
                    joined_inflight: job.joined[ri],
                    bandwidth_stall_cycles: stall_share + if ri == 0 { stall_rem } else { 0 },
                    array_energy_uj: job_array_uj / share,
                    dram_energy_mj: job_dram_mj / share,
                });
                if sink.enabled() {
                    let outcome = RequestOutcome {
                        id: r.id,
                        client: r.client,
                        class: r.class,
                        seq: job.seq,
                        array: job.used[0],
                        arrival: r.arrival,
                        dispatch: job.dispatch_times[ri],
                        completion: job.end,
                        deadline: r.deadline,
                        batch_size: job.batch.requests.len(),
                        sharded_over: job.pr * job.pc,
                        stall_cycles: stall_share + if ri == 0 { stall_rem } else { 0 },
                    };
                    sink.record(
                        pod_id,
                        if job.end <= r.deadline {
                            TraceEvent::Completed(outcome)
                        } else {
                            TraceEvent::DeadlineMissed(outcome)
                        },
                    );
                }
                if let Some((gen, think_cycles)) = reissue.as_mut() {
                    if let Some(next) = gen.next_request(r.client, job.end + *think_cycles) {
                        trace.push(next);
                        pending.push(Reverse(PendingReq(next)));
                    }
                }
            }
        }

        while let Some(Reverse(p)) = pending.peek() {
            if p.0.arrival > now {
                break;
            }
            let Reverse(p) = pending.pop().expect("peeked");
            if sink.enabled() {
                sink.record(
                    pod_id,
                    TraceEvent::Arrived {
                        id: p.0.id,
                        client: p.0.client,
                        class: p.0.class,
                        cycle: p.0.arrival,
                    },
                );
                sink.record(
                    pod_id,
                    TraceEvent::Enqueued {
                        id: p.0.id,
                        client: p.0.client,
                        cycle: now,
                    },
                );
            }
            queue.push_back(p.0);
        }

        loop {
            let idle: Vec<usize> = (0..n_arrays).filter(|&i| free_at[i] <= now).collect();
            if idle.is_empty() {
                break;
            }
            let queue_deadline = eligible_min_deadline(&queue);
            let resume_pick = suspended
                .iter()
                .enumerate()
                .filter(|(_, j)| idle.iter().any(|&i| pod.arrays[i] == j.cfg))
                .min_by_key(|(_, j)| (j.deadline(), j.seq))
                .map(|(si, _)| si);
            let do_resume = match (resume_pick, queue_deadline) {
                (Some(si), Some(qd)) => suspended[si].deadline() <= qd,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if do_resume {
                let mut job = suspended.remove(resume_pick.expect("checked"));
                let ai = *idle
                    .iter()
                    .find(|&&i| pod.arrays[i] == job.cfg)
                    .expect("resume_pick requires a matching idle array");
                job.used = vec![ai];
                job.segment_start = now;
                job.last_update = now;
                job.cur_consumed = 0;
                job.cur_scheduled = job.tiles[job.next_tile].cycles;
                job.timed_total_weight = 0;
                job.end = now + job.remaining_cycles();
                free_at[ai] = job.end;
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::Resumed {
                            seq: job.seq,
                            array: ai,
                            cycle: now,
                        },
                    );
                }
                running.push(job);
                dirty = true;
                continue;
            }
            if queue.is_empty() {
                break;
            }
            let batch = policy
                .next_batch(&mut queue, now)
                .expect("queue checked non-empty");
            let ai = idle[0];
            let cfg = pod.arrays[ai];

            let peers: Vec<usize> = idle
                .iter()
                .copied()
                .filter(|&i| pod.arrays[i] == cfg)
                .collect();
            let want_shard = pod
                .shard_min_macs
                .is_some_and(|min| batch.shape.macs() >= min);
            let (pr, pc, df, cycles) = if want_shard && peers.len() > 1 {
                match (&timing.shared, pod.planner) {
                    (Some(shared), ShardPlanner::BandwidthAware) => {
                        let co_running: usize = running.iter().map(|j| j.weight()).sum();
                        let (pr, pc, df, cycles, refused) = plan_sharding_contended(
                            &cfg,
                            pod.mapping,
                            pod.drain,
                            batch.shape,
                            peers.len(),
                            shared,
                            pod.clock_mhz,
                            co_running,
                        );
                        if refused {
                            sharding_refused += 1;
                            if sink.enabled() {
                                sink.record(pod_id, TraceEvent::ShardRefused { seq, cycle: now });
                            }
                        }
                        (pr, pc, df, cycles)
                    }
                    _ => plan_sharding(&cfg, pod.mapping, pod.drain, batch.shape, peers.len()),
                }
            } else {
                let (df, cycles) =
                    service_cycles_ref(&cfg, pod.mapping, pod.drain, Tiling::ScaleUp, batch.shape);
                (1, 1, df, cycles)
            };
            let used: Vec<usize> = peers.into_iter().take(pr * pc).collect();
            debug_assert_eq!(used.len(), pr * pc);
            debug_assert_eq!(used[0], ai);

            let (tiles, final_drain) = if used.len() == 1 {
                let sched = plan_tiles(&cfg, pod.drain, df, batch.shape);
                debug_assert_eq!(
                    sched.total_cycles(),
                    cycles as u64,
                    "tile plan disagrees with the runtime model"
                );
                (sched.tiles, sched.final_drain)
            } else {
                (
                    vec![TilePhase {
                        rows: 0,
                        cols: 0,
                        cycles: cycles as u64,
                        dram_bytes: dispatch_dram_bytes(batch.shape, pr, pc),
                    }],
                    0,
                )
            };

            if let Some(sc) = pod.spot_check {
                if used.len() == 1
                    && batch.shape.macs() <= sc.max_macs
                    && batches.is_multiple_of(sc.every.max(1))
                {
                    let seed = batch.requests[0].id as u64;
                    let a = random_matrix(batch.shape.m, batch.shape.k, seed, 0.0);
                    let b = random_matrix(batch.shape.k, batch.shape.n, seed + 1, 0.0);
                    let sim_cfg = SimConfig::new(cfg.array)
                        .with_dataflow(df)
                        .with_pipelining(pod.drain);
                    let sim = simulate_gemm(cfg.arch, &sim_cfg, &a, &b)
                        .expect("operand shapes match by construction");
                    spot_checks += 1;
                    if sim.stats.cycles != cycles {
                        spot_check_mismatches += 1;
                    }
                }
            }

            policy.on_dispatch(&batch, cycles as u64);
            let completion = now + cycles as u64;
            for &i in &used {
                free_at[i] = completion;
            }
            batches += 1;
            if used.len() > 1 {
                sharded_batches += 1;
            }
            let n_reqs = batch.requests.len();
            let key = batch.requests[0].batch_key();
            let cur_scheduled = tiles[0].cycles;
            if sink.enabled() {
                sink.record(
                    pod_id,
                    TraceEvent::Dispatched {
                        seq,
                        ids: batch.requests.iter().map(|r| r.id).collect(),
                        array: used[0],
                        arrays: used.len(),
                        cycle: now,
                    },
                );
                if used.len() > 1 {
                    sink.record(
                        pod_id,
                        TraceEvent::ShardPlanned {
                            seq,
                            pr,
                            pc,
                            cycle: now,
                        },
                    );
                }
            }
            running.push(RunningJob {
                seq,
                batch,
                dispatch_times: vec![now; n_reqs],
                joined: vec![false; n_reqs],
                key,
                cfg,
                dataflow: df,
                used,
                pr,
                pc,
                tiles,
                final_drain,
                next_tile: 0,
                cur_consumed: 0,
                cur_scheduled,
                last_update: now,
                timed_total_weight: 0,
                segment_start: now,
                end: completion,
                suspend_after: None,
                ckpt_drain: 0,
                spill_bytes: 0,
                billed: 0,
                baseline_cycles: cycles as u64,
                preemptions: 0,
                checkpoint_dram_bytes: 0,
            });
            seq += 1;
            dirty = true;
        }

        if pod.scheduler.admits_inflight_joins() && !queue.is_empty() {
            let max_batch = pod.scheduler.max_batch();
            let mut qi = 0;
            while qi < queue.len() {
                let cand = queue[qi];
                let own_earlier = queue.iter().take(qi).any(|r| r.client == cand.client);
                let Some(key) = cand.batch_key() else {
                    qi += 1;
                    continue;
                };
                if own_earlier {
                    qi += 1;
                    continue;
                }
                let target = running
                    .iter_mut()
                    .filter(|j| {
                        j.used.len() == 1
                            && j.suspend_after.is_none()
                            && j.key == Some(key)
                            && j.batch.requests.len() < max_batch
                            && j.end > now
                            && j.next_tile < j.tiles.len()
                    })
                    .min_by_key(|j| j.seq);
                let Some(job) = target else {
                    qi += 1;
                    continue;
                };
                let old_shape = job.batch.shape;
                let new_shape = coalesced_shape(key, job.batch.requests.len() + 1);
                let old_total =
                    plan_tiles(&job.cfg, pod.drain, job.dataflow, old_shape).total_cycles();
                let new_total =
                    plan_tiles(&job.cfg, pod.drain, job.dataflow, new_shape).total_cycles();
                let delta = new_total.saturating_sub(old_total);
                let delta_bytes = dispatch_dram_bytes(new_shape, 1, 1)
                    .saturating_sub(dispatch_dram_bytes(old_shape, 1, 1));
                job.batch.shape = new_shape;
                job.batch.requests.push(cand);
                job.dispatch_times.push(now);
                job.joined.push(true);
                let last_idx = job.tiles.len() - 1;
                let old_t = job.phase_time(last_idx, &timing, job.timed_total_weight);
                job.tiles[last_idx].cycles += delta;
                job.tiles[last_idx].dram_bytes += delta_bytes;
                job.baseline_cycles += delta;
                let new_t = job.phase_time(last_idx, &timing, job.timed_total_weight);
                let dt = new_t.saturating_sub(old_t);
                if job.next_tile == last_idx {
                    job.cur_scheduled += dt;
                }
                job.end += dt;
                let ai = job.used[0];
                free_at[ai] = job.end;
                inflight_joins += 1;
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::BatchJoined {
                            seq: job.seq,
                            id: cand.id,
                            cycle: now,
                        },
                    );
                }
                dirty = true;
                queue.remove(qi).expect("index in bounds");
            }
        }

        if dirty && timing.is_shared() {
            retime(&mut running, now, &timing, &mut free_at);
            if sink.enabled() {
                sink.record(
                    pod_id,
                    TraceEvent::Retimed {
                        jobs: running.len(),
                        cycle: now,
                    },
                );
                let total_weight: usize = running.iter().map(|j| j.weight()).sum();
                sink.record(
                    pod_id,
                    TraceEvent::BandwidthEpoch {
                        total_weight,
                        cycle: now,
                    },
                );
            }
        }

        if pod.preemption == PreemptionMode::TileBoundary && !queue.is_empty() {
            let total_weight: usize = running.iter().map(|j| j.weight()).sum();
            if let Some(ui) = eligible_most_urgent(&queue) {
                let urgent = queue[ui].deadline;
                let urgent_shape = queue[ui].workload.shape;
                let mut urgent_ests: Vec<(ArrayConfig, u64)> = Vec::new();
                let mut ests_built = !timing.is_shared();
                loop {
                    let min_free = free_at.iter().copied().min().unwrap_or(0);
                    if urgent >= min_free {
                        break;
                    }
                    if !ests_built {
                        if let Some(s) = &timing.shared {
                            for job in &running {
                                if urgent_ests.iter().any(|(c, _)| *c == job.cfg) {
                                    continue;
                                }
                                let (_, cycles) = service_cycles_ref(
                                    &job.cfg,
                                    pod.mapping,
                                    pod.drain,
                                    Tiling::ScaleUp,
                                    urgent_shape,
                                );
                                let est = s.leg_cycles(
                                    pod.clock_mhz,
                                    cycles as u64,
                                    dispatch_dram_bytes(urgent_shape, 1, 1),
                                    1,
                                    total_weight.max(1),
                                );
                                urgent_ests.push((job.cfg, est));
                            }
                        }
                        ests_built = true;
                    }
                    let victim = running
                        .iter_mut()
                        .filter(|j| j.deadline() > urgent)
                        .filter_map(|j| {
                            let (jt, b) = j.next_boundary(now, &timing)?;
                            let drain = j.checkpoint_drain(jt, pod.drain);
                            let spill = timing.transfer_time(
                                j.checkpoint_context_bytes(jt),
                                1,
                                total_weight,
                            );
                            let tail = drain + spill;
                            let achievable = if timing.is_shared() {
                                let est = urgent_ests
                                    .iter()
                                    .find(|(c, _)| *c == j.cfg)
                                    .map(|&(_, e)| e)
                                    .expect("estimate precomputed for every running config");
                                (b + tail).saturating_add(est) <= urgent
                            } else {
                                b + tail < urgent
                            };
                            (b + tail < min_free && achievable).then_some((j, jt, b, drain, spill))
                        })
                        .max_by_key(|(j, ..)| (j.deadline(), j.seq));
                    let Some((job, jt, boundary, drain, spill)) = victim else {
                        break;
                    };
                    job.suspend_after = Some(jt);
                    job.ckpt_drain = drain;
                    job.spill_bytes = job.checkpoint_context_bytes(jt);
                    job.end = boundary + drain + spill;
                    let ai = job.used[0];
                    free_at[ai] = job.end;
                    if sink.enabled() {
                        sink.record(
                            pod_id,
                            TraceEvent::Preempted {
                                seq: job.seq,
                                cycle: now,
                            },
                        );
                    }
                }
            }
        }

        if queue.is_empty() && pending.is_empty() && running.is_empty() {
            debug_assert!(suspended.is_empty(), "suspended job never resumed");
            break;
        }

        let mut next = pending.peek().map_or(u64::MAX, |Reverse(p)| p.0.arrival);
        if let Some(e) = running.iter().map(|j| j.end).min() {
            next = next.min(e);
        }
        if !queue.is_empty() {
            if let Some(f) = free_at.iter().copied().filter(|&f| f > now).min() {
                next = next.min(f);
            }
        }
        debug_assert!(next != u64::MAX && next > now, "simulation stalled");
        now = next;
    }

    let makespan_cycles = completions.iter().map(|c| c.completion).max().unwrap_or(0);
    let slo_met = completions.iter().filter(|c| c.met_deadline()).count();
    let metrics = PodMetrics {
        completed: completions.len(),
        makespan_cycles,
        clock_mhz: pod.clock_mhz,
        queue: LatencySummary::from_cycles(completions.iter().map(|c| c.queue_cycles()).collect()),
        service: LatencySummary::from_cycles(
            completions.iter().map(|c| c.service_cycles()).collect(),
        ),
        total: LatencySummary::from_cycles(completions.iter().map(|c| c.total_cycles()).collect()),
        per_array_utilization: busy
            .iter()
            .map(|&b| {
                if makespan_cycles == 0 {
                    0.0
                } else {
                    b as f64 / makespan_cycles as f64
                }
            })
            .collect(),
        batches,
        mean_batch_size: if batches == 0 {
            0.0
        } else {
            completions.len() as f64 / batches as f64
        },
        sharded_batches,
        sharding_refused,
        bandwidth_stall_cycles,
        preemptions,
        inflight_joins,
        slo_met,
        slo_violations: completions.len() - slo_met,
        // The frozen engine predates admission control; the accept-all
        // assertion at the entry points guarantees nothing sheds.
        shed: 0,
        per_class: ClassMetrics::from_completions(&completions),
        array_energy_uj,
        dram_energy_mj,
        checkpoint_dram_mj,
        spot_checks,
        spot_check_mismatches,
    };

    ServingReport {
        trace,
        completions,
        shed: Vec::new(),
        metrics,
    }
}

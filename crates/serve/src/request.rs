//! Inference requests and the workload catalog they draw from.
//!
//! A request is one GEMM-shaped kernel invocation attributed to a client
//! stream — the granularity at which a serving scheduler makes batching
//! and placement decisions. Request shapes come from the existing
//! `axon-workloads` definitions; the default transformer configuration is
//! an edge-class model (the latency-bound regime the paper targets), with
//! the GPT-3 2.7B shapes available through
//! [`RequestClass::catalog_for`].

use axon_core::GemmShape;
use axon_workloads::{gemv_workloads, table3, GemmWorkload, TransformerConfig};
use std::fmt;

/// The transformer the serving catalogs default to: an edge-class decoder
/// whose kernels are short enough to be fill-latency-bound on a 128x128
/// array — exactly where the paper's `2R-2 -> R-1` fill claim bites.
pub fn serving_transformer() -> TransformerConfig {
    TransformerConfig {
        seq_len: 128,
        d_model: 512,
        n_heads: 8,
        d_ff: 2048,
        vocab: 8192,
    }
}

/// Workload family a request is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Transformer prefill: the full-sequence block GEMMs.
    Prefill,
    /// Transformer single-token decode: the per-token GEMV projections.
    Decode,
    /// ResNet-50 conv layers mapped to GEMM (Table 3 rows).
    ResNet50,
    /// YOLOv3 conv layers mapped to GEMM (Table 3 rows).
    YoloV3,
    /// The memory-bound GEMV set of Fig. 14.
    Gemv,
}

impl RequestClass {
    /// All request classes, in a fixed order.
    pub const ALL: [RequestClass; 5] = [
        RequestClass::Prefill,
        RequestClass::Decode,
        RequestClass::ResNet50,
        RequestClass::YoloV3,
        RequestClass::Gemv,
    ];

    /// The workloads of this class for the default
    /// [`serving_transformer`] model.
    pub fn catalog(self) -> Vec<GemmWorkload> {
        self.catalog_for(serving_transformer())
    }

    /// The workloads of this class, with transformer classes drawn from
    /// `model` (pass [`TransformerConfig::gpt3_2p7b`] for the paper's
    /// datacenter-scale shapes).
    pub fn catalog_for(self, model: TransformerConfig) -> Vec<GemmWorkload> {
        match self {
            RequestClass::Prefill => model.block_workloads(),
            RequestClass::Decode => model.decode_workloads(),
            RequestClass::ResNet50 => table3_named("Resnet50"),
            RequestClass::YoloV3 => table3_named("YOLO"),
            RequestClass::Gemv => gemv_workloads(),
        }
    }
}

fn table3_named(prefix: &str) -> Vec<GemmWorkload> {
    let out: Vec<GemmWorkload> = table3()
        .into_iter()
        .filter(|w| w.name.starts_with(prefix))
        .collect();
    assert!(!out.is_empty(), "no Table 3 workloads named {prefix}*");
    out
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestClass::Prefill => f.write_str("prefill"),
            RequestClass::Decode => f.write_str("decode"),
            RequestClass::ResNet50 => f.write_str("resnet50"),
            RequestClass::YoloV3 => f.write_str("yolov3"),
            RequestClass::Gemv => f.write_str("gemv"),
        }
    }
}

/// Per-class completion-deadline budgets, in cycles from arrival.
///
/// These are the SLO classes the deadline-aware schedulers act on:
/// decode is interactive (a user is watching tokens stream), prefill and
/// the conv workloads are bulk work that tolerates far more latency.
/// The defaults are calibrated for the 500 MHz serving pods: 300 us for
/// decode, 2 ms for the recommender GEMVs, 4 ms for conv, 10 ms for
/// prefill.
///
/// # Examples
///
/// Budgets ride on [`TrafficConfig`](crate::TrafficConfig) and become
/// absolute per-request deadlines (`arrival + budget(class)`) — the
/// signal the EDF/preemption machinery acts on. Tightening one class is
/// a 3-line change to an experiment:
///
/// ```
/// use axon_serve::{RequestClass, SloBudgets, TrafficConfig};
///
/// let tight = SloBudgets::serving_default().with_decode(75_000);
/// assert_eq!(tight.budget(RequestClass::Decode), 75_000); // 150 us at 500 MHz
/// assert_eq!(
///     tight.budget(RequestClass::Prefill),
///     SloBudgets::default().prefill
/// );
/// let traffic = TrafficConfig::open_loop(1, 8, 1000.0).with_slo(tight);
/// let trace = axon_serve::RequestGenerator::new(&traffic).open_loop_trace(1000.0, 2);
/// for r in trace.iter().filter(|r| r.class == RequestClass::Decode) {
///     assert_eq!(r.deadline, r.arrival + 75_000);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBudgets {
    /// Decode (single-token GEMV) budget — the tight, interactive class.
    pub decode: u64,
    /// Prefill budget — bulk work, the loosest class.
    pub prefill: u64,
    /// Conv-GEMM (ResNet/YOLO) budget.
    pub conv: u64,
    /// Recommender-GEMV budget.
    pub gemv: u64,
}

impl SloBudgets {
    /// The serving defaults (see the struct docs).
    pub fn serving_default() -> Self {
        SloBudgets {
            decode: 150_000,
            prefill: 5_000_000,
            conv: 2_000_000,
            gemv: 1_000_000,
        }
    }

    /// The same budget for every class (useful for tests).
    pub fn uniform(cycles: u64) -> Self {
        SloBudgets {
            decode: cycles,
            prefill: cycles,
            conv: cycles,
            gemv: cycles,
        }
    }

    /// Builder-style decode-budget override.
    pub fn with_decode(mut self, cycles: u64) -> Self {
        self.decode = cycles;
        self
    }

    /// The deadline budget of `class`, in cycles from arrival.
    pub fn budget(&self, class: RequestClass) -> u64 {
        match class {
            RequestClass::Decode => self.decode,
            RequestClass::Prefill => self.prefill,
            RequestClass::ResNet50 | RequestClass::YoloV3 => self.conv,
            RequestClass::Gemv => self.gemv,
        }
    }
}

impl Default for SloBudgets {
    fn default() -> Self {
        SloBudgets::serving_default()
    }
}

/// One inference request: a kernel invocation in a client stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Issue-order id (globally unique, assigned by the generator).
    pub id: usize,
    /// Client stream the request belongs to.
    pub client: usize,
    /// Workload family.
    pub class: RequestClass,
    /// The kernel to execute.
    pub workload: GemmWorkload,
    /// Arrival cycle at the pod's queue.
    pub arrival: u64,
    /// Absolute completion deadline (cycle), from the traffic's
    /// [`SloBudgets`]: `arrival + budget(class)`.
    pub deadline: u64,
}

/// Which GEMM dimension a batch of compatible requests concatenates
/// along. Coalescing assumes the batched requests share weights — the
/// standard serving assumption (one model, many users).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchAxis {
    /// `M = 1` kernels (decode-style `x^T W`): stack activations as rows.
    M,
    /// `N = 1` kernels (`W x` GEMVs): stack activations as columns.
    N,
}

/// Coalescing compatibility key: requests with equal keys can be fused
/// into one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Concatenation axis.
    pub axis: BatchAxis,
    /// The two shared (weight) dimensions: `(K, N)` for [`BatchAxis::M`],
    /// `(M, K)` for [`BatchAxis::N`].
    pub fixed: (usize, usize),
}

impl Request {
    /// Cycles of slack left before the deadline at time `now` (0 when the
    /// deadline has passed).
    pub fn slack(&self, now: u64) -> u64 {
        self.deadline.saturating_sub(now)
    }

    /// The batching key of this request, if it is a batchable GEMV.
    ///
    /// # Examples
    ///
    /// ```
    /// use axon_core::GemmShape;
    /// use axon_serve::{batch_key_of, BatchAxis};
    ///
    /// let k = batch_key_of(GemmShape::new(1, 512, 2048)).unwrap();
    /// assert_eq!(k.axis, BatchAxis::M);
    /// assert_eq!(k.fixed, (512, 2048));
    /// assert!(batch_key_of(GemmShape::new(64, 64, 64)).is_none());
    /// ```
    pub fn batch_key(&self) -> Option<BatchKey> {
        batch_key_of(self.workload.shape)
    }
}

/// See [`Request::batch_key`].
pub fn batch_key_of(shape: GemmShape) -> Option<BatchKey> {
    if shape.m == 1 && shape.n > 1 {
        Some(BatchKey {
            axis: BatchAxis::M,
            fixed: (shape.k, shape.n),
        })
    } else if shape.n == 1 {
        Some(BatchKey {
            axis: BatchAxis::N,
            fixed: (shape.m, shape.k),
        })
    } else {
        None
    }
}

/// The GEMM executed for `count` coalesced requests with `key`.
pub fn coalesced_shape(key: BatchKey, count: usize) -> GemmShape {
    assert!(count > 0, "empty batch");
    match key.axis {
        BatchAxis::M => GemmShape::new(count, key.fixed.0, key.fixed.1),
        BatchAxis::N => GemmShape::new(key.fixed.0, key.fixed.1, count),
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} client {} [{}] {} @{}",
            self.id, self.client, self.class, self.workload, self.arrival
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_are_nonempty_and_class_consistent() {
        for class in RequestClass::ALL {
            let cat = class.catalog();
            assert!(!cat.is_empty(), "{class}");
            if class == RequestClass::Decode {
                for w in &cat {
                    assert_eq!(w.shape.m, 1, "{}", w.name);
                }
            }
        }
    }

    #[test]
    fn gpt3_catalog_matches_table3_provenance() {
        let big = RequestClass::Prefill.catalog_for(TransformerConfig::gpt3_2p7b());
        assert!(big.iter().any(|w| w.shape.n == 50257));
    }

    #[test]
    fn decode_requests_batch_along_m() {
        for w in RequestClass::Decode.catalog() {
            let key = batch_key_of(w.shape).expect("decode is batchable");
            assert_eq!(key.axis, BatchAxis::M);
            let fused = coalesced_shape(key, 8);
            assert_eq!(fused.m, 8);
            assert_eq!((fused.k, fused.n), (w.shape.k, w.shape.n));
        }
    }

    #[test]
    fn gemv_requests_batch_along_n() {
        for w in RequestClass::Gemv.catalog() {
            let key = batch_key_of(w.shape).expect("gemv is batchable");
            assert_eq!(key.axis, BatchAxis::N);
            assert_eq!(coalesced_shape(key, 3).n, 3);
        }
    }

    #[test]
    fn prefill_requests_do_not_batch() {
        for w in RequestClass::Prefill.catalog() {
            assert!(batch_key_of(w.shape).is_none(), "{}", w.name);
        }
    }
}

//! Serving metrics: latency percentiles, throughput, utilization, energy.

use crate::request::RequestClass;
use axon_core::GemmShape;
use std::fmt;

/// Nearest-rank percentile over a sorted slice. `q` in `[0, 1]`.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Distribution summary of a latency population, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a population of latencies (cycles). Empty input gives
    /// the all-zero summary.
    pub fn from_cycles(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&c| c as u128).sum();
        LatencySummary {
            p50: percentile(&samples, 0.50),
            p95: percentile(&samples, 0.95),
            p99: percentile(&samples, 0.99),
            mean: sum as f64 / samples.len() as f64,
            max: *samples.last().expect("non-empty"),
        }
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {} / p95 {} / p99 {} / max {} cycles",
            self.p50, self.p95, self.p99, self.max
        )
    }
}

/// The completion record of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id (issue order).
    pub id: usize,
    /// Client stream.
    pub client: usize,
    /// Workload family.
    pub class: RequestClass,
    /// The shape this request contributed to the dispatched GEMM.
    pub shape: GemmShape,
    /// Arrival cycle.
    pub arrival: u64,
    /// Absolute completion deadline (from the traffic's SLO budgets).
    pub deadline: u64,
    /// Dispatch cycle (start of service).
    pub dispatch: u64,
    /// Completion cycle.
    pub completion: u64,
    /// Index of the (first) array that served it.
    pub array: usize,
    /// Requests fused into the same dispatch.
    pub batch_size: usize,
    /// Arrays the dispatch was sharded over (1 = no sharding).
    pub sharded_over: usize,
    /// Times the serving dispatch was preempted at a tile boundary.
    pub preemptions: u32,
    /// Whether this request joined an already-running batch (continuous
    /// batching) instead of waiting for a fresh dispatch.
    pub joined_inflight: bool,
    /// This request's share of the dispatch's bandwidth-stall cycles:
    /// service time billed beyond the compute-only schedule because the
    /// shared DRAM could not feed the tile walk (0 under
    /// [`MemoryModel::Unconstrained`](crate::MemoryModel)).
    pub bandwidth_stall_cycles: u64,
    /// This request's share of the dispatch's array energy, microjoules.
    pub array_energy_uj: f64,
    /// This request's share of the dispatch's DRAM energy, millijoules.
    pub dram_energy_mj: f64,
}

impl Completion {
    /// Cycles spent queued before service.
    pub fn queue_cycles(&self) -> u64 {
        self.dispatch - self.arrival
    }

    /// Cycles in service.
    pub fn service_cycles(&self) -> u64 {
        self.completion - self.dispatch
    }

    /// Arrival-to-completion cycles.
    pub fn total_cycles(&self) -> u64 {
        self.completion - self.arrival
    }

    /// Whether the request completed by its deadline.
    pub fn met_deadline(&self) -> bool {
        self.completion <= self.deadline
    }
}

/// The rejection record of one shed request — what admission control
/// turned away, kept on the
/// [`ServingReport`](crate::ServingReport) beside the completions so
/// shed accounting survives report truncation (pod failure) without an
/// event recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedRecord {
    /// Request id.
    pub id: usize,
    /// Client stream.
    pub client: usize,
    /// Workload family.
    pub class: RequestClass,
    /// Arrival cycle.
    pub arrival: u64,
    /// Absolute completion deadline it could not have met (or the cap
    /// it ran into).
    pub deadline: u64,
    /// Rejection cycle.
    pub cycle: u64,
    /// Why admission rejected it.
    pub reason: crate::scheduler::ShedReason,
}

/// Latency and SLO attainment of one request class within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// The request class.
    pub class: RequestClass,
    /// Requests of this class completed.
    pub completed: usize,
    /// Completions past their deadline.
    pub slo_violations: usize,
    /// End-to-end latency distribution of this class.
    pub total: LatencySummary,
    /// Bandwidth-stall cycles attributed to this class: service time
    /// billed beyond the compute-only schedule under the shared memory
    /// model (0 when memory is unconstrained).
    pub bandwidth_stall_cycles: u64,
}

impl ClassMetrics {
    /// Per-class breakdown of `completions`, in [`RequestClass::ALL`]
    /// order, skipping classes with no traffic.
    pub fn from_completions(completions: &[Completion]) -> Vec<ClassMetrics> {
        RequestClass::ALL
            .iter()
            .filter_map(|&class| {
                let of_class: Vec<&Completion> =
                    completions.iter().filter(|c| c.class == class).collect();
                if of_class.is_empty() {
                    return None;
                }
                Some(ClassMetrics {
                    class,
                    completed: of_class.len(),
                    slo_violations: of_class.iter().filter(|c| !c.met_deadline()).count(),
                    total: LatencySummary::from_cycles(
                        of_class.iter().map(|c| c.total_cycles()).collect(),
                    ),
                    bandwidth_stall_cycles: of_class.iter().map(|c| c.bandwidth_stall_cycles).sum(),
                })
            })
            .collect()
    }
}

/// Aggregate metrics of one pod run.
#[derive(Debug, Clone, PartialEq)]
pub struct PodMetrics {
    /// Requests completed.
    pub completed: usize,
    /// Last completion cycle (wall clock of the run).
    pub makespan_cycles: u64,
    /// Pod clock in MHz (for cycle -> time conversions).
    pub clock_mhz: f64,
    /// Queueing-latency distribution.
    pub queue: LatencySummary,
    /// Service-latency distribution.
    pub service: LatencySummary,
    /// End-to-end latency distribution.
    pub total: LatencySummary,
    /// Busy fraction per array, in pod order.
    pub per_array_utilization: Vec<f64>,
    /// Dispatches issued.
    pub batches: usize,
    /// Mean fused requests per dispatch.
    pub mean_batch_size: f64,
    /// Dispatches sharded over more than one array.
    pub sharded_batches: usize,
    /// Dispatches where the bandwidth-aware planner refused a scale-out
    /// grid the compute-only planner would have taken (the pod's
    /// channels could not feed the duplicated operand streams). Always 0
    /// under [`MemoryModel::Unconstrained`](crate::MemoryModel) or
    /// [`ShardPlanner::ComputeOnly`](crate::ShardPlanner).
    pub sharding_refused: usize,
    /// Total service cycles billed beyond the compute-only schedule
    /// because the shared DRAM could not feed the tile walks (the
    /// pod-wide sum of per-class stalls; 0 when memory is
    /// unconstrained).
    pub bandwidth_stall_cycles: u64,
    /// Tile-boundary preemptions of running dispatches.
    pub preemptions: usize,
    /// Requests admitted into an in-flight batch (continuous batching).
    pub inflight_joins: usize,
    /// Completions that met their deadline.
    pub slo_met: usize,
    /// Completions past their deadline.
    pub slo_violations: usize,
    /// Requests shed by admission control — they never entered the
    /// queue and are *not* counted in `completed`. The conservation
    /// law: arrivals = `completed` + `shed` (deadline-missed requests
    /// are served-late completions inside `completed`).
    pub shed: usize,
    /// Per-class latency/SLO breakdown (classes with traffic only).
    pub per_class: Vec<ClassMetrics>,
    /// Total array (PE/SRAM) energy, microjoules.
    pub array_energy_uj: f64,
    /// Total DRAM transfer energy, millijoules (checkpoint spill/refill
    /// traffic included).
    pub dram_energy_mj: f64,
    /// The checkpoint spill/refill share of `dram_energy_mj` — the DRAM
    /// cost of tile-boundary preemptions (0 when nothing preempts).
    pub checkpoint_dram_mj: f64,
    /// Cycle-accurate spot checks run.
    pub spot_checks: usize,
    /// Spot checks whose simulated cycles diverged from the billed
    /// analytical cycles (always 0 unless the models drift apart).
    pub spot_check_mismatches: usize,
}

impl PodMetrics {
    /// Seconds represented by `cycles` at the pod clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Microseconds represented by `cycles` at the pod clock.
    pub fn micros(&self, cycles: u64) -> f64 {
        self.seconds(cycles) * 1e6
    }

    /// Completed requests per second of simulated wall clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / self.seconds(self.makespan_cycles)
    }

    /// Completed-in-SLO requests per second of simulated wall clock —
    /// the goodput the policy sweeps compare.
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.slo_met as f64 / self.seconds(self.makespan_cycles)
    }

    /// The breakdown for `class`, if it saw traffic.
    pub fn class_metrics(&self, class: RequestClass) -> Option<&ClassMetrics> {
        self.per_class.iter().find(|c| c.class == class)
    }

    /// Mean utilization over the pod's arrays.
    pub fn mean_utilization(&self) -> f64 {
        if self.per_array_utilization.is_empty() {
            return 0.0;
        }
        self.per_array_utilization.iter().sum::<f64>() / self.per_array_utilization.len() as f64
    }

    /// Total (array + DRAM) energy per completed request, millijoules.
    pub fn energy_per_request_mj(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        (self.array_energy_uj * 1e-3 + self.dram_energy_mj) / self.completed as f64
    }
}

impl fmt::Display for PodMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests in {} cycles ({:.1} req/s at {:.0} MHz)",
            self.completed,
            self.makespan_cycles,
            self.throughput_rps(),
            self.clock_mhz
        )?;
        writeln!(f, "  queue   {}", self.queue)?;
        writeln!(f, "  service {}", self.service)?;
        writeln!(f, "  total   {}", self.total)?;
        writeln!(
            f,
            "  {} dispatches (mean batch {:.2}, {} sharded, {} shards refused, {} preempted, \
             {} joins), utilization {:.1}%",
            self.batches,
            self.mean_batch_size,
            self.sharded_batches,
            self.sharding_refused,
            self.preemptions,
            self.inflight_joins,
            100.0 * self.mean_utilization()
        )?;
        if self.shed > 0 {
            writeln!(f, "  {} shed by admission control", self.shed)?;
        }
        if self.bandwidth_stall_cycles > 0 {
            writeln!(
                f,
                "  bandwidth stall {} cycles ({:.1} us)",
                self.bandwidth_stall_cycles,
                self.micros(self.bandwidth_stall_cycles)
            )?;
        }
        writeln!(
            f,
            "  SLO: {} met / {} violated ({:.1} goodput req/s)",
            self.slo_met,
            self.slo_violations,
            self.goodput_rps()
        )?;
        write!(
            f,
            "  energy {:.3} mJ/request ({:.1} uJ array + {:.3} mJ DRAM total, \
             {:.3} mJ of it checkpoint spill/refill)",
            self.energy_per_request_mj(),
            self.array_energy_uj,
            self.dram_energy_mj,
            self.checkpoint_dram_mj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn summary_of_small_population() {
        let s = LatencySummary::from_cycles(vec![30, 10, 20]);
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert_eq!(
            LatencySummary::from_cycles(vec![]),
            LatencySummary::default()
        );
    }

    #[test]
    fn completion_latency_decomposition() {
        let c = Completion {
            id: 0,
            client: 0,
            class: RequestClass::Decode,
            shape: GemmShape::new(1, 8, 8),
            arrival: 100,
            deadline: 350,
            dispatch: 150,
            completion: 400,
            array: 0,
            batch_size: 2,
            sharded_over: 1,
            preemptions: 0,
            joined_inflight: false,
            bandwidth_stall_cycles: 0,
            array_energy_uj: 0.0,
            dram_energy_mj: 0.0,
        };
        assert_eq!(c.queue_cycles(), 50);
        assert_eq!(c.service_cycles(), 250);
        assert_eq!(c.total_cycles(), 300);
        assert!(!c.met_deadline());
        let met = Completion { deadline: 400, ..c };
        assert!(met.met_deadline());
    }

    #[test]
    fn class_metrics_partition_completions() {
        let mk = |id: usize, class: RequestClass, completion: u64, deadline: u64| Completion {
            id,
            client: 0,
            class,
            shape: GemmShape::new(1, 8, 8),
            arrival: 0,
            deadline,
            dispatch: 0,
            completion,
            array: 0,
            batch_size: 1,
            sharded_over: 1,
            preemptions: 0,
            joined_inflight: false,
            bandwidth_stall_cycles: 0,
            array_energy_uj: 0.0,
            dram_energy_mj: 0.0,
        };
        let cs = vec![
            mk(0, RequestClass::Decode, 100, 200),
            mk(1, RequestClass::Decode, 300, 200), // violated
            mk(2, RequestClass::Prefill, 500, 900),
        ];
        let per = ClassMetrics::from_completions(&cs);
        assert_eq!(per.len(), 2);
        let decode = per
            .iter()
            .find(|c| c.class == RequestClass::Decode)
            .unwrap();
        assert_eq!(decode.completed, 2);
        assert_eq!(decode.slo_violations, 1);
        let prefill = per
            .iter()
            .find(|c| c.class == RequestClass::Prefill)
            .unwrap();
        assert_eq!(prefill.slo_violations, 0);
    }
}

//! Cluster-scale serving: a fleet of heterogeneous pods behind a
//! pluggable routing layer.
//!
//! The paper's efficiency claims only matter at fleet scale —
//! "millions of users" is a cluster of pods, not one — so this module
//! lifts the single-pod simulator to a multi-pod fleet while re-pinning
//! every single-pod invariant at cluster scope:
//!
//! * **One global clock, exact per-pod replay.** The engine routes the
//!   global arrival trace online under a deterministic router-side load
//!   estimator (the approximate counters a real L7 balancer keeps),
//!   then replays each pod's routed sub-trace through the *exact*
//!   single-pod event loop ([`simulate_pod_trace`]). Pods share no
//!   cross-pod resource (each owns its DRAM channels), so the replays
//!   compose into the coupled fleet timeline exactly.
//! * **Purity.** The whole run is a pure function of
//!   `(traffic.seed, ClusterConfig, TrafficConfig)`: the estimator is
//!   integer arithmetic, the sampling routers draw from a
//!   [`ServeRng`](crate::ServeRng) seeded by the traffic seed, and all
//!   router state lives in ordered maps.
//! * **Single-pod equivalence.** A 1-pod cluster under the trivial
//!   router is bit-identical to [`simulate_pod`](crate::simulate_pod)
//!   (the routed sub-trace *is* the generated trace), pinned in
//!   `crates/serve/tests/cluster.rs`.
//! * **Per-client FIFO.** Routing is session-sticky (per client, or per
//!   `(client, class)` for specialist routers), so the pod-level
//!   invariant lifts to the fleet — see [`crate::router`].
//!
//! Failure injection ([`ClusterPodConfig::fail_at`]) kills a pod
//! mid-run: completions it finished before the failure survive, its
//! unfinished requests are re-routed (and re-run from scratch) at the
//! failure cycle, and no request is lost or double-completed.
//! Deterministic autoscaling ([`AutoscaleConfig`]) activates spare pods
//! under load with a warm-up cost billed through the ordinary
//! queue-latency metrics ([`PodConfig::available_from`]).
//!
//! # Examples
//!
//! ```
//! use axon_core::runtime::Architecture;
//! use axon_serve::{
//!     simulate_cluster, ClusterConfig, ClusterPodConfig, PodConfig, RouterPolicy, TrafficConfig,
//! };
//!
//! let pods = vec![
//!     ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Axon, 32)),
//!     ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Conventional, 32)),
//! ];
//! let cluster = ClusterConfig::new(pods, RouterPolicy::JoinShortestQueue);
//! let traffic = TrafficConfig::open_loop(7, 60, 2000.0);
//! let report = simulate_cluster(&cluster, &traffic);
//! assert_eq!(report.metrics.completed, 60);
//! assert_eq!(report.metrics.routed_per_pod.iter().sum::<usize>(), 60);
//! ```

use crate::generator::{RequestGenerator, TrafficConfig};
use crate::metrics::{ClassMetrics, Completion, LatencySummary, PodMetrics};
use crate::pod::{
    service_cycles, simulate_pod_trace, simulate_pod_trace_traced_at, PodConfig, ServingReport,
    SharedModelCache,
};
use crate::request::{Request, RequestClass};
use crate::router::{PodRole, PodView, RouterPolicy, RoutingPolicy};
use crate::scheduler::{AdmissionOutlook, AdmissionPolicy, ShedReason};
use crate::trace::{NullSink, RecordingSink, TraceEvent, TraceSink};
use axon_core::runtime::Architecture;
use axon_core::Tiling;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One pod in the fleet: its full single-pod specification plus the
/// cluster-level attributes (specialist role, failure schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPodConfig {
    /// The pod itself (arrays, scheduler, memory model, ...).
    pub pod: PodConfig,
    /// Disaggregation role (only [`RouterPolicy::Disaggregated`] reads
    /// it).
    pub role: PodRole,
    /// Failure injection: the pod dies at this cycle. Completions it
    /// finished strictly before then survive; everything else is
    /// re-routed at the failure cycle and re-run from scratch.
    pub fail_at: Option<u64>,
}

impl ClusterPodConfig {
    /// A general-role, never-failing pod.
    pub fn new(pod: PodConfig) -> Self {
        ClusterPodConfig {
            pod,
            role: PodRole::General,
            fail_at: None,
        }
    }

    /// Builder-style role override.
    pub fn with_role(mut self, role: PodRole) -> Self {
        self.role = role;
        self
    }

    /// Builder-style failure injection.
    pub fn with_fail_at(mut self, cycle: u64) -> Self {
        self.fail_at = Some(cycle);
        self
    }
}

/// Deterministic autoscaling: spare pods activate under load and drain
/// when it subsides, entirely from the router-side load estimate (no
/// randomness, no wall clock).
///
/// Pods `0..initial_pods` start active; the rest are cold spares. When
/// the fleet's estimated outstanding work exceeds `high_watermark` per
/// active pod, the next spare activates and becomes routable
/// immediately — but its arrays only come online `warmup_cycles` later
/// ([`PodConfig::available_from`]), so requests routed during spin-up
/// queue and the warm-up cost is billed through the ordinary
/// queue-latency and SLO metrics. When outstanding work falls below
/// `low_watermark` per remaining pod, the most recently activated spare
/// drains: it stops accepting new clients but keeps serving (and stays
/// bound to) its existing ones, and re-opens warm if load returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscaleConfig {
    /// Pods active at cycle 0 (at least 1 is enforced).
    pub initial_pods: usize,
    /// Estimated outstanding requests per active pod that trigger a
    /// scale-up.
    pub high_watermark: usize,
    /// Estimated outstanding requests per active pod below which the
    /// most recent dynamic pod drains. Must be below `high_watermark`.
    pub low_watermark: usize,
    /// Cycles between a spare's activation and its arrays coming
    /// online.
    pub warmup_cycles: u64,
}

impl AutoscaleConfig {
    /// Builds a validated autoscale policy.
    pub fn new(initial_pods: usize, high: usize, low: usize, warmup_cycles: u64) -> Self {
        assert!(low < high, "low watermark must be below the high one");
        AutoscaleConfig {
            initial_pods,
            high_watermark: high,
            low_watermark: low,
            warmup_cycles,
        }
    }
}

/// Full cluster specification: the fleet, the router, and (optionally)
/// the autoscaler.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// The fleet, declaration order (round-robin deals in this order;
    /// every other router is declaration-order insensitive).
    pub pods: Vec<ClusterPodConfig>,
    /// How new clients are assigned to pods.
    pub router: RouterPolicy,
    /// Deterministic autoscaling; `None` keeps every pod active.
    pub autoscale: Option<AutoscaleConfig>,
    /// Front-door admission control, applied at routing time against
    /// the router-side estimator of the chosen pod: `QueueCap` bounds
    /// its pruned outstanding count, `DeadlineInfeasible` sheds when
    /// the booked completion estimate would already blow the deadline.
    /// A shed request is never booked or assigned (the estimator stays
    /// honest) and terminates with a [`TraceEvent::Shed`]. Pods may
    /// additionally run their own [`PodConfig::admission`] policy.
    pub admission: AdmissionPolicy,
}

impl ClusterConfig {
    /// A cluster with every pod active, no autoscaling, and accept-all
    /// admission.
    pub fn new(pods: Vec<ClusterPodConfig>, router: RouterPolicy) -> Self {
        ClusterConfig {
            pods,
            router,
            autoscale: None,
            admission: AdmissionPolicy::AcceptAll,
        }
    }

    /// Builder-style autoscale override.
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Builder-style front-door admission override.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }
}

/// One completion with the pod that served it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCompletion {
    /// Declaration index of the serving pod.
    pub pod: usize,
    /// The pod-level completion record.
    pub completion: Completion,
}

/// Fleet-wide aggregate metrics: the cluster analogue of
/// [`PodMetrics`], recomputed from the union of all pods' completion
/// records so the fleet numbers decompose exactly over the pods.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMetrics {
    /// Requests completed fleet-wide.
    pub completed: usize,
    /// Requests routed to each pod, declaration order (re-routes count
    /// at the pod that finally served them; a request lost to a failure
    /// counts at both its dead and its rescue pod).
    pub routed_per_pod: Vec<usize>,
    /// Requests re-routed off a failed pod.
    pub rerouted: usize,
    /// Requests shed by admission control fleet-wide: the router's
    /// front door ([`ClusterConfig::admission`]) plus every pod's own
    /// [`PodConfig::admission`] (the sum of `per_pod[i].shed`).
    pub shed: usize,
    /// Pods that failed mid-run.
    pub failed_pods: usize,
    /// Autoscale activations (cold spares plus warm re-opens).
    pub scale_ups: usize,
    /// Autoscale drains.
    pub scale_downs: usize,
    /// Last completion cycle fleet-wide (the global clock's span).
    pub makespan_cycles: u64,
    /// Common pod clock in MHz.
    pub clock_mhz: f64,
    /// Fleet queueing-latency distribution.
    pub queue: LatencySummary,
    /// Fleet service-latency distribution.
    pub service: LatencySummary,
    /// Fleet end-to-end latency distribution.
    pub total: LatencySummary,
    /// Completions that met their deadline.
    pub slo_met: usize,
    /// Completions past their deadline.
    pub slo_violations: usize,
    /// Fleet-wide per-class breakdown.
    pub per_class: Vec<ClassMetrics>,
    /// Each pod's own metrics, declaration order. A failed pod's entry
    /// covers only its surviving completions (completion-derived fields
    /// recomputed over them; engine counters zeroed).
    pub per_pod: Vec<PodMetrics>,
    /// Fleet array energy (sum over pods), microjoules.
    pub array_energy_uj: f64,
    /// Fleet DRAM energy (sum over pods), millijoules.
    pub dram_energy_mj: f64,
}

impl ClusterMetrics {
    /// Seconds represented by `cycles` at the cluster clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Microseconds represented by `cycles` at the cluster clock.
    pub fn micros(&self, cycles: u64) -> f64 {
        self.seconds(cycles) * 1e6
    }

    /// Completed requests per second of simulated wall clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.completed as f64 / self.seconds(self.makespan_cycles)
    }

    /// Completed-in-SLO requests per second of simulated wall clock.
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.slo_met as f64 / self.seconds(self.makespan_cycles)
    }

    /// The fleet-wide breakdown for `class`, if it saw traffic.
    pub fn class_metrics(&self, class: RequestClass) -> Option<&ClassMetrics> {
        self.per_class.iter().find(|c| c.class == class)
    }
}

impl fmt::Display for ClusterMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests over {} pods in {} cycles ({:.1} req/s at {:.0} MHz)",
            self.completed,
            self.per_pod.len(),
            self.makespan_cycles,
            self.throughput_rps(),
            self.clock_mhz
        )?;
        writeln!(f, "  queue   {}", self.queue)?;
        writeln!(f, "  service {}", self.service)?;
        writeln!(f, "  total   {}", self.total)?;
        writeln!(
            f,
            "  routed {:?} ({} rerouted, {} shed, {} pods failed, {} scale-ups, {} scale-downs)",
            self.routed_per_pod,
            self.rerouted,
            self.shed,
            self.failed_pods,
            self.scale_ups,
            self.scale_downs
        )?;
        write!(
            f,
            "  SLO: {} met / {} violated ({:.1} goodput req/s), \
             energy {:.1} uJ array + {:.3} mJ DRAM",
            self.slo_met,
            self.slo_violations,
            self.goodput_rps(),
            self.array_energy_uj,
            self.dram_energy_mj
        )
    }
}

/// Everything a cluster run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Each pod's full single-pod report, declaration order. A failed
    /// pod's `trace` is everything routed to it; its `completions` are
    /// only what it finished before dying.
    pub per_pod: Vec<ServingReport>,
    /// The union of all completions, sorted by `(completion, pod, id)`.
    pub completions: Vec<ClusterCompletion>,
    /// Cycle each pod's arrays came (or would come) online: 0 for
    /// initially-active warm pods, the activation + warm-up edge for
    /// autoscaled spares.
    pub ready_at: Vec<u64>,
    /// Fleet-wide aggregates.
    pub metrics: ClusterMetrics,
}

/// The router-side estimator state of one pod.
#[derive(Debug, Clone)]
struct PodState {
    key: String,
    role: PodRole,
    alive: bool,
    active: bool,
    draining: bool,
    /// Activated by the autoscaler (only dynamic pods drain).
    dynamic: bool,
    ready_at: u64,
    /// Estimated next-free cycle per array.
    server_free: Vec<u64>,
    /// `(estimated completion, id)` of routed, not-yet-finished work.
    outstanding: Vec<(u64, usize)>,
    assigned: Vec<Request>,
    routed: usize,
}

impl PodState {
    fn prune(&mut self, now: u64) {
        self.outstanding.retain(|&(t, _)| t > now);
    }

    /// Books `req` onto the estimator: the least-loaded server slot,
    /// starting no earlier than arrival and the pod's ready edge.
    fn book(&mut self, req: Request, now: u64, est_service: u64) {
        let s = self
            .server_free
            .iter()
            .enumerate()
            .min_by_key(|&(i, &f)| (f, i))
            .map(|(i, _)| i)
            .expect("pods have at least one array");
        let start = now.max(self.server_free[s]).max(self.ready_at);
        let done = start + est_service;
        self.server_free[s] = done;
        self.outstanding.push((done, req.id));
        self.assigned.push(req);
        self.routed += 1;
    }
}

/// Stable affinity-scope code for a class (the `(client, class)` key of
/// class-scoped routers).
fn class_code(class: RequestClass) -> u8 {
    match class {
        RequestClass::Prefill => 0,
        RequestClass::Decode => 1,
        RequestClass::ResNet50 => 2,
        RequestClass::YoloV3 => 3,
        RequestClass::Gemv => 4,
    }
}

/// The pod configuration a (possibly autoscaled) pod actually runs
/// with: its own spec, arrays gated until the activation ready edge.
fn effective_pod(cfg: &ClusterPodConfig, ready_at: u64) -> PodConfig {
    let mut pod = cfg.pod.clone();
    pod.available_from = pod.available_from.max(ready_at);
    pod
}

type EstCache = BTreeMap<(usize, (usize, usize, usize)), u64>;

/// Routes one request: sticky affinity first, the policy on a miss,
/// then an admission review against the chosen pod's estimator, then
/// books the estimator. Returns the chosen pod and, when admission
/// rejects, the shed reason — a shed request is *not* booked, so it
/// never inflates the outstanding estimate the routers read.
#[allow(clippy::too_many_arguments)]
fn route_one(
    req: Request,
    now: u64,
    pods: &[ClusterPodConfig],
    states: &mut [PodState],
    router: &mut dyn RoutingPolicy,
    affinity: &mut BTreeMap<(usize, u8), usize>,
    cache: &mut EstCache,
    admission: AdmissionPolicy,
) -> (usize, Option<ShedReason>) {
    for s in states.iter_mut() {
        if s.alive {
            s.prune(now);
        }
    }
    let scope = if router.class_scoped() {
        class_code(req.class)
    } else {
        0
    };
    let akey = (req.client, scope);
    let target = match affinity.get(&akey) {
        Some(&p) if states[p].alive => p,
        _ => {
            let mut eligible: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.alive && s.active && !s.draining)
                .map(|(i, _)| i)
                .collect();
            if eligible.is_empty() {
                // Every active pod is draining or dead: fall back to
                // anything still alive.
                eligible = states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.alive)
                    .map(|(i, _)| i)
                    .collect();
            }
            assert!(!eligible.is_empty(), "no alive pod left to route to");
            let views: Vec<PodView> = states
                .iter()
                .enumerate()
                .map(|(i, s)| PodView {
                    index: i,
                    key: &s.key,
                    arrays: pods[i].pod.arrays.len(),
                    axon_arrays: pods[i]
                        .pod
                        .arrays
                        .iter()
                        .filter(|a| a.arch == Architecture::Axon)
                        .count(),
                    role: s.role,
                    outstanding: s.outstanding.len(),
                    ready_at: s.ready_at,
                })
                .collect();
            let p = router.route(&req, now, &views, &eligible);
            debug_assert!(eligible.contains(&p), "router returned an ineligible pod");
            affinity.insert(akey, p);
            p
        }
    };
    let shape = req.workload.shape;
    let est = *cache
        .entry((target, (shape.m, shape.k, shape.n)))
        .or_insert_with(|| {
            // Router-side service estimate: the scale-up latency on the
            // pod's first array — deliberately approximate (real
            // balancers estimate too); the replay bills exactly.
            let p = &pods[target].pod;
            service_cycles(&p.arrays[0], p.mapping, p.drain, Tiling::ScaleUp, shape).1 as u64
        });
    // Front-door admission against the estimator of the chosen pod.
    // The outlook collapses to the slot `book` would pick: `start` is
    // the least-loaded server's free edge, so with `queued_work: 0`
    // and `arrays: 1` the deadline test is exactly
    // `booked completion > deadline`.
    let start = states[target]
        .server_free
        .iter()
        .min()
        .copied()
        .expect("pods have at least one array")
        .max(now)
        .max(states[target].ready_at);
    if let Some(reason) = admission.review(&AdmissionOutlook {
        now: start,
        deadline: req.deadline,
        queue_depth: states[target].outstanding.len(),
        service_estimate: est,
        queued_work: 0,
        arrays: 1,
    }) {
        return (target, Some(reason));
    }
    states[target].book(req, now, est);
    (target, None)
}

/// Recomputes a failed pod's report over the completions it finished by
/// `cutoff`: completion-derived metrics are recomputed, engine counters
/// (batches, preemptions, utilization, ...) are zeroed — the surviving
/// prefix cannot attribute them.
fn truncate_report(mut report: ServingReport, cutoff: u64, arrays: usize) -> ServingReport {
    report.completions.retain(|c| c.completion <= cutoff);
    // A shed by the pod's own admission policy is terminal the moment
    // it happens, so sheds at or before the failure survive it (the
    // request must not be resurrected at a rescue pod).
    report.shed.retain(|s| s.cycle <= cutoff);
    let cs = &report.completions;
    let slo_met = cs.iter().filter(|c| c.met_deadline()).count();
    let metrics = PodMetrics {
        completed: cs.len(),
        makespan_cycles: cs.iter().map(|c| c.completion).max().unwrap_or(0),
        clock_mhz: report.metrics.clock_mhz,
        queue: LatencySummary::from_cycles(cs.iter().map(|c| c.queue_cycles()).collect()),
        service: LatencySummary::from_cycles(cs.iter().map(|c| c.service_cycles()).collect()),
        total: LatencySummary::from_cycles(cs.iter().map(|c| c.total_cycles()).collect()),
        per_array_utilization: vec![0.0; arrays],
        batches: 0,
        mean_batch_size: 0.0,
        sharded_batches: 0,
        sharding_refused: 0,
        bandwidth_stall_cycles: cs.iter().map(|c| c.bandwidth_stall_cycles).sum(),
        preemptions: 0,
        inflight_joins: 0,
        slo_met,
        slo_violations: cs.len() - slo_met,
        shed: report.shed.len(),
        per_class: ClassMetrics::from_completions(cs),
        array_energy_uj: cs.iter().map(|c| c.array_energy_uj).sum(),
        dram_energy_mj: cs.iter().map(|c| c.dram_energy_mj).sum(),
        checkpoint_dram_mj: 0.0,
        spot_checks: 0,
        spot_check_mismatches: 0,
    };
    report.metrics = metrics;
    report
}

/// Autoscale step at `now`: one activation or one drain per event, so
/// the fleet scales gradually and deterministically.
fn autoscale_step(
    a: &AutoscaleConfig,
    now: u64,
    states: &mut [PodState],
    scale_ups: &mut usize,
    scale_downs: &mut usize,
    sink: &mut dyn TraceSink,
) {
    for s in states.iter_mut() {
        if s.alive {
            s.prune(now);
        }
    }
    let total: usize = states
        .iter()
        .filter(|s| s.alive)
        .map(|s| s.outstanding.len())
        .sum();
    let active_n = states
        .iter()
        .filter(|s| s.alive && s.active && !s.draining)
        .count();
    if active_n == 0 {
        return; // routing falls back to any alive pod
    }
    if total > a.high_watermark.saturating_mul(active_n) {
        // Prefer re-opening a draining pod: it is already warm.
        if let Some((i, s)) = states
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| s.alive && s.active && s.draining)
            .last()
        {
            s.draining = false;
            *scale_ups += 1;
            if sink.enabled() {
                sink.record(
                    i,
                    TraceEvent::ScaleUp {
                        pod: i,
                        ready_at: s.ready_at,
                        cycle: now,
                    },
                );
            }
        } else if let Some((i, s)) = states
            .iter_mut()
            .enumerate()
            .find(|(_, s)| s.alive && !s.active)
        {
            s.active = true;
            s.dynamic = true;
            s.ready_at = s.ready_at.max(now + a.warmup_cycles);
            for f in s.server_free.iter_mut() {
                *f = (*f).max(s.ready_at);
            }
            *scale_ups += 1;
            if sink.enabled() {
                sink.record(
                    i,
                    TraceEvent::ScaleUp {
                        pod: i,
                        ready_at: s.ready_at,
                        cycle: now,
                    },
                );
            }
        }
    } else if active_n > 1 && total < a.low_watermark.saturating_mul(active_n - 1) {
        if let Some((i, s)) = states
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| s.alive && s.active && !s.draining && s.dynamic)
            .last()
        {
            s.draining = true;
            *scale_downs += 1;
            if sink.enabled() {
                sink.record(i, TraceEvent::ScaleDown { pod: i, cycle: now });
            }
        }
    }
}

/// Kills pod `pi` at cycle `f`: replays its routed sub-trace, keeps
/// completions it finished by `f`, drops its affinities and re-routes
/// its unfinished requests (arrival bumped to `f`, original deadlines
/// kept — a failure does not extend an SLO).
#[allow(clippy::too_many_arguments)]
fn process_failure(
    f: u64,
    pi: usize,
    pods: &[ClusterPodConfig],
    states: &mut [PodState],
    router: &mut dyn RoutingPolicy,
    affinity: &mut BTreeMap<(usize, u8), usize>,
    cache: &mut EstCache,
    reports: &mut [Option<ServingReport>],
    rerouted: &mut usize,
    admission: AdmissionPolicy,
    router_shed: &mut usize,
    sink: &mut dyn TraceSink,
) {
    states[pi].alive = false;
    states[pi].active = false;
    let cfg = effective_pod(&pods[pi], states[pi].ready_at);
    // When tracing, record the dead pod's replay so the events of
    // completions that survive the cut can be forwarded.
    let mut rec = RecordingSink::default();
    let full = if sink.enabled() {
        simulate_pod_trace_traced_at(&cfg, &states[pi].assigned, &mut rec, pi, None)
    } else {
        simulate_pod_trace(&cfg, &states[pi].assigned)
    };
    let report = truncate_report(full, f, cfg.arrays.len());
    // Terminal on the dead pod: completions it finished by the cut,
    // plus requests its own admission policy shed by then. Neither may
    // re-arrive at a rescue pod.
    let kept: BTreeSet<usize> = report
        .completions
        .iter()
        .map(|c| c.id)
        .chain(report.shed.iter().map(|s| s.id))
        .collect();
    if sink.enabled() {
        sink.record(pi, TraceEvent::PodFailed { pod: pi, cycle: f });
        // Forward only the surviving prefix: events of requests (and
        // the jobs that served them) that completed by the failure. A
        // fused batch completes atomically, so a job's events are kept
        // or dropped as a unit and the preempt/drain/resume balance is
        // preserved. Dropped requests re-arrive at their rescue pod.
        let kept_seqs: BTreeSet<usize> = rec
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o)
                    if o.completion <= f && kept.contains(&o.id) =>
                {
                    Some(o.seq)
                }
                _ => None,
            })
            .collect();
        for (p, e) in rec.events {
            let keep = match &e {
                TraceEvent::Arrived { id, .. } | TraceEvent::Enqueued { id, .. } => {
                    kept.contains(id)
                }
                TraceEvent::BatchJoined { id, .. } => kept.contains(id),
                TraceEvent::Shed { id, .. } => kept.contains(id),
                TraceEvent::Dispatched { seq, .. }
                | TraceEvent::ShardPlanned { seq, .. }
                | TraceEvent::ShardRefused { seq, .. }
                | TraceEvent::Preempted { seq, .. }
                | TraceEvent::CheckpointDrained { seq, .. }
                | TraceEvent::Resumed { seq, .. } => kept_seqs.contains(seq),
                TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) => kept.contains(&o.id),
                _ => e.cycle() <= f,
            };
            if keep {
                sink.record(p, e);
            }
        }
    }
    let unfinished: Vec<Request> = states[pi]
        .assigned
        .iter()
        .filter(|r| !kept.contains(&r.id))
        .copied()
        .collect();
    reports[pi] = Some(report);
    affinity.retain(|_, &mut p| p != pi);
    for mut r in unfinished {
        r.arrival = r.arrival.max(f);
        *rerouted += 1;
        let (to, shed_reason) = route_one(r, f, pods, states, router, affinity, cache, admission);
        if sink.enabled() {
            sink.record(
                pi,
                TraceEvent::Rerouted {
                    id: r.id,
                    from_pod: pi,
                    to_pod: to,
                    cycle: f,
                },
            );
        }
        // The rescue pod's front door may refuse the refugee: its
        // events were dropped from the dead pod's stream, so it
        // re-arrives (and terminates) at the rescue pod.
        if let Some(reason) = shed_reason {
            *router_shed += 1;
            if sink.enabled() {
                sink.record(
                    to,
                    TraceEvent::Arrived {
                        id: r.id,
                        client: r.client,
                        class: r.class,
                        cycle: f,
                    },
                );
                sink.record(
                    to,
                    TraceEvent::Shed {
                        id: r.id,
                        client: r.client,
                        class: r.class,
                        cycle: f,
                        reason,
                    },
                );
            }
        }
    }
}

/// Runs `traffic` through the fleet: online routing over the global
/// arrival trace, then an exact single-pod replay of each routed
/// sub-trace. Open-loop traffic only (closed-loop feedback is a
/// per-pod construct; use [`simulate_pod`](crate::simulate_pod)).
///
/// Deterministic: the same `(cluster, traffic)` pair always produces
/// the identical report.
pub fn simulate_cluster(cluster: &ClusterConfig, traffic: &TrafficConfig) -> ClusterReport {
    simulate_cluster_traced(cluster, traffic, &mut NullSink)
}

/// [`simulate_cluster`] with a [`TraceSink`] attached: routing,
/// autoscale, failure and per-pod lifecycle events are delivered to
/// `sink`, each stamped with the serving pod's declaration index. The
/// sink only observes — the report is bit-identical to
/// [`simulate_cluster`]'s (asserted per router in
/// `crates/serve/tests/trace.rs`). A failed pod contributes only the
/// events of completions that survive the cut; its unfinished requests
/// re-arrive (and re-trace) at their rescue pods.
pub fn simulate_cluster_traced(
    cluster: &ClusterConfig,
    traffic: &TrafficConfig,
    sink: &mut dyn TraceSink,
) -> ClusterReport {
    simulate_cluster_traced_impl(cluster, traffic, sink, true)
}

/// Shared implementation: `share_models` backs every pod replay with
/// one fleet-wide [`SharedModelCache`]. Exposed crate-privately so
/// `shared_model_cache_is_bit_identical` can pin the shared and
/// loop-local runs against each other.
pub(crate) fn simulate_cluster_traced_impl(
    cluster: &ClusterConfig,
    traffic: &TrafficConfig,
    sink: &mut dyn TraceSink,
    share_models: bool,
) -> ClusterReport {
    assert!(!cluster.pods.is_empty(), "a cluster needs at least one pod");
    let clock_mhz = cluster.pods[0].pod.clock_mhz;
    assert!(
        cluster.pods.iter().all(|p| p.pod.clock_mhz == clock_mhz),
        "cluster pods must share one clock"
    );
    // Any trace-driven arrival process works at cluster scope — the
    // router consumes a pre-generated global trace. Only closed-loop
    // feedback is a per-pod construct.
    let trace = RequestGenerator::new(traffic)
        .arrival_trace(&traffic.arrival, traffic.num_clients)
        .unwrap_or_else(|| {
            panic!("cluster simulation is trace-driven only (closed-loop is a per-pod construct)")
        });

    let n = cluster.pods.len();
    let initial_active = match cluster.autoscale {
        None => n,
        Some(a) => a.initial_pods.clamp(1, n),
    };
    let mut states: Vec<PodState> = cluster
        .pods
        .iter()
        .enumerate()
        .map(|(i, p)| PodState {
            key: format!("{:?}|{:?}", p.pod, p.role),
            role: p.role,
            alive: true,
            active: i < initial_active,
            draining: false,
            dynamic: false,
            ready_at: p.pod.available_from,
            server_free: vec![p.pod.available_from; p.pod.arrays.len()],
            outstanding: Vec::new(),
            assigned: Vec::new(),
            routed: 0,
        })
        .collect();
    let mut router = cluster.router.build(traffic.seed);
    let mut affinity: BTreeMap<(usize, u8), usize> = BTreeMap::new();
    let mut cache: EstCache = BTreeMap::new();
    let mut reports: Vec<Option<ServingReport>> = vec![None; n];
    let mut rerouted = 0usize;
    let mut router_shed = 0usize;
    let (mut scale_ups, mut scale_downs) = (0usize, 0usize);

    // Failure events in time order; a failure at cycle t happens before
    // any arrival at t (the dying pod cannot accept same-cycle work).
    let mut fails: Vec<(u64, usize)> = cluster
        .pods
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.fail_at.map(|f| (f, i)))
        .collect();
    fails.sort_unstable();
    let mut fi = 0usize;

    for req in &trace {
        while fi < fails.len() && fails[fi].0 <= req.arrival {
            let (f, pi) = fails[fi];
            process_failure(
                f,
                pi,
                &cluster.pods,
                &mut states,
                router.as_mut(),
                &mut affinity,
                &mut cache,
                &mut reports,
                &mut rerouted,
                cluster.admission,
                &mut router_shed,
                sink,
            );
            fi += 1;
        }
        if let Some(a) = &cluster.autoscale {
            autoscale_step(
                a,
                req.arrival,
                &mut states,
                &mut scale_ups,
                &mut scale_downs,
                sink,
            );
        }
        let (target, shed_reason) = route_one(
            *req,
            req.arrival,
            &cluster.pods,
            &mut states,
            router.as_mut(),
            &mut affinity,
            &mut cache,
            cluster.admission,
        );
        if let Some(reason) = shed_reason {
            // Shed at the front door: never booked, never assigned, so
            // no pod replay will see it — its whole lifecycle (Arrived
            // then Shed) is emitted here, attributed to the pod that
            // refused it.
            router_shed += 1;
            if sink.enabled() {
                sink.record(
                    target,
                    TraceEvent::Arrived {
                        id: req.id,
                        client: req.client,
                        class: req.class,
                        cycle: req.arrival,
                    },
                );
                sink.record(
                    target,
                    TraceEvent::Shed {
                        id: req.id,
                        client: req.client,
                        class: req.class,
                        cycle: req.arrival,
                        reason,
                    },
                );
            }
            continue;
        }
        if sink.enabled() {
            sink.record(
                target,
                TraceEvent::Routed {
                    id: req.id,
                    client: req.client,
                    pod: target,
                    cycle: req.arrival,
                },
            );
        }
    }
    while fi < fails.len() {
        let (f, pi) = fails[fi];
        process_failure(
            f,
            pi,
            &cluster.pods,
            &mut states,
            router.as_mut(),
            &mut affinity,
            &mut cache,
            &mut reports,
            &mut rerouted,
            cluster.admission,
            &mut router_shed,
            sink,
        );
        fi += 1;
    }

    // Exact replay of every surviving pod's sub-trace. The replays are
    // embarrassingly parallel — pods share no cross-pod resource, so
    // each sub-trace runs on its own thread, recording trace events
    // into a private sink. Determinism is preserved by construction:
    // each report lands in its pod's pre-assigned slot, and recorded
    // events are forwarded to the caller's sink in ascending pod order
    // *after* all threads join — exactly the order the sequential loop
    // emitted, independent of thread completion order.
    let record = sink.enabled();
    // One model cache L2 for the whole sweep point: replay threads
    // share pure model results (see `SharedModelCache` for why this
    // cannot perturb any report).
    let shared_models = share_models.then(|| std::sync::Arc::new(SharedModelCache::default()));
    let replayed: Vec<Option<(ServingReport, RecordingSink)>> = std::thread::scope(|scope| {
        let handles: Vec<Option<_>> = states
            .iter()
            .enumerate()
            .map(|(i, st)| {
                if reports[i].is_some() {
                    return None;
                }
                let pods = &cluster.pods;
                let shared = shared_models.clone();
                Some(scope.spawn(move || {
                    let cfg = effective_pod(&pods[i], st.ready_at);
                    let mut local = RecordingSink::default();
                    let report = if record {
                        simulate_pod_trace_traced_at(&cfg, &st.assigned, &mut local, i, shared)
                    } else {
                        simulate_pod_trace_traced_at(&cfg, &st.assigned, &mut NullSink, i, shared)
                    };
                    (report, local)
                }))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("pod replay thread panicked")))
            .collect()
    });
    for (i, r) in replayed.into_iter().enumerate() {
        if let Some((report, local)) = r {
            for (pod, ev) in local.events {
                sink.record(pod, ev);
            }
            reports[i] = Some(report);
        }
    }
    let per_pod: Vec<ServingReport> = reports
        .into_iter()
        .map(|r| r.expect("every pod reported"))
        .collect();

    let mut completions: Vec<ClusterCompletion> = per_pod
        .iter()
        .enumerate()
        .flat_map(|(i, r)| {
            r.completions.iter().map(move |&c| ClusterCompletion {
                pod: i,
                completion: c,
            })
        })
        .collect();
    completions.sort_by_key(|c| (c.completion.completion, c.pod, c.completion.id));
    let all: Vec<Completion> = completions.iter().map(|c| c.completion).collect();
    let slo_met = all.iter().filter(|c| c.met_deadline()).count();
    let metrics = ClusterMetrics {
        completed: all.len(),
        routed_per_pod: states.iter().map(|s| s.routed).collect(),
        rerouted,
        shed: router_shed + per_pod.iter().map(|r| r.metrics.shed).sum::<usize>(),
        failed_pods: states.iter().filter(|s| !s.alive).count(),
        scale_ups,
        scale_downs,
        makespan_cycles: all.iter().map(|c| c.completion).max().unwrap_or(0),
        clock_mhz,
        queue: LatencySummary::from_cycles(all.iter().map(|c| c.queue_cycles()).collect()),
        service: LatencySummary::from_cycles(all.iter().map(|c| c.service_cycles()).collect()),
        total: LatencySummary::from_cycles(all.iter().map(|c| c.total_cycles()).collect()),
        slo_met,
        slo_violations: all.len() - slo_met,
        per_class: ClassMetrics::from_completions(&all),
        per_pod: per_pod.iter().map(|r| r.metrics.clone()).collect(),
        array_energy_uj: per_pod.iter().map(|r| r.metrics.array_energy_uj).sum(),
        dram_energy_mj: per_pod.iter().map(|r| r.metrics.dram_energy_mj).sum(),
    };

    ClusterReport {
        per_pod,
        completions,
        ready_at: states.iter().map(|s| s.ready_at).collect(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<ClusterPodConfig> {
        (0..n)
            .map(|_| ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Axon, 32)))
            .collect()
    }

    fn light_traffic(seed: u64, requests: usize) -> TrafficConfig {
        TrafficConfig::open_loop(seed, requests, 1500.0)
    }

    #[test]
    fn every_router_completes_everything() {
        let traffic = light_traffic(11, 80);
        for router in RouterPolicy::ALL {
            let cluster = ClusterConfig::new(fleet(3), router);
            let r = simulate_cluster(&cluster, &traffic);
            assert_eq!(r.metrics.completed, 80, "{}", router.name());
            assert_eq!(r.metrics.routed_per_pod.iter().sum::<usize>(), 80);
            assert_eq!(r.metrics.rerouted, 0);
            assert_eq!(r.metrics.failed_pods, 0);
        }
    }

    /// The fleet-shared model-cache L2 must be unobservable: a cluster
    /// replay with every pod on one [`SharedModelCache`] is bit-equal
    /// to the loop-local-cache replay, whatever order threads populate
    /// the shared maps in. Heterogeneous pods (different arch/array
    /// mixes) make the pods' key spaces overlap only partially.
    #[test]
    fn shared_model_cache_is_bit_identical() {
        let mut pods = vec![
            ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Axon, 32)),
            ClusterPodConfig::new(PodConfig::homogeneous(2, Architecture::Conventional, 32)),
            ClusterPodConfig::new(PodConfig::homogeneous(4, Architecture::Axon, 16)),
        ];
        // Sharding-capable pod: populates schedule + plan caches too.
        pods[2].pod = pods[2].pod.clone().with_shard_min_macs(Some(1 << 18));
        let cluster = ClusterConfig::new(pods, RouterPolicy::JoinShortestQueue);
        let traffic = light_traffic(23, 120);
        for _ in 0..3 {
            let shared = simulate_cluster_traced_impl(&cluster, &traffic, &mut NullSink, true);
            let local = simulate_cluster_traced_impl(&cluster, &traffic, &mut NullSink, false);
            assert_eq!(shared, local);
        }
    }

    #[test]
    fn round_robin_spreads_clients() {
        let cluster = ClusterConfig::new(fleet(3), RouterPolicy::RoundRobin);
        let r = simulate_cluster(&cluster, &light_traffic(3, 120));
        for (i, &routed) in r.metrics.routed_per_pod.iter().enumerate() {
            assert!(routed > 0, "pod {i} got nothing");
        }
    }

    #[test]
    fn estimator_books_and_prunes() {
        let mut s = PodState {
            key: String::new(),
            role: PodRole::General,
            alive: true,
            active: true,
            draining: false,
            dynamic: false,
            ready_at: 100,
            server_free: vec![100, 100],
            outstanding: Vec::new(),
            assigned: Vec::new(),
            routed: 0,
        };
        let traffic = light_traffic(1, 2);
        let trace = RequestGenerator::new(&traffic).open_loop_trace(10.0, 2);
        // Booked before the ready edge: service starts at ready.
        s.book(trace[0], 0, 50);
        assert_eq!(s.server_free, vec![150, 100]);
        s.book(trace[1], 0, 50);
        assert_eq!(s.server_free, vec![150, 150]);
        assert_eq!(s.outstanding.len(), 2);
        s.prune(150);
        assert!(s.outstanding.is_empty());
        assert_eq!(s.routed, 2);
    }

    #[test]
    fn cluster_rejects_closed_loop() {
        let cluster = ClusterConfig::new(fleet(2), RouterPolicy::RoundRobin);
        let closed = TrafficConfig::closed_loop(1, 10, 2, 100);
        let err = std::panic::catch_unwind(|| simulate_cluster(&cluster, &closed));
        assert!(err.is_err(), "closed-loop must be rejected");
    }

    #[test]
    fn mismatched_clocks_are_rejected() {
        let mut pods = fleet(2);
        pods[1].pod.clock_mhz = 750.0;
        let cluster = ClusterConfig::new(pods, RouterPolicy::RoundRobin);
        let err = std::panic::catch_unwind(|| simulate_cluster(&cluster, &light_traffic(1, 4)));
        assert!(err.is_err(), "mixed clocks must be rejected");
    }
}

//! Event-driven simulation of an accelerator pod serving request traffic.
//!
//! The pod holds `n` systolic arrays (Conventional or Axon, mixed
//! allowed). Per-dispatch cycle costs come from the analytical
//! [`RuntimeSpec`] model with exact-edge accounting — which the
//! cycle-accurate simulator reproduces *exactly* (see the
//! `model_vs_sim` property tests), so an optional spot-check path can
//! re-run dispatched kernels through [`axon_sim::simulate_gemm`] and
//! assert the billed latency cycle-for-cycle.
//!
//! ## Jobs, preemption and continuous batching
//!
//! A dispatch becomes a *job*: the batch plus its per-tile cycle
//! schedule (the exact-edge tile walk of the runtime model). Jobs are
//! the unit three runtime mechanisms act on:
//!
//! * **Tile-granular preemption** ([`PreemptionMode::TileBoundary`]):
//!   when an urgent request cannot meet its deadline waiting for a busy
//!   array, the least-urgent preemptible job is checkpointed at its next
//!   tile boundary. The checkpoint bills the interrupted tile's drain
//!   (the in-array partials must be read out), the array frees, and the
//!   job's remaining tiles resume later — total billed cycles are the
//!   uninterrupted cost plus one drain per preemption, all through the
//!   same exact-edge accounting.
//! * **Continuous batching** ([`SchedulerPolicy::Continuous`]): a
//!   late-arriving request whose batch key matches a running coalesced
//!   batch joins it in flight (up to `max_batch`), billed as the cycle
//!   delta between the old and new fused shapes.
//! * **Scale-out sharding**: unchanged from the FIFO engine; sharded
//!   jobs are neither preemptible nor joinable.
//!
//! ## Memory model
//!
//! Under the default [`MemoryModel::Unconstrained`] a job's service
//! time is its compute-cycle schedule alone. Under
//! [`MemoryModel::Shared`] the pod owns a fixed number of DRAM channels
//! ([`axon_mem::SharedDram`]) and every tile of a job's walk becomes a
//! demand on them: a tile takes `max(compute, transfer at the allocated
//! bandwidth)` cycles, and all completion edges are re-timed whenever
//! the co-running set changes — job start, finish, in-flight join or
//! checkpoint. Checkpoint spill/refill traffic is billed in time (when
//! shared) and always in DRAM energy. See `docs/memory.md`.
//!
//! # Examples
//!
//! Swapping the scheduling policy is a 3-line change to the pod spec:
//!
//! ```
//! use axon_core::runtime::Architecture;
//! use axon_serve::{
//!     simulate_pod, MemoryModel, PodConfig, PreemptionMode, SchedulerPolicy, TrafficConfig,
//! };
//!
//! let traffic = TrafficConfig::open_loop(3, 120, 1500.0);
//! let pod = PodConfig::homogeneous(2, Architecture::Axon, 64)
//!     .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
//!     .with_preemption(PreemptionMode::TileBoundary)
//!     .with_memory(MemoryModel::Shared { channels: 1 });
//! let report = simulate_pod(&pod, &traffic);
//! assert_eq!(report.metrics.completed, 120);
//! ```

use crate::arrivals::ArrivalCalendar;
use crate::generator::{ArrivalProcess, RequestGenerator, TrafficConfig};
use crate::metrics::{ClassMetrics, Completion, LatencySummary, PodMetrics, ShedRecord};
use crate::request::{coalesced_shape, BatchKey, Request};
use crate::scheduler::{
    eligible_min_deadline, eligible_most_urgent, AdmissionOutlook, AdmissionPolicy, Batch,
    SchedulerPolicy, SchedulingPolicy,
};
use crate::trace::{NullSink, RequestOutcome, TraceEvent, TraceSink};
use axon_core::runtime::{
    Accounting, Architecture, DrainPolicy, RuntimeSpec, TilePhase, TileSchedule,
};
use axon_core::{ArrayShape, Dataflow, GemmShape, Tiling};
use axon_hw::{execution_energy, ArrayDesign, ComponentLibrary, TechNode};
use axon_mem::{DramConfig, SharedDram};
use axon_sim::{random_matrix, simulate_gemm, SimConfig};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Bytes per spilled/refilled accumulator value at a checkpoint (int32
/// partials, vs the 1 byte/element of the int8 operand streams).
const CHECKPOINT_BYTES_PER_PARTIAL: u64 = 4;

/// How a dispatch chooses its dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// One hardwired dataflow for every request — how conventional
    /// accelerators ship (e.g. TPU-style weight-stationary).
    Fixed(Dataflow),
    /// The paper's fill-bound mapping: the dataflow minimizing the
    /// temporal dimension (maximum spatial parallelism).
    MinTemporal,
    /// Evaluate all three dataflows per dispatch and take the fastest —
    /// the runtime agility Axon's unified PE provides (paper §4.3).
    BestPerRequest,
}

/// How the pod's DRAM interface is shared between co-running jobs.
///
/// The memory model decides what a dispatched job's *service time* owes
/// to the memory system; DRAM transfer *energy* is billed the same way
/// under both variants.
///
/// # Examples
///
/// Moving an experiment from free operand streaming to a shared-DRAM
/// pod is the 3-line builder swap below — and because scale-out now
/// costs bandwidth, the starved run can never finish sooner:
///
/// ```
/// use axon_core::runtime::Architecture;
/// use axon_serve::{simulate_pod, MemoryModel, PodConfig, TrafficConfig};
///
/// let traffic = TrafficConfig::open_loop(3, 60, 2000.0);
/// let free = PodConfig::homogeneous(2, Architecture::Axon, 32);
/// let starved = free
///     .clone()
///     .with_memory(MemoryModel::Shared { channels: 1 });
/// let (f, s) = (simulate_pod(&free, &traffic), simulate_pod(&starved, &traffic));
/// assert_eq!(f.metrics.completed, s.metrics.completed);
/// assert!(s.metrics.makespan_cycles >= f.metrics.makespan_cycles);
/// assert_eq!(f.metrics.bandwidth_stall_cycles, 0); // streaming was free
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryModel {
    /// Service time is the compute-cycle model alone: every array
    /// behaves as if operand streaming were free, which is how the
    /// pre-contention pod billed (and remains the default so existing
    /// results reproduce bit for bit).
    #[default]
    Unconstrained,
    /// The pod owns `channels` DRAM channels (one
    /// [`DramConfig`] interface each), fair-share sliced across running
    /// jobs by [`SharedDram`]: each tile of a job's walk takes
    /// `max(compute, transfer(dram_bytes) at the allocated bandwidth)`
    /// cycles, and every job's completion edge is re-timed whenever the
    /// set of co-running jobs changes (start/finish/join/preempt).
    /// With `channels >= arrays` no job ever contends — each array
    /// holds a private channel, the honest scale-up roofline.
    Shared {
        /// Independent DRAM channels in the pod.
        channels: usize,
    },
}

/// How the sharding planner scores candidate scale-out grids.
///
/// Sharding a large kernel over `pr x pc` arrays divides its compute
/// but *multiplies* its DRAM traffic (each A slice is delivered to every
/// grid column, each B slice to every grid row) and adds `pr * pc - 1`
/// demand units to the shared memory system. Whether that trade pays
/// depends on how starved the pod's channels are — which is exactly
/// what the two planners disagree about.
///
/// Under [`MemoryModel::Unconstrained`] the planners are
/// indistinguishable (there is no bandwidth to be aware of), so every
/// pre-contention result reproduces bit for bit under either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPlanner {
    /// Score candidate grids by compute cycles alone — the
    /// pre-contention planner, which happily shards a memory-bound
    /// kernel onto a starved pod and makes everything slower.
    ComputeOnly,
    /// Score candidate grids by their *contended* finish estimate
    /// ([`SharedDram::schedule_cycles`] under the fair-share allocation
    /// the plan would actually run at, co-running demand included) and
    /// refuse scale-out that a starved pod cannot feed. Falls back to
    /// compute-cycle scoring under [`MemoryModel::Unconstrained`].
    /// Refusals are surfaced as
    /// [`PodMetrics::sharding_refused`](crate::PodMetrics).
    #[default]
    BandwidthAware,
}

/// Whether running jobs may be checkpointed for urgent work.
///
/// # Examples
///
/// Preemption is another 3-line builder swap; with uniformly loose
/// deadlines nothing is ever urgent, so the two modes reproduce the
/// identical report (the anti-churn guarantee):
///
/// ```
/// use axon_core::runtime::Architecture;
/// use axon_serve::{
///     simulate_pod, PodConfig, PreemptionMode, SchedulerPolicy, SloBudgets, TrafficConfig,
/// };
///
/// let traffic = TrafficConfig::open_loop(9, 40, 900.0).with_slo(SloBudgets::uniform(u64::MAX / 2));
/// let calm = PodConfig::homogeneous(2, Architecture::Axon, 32)
///     .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 });
/// let eager = calm
///     .clone()
///     .with_preemption(PreemptionMode::TileBoundary);
/// let (c, e) = (simulate_pod(&calm, &traffic), simulate_pod(&eager, &traffic));
/// assert_eq!(c.metrics, e.metrics);
/// assert_eq!(e.metrics.preemptions, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionMode {
    /// Jobs run to completion once dispatched.
    #[default]
    Disabled,
    /// A single-array job may be suspended at its next tile boundary
    /// when a queued request would otherwise miss its deadline. The
    /// checkpoint bills the completed tile's drain; the remainder
    /// resumes on the next idle compatible array.
    TileBoundary,
}

/// One array in the pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    /// Latency law the array follows.
    pub arch: Architecture,
    /// Physical shape.
    pub array: ArrayShape,
}

/// Optional cycle-accurate validation of dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpotCheckConfig {
    /// Only kernels at or below this MAC count are simulated (the
    /// functional simulator is O(cycles x PEs)).
    pub max_macs: usize,
    /// Check every `every`-th eligible dispatch.
    pub every: usize,
}

/// Full pod specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PodConfig {
    /// The arrays, dispatch-priority order.
    pub arrays: Vec<ArrayConfig>,
    /// Clock in MHz (latency/throughput conversions and energy).
    pub clock_mhz: f64,
    /// Queue discipline.
    pub scheduler: SchedulerPolicy,
    /// Dataflow selection per dispatch.
    pub mapping: MappingPolicy,
    /// Drain amortization billed per dispatch.
    pub drain: DrainPolicy,
    /// Tile-granular preemption of running jobs.
    pub preemption: PreemptionMode,
    /// Per-client weights for [`SchedulerPolicy::Wfq`] (clients beyond
    /// the vector get weight 1.0; empty = all equal).
    pub client_weights: Vec<f64>,
    /// The pod's DRAM interface (energy per byte and per-channel
    /// bandwidth). Defaults to the paper's LPDDR3.
    pub dram: DramConfig,
    /// How service time couples to the memory system.
    pub memory: MemoryModel,
    /// Shard a dispatch across idle identical arrays (via the scale-out
    /// partitioner) once its MAC count reaches this threshold.
    pub shard_min_macs: Option<usize>,
    /// How candidate scale-out grids are scored (compute-only, or
    /// contended finish time under the shared memory model).
    pub planner: ShardPlanner,
    /// Cycle-accurate spot-check configuration.
    pub spot_check: Option<SpotCheckConfig>,
    /// First cycle the pod's arrays accept dispatches. `0` (the
    /// default) reproduces every earlier result bit for bit; a later
    /// value models a pod still warming up — requests routed to it
    /// queue until the arrays come online, so the warm-up cost lands
    /// in the ordinary queue-latency and SLO metrics. This is how the
    /// cluster layer bills autoscale spin-up (see
    /// [`AutoscaleConfig`](crate::AutoscaleConfig)).
    pub available_from: u64,
    /// Front-door admission control. The default
    /// [`AdmissionPolicy::AcceptAll`] reproduces every earlier result
    /// bit for bit; the shedding policies reject open-loop arrivals
    /// that would only add doomed work (see `docs/traffic.md`).
    pub admission: AdmissionPolicy,
}

impl PodConfig {
    /// A homogeneous pod of `n` square `side x side` arrays of `arch`,
    /// with the serving defaults: 500 MHz, batching scheduler
    /// (`max_batch` 8), best-per-request mapping, overlapped drains,
    /// no preemption and sharding of 64 MMAC+ kernels.
    pub fn homogeneous(n: usize, arch: Architecture, side: usize) -> Self {
        assert!(n > 0, "a pod needs at least one array");
        PodConfig {
            arrays: vec![
                ArrayConfig {
                    arch,
                    array: ArrayShape::square(side),
                };
                n
            ],
            clock_mhz: 500.0,
            scheduler: SchedulerPolicy::Batching { max_batch: 8 },
            mapping: MappingPolicy::BestPerRequest,
            drain: DrainPolicy::Overlapped,
            preemption: PreemptionMode::Disabled,
            client_weights: Vec::new(),
            dram: DramConfig::lpddr3(),
            memory: MemoryModel::Unconstrained,
            shard_min_macs: Some(64 << 20),
            planner: ShardPlanner::BandwidthAware,
            spot_check: None,
            available_from: 0,
            admission: AdmissionPolicy::AcceptAll,
        }
    }

    /// Builder-style scheduler override.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style mapping-policy override.
    pub fn with_mapping(mut self, mapping: MappingPolicy) -> Self {
        self.mapping = mapping;
        self
    }

    /// Builder-style preemption override.
    pub fn with_preemption(mut self, preemption: PreemptionMode) -> Self {
        self.preemption = preemption;
        self
    }

    /// Builder-style WFQ client-weight override.
    pub fn with_client_weights(mut self, weights: Vec<f64>) -> Self {
        self.client_weights = weights;
        self
    }

    /// Builder-style DRAM-interface override (the default is LPDDR3).
    ///
    /// # Examples
    ///
    /// [`PodConfig::dram`] feeds both the energy billing and the
    /// shared-channel arbiter, so swapping the interface is how a
    /// faster memory system enters a contention experiment — a wider
    /// interface can only shrink the makespan of a starved pod:
    ///
    /// ```
    /// use axon_core::runtime::Architecture;
    /// use axon_mem::DramConfig;
    /// use axon_serve::{simulate_pod, MemoryModel, PodConfig, TrafficConfig};
    ///
    /// let traffic = TrafficConfig::open_loop(5, 40, 2500.0);
    /// let slow = PodConfig::homogeneous(2, Architecture::Axon, 32)
    ///     .with_memory(MemoryModel::Shared { channels: 1 });
    /// assert_eq!(slow.dram, DramConfig::lpddr3());
    /// let fast = slow.clone().with_dram(DramConfig {
    ///     bandwidth_bytes_per_s: 4.0 * 6.4e9, // four LPDDR3 interfaces wide
    ///     ..DramConfig::lpddr3()
    /// });
    /// let (s, f) = (simulate_pod(&slow, &traffic), simulate_pod(&fast, &traffic));
    /// assert!(f.metrics.makespan_cycles <= s.metrics.makespan_cycles);
    /// ```
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Builder-style memory-model override. Pass
    /// [`MemoryModel::Shared`] to couple service time to co-running
    /// memory traffic (see `docs/memory.md`).
    pub fn with_memory(mut self, memory: MemoryModel) -> Self {
        self.memory = memory;
        self
    }

    /// Builder-style spot-check override.
    pub fn with_spot_check(mut self, spot_check: SpotCheckConfig) -> Self {
        self.spot_check = Some(spot_check);
        self
    }

    /// Builder-style sharding-threshold override (`None` disables).
    pub fn with_shard_min_macs(mut self, macs: Option<usize>) -> Self {
        self.shard_min_macs = macs;
        self
    }

    /// Builder-style sharding-planner override. Pass
    /// [`ShardPlanner::ComputeOnly`] to reproduce the pre-contention
    /// planner (the `bandwidth_sweep` baseline).
    pub fn with_planner(mut self, planner: ShardPlanner) -> Self {
        self.planner = planner;
        self
    }

    /// Builder-style warm-up override: the pod's arrays accept no
    /// dispatch before `cycle`. Requests that arrive earlier queue,
    /// so a warming pod's spin-up cost is billed through the ordinary
    /// queue-latency and SLO metrics.
    pub fn with_available_from(mut self, cycle: u64) -> Self {
        self.available_from = cycle;
        self
    }

    /// Builder-style admission-control override. Open-loop arrivals
    /// that fail review are shed (terminal
    /// [`TraceEvent::Shed`](crate::TraceEvent::Shed)); closed-loop
    /// arrivals are delayed (backpressure) instead.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }
}

/// Everything a pod run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Every issued request, in issue (= id) order.
    pub trace: Vec<Request>,
    /// Per-request completion records, in completion order.
    pub completions: Vec<Completion>,
    /// Per-request rejection records, in shed order (empty under
    /// [`AdmissionPolicy::AcceptAll`]).
    pub shed: Vec<ShedRecord>,
    /// Aggregate metrics.
    pub metrics: PodMetrics,
}

fn design_of(arch: Architecture) -> ArrayDesign {
    match arch {
        Architecture::Conventional => ArrayDesign::Conventional,
        Architecture::Axon => ArrayDesign::Axon {
            im2col: true,
            unified_pe: true,
        },
    }
}

/// Modeled service latency of `shape` on `cfg` under `mapping`, with
/// exact-edge accounting (the accounting the functional simulator
/// reproduces exactly).
pub fn service_cycles(
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    tiling: Tiling,
    shape: GemmShape,
) -> (Dataflow, usize) {
    let eval = |df: Dataflow| {
        RuntimeSpec::new(cfg.array, df)
            .with_accounting(Accounting::ExactEdges)
            .with_drain(drain)
            .with_tiling(tiling)
            .runtime(cfg.arch, shape)
            .cycles
    };
    match mapping {
        MappingPolicy::Fixed(df) => (df, eval(df)),
        MappingPolicy::MinTemporal => {
            let df = Dataflow::min_temporal(shape);
            (df, eval(df))
        }
        MappingPolicy::BestPerRequest => Dataflow::ALL
            .iter()
            .map(|&df| (df, eval(df)))
            .min_by_key(|&(_, c)| c)
            .expect("Dataflow::ALL is non-empty"),
    }
}

/// The candidate scale-out grids for `free_peers` idle identical
/// arrays: every `pr x pc` using 2..=free_peers arrays, 4-way cap per
/// dimension, in deterministic `(pr, pc)` order. Both planners score
/// exactly this set, so their disagreement (the `sharding_refused`
/// counter) always reflects a real divergence in scoring, never in
/// candidates.
fn shard_grids(free_peers: usize) -> impl Iterator<Item = (usize, usize)> {
    let cap = free_peers.min(4);
    (1..=cap).flat_map(move |pr| {
        (1..=cap).filter_map(move |pc| {
            let arrays = pr * pc;
            (2..=free_peers).contains(&arrays).then_some((pr, pc))
        })
    })
}

/// Picks the scale-out grid (and resulting cycles) for `shape` given
/// `free_peers` idle identical arrays. Returns `(pr, pc, dataflow,
/// cycles)`; `(1, 1, ..)` means no sharding pays off.
///
/// The whole plan is memoized on `(cfg, mapping, drain, shape,
/// free_peers)` — every input the compute-only score reads — so warm
/// calls replay the cold pass bit-for-bit. Cold passes under `PerTile`
/// drain prune dominated grids ([`plan_sharding_pruned`]); `Overlapped`
/// drain falls back to full enumeration because its score is *not*
/// monotone in the grid: shrinking an effective extent across a tile
/// boundary can swap a full-height final drain for a 1-row one and net
/// *fewer* cycles (e.g. Axon 32×32 at `t = 1`: `sr` 33 → 32 drops
/// `axon_tile_fill(1, 32) + 1` fill+compute cycles but re-bills the
/// final drain at 32 rows instead of 1), so a dominated grid may
/// strictly beat its dominator.
fn plan_sharding(
    cache: &mut ModelCache,
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    shape: GemmShape,
    free_peers: usize,
) -> (usize, usize, Dataflow, usize) {
    let key = (*cfg, mapping, drain, shape, free_peers);
    if let Some(&v) = cache.plans.get(&key) {
        cache.plan_stats.hits += 1;
        return v;
    }
    cache.plan_stats.misses += 1;
    let v = match drain {
        DrainPolicy::PerTile => {
            let v = plan_sharding_pruned(cache, cfg, mapping, drain, shape, free_peers);
            #[cfg(debug_assertions)]
            {
                let full = plan_sharding_full(cache, cfg, mapping, drain, shape, free_peers, false);
                assert_eq!(v, full, "pruned planner diverged from full enumeration");
            }
            v
        }
        DrainPolicy::Overlapped => {
            plan_sharding_full(cache, cfg, mapping, drain, shape, free_peers, true)
        }
    };
    cache.plans.insert(key, v);
    v
}

/// Full enumeration of the compute-only planner: scores the `1×1`
/// baseline and every candidate grid, keeping the first strict
/// improvement in canonical order. `count` gates the `grids_scored`
/// counter so the debug-only prune verification doesn't double-bill.
fn plan_sharding_full(
    cache: &mut ModelCache,
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    shape: GemmShape,
    free_peers: usize,
    count: bool,
) -> (usize, usize, Dataflow, usize) {
    let mut scored = 1u64;
    let mut best = {
        let (df, cycles) = cache.service_cycles(cfg, mapping, drain, Tiling::ScaleUp, shape);
        (1usize, 1usize, df, cycles)
    };
    for (pr, pc) in shard_grids(free_peers) {
        let tiling = Tiling::ScaleOut {
            partitions_r: pr,
            partitions_c: pc,
        };
        let (df, cycles) = cache.service_cycles(cfg, mapping, drain, tiling, shape);
        scored += 1;
        // Strict improvement required: idle arrays are better spent on
        // the next queued batch than on marginal sharding gains.
        if cycles < best.3 {
            best = (pr, pc, df, cycles);
        }
    }
    if count {
        cache.plan_stats.grids_scored += scored;
    }
    best
}

/// Cold compute-only pass under `PerTile` drain: prunes grids dominated
/// componentwise by another candidate, exactly.
///
/// Why the prune is sound *here*: under `PerTile` accounting the score
/// is `Σ_tiles (fill(r, c) + t + r)`. Every per-tile term is
/// non-decreasing in the tile extents, and shrinking an effective
/// spatial extent only shrinks or removes tiles, so cycles are
/// non-decreasing in `(⌈sr/pr⌉, ⌈sc/pc⌉)` — i.e. non-increasing
/// componentwise in `(pr, pc)`. (For `BestPerRequest` the min over
/// dataflows of monotone scores is itself monotone.) Hence:
///
/// 1. every candidate is dominated by some componentwise-maximal
///    candidate, so the minimum over that frontier is the global
///    minimum `V` over all grids;
/// 2. the full scan's winner is the first entry of `[1×1, grids in
///    canonical order…]` scoring the overall minimum — reproduced by
///    checking the baseline first (strict improvement means it wins
///    ties) and then scanning the canonical order for the first grid
///    scoring `V`.
///
/// Probes repeated between the frontier pass and the canonical scan
/// answer from the service-cycles memo, so no model evaluation runs
/// twice; `grids_scored` bills every probe issued, memoized or not.
/// Debug builds re-run the full enumeration and assert equality
/// (`plan_sharding`); `shard_plan_prune_matches_full` pins the same
/// property over random shapes.
fn plan_sharding_pruned(
    cache: &mut ModelCache,
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    shape: GemmShape,
    free_peers: usize,
) -> (usize, usize, Dataflow, usize) {
    let grids: Vec<(usize, usize)> = shard_grids(free_peers).collect();
    let mut scored = 1u64;
    let (df1, cycles1) = cache.service_cycles(cfg, mapping, drain, Tiling::ScaleUp, shape);
    // Frontier pass: the global grid minimum V by monotonicity.
    let mut v = usize::MAX;
    for &(pr, pc) in &grids {
        let dominated = grids
            .iter()
            .any(|&(qr, qc)| (qr, qc) != (pr, pc) && qr >= pr && qc >= pc);
        if dominated {
            continue;
        }
        let tiling = Tiling::ScaleOut {
            partitions_r: pr,
            partitions_c: pc,
        };
        let (_, cycles) = cache.service_cycles(cfg, mapping, drain, tiling, shape);
        scored += 1;
        v = v.min(cycles);
    }
    let best = if cycles1 <= v {
        (1, 1, df1, cycles1)
    } else {
        // Earliest grid in canonical order achieving V.
        let mut found = None;
        for &(pr, pc) in &grids {
            let tiling = Tiling::ScaleOut {
                partitions_r: pr,
                partitions_c: pc,
            };
            let (df, cycles) = cache.service_cycles(cfg, mapping, drain, tiling, shape);
            scored += 1;
            if cycles == v {
                found = Some((pr, pc, df, cycles));
                break;
            }
        }
        found.expect("some candidate grid achieves the frontier minimum")
    };
    cache.plan_stats.grids_scored += scored;
    best
}

/// Picks the scale-out grid by *contended* finish time: every candidate
/// grid (the `1x1` no-shard plan included) is scored by the shared-DRAM
/// fair-share estimate of its service time with the plan's own demand
/// added to `co_running_weight` — exactly the arithmetic the pod bills
/// with afterwards, evaluated under a frozen co-running set. A grid is
/// taken only on strict improvement, so a starved pod that cannot feed
/// the duplicated operand streams of a scale-out grid keeps the kernel
/// on one array.
///
/// Returns `(pr, pc, dataflow, compute_cycles, refused)`; `refused` is
/// true when the compute-only planner ([`plan_sharding`]) would have
/// sharded wider than the contended choice — the event counted by
/// [`PodMetrics::sharding_refused`](crate::PodMetrics).
#[allow(clippy::too_many_arguments)]
fn plan_sharding_contended(
    cache: &mut ModelCache,
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    shape: GemmShape,
    free_peers: usize,
    shared: &SharedDram,
    clock_mhz: f64,
    co_running_weight: usize,
) -> (usize, usize, Dataflow, usize, bool) {
    // Whole-plan memo. Beyond the compute-only inputs the contended
    // score reads only `shared`, `clock_mhz` (both fixed for this
    // cache's lifetime — one pod loop) and the frozen co-running
    // demand, so `co_running_weight` fingerprints the bandwidth epoch:
    // equal weight ⇒ identical fair-share arithmetic ⇒ identical plan.
    let plan_key = (*cfg, mapping, drain, shape, free_peers, co_running_weight);
    if let Some(&v) = cache.plans_contended.get(&plan_key) {
        cache.plan_stats.hits += 1;
        return v;
    }
    cache.plan_stats.misses += 1;
    let mut scored = 1u64;
    // No dominance prune here — always full enumeration. The contended
    // estimate is NOT monotone in the grid: a `pr × pc` plan duplicates
    // operands (`A` moves `pc` times, `B` moves `pr` times), so traffic
    // grows with the grid perimeter while compute shrinks, and a
    // dominated grid can strictly beat its dominator on a
    // bandwidth-starved pod. The structure does not admit the prune;
    // per the planner contract we enumerate every candidate.
    //
    // The no-shard candidate is billed as its per-tile walk, so estimate
    // it the same way (final drain is bandwidth-independent).
    let (df1, cycles1) = cache.service_cycles(cfg, mapping, drain, Tiling::ScaleUp, shape);
    let est1_key = (*cfg, drain, df1, shape, co_running_weight);
    let est1 = match cache.contended_est.get(&est1_key) {
        Some(&e) => e,
        None => {
            let e = {
                let sched = cache.schedule(cfg, drain, df1, shape);
                shared.schedule_cycles(
                    clock_mhz,
                    sched.tiles.iter().map(|t| (t.cycles, t.dram_bytes)),
                    1,
                    co_running_weight + 1,
                ) + sched.final_drain
            };
            cache.contended_est.insert(est1_key, e);
            e
        }
    };
    let mut best = (1usize, 1usize, df1, cycles1);
    let mut best_est = est1;
    let mut best_compute = (1usize, cycles1);
    for (pr, pc) in shard_grids(free_peers) {
        let arrays = pr * pc;
        let tiling = Tiling::ScaleOut {
            partitions_r: pr,
            partitions_c: pc,
        };
        let (df, cycles) = cache.service_cycles(cfg, mapping, drain, tiling, shape);
        scored += 1;
        // A sharded job is billed as one opaque leg carrying the
        // grid's full (duplicated) traffic at grid weight: the
        // estimate is that exact roofline.
        let est = shared.leg_cycles(
            clock_mhz,
            cycles as u64,
            dispatch_dram_bytes(shape, pr, pc),
            arrays,
            co_running_weight + arrays,
        );
        if est < best_est {
            best = (pr, pc, df, cycles);
            best_est = est;
        }
        if cycles < best_compute.1 {
            best_compute = (arrays, cycles);
        }
    }
    let refused = best_compute.0 > best.0 * best.1;
    let v = (best.0, best.1, best.2, best.3, refused);
    cache.plan_stats.grids_scored += scored;
    cache.plans_contended.insert(plan_key, v);
    v
}

/// The DRAM traffic of one dispatched GEMM at 1 byte/element (int8
/// serving): under a `pr x pc` scale-out grid each A slice is delivered
/// to every grid column and each B slice to every grid row (no
/// multicast modeled), so A moves `pc` times and B `pr` times; the
/// output assembles once.
fn dispatch_dram_bytes(shape: GemmShape, pr: usize, pc: usize) -> u64 {
    (shape.m * shape.k * pc + shape.k * shape.n * pr + shape.m * shape.n) as u64
}

/// The exact-edge tile walk of `shape` on one array: per-tile cycles
/// and area-proportional DRAM bytes under `drain`, plus the final drain
/// billed once under `Overlapped`. The cycle total equals
/// [`service_cycles`] for the same spec — asserted at dispatch.
fn plan_tiles(
    cfg: &ArrayConfig,
    drain: DrainPolicy,
    df: Dataflow,
    shape: GemmShape,
) -> TileSchedule {
    RuntimeSpec::new(cfg.array, df)
        .with_accounting(Accounting::ExactEdges)
        .with_drain(drain)
        .with_tiling(Tiling::ScaleUp)
        .tile_schedule(cfg.arch, shape, dispatch_dram_bytes(shape, 1, 1))
}

/// One memoized tile schedule: the walk (behind an `Arc`, so dispatch
/// hands jobs a shared reference instead of cloning thousands of
/// phases), its final drain, and the pre-summed cycle total.
#[derive(Debug, Clone)]
struct CachedSchedule {
    tiles: Arc<Vec<TilePhase>>,
    final_drain: u64,
    total: u64,
}

/// Cross-pod second-level model cache: exactly the slices of
/// [`ModelCache`] that are *pure functions of their full key* —
/// service cycles, tile walks and walk totals. Pods replaying within
/// one cluster run (one sweep point) share a single instance so a
/// shape modeled by one pod is never re-walked by another.
///
/// Determinism argument: every cached value is a pure function of its
/// key (`service_cycles` / `plan_tiles` read nothing else), so *which*
/// thread publishes an entry first is timing-dependent but the
/// published value is not — every reader observes the bit-identical
/// value a loop-local evaluation would produce. Pinned by
/// `shared_model_cache_is_bit_identical` in `cluster.rs`. The
/// contended-planner maps stay loop-local: their values read the pod's
/// own [`SharedDram`] law and clock, which differ across pods.
#[derive(Debug, Default)]
pub(crate) struct SharedModelCache(std::sync::Mutex<SharedModelState>);

#[derive(Debug, Default)]
struct SharedModelState {
    service: HashMap<ServiceKey, (Dataflow, usize)>,
    tiles: HashMap<ScheduleKey, CachedSchedule>,
    totals: HashMap<ScheduleKey, u64>,
}

impl SharedModelCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, SharedModelState> {
        // Model evaluation can't panic mid-insert in a way that leaves
        // a torn value (inserts are single HashMap writes of Copy/Arc
        // data), so a poisoned lock still guards coherent state.
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Per-run memo table for the analytical runtime model — the engine's
/// dominant cost. [`service_cycles`] and [`plan_tiles`] are pure
/// functions of their arguments (exact-edge accounting walks every tile
/// of the shape, O(M·K·N / array volume) per call), and serving traffic
/// draws from a handful of distinct shapes, so the pod loop evaluates
/// each distinct key once and replays the stored result. Replayed
/// values are bit-identical to fresh evaluations by purity — the
/// differential harness (`tests/differential.rs`) pins exactly this.
///
/// The cache is loop-local (created per `run_pod_loop` call): no state
/// leaks across runs, so determinism per `(pod, traffic)` pair is
/// untouched. An optional [`SharedModelCache`] second level (cluster
/// replays) is consulted on local misses of the pure slices; see its
/// determinism argument.
#[derive(Debug, Default)]
struct ModelCache {
    /// Cross-pod L2 for the pure slices; `None` outside cluster
    /// replays.
    shared: Option<Arc<SharedModelCache>>,
    /// `(cfg, mapping, drain, tiling, shape)` → the chosen dataflow and
    /// modeled cycles.
    service: HashMap<ServiceKey, (Dataflow, usize)>,
    /// `(cfg, drain, dataflow, shape)` → the exact-edge tile walk.
    tiles: HashMap<ScheduleKey, CachedSchedule>,
    /// `(cfg, drain, dataflow, shape)` → the walk's cycle total alone,
    /// computed from the closed-form runtime model in O(1) — the join
    /// path bills shape deltas off totals and must not pay for (or
    /// allocate) a full tile walk per probed shape.
    totals: HashMap<ScheduleKey, u64>,
    /// `(cfg, drain, dataflow, shape, co_running_weight)` → the
    /// contended no-shard estimate of [`plan_sharding_contended`]
    /// (a full [`SharedDram::schedule_cycles`] walk over the tile
    /// schedule, the planner's most expensive probe).
    contended_est: HashMap<ContendedKey, u64>,
    /// Whole-plan memo of [`plan_sharding`]: key → `(pr, pc, dataflow,
    /// cycles)`. Every planner input is in the key — the compute-only
    /// score depends on nothing else — so a replay is bit-identical to
    /// a cold pass by purity.
    plans: HashMap<PlanKey, (usize, usize, Dataflow, usize)>,
    /// Whole-plan memo of [`plan_sharding_contended`]. The contended
    /// score additionally reads the pod's [`SharedDram`] law and clock
    /// (fixed for this cache's per-loop lifetime) and the co-running
    /// demand at decision time; `co_running_weight` is that bandwidth
    /// epoch's fingerprint — two decisions with equal weight see
    /// identical fair-share arithmetic, whatever jobs compose the
    /// weight.
    plans_contended: HashMap<PlanContendedKey, (usize, usize, Dataflow, usize, bool)>,
    /// Plan-cache traffic, surfaced once per loop through
    /// [`TraceSink::planner_stats`].
    plan_stats: PlanStats,
}

type ServiceKey = (ArrayConfig, MappingPolicy, DrainPolicy, Tiling, GemmShape);
type ScheduleKey = (ArrayConfig, DrainPolicy, Dataflow, GemmShape);
type ContendedKey = (ArrayConfig, DrainPolicy, Dataflow, GemmShape, usize);
type PlanKey = (ArrayConfig, MappingPolicy, DrainPolicy, GemmShape, usize);
type PlanContendedKey = (
    ArrayConfig,
    MappingPolicy,
    DrainPolicy,
    GemmShape,
    usize,
    usize,
);

/// Counters of the dispatch-plan cache: replayed plans (`hits`), cold
/// planner passes (`misses`), and candidate plans probed against the
/// service model during cold passes (`grids_scored`, the `1×1`
/// no-shard baseline included; pruned passes count every probe they
/// issue, frontier and scan alike).
#[derive(Debug, Default, Clone, Copy)]
struct PlanStats {
    hits: u64,
    misses: u64,
    grids_scored: u64,
}

impl ModelCache {
    /// A cache whose pure slices are backed by the cross-pod L2.
    fn with_shared(shared: Option<Arc<SharedModelCache>>) -> Self {
        ModelCache {
            shared,
            ..ModelCache::default()
        }
    }

    fn service_cycles(
        &mut self,
        cfg: &ArrayConfig,
        mapping: MappingPolicy,
        drain: DrainPolicy,
        tiling: Tiling,
        shape: GemmShape,
    ) -> (Dataflow, usize) {
        let key = (*cfg, mapping, drain, tiling, shape);
        if let Some(&v) = self.service.get(&key) {
            return v;
        }
        let v = match &self.shared {
            Some(l2) => {
                let mut g = l2.lock();
                *g.service
                    .entry(key)
                    .or_insert_with(|| service_cycles(cfg, mapping, drain, tiling, shape))
            }
            None => service_cycles(cfg, mapping, drain, tiling, shape),
        };
        self.service.insert(key, v);
        v
    }

    fn schedule(
        &mut self,
        cfg: &ArrayConfig,
        drain: DrainPolicy,
        df: Dataflow,
        shape: GemmShape,
    ) -> &CachedSchedule {
        let key = (*cfg, drain, df, shape);
        if !self.tiles.contains_key(&key) {
            let build = || {
                let sched = plan_tiles(cfg, drain, df, shape);
                CachedSchedule {
                    total: sched.total_cycles(),
                    tiles: Arc::new(sched.tiles),
                    final_drain: sched.final_drain,
                }
            };
            let v = match &self.shared {
                // The walk itself rides the L2 `Arc`: pods share one
                // allocation per distinct schedule.
                Some(l2) => l2.lock().tiles.entry(key).or_insert_with(build).clone(),
                None => build(),
            };
            self.tiles.insert(key, v);
        }
        &self.tiles[&key]
    }

    /// Total cycles of the tile walk, without materializing it: the
    /// closed-form exact-edge runtime equals `TileSchedule::
    /// total_cycles` for the same spec by construction (the schedule
    /// *is* that accounting, phase by phase — pinned by
    /// `schedule_total_matches_walk`), so the join path bills shape
    /// deltas off an O(1) model evaluation per distinct shape.
    fn schedule_total(
        &mut self,
        cfg: &ArrayConfig,
        drain: DrainPolicy,
        df: Dataflow,
        shape: GemmShape,
    ) -> u64 {
        let key = (*cfg, drain, df, shape);
        if let Some(&t) = self.totals.get(&key) {
            return t;
        }
        let closed_form = || {
            RuntimeSpec::new(cfg.array, df)
                .with_accounting(Accounting::ExactEdges)
                .with_drain(drain)
                .with_tiling(Tiling::ScaleUp)
                .runtime(cfg.arch, shape)
                .cycles as u64
        };
        let t = match self.tiles.get(&key) {
            Some(s) => s.total,
            None => match &self.shared {
                Some(l2) => *l2.lock().totals.entry(key).or_insert_with(closed_form),
                None => closed_form(),
            },
        };
        self.totals.insert(key, t);
        t
    }
}

/// Lazy-deletion min-heap over the running jobs' segment-end edges
/// (natural completions and scheduled tile-boundary checkpoint ends) —
/// the next-event source that replaces the linear scan over `running`.
///
/// `live` mirrors the authoritative `seq → end` of the running set; a
/// heap entry is valid iff it matches the mirror, so moved edges are
/// retired by pushing the new `(end, seq)` and letting the stale entry
/// fall out at `peek` time. Each edge is pushed once per move, so total
/// heap work is O(moves · log) regardless of how often the minimum is
/// read.
#[derive(Debug, Default)]
struct EventHeap {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    live: HashMap<usize, u64>,
}

impl EventHeap {
    /// Records (or moves) job `seq`'s segment-end edge.
    fn update(&mut self, seq: usize, end: u64) {
        self.live.insert(seq, end);
        self.heap.push(Reverse((end, seq)));
    }

    /// Retires job `seq`'s edge (finalized or checkpointed off the pod).
    fn remove(&mut self, seq: usize) {
        self.live.remove(&seq);
    }

    /// The earliest live segment end, discarding stale entries — equal
    /// to `running.iter().map(|j| j.end).min()` by the mirror invariant.
    fn next_end(&mut self) -> Option<u64> {
        while let Some(&Reverse((end, seq))) = self.heap.peek() {
            if self.live.get(&seq) == Some(&end) {
                return Some(end);
            }
            self.heap.pop();
        }
        None
    }
}

/// The pod's timing law: how many cycles a tile phase occupies its
/// array, given the memory model and the co-running demand.
///
/// Under [`MemoryModel::Unconstrained`] a phase takes exactly its
/// compute cycles — the pre-contention billing, untouched. Under
/// [`MemoryModel::Shared`] a phase takes the integer roofline
/// `max(compute, ceil(transfer at the allocated bandwidth))` from
/// [`SharedDram::leg_cycles`], where a weight-`w` job (one unit per
/// occupied array) among `total_weight` active units is allocated
/// `w * min(1, channels / total_weight)` of one interface.
#[derive(Debug, Clone, Copy)]
struct MemTiming {
    /// `None` = unconstrained (compute cycles only).
    shared: Option<SharedDram>,
    clock_mhz: f64,
}

impl MemTiming {
    fn new(pod: &PodConfig) -> Self {
        let shared = match pod.memory {
            MemoryModel::Unconstrained => None,
            MemoryModel::Shared { channels } => Some(SharedDram::new(pod.dram, channels)),
        };
        MemTiming {
            shared,
            clock_mhz: pod.clock_mhz,
        }
    }

    fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// Cycles the phase occupies its array under `total_weight` active
    /// demand units pod-wide.
    fn tile_time(&self, tile: &TilePhase, weight: usize, total_weight: usize) -> u64 {
        match self.shared {
            None => tile.cycles,
            Some(s) => s.leg_cycles(
                self.clock_mhz,
                tile.cycles,
                tile.dram_bytes,
                weight,
                total_weight.max(weight),
            ),
        }
    }

    /// Cycles to move `bytes` with no compute to hide behind (checkpoint
    /// spills). Free under the unconstrained model — that model never
    /// charges time for traffic.
    fn transfer_time(&self, bytes: u64, weight: usize, total_weight: usize) -> u64 {
        match self.shared {
            None => 0,
            Some(s) => s
                .transfer_cycles(
                    bytes as usize,
                    self.clock_mhz,
                    weight,
                    total_weight.max(weight),
                )
                .ceil() as u64,
        }
    }
}

/// `ceil(a * b / d)` in u128 so phase rescaling never overflows.
fn ceil_mul_div(a: u64, b: u64, d: u64) -> u64 {
    debug_assert!(d > 0);
    ((a as u128 * b as u128).div_ceil(d as u128)) as u64
}

/// Groups `tiles[from..]` by `(cycles, dram_bytes)` — the initial value
/// of a job's [`RunningJob::rest`] tail summary.
fn rest_of(tiles: &[TilePhase], from: usize) -> BTreeMap<(u64, u64), usize> {
    // The walk has a handful of distinct `(cycles, dram_bytes)` keys
    // (≤4 extents x the ±1-byte rounding split), so accumulate runs in
    // a tiny linear buffer and fold into the map once per key instead
    // of paying a map lookup per tile.
    let mut acc: Vec<((u64, u64), usize)> = Vec::new();
    for t in &tiles[from.min(tiles.len())..] {
        let key = (t.cycles, t.dram_bytes);
        match acc.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => acc.push((key, 1)),
        }
    }
    acc.into_iter().collect()
}

/// A tiny fixed-capacity memo for tile-phase durations within one walk
/// (one `advance_to` / `next_boundary` call): the timing law is a pure
/// function of a tile's `(cycles, dram_bytes)` once the weight and the
/// bandwidth epoch are fixed, and a walk only ever sees the few
/// distinct keys of its schedule, so replayed values are bit-identical
/// to fresh evaluations while skipping the roofline arithmetic per
/// tile crossed.
#[derive(Debug, Default)]
struct PhaseTimeMemo {
    entries: [Option<((u64, u64), u64)>; 8],
    next: usize,
}

impl PhaseTimeMemo {
    fn get(&self, key: (u64, u64)) -> Option<u64> {
        self.entries
            .iter()
            .flatten()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    fn put(&mut self, key: (u64, u64), v: u64) {
        self.entries[self.next] = Some((key, v));
        self.next = (self.next + 1) % self.entries.len();
    }
}

/// A dispatched batch occupying one or more arrays, with its remaining
/// tile schedule and in-phase progress.
///
/// Progress is tracked as `(next_tile, cur_consumed / cur_scheduled)`:
/// the job is `cur_consumed` cycles into its current phase, whose full
/// duration `cur_scheduled` was computed under `timed_total_weight`
/// active demand units (`next_tile == tiles.len()` is the final-drain
/// phase). Under the unconstrained model phase durations never change,
/// so the state is written once at dispatch; under the shared model
/// `retime` advances and re-projects every job whenever concurrency
/// changes.
#[derive(Debug, Clone)]
struct RunningJob {
    seq: usize,
    batch: Batch,
    /// Per-request dispatch (or in-flight join) cycle, parallel to
    /// `batch.requests`.
    dispatch_times: Vec<u64>,
    /// Which requests joined in flight, parallel to `batch.requests`.
    joined: Vec<bool>,
    key: Option<BatchKey>,
    cfg: ArrayConfig,
    dataflow: Dataflow,
    used: Vec<usize>,
    pr: usize,
    pc: usize,
    /// The tile walk, shared with the model cache until the job needs
    /// to mutate it (in-flight join delta, checkpoint refill) —
    /// `Arc::make_mut` clones lazily, so unmutated jobs never copy the
    /// schedule.
    tiles: Arc<Vec<TilePhase>>,
    final_drain: u64,
    /// The tiles strictly after `next_tile`, grouped by `(cycles,
    /// dram_bytes)` — the only tile fields the timing law reads — so
    /// `reproject` sums the remaining walk in O(distinct tile groups)
    /// instead of O(remaining tiles). u64 addition is exact and
    /// order-free, so the grouped sum is bit-identical to the
    /// tile-by-tile one. Maintained while `suspend_after` is `None`
    /// (stale once a checkpoint is scheduled — suspending jobs re-time
    /// over their short boundary-bounded range instead) and rebuilt at
    /// resume.
    rest: BTreeMap<(u64, u64), usize>,
    /// The phase in progress: tiles before it are done (this or earlier
    /// segments); `tiles.len()` means the final drain.
    next_tile: usize,
    /// Cycles consumed of the current phase, against `cur_scheduled`.
    cur_consumed: u64,
    /// Full duration of the current phase under the timing epoch.
    cur_scheduled: u64,
    /// Absolute cycle the progress state was last advanced to.
    last_update: u64,
    /// Total active weight the current phase durations were computed
    /// under (the timing epoch; meaningless while unconstrained).
    timed_total_weight: usize,
    segment_start: u64,
    /// Absolute cycle the current segment ends: completion, or the
    /// checkpoint point when `suspend_after` is set.
    end: u64,
    /// `Some(j)`: at `end` the job suspends, tiles `next_tile..=j` done.
    /// The checkpoint tail (drain + context spill) is walked as two
    /// extra phases after tile `j`, so a suspending job re-times with
    /// the bandwidth epoch like any other — its `end` is *not* frozen at
    /// decision-time bandwidth — and it keeps its demand weight until
    /// the checkpoint completes.
    suspend_after: Option<usize>,
    /// Checkpoint-drain cycles of the scheduled suspension (phase
    /// `j + 1`; 0 unless `suspend_after` is set).
    ckpt_drain: u64,
    /// Context bytes of the scheduled suspension's spill transfer (phase
    /// `j + 2`; 0 unless `suspend_after` is set).
    spill_bytes: u64,
    /// Cycles billed in finished segments (array-occupied wall cycles).
    billed: u64,
    /// What `billed` would be under [`MemoryModel::Unconstrained`]: the
    /// compute-cycle schedule plus join deltas and checkpoint drains.
    /// `billed - baseline_cycles` is the job's bandwidth-stall time.
    baseline_cycles: u64,
    preemptions: u32,
    /// Checkpoint spill + refill DRAM bytes accumulated by preemptions
    /// (billed into DRAM energy at completion).
    checkpoint_dram_bytes: u64,
}

impl RunningJob {
    fn deadline(&self) -> u64 {
        self.batch.deadline()
    }

    /// Demand units this job places on the shared DRAM: one per
    /// occupied array (each array drives its own operand stream).
    fn weight(&self) -> usize {
        self.used.len()
    }

    /// Remaining compute cycles (contention-free): the provisional
    /// projection written at dispatch/resume, exact under the
    /// unconstrained model and immediately re-timed under the shared
    /// one.
    fn remaining_cycles(&self) -> u64 {
        self.tiles[self.next_tile.min(self.tiles.len())..]
            .iter()
            .map(|t| t.cycles)
            .sum::<u64>()
            + self.final_drain
    }

    /// Duration of phase `idx` under `total_weight` active units. The
    /// phase sequence is the tile walk, then either the share-independent
    /// final drain (`idx == tiles.len()`, running to completion) or —
    /// when a checkpoint is scheduled after tile `j` — the checkpoint
    /// drain (`j + 1`) and the context-spill transfer (`j + 2`), whose
    /// duration tracks the *current* bandwidth epoch.
    fn phase_time(&self, idx: usize, timing: &MemTiming, total_weight: usize) -> u64 {
        if let Some(j) = self.suspend_after {
            if idx > j {
                return if idx == j + 1 {
                    self.ckpt_drain
                } else {
                    timing.transfer_time(self.spill_bytes, self.weight(), total_weight)
                };
            }
        }
        if idx < self.tiles.len() {
            timing.tile_time(&self.tiles[idx], self.weight(), total_weight)
        } else {
            self.final_drain
        }
    }

    /// [`phase_time`](Self::phase_time) through a per-walk memo: pure
    /// in the tile's `(cycles, dram_bytes)` under a fixed weight and
    /// epoch, so hits replay the identical value. Non-tile phases
    /// (final drain, checkpoint tail) bypass the memo.
    fn phase_time_memo(
        &self,
        idx: usize,
        timing: &MemTiming,
        total_weight: usize,
        memo: &mut PhaseTimeMemo,
    ) -> u64 {
        if self.suspend_after.is_none() && idx < self.tiles.len() {
            let t = &self.tiles[idx];
            let key = (t.cycles, t.dram_bytes);
            if let Some(v) = memo.get(key) {
                return v;
            }
            let v = timing.tile_time(t, self.weight(), total_weight);
            memo.put(key, v);
            return v;
        }
        self.phase_time(idx, timing, total_weight)
    }

    /// Index of the terminal phase: the context spill when a checkpoint
    /// is scheduled, the final drain otherwise.
    fn last_phase(&self) -> usize {
        match self.suspend_after {
            Some(j) => j + 2,
            None => self.tiles.len(),
        }
    }

    /// Consumes the wall time since `last_update` against the phase
    /// durations of the current timing epoch, crossing phase boundaries
    /// as needed. Only called while `now <= end`, so the walk never
    /// runs past the final phase.
    fn advance_to(&mut self, now: u64, timing: &MemTiming) {
        let mut elapsed = now - self.last_update;
        self.last_update = now;
        let mut memo = PhaseTimeMemo::default();
        loop {
            let rem = self.cur_scheduled - self.cur_consumed;
            if rem > elapsed {
                self.cur_consumed += elapsed;
                return;
            }
            elapsed -= rem;
            if self.next_tile >= self.last_phase() {
                // Terminal phase fully consumed: `end == now`; the job
                // finalizes this event.
                self.cur_consumed = self.cur_scheduled;
                return;
            }
            self.next_tile += 1;
            if self.suspend_after.is_none() && self.next_tile < self.tiles.len() {
                // The tile entered is no longer strictly ahead.
                let t = &self.tiles[self.next_tile];
                let key = (t.cycles, t.dram_bytes);
                let count = self
                    .rest
                    .get_mut(&key)
                    .expect("entered tile tracked in rest");
                *count -= 1;
                if *count == 0 {
                    self.rest.remove(&key);
                }
            }
            self.cur_consumed = 0;
            self.cur_scheduled =
                self.phase_time_memo(self.next_tile, timing, self.timed_total_weight, &mut memo);
        }
    }

    /// Re-times the job under `total_weight` active units: rescales the
    /// current phase's remaining fraction to its new duration (integer
    /// ceiling, so remaining work is never rounded away) and re-projects
    /// `end` over the later phases. A no-op when the epoch's durations
    /// are unchanged.
    fn reproject(&mut self, timing: &MemTiming, total_weight: usize) {
        let t_new = self.phase_time(self.next_tile, timing, total_weight);
        let rem_old = self.cur_scheduled - self.cur_consumed;
        let rem_new = if rem_old == 0 || t_new == self.cur_scheduled {
            rem_old.min(t_new)
        } else {
            ceil_mul_div(t_new, rem_old, self.cur_scheduled)
        };
        self.cur_scheduled = t_new;
        self.cur_consumed = t_new - rem_new;
        let mut remaining = rem_new;
        if self.suspend_after.is_none() {
            // Grouped tail sum over `rest` — exactly the tiles at
            // `next_tile + 1..tiles.len()` — then the final drain.
            // Identical tiles have identical phase times, and u64
            // addition is exact, so this equals the phase-by-phase loop
            // bit for bit in O(distinct groups).
            if self.next_tile < self.tiles.len() {
                let weight = self.weight();
                for (&(cycles, dram_bytes), &count) in &self.rest {
                    let probe = TilePhase {
                        rows: 0,
                        cols: 0,
                        cycles,
                        dram_bytes,
                    };
                    remaining += count as u64 * timing.tile_time(&probe, weight, total_weight);
                }
                remaining += self.final_drain;
            }
        } else {
            // Suspending jobs walk only to their checkpoint tail — a
            // short, boundary-bounded range `rest` does not track.
            for idx in self.next_tile + 1..=self.last_phase() {
                remaining += self.phase_time(idx, timing, total_weight);
            }
        }
        self.timed_total_weight = total_weight;
        self.end = self.last_update + remaining;
    }

    /// The next tile boundary strictly after `now` that still leaves at
    /// least one tile to resume, as `(last_done_tile, boundary_cycle)`,
    /// under the current timing epoch.
    fn next_boundary(&self, now: u64, timing: &MemTiming) -> Option<(usize, u64)> {
        if self.suspend_after.is_some() || self.used.len() != 1 {
            return None;
        }
        if self.next_tile >= self.tiles.len() {
            return None; // already in the final drain
        }
        let mut t = self.last_update + (self.cur_scheduled - self.cur_consumed);
        let mut memo = PhaseTimeMemo::default();
        for j in self.next_tile..self.tiles.len().saturating_sub(1) {
            if j > self.next_tile {
                t += self.phase_time_memo(j, timing, self.timed_total_weight, &mut memo);
            }
            if t > now {
                return Some((j, t));
            }
        }
        None
    }

    /// Checkpoint drain billed when suspending after tile `j`: under
    /// overlapped drains the tile's partials must be read out before the
    /// array can be handed over (per-tile accounting already billed it).
    fn checkpoint_drain(&self, j: usize, drain: DrainPolicy) -> u64 {
        match drain {
            DrainPolicy::PerTile => 0,
            DrainPolicy::Overlapped => self.tiles[j].rows as u64,
        }
    }

    /// DRAM bytes to spill tile `j`'s accumulated context (one int32
    /// partial per PE of the tile); the refill on resume moves the same
    /// amount back.
    fn checkpoint_context_bytes(&self, j: usize) -> u64 {
        CHECKPOINT_BYTES_PER_PARTIAL * (self.tiles[j].rows * self.tiles[j].cols) as u64
    }
}

/// Advances every running job to `now` and re-times **only the jobs
/// whose bandwidth epoch actually changed** under the current total
/// demand, syncing `free_at` and the event heap with the moved
/// completion edges. The single point where concurrency changes (job
/// start, finish, join, checkpoint completion) propagate into service
/// time. Suspending jobs re-time too: their checkpoint tail (drain +
/// context spill) is part of their phase walk, so a spill scheduled
/// under heavy contention speeds up when co-runners finish —
/// checkpoints track the bandwidth epoch instead of freezing at
/// decision-time bandwidth.
///
/// Skipping a job with `timed_total_weight == total_weight` is exact,
/// not approximate: `reproject` under an unchanged epoch recomputes
/// the identical phase durations (`t_new == cur_scheduled`), takes the
/// `rem_new == rem_old` branch, and lands on the same `end` — so
/// `free_at[used] == end` (an invariant every end-writing site
/// maintains) also already holds. Freshly dispatched/resumed jobs
/// carry the epoch sentinel `timed_total_weight == 0`, which no live
/// total (≥ the job's own weight ≥ 1) can equal, so they always take
/// their first projection. `advance_to` still runs for every job:
/// phase progress (`next_tile`) must be current for the join-admission
/// and preemption-boundary reads that follow, whatever the epoch did.
fn retime(
    running: &mut [RunningJob],
    now: u64,
    timing: &MemTiming,
    free_at: &mut [u64],
    events: &mut EventHeap,
) {
    let total_weight: usize = running.iter().map(|j| j.weight()).sum();
    for job in running.iter_mut() {
        job.advance_to(now, timing);
        if job.timed_total_weight == total_weight {
            continue;
        }
        job.reproject(timing, total_weight);
        for &i in &job.used {
            free_at[i] = job.end;
        }
        events.update(job.seq, job.end);
    }
}

/// Runs `traffic` through `pod` to completion and reports the full trace,
/// per-request completions and aggregate metrics.
///
/// The simulation is event-driven and fully deterministic: the same
/// `(pod, traffic)` pair always produces the identical report.
///
/// # Examples
///
/// ```
/// use axon_core::runtime::Architecture;
/// use axon_serve::{simulate_pod, PodConfig, TrafficConfig};
///
/// let pod = PodConfig::homogeneous(2, Architecture::Axon, 64);
/// let traffic = TrafficConfig::open_loop(7, 64, 4000.0);
/// let report = simulate_pod(&pod, &traffic);
/// assert_eq!(report.metrics.completed, 64);
/// assert!(report.metrics.throughput_rps() > 0.0);
/// ```
pub fn simulate_pod(pod: &PodConfig, traffic: &TrafficConfig) -> ServingReport {
    simulate_pod_traced(pod, traffic, &mut NullSink)
}

/// [`simulate_pod`] with a [`TraceSink`] attached: every request
/// lifecycle event (arrival, dispatch, preemption, retime, completion,
/// ...) is delivered to `sink` as it happens. The sink only observes —
/// the report is bit-identical to [`simulate_pod`]'s (asserted per
/// policy in `crates/serve/tests/trace.rs`).
pub fn simulate_pod_traced(
    pod: &PodConfig,
    traffic: &TrafficConfig,
    sink: &mut dyn TraceSink,
) -> ServingReport {
    let mut policy = pod.scheduler.build(&pod.client_weights);
    simulate_pod_with_policy_traced(pod, traffic, policy.as_mut(), sink)
}

/// [`simulate_pod`] with an externally supplied queue discipline — the
/// hook for custom [`SchedulingPolicy`] implementations. The pod's
/// [`SchedulerPolicy`] enum still controls the continuous-batching join
/// mechanism (via
/// [`admits_inflight_joins`](SchedulerPolicy::admits_inflight_joins))
/// and its `max_batch` caps in-flight joins.
pub fn simulate_pod_with_policy(
    pod: &PodConfig,
    traffic: &TrafficConfig,
    policy: &mut dyn SchedulingPolicy,
) -> ServingReport {
    simulate_pod_with_policy_traced(pod, traffic, policy, &mut NullSink)
}

fn simulate_pod_with_policy_traced(
    pod: &PodConfig,
    traffic: &TrafficConfig,
    policy: &mut dyn SchedulingPolicy,
    sink: &mut dyn TraceSink,
) -> ServingReport {
    let mut gen = RequestGenerator::new(traffic);
    match &traffic.arrival {
        ArrivalProcess::ClosedLoop { think_cycles } => {
            let think_cycles = *think_cycles;
            let mut trace = Vec::new();
            for client in 0..traffic.num_clients {
                match gen.next_request(client, 0) {
                    Some(r) => trace.push(r),
                    None => break,
                }
            }
            run_pod_loop(
                pod,
                policy,
                trace,
                Some((&mut gen, think_cycles)),
                sink,
                0,
                None,
            )
        }
        trace_driven => {
            let trace = gen
                .arrival_trace(trace_driven, traffic.num_clients)
                .expect("every non-closed-loop arrival process is trace-driven");
            run_pod_loop(pod, policy, trace, None, sink, 0, None)
        }
    }
}

/// Runs an explicit, already-generated request trace through `pod`
/// with the pod's configured scheduler — the entry point the cluster
/// layer uses to replay each pod's routed sub-trace. Runs the exact
/// event loop behind [`simulate_pod`]: a trace equal to the one
/// [`TrafficConfig`] would generate produces the bit-identical report
/// (the single-pod-equivalence pin in `crates/serve/tests/cluster.rs`).
///
/// The trace must be sorted by request id with non-decreasing arrivals
/// per client (any generator output or routed subset of one qualifies).
///
/// # Examples
///
/// ```
/// use axon_core::runtime::Architecture;
/// use axon_serve::{
///     simulate_pod, simulate_pod_trace, PodConfig, RequestGenerator, TrafficConfig,
/// };
///
/// let pod = PodConfig::homogeneous(2, Architecture::Axon, 64);
/// let traffic = TrafficConfig::open_loop(7, 64, 4000.0);
/// let trace = RequestGenerator::new(&traffic).open_loop_trace(4000.0, traffic.num_clients);
/// let (a, b) = (simulate_pod_trace(&pod, &trace), simulate_pod(&pod, &traffic));
/// assert_eq!(a, b);
/// ```
pub fn simulate_pod_trace(pod: &PodConfig, trace: &[Request]) -> ServingReport {
    simulate_pod_trace_traced(pod, trace, &mut NullSink)
}

/// [`simulate_pod_trace`] with a [`TraceSink`] attached (the
/// trace-level analogue of [`simulate_pod_traced`]). Events carry pod
/// id 0; the cluster layer re-tags replays with the real pod index.
pub fn simulate_pod_trace_traced(
    pod: &PodConfig,
    trace: &[Request],
    sink: &mut dyn TraceSink,
) -> ServingReport {
    simulate_pod_trace_traced_at(pod, trace, sink, 0, None)
}

/// The cluster replay hook: like [`simulate_pod_trace_traced`] but
/// stamps every event with the pod's fleet declaration index and
/// optionally backs the model cache with the fleet-shared L2.
pub(crate) fn simulate_pod_trace_traced_at(
    pod: &PodConfig,
    trace: &[Request],
    sink: &mut dyn TraceSink,
    pod_id: usize,
    shared: Option<Arc<SharedModelCache>>,
) -> ServingReport {
    let mut policy = pod.scheduler.build(&pod.client_weights);
    run_pod_loop(
        pod,
        policy.as_mut(),
        trace.to_vec(),
        None,
        sink,
        pod_id,
        shared,
    )
}

/// [`simulate_pod_trace`] with an externally supplied queue discipline
/// (the trace-level analogue of [`simulate_pod_with_policy`]).
pub fn simulate_pod_trace_with_policy(
    pod: &PodConfig,
    trace: &[Request],
    policy: &mut dyn SchedulingPolicy,
) -> ServingReport {
    run_pod_loop(pod, policy, trace.to_vec(), None, &mut NullSink, 0, None)
}

/// The event loop shared by the traffic-driven and trace-driven entry
/// points: `trace` seeds the pending heap; `reissue` (closed loop
/// only) appends each completing client's next request after its think
/// time.
#[allow(clippy::too_many_arguments)]
fn run_pod_loop(
    pod: &PodConfig,
    policy: &mut dyn SchedulingPolicy,
    trace: Vec<Request>,
    mut reissue: Option<(&mut RequestGenerator, u64)>,
    sink: &mut dyn TraceSink,
    pod_id: usize,
    shared_models: Option<Arc<SharedModelCache>>,
) -> ServingReport {
    assert!(!pod.arrays.is_empty(), "a pod needs at least one array");
    let mut trace = trace;
    // Bucketed arrival structure; pops in exact `(arrival, id)` order,
    // matching the reference engine's heap key (see `arrivals`).
    let mut pending = ArrivalCalendar::seed(&trace);

    let lib = ComponentLibrary::calibrated_7nm();
    let node = TechNode::asap7();
    let dram = pod.dram;
    let timing = MemTiming::new(pod);
    let mut models = ModelCache::with_shared(shared_models);
    let mut events = EventHeap::default();

    let n_arrays = pod.arrays.len();
    // Arrays are busy until the pod comes online (0 = always ready).
    let mut free_at = vec![pod.available_from; n_arrays];
    let mut busy = vec![0u64; n_arrays];
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut running: Vec<RunningJob> = Vec::new();
    let mut suspended: Vec<RunningJob> = Vec::new();
    let mut completions: Vec<Completion> = Vec::new();
    let mut shed: Vec<ShedRecord> = Vec::new();
    // Closed-loop candidates rejected by admission: backpressure holds
    // them here and re-offers every iteration until accepted.
    let mut blocked: VecDeque<Request> = VecDeque::new();
    let admission = pod.admission;
    // Closed loop never sheds — rejection becomes backpressure.
    let backpressure = reissue.is_some();
    let mut now = 0u64;
    let mut seq = 0usize;
    let mut batches = 0usize;
    let mut sharded_batches = 0usize;
    let mut sharding_refused = 0usize;
    let mut bandwidth_stall_cycles = 0u64;
    let mut preemptions = 0usize;
    let mut inflight_joins = 0usize;
    let mut array_energy_uj = 0.0f64;
    let mut dram_energy_mj = 0.0f64;
    let mut checkpoint_dram_mj = 0.0f64;
    let mut spot_checks = 0usize;
    let mut spot_check_mismatches = 0usize;

    // Scratch client set reused by the eligibility scans and the join
    // pass below — these run on every event, so they must not allocate.
    let mut seen_clients: HashSet<usize> = HashSet::new();

    loop {
        // Finalize jobs whose segment ends by `now`: completion, or a
        // scheduled tile-boundary checkpoint. Processed in (end, seq)
        // order so completion records are deterministic. This runs
        // before arrival admission because closed-loop completions
        // reissue at `end + think_cycles`, which with zero think time is
        // `now` — those must be admitted this very iteration.
        let mut finalized: Vec<RunningJob> = Vec::new();
        let mut keep: Vec<RunningJob> = Vec::with_capacity(running.len());
        for job in running.drain(..) {
            if job.end <= now {
                events.remove(job.seq);
                finalized.push(job);
            } else {
                keep.push(job);
            }
        }
        let mut dirty = !finalized.is_empty();
        finalized.sort_by_key(|j| (j.end, j.seq));
        running = keep;
        for mut job in finalized {
            let segment = job.end - job.segment_start;
            job.billed += segment;
            for &i in &job.used {
                busy[i] += segment;
            }
            if let Some(j) = job.suspend_after.take() {
                // Checkpoint: remaining tiles resume later. The context
                // spill (billed into this segment's tail) is matched by
                // a refill charged to the first resumed tile's demand.
                let ctx = job.checkpoint_context_bytes(j);
                job.checkpoint_dram_bytes += 2 * ctx;
                // The drain is compute-side work the unconstrained model
                // bills too; the spill transfer is pure bandwidth stall.
                job.baseline_cycles += job.ckpt_drain;
                job.ckpt_drain = 0;
                job.spill_bytes = 0;
                job.next_tile = j + 1;
                let nt = job.next_tile;
                Arc::make_mut(&mut job.tiles)[nt].dram_bytes += ctx;
                job.cur_consumed = 0;
                job.cur_scheduled = 0; // rewritten at resume
                job.preemptions += 1;
                preemptions += 1;
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::CheckpointDrained {
                            seq: job.seq,
                            cycle: job.end,
                        },
                    );
                }
                suspended.push(job);
                continue;
            }
            // Completion: bill energy on the final fused shape and the
            // actually billed cycles (checkpoint drains and join deltas
            // included).
            let per_array = execution_energy(
                design_of(job.cfg.arch),
                job.cfg.array,
                node,
                &lib,
                job.billed as usize,
                pod.clock_mhz,
                0.0,
            )
            .energy_uj();
            let job_array_uj = per_array * (job.pr * job.pc) as f64;
            // DRAM traffic of the dispatch (see `dispatch_dram_bytes`)
            // plus any checkpoint spill/refill the job accumulated.
            let bytes = dispatch_dram_bytes(job.batch.shape, job.pr, job.pc);
            let ckpt_mj = dram.transfer_energy_mj(job.checkpoint_dram_bytes as usize);
            let job_dram_mj = dram.transfer_energy_mj(bytes as usize) + ckpt_mj;
            array_energy_uj += job_array_uj;
            dram_energy_mj += job_dram_mj;
            checkpoint_dram_mj += ckpt_mj;

            // Bandwidth stall: billed wall cycles beyond what the
            // compute-only schedule (joins and drains included) owes —
            // zero under the unconstrained model by construction.
            let job_stall = job.billed.saturating_sub(job.baseline_cycles);
            bandwidth_stall_cycles += job_stall;
            policy.on_complete(&job.batch, job.billed, job.baseline_cycles);

            let share = job.batch.requests.len() as f64;
            let stall_share = job_stall / job.batch.requests.len() as u64;
            let stall_rem = job_stall % job.batch.requests.len() as u64;
            for (ri, r) in job.batch.requests.iter().enumerate() {
                completions.push(Completion {
                    id: r.id,
                    client: r.client,
                    class: r.class,
                    shape: job.batch.shape,
                    arrival: r.arrival,
                    deadline: r.deadline,
                    dispatch: job.dispatch_times[ri],
                    completion: job.end,
                    array: job.used[0],
                    batch_size: job.batch.requests.len(),
                    sharded_over: job.pr * job.pc,
                    preemptions: job.preemptions,
                    joined_inflight: job.joined[ri],
                    bandwidth_stall_cycles: stall_share + if ri == 0 { stall_rem } else { 0 },
                    array_energy_uj: job_array_uj / share,
                    dram_energy_mj: job_dram_mj / share,
                });
                if sink.enabled() {
                    let outcome = RequestOutcome {
                        id: r.id,
                        client: r.client,
                        class: r.class,
                        seq: job.seq,
                        array: job.used[0],
                        arrival: r.arrival,
                        dispatch: job.dispatch_times[ri],
                        completion: job.end,
                        deadline: r.deadline,
                        batch_size: job.batch.requests.len(),
                        sharded_over: job.pr * job.pc,
                        stall_cycles: stall_share + if ri == 0 { stall_rem } else { 0 },
                    };
                    sink.record(
                        pod_id,
                        if job.end <= r.deadline {
                            TraceEvent::Completed(outcome)
                        } else {
                            TraceEvent::DeadlineMissed(outcome)
                        },
                    );
                }
                if let Some((gen, think_cycles)) = reissue.as_mut() {
                    if let Some(next) = gen.next_request(r.client, job.end + *think_cycles) {
                        trace.push(next);
                        // Never in the past: the issuing job finalized
                        // at `end == now`, so the calendar cursor only
                        // moves forward.
                        pending.push(next);
                    }
                }
            }
        }

        // Admit every arrival due by `now` (including same-cycle
        // closed-loop reissues from the finalization above).
        if admission == AdmissionPolicy::AcceptAll {
            // The pre-admission hot path, byte for byte: zero review
            // work, bit-identical to the frozen reference engine.
            while pending.peek_arrival().is_some_and(|a| a <= now) {
                let p = pending.pop().expect("peeked");
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::Arrived {
                            id: p.id,
                            client: p.client,
                            class: p.class,
                            cycle: p.arrival,
                        },
                    );
                    sink.record(
                        pod_id,
                        TraceEvent::Enqueued {
                            id: p.id,
                            client: p.client,
                            cycle: now,
                        },
                    );
                }
                policy.on_enqueue(&p);
                queue.push_back(p);
            }
        } else {
            // Admission review, in offer order: closed-loop candidates
            // blocked by an earlier rejection re-offer *before* new
            // arrivals (a blocked request was first offered no later
            // than anything still pending).
            let reoffers: Vec<Request> = blocked.drain(..).collect();
            let mut due: Vec<Request> = Vec::new();
            while pending.peek_arrival().is_some_and(|a| a <= now) {
                due.push(pending.pop().expect("peeked"));
            }
            // Queued optimistic service cycles, maintained across the
            // accepts of this review batch (DeadlineInfeasible only).
            let mut queued_work = 0u64;
            let est = |models: &mut ModelCache, r: &Request| -> u64 {
                models
                    .service_cycles(
                        &pod.arrays[0],
                        pod.mapping,
                        pod.drain,
                        Tiling::ScaleUp,
                        r.workload.shape,
                    )
                    .1 as u64
            };
            if admission.needs_estimates() {
                queued_work = queue.iter().map(|r| est(&mut models, r)).sum();
            }
            let fresh_from = reoffers.len();
            for (i, mut p) in reoffers.into_iter().chain(due).enumerate() {
                let is_reoffer = i < fresh_from;
                if is_reoffer {
                    // Backpressure rebases the deadline budget: the
                    // cycles spent blocked extend the deadline, so the
                    // SLO clock effectively restarts at accept.
                    let wait = now - p.arrival;
                    p.deadline = p.deadline.saturating_add(wait);
                    p.arrival = now;
                } else if sink.enabled() {
                    // Arrived fires exactly once, at first offer.
                    sink.record(
                        pod_id,
                        TraceEvent::Arrived {
                            id: p.id,
                            client: p.client,
                            class: p.class,
                            cycle: p.arrival,
                        },
                    );
                }
                let service_estimate = if admission.needs_estimates() {
                    est(&mut models, &p)
                } else {
                    0
                };
                let outlook = AdmissionOutlook {
                    now,
                    deadline: p.deadline,
                    queue_depth: queue.len(),
                    service_estimate,
                    queued_work,
                    arrays: n_arrays,
                };
                if let Some(reason) = admission.review(&outlook) {
                    if backpressure {
                        // Never shed a closed-loop client. A candidate
                        // the policy rejects even against an empty
                        // system can never be admitted by waiting —
                        // admit it now instead of stalling the loop.
                        if admission.review(&outlook.empty_system()).is_some() {
                            // fall through to accept
                        } else {
                            blocked.push_back(p);
                            continue;
                        }
                    } else {
                        shed.push(ShedRecord {
                            id: p.id,
                            client: p.client,
                            class: p.class,
                            arrival: p.arrival,
                            deadline: p.deadline,
                            cycle: now,
                            reason,
                        });
                        if sink.enabled() {
                            sink.record(
                                pod_id,
                                TraceEvent::Shed {
                                    id: p.id,
                                    client: p.client,
                                    class: p.class,
                                    cycle: now,
                                    reason,
                                },
                            );
                        }
                        continue;
                    }
                }
                queued_work = queued_work.saturating_add(service_estimate);
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::Enqueued {
                            id: p.id,
                            client: p.client,
                            cycle: now,
                        },
                    );
                }
                policy.on_enqueue(&p);
                queue.push_back(p);
            }
        }

        // Dispatch onto idle arrays: resume a checkpointed job when
        // nothing queued is more urgent, else pull from the policy.
        loop {
            let idle: Vec<usize> = (0..n_arrays).filter(|&i| free_at[i] <= now).collect();
            if idle.is_empty() {
                break;
            }
            let queue_deadline = eligible_min_deadline(&queue, &mut seen_clients);
            let resume_pick = suspended
                .iter()
                .enumerate()
                .filter(|(_, j)| idle.iter().any(|&i| pod.arrays[i] == j.cfg))
                .min_by_key(|(_, j)| (j.deadline(), j.seq))
                .map(|(si, _)| si);
            let do_resume = match (resume_pick, queue_deadline) {
                (Some(si), Some(qd)) => suspended[si].deadline() <= qd,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if do_resume {
                let mut job = suspended.remove(resume_pick.expect("checked"));
                let ai = *idle
                    .iter()
                    .find(|&&i| pod.arrays[i] == job.cfg)
                    .expect("resume_pick requires a matching idle array");
                job.used = vec![ai];
                job.segment_start = now;
                job.last_update = now;
                job.cur_consumed = 0;
                job.cur_scheduled = job.tiles[job.next_tile].cycles;
                job.timed_total_weight = 0;
                job.rest = rest_of(&job.tiles, job.next_tile + 1);
                // Provisional compute-only projection; exact under the
                // unconstrained model, re-timed this same event under
                // the shared one.
                job.end = now + job.remaining_cycles();
                free_at[ai] = job.end;
                events.update(job.seq, job.end);
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::Resumed {
                            seq: job.seq,
                            array: ai,
                            cycle: now,
                        },
                    );
                }
                running.push(job);
                dirty = true;
                continue;
            }
            if queue.is_empty() {
                break;
            }
            let batch = policy
                .next_batch(&mut queue, now)
                .expect("queue checked non-empty");
            let ai = idle[0];
            let cfg = pod.arrays[ai];

            // Idle arrays identical to the chosen one (itself included)
            // are candidates for sharding the dispatch.
            let peers: Vec<usize> = idle
                .iter()
                .copied()
                .filter(|&i| pod.arrays[i] == cfg)
                .collect();
            let want_shard = pod
                .shard_min_macs
                .is_some_and(|min| batch.shape.macs() >= min);
            let (pr, pc, df, cycles) = if want_shard && peers.len() > 1 {
                match (&timing.shared, pod.planner) {
                    // Bandwidth-aware: score grids by contended finish
                    // time under the co-running demand and refuse
                    // scale-out a starved pod cannot feed.
                    (Some(shared), ShardPlanner::BandwidthAware) => {
                        let co_running: usize = running.iter().map(|j| j.weight()).sum();
                        let (pr, pc, df, cycles, refused) = plan_sharding_contended(
                            &mut models,
                            &cfg,
                            pod.mapping,
                            pod.drain,
                            batch.shape,
                            peers.len(),
                            shared,
                            pod.clock_mhz,
                            co_running,
                        );
                        if refused {
                            sharding_refused += 1;
                            if sink.enabled() {
                                sink.record(pod_id, TraceEvent::ShardRefused { seq, cycle: now });
                            }
                        }
                        (pr, pc, df, cycles)
                    }
                    // Compute-only scoring: the pre-contention planner
                    // (and the only sensible one when streaming is free).
                    _ => plan_sharding(
                        &mut models,
                        &cfg,
                        pod.mapping,
                        pod.drain,
                        batch.shape,
                        peers.len(),
                    ),
                }
            } else {
                let (df, cycles) = models.service_cycles(
                    &cfg,
                    pod.mapping,
                    pod.drain,
                    Tiling::ScaleUp,
                    batch.shape,
                );
                (1, 1, df, cycles)
            };
            let used: Vec<usize> = peers.into_iter().take(pr * pc).collect();
            debug_assert_eq!(used.len(), pr * pc);
            debug_assert_eq!(used[0], ai);

            // The tile schedule: exact-edge walk for scale-up jobs (the
            // preemptable representation); sharded jobs are one opaque
            // segment, never preempted, carrying the grid's full
            // (duplicated) operand traffic.
            let (tiles, final_drain) = if used.len() == 1 {
                let sched = models.schedule(&cfg, pod.drain, df, batch.shape);
                debug_assert_eq!(
                    sched.total, cycles as u64,
                    "tile plan disagrees with the runtime model"
                );
                (sched.tiles.clone(), sched.final_drain)
            } else {
                (
                    Arc::new(vec![TilePhase {
                        rows: 0,
                        cols: 0,
                        cycles: cycles as u64,
                        dram_bytes: dispatch_dram_bytes(batch.shape, pr, pc),
                    }]),
                    0,
                )
            };

            // Optional cycle-accurate validation of the billed latency
            // (scale-up dispatches only; the sharded path is covered by
            // the scale-out property tests).
            if let Some(sc) = pod.spot_check {
                if used.len() == 1
                    && batch.shape.macs() <= sc.max_macs
                    && batches.is_multiple_of(sc.every.max(1))
                {
                    let seed = batch.requests[0].id as u64;
                    let a = random_matrix(batch.shape.m, batch.shape.k, seed, 0.0);
                    let b = random_matrix(batch.shape.k, batch.shape.n, seed + 1, 0.0);
                    let sim_cfg = SimConfig::new(cfg.array)
                        .with_dataflow(df)
                        .with_pipelining(pod.drain);
                    let sim = simulate_gemm(cfg.arch, &sim_cfg, &a, &b)
                        .expect("operand shapes match by construction");
                    spot_checks += 1;
                    if sim.stats.cycles != cycles {
                        spot_check_mismatches += 1;
                    }
                }
            }

            policy.on_dispatch(&batch, cycles as u64);
            let completion = now + cycles as u64;
            for &i in &used {
                free_at[i] = completion;
            }
            batches += 1;
            if used.len() > 1 {
                sharded_batches += 1;
            }
            let n_reqs = batch.requests.len();
            let key = batch.requests[0].batch_key();
            let cur_scheduled = tiles[0].cycles;
            if sink.enabled() {
                sink.record(
                    pod_id,
                    TraceEvent::Dispatched {
                        seq,
                        ids: batch.requests.iter().map(|r| r.id).collect(),
                        array: used[0],
                        arrays: used.len(),
                        cycle: now,
                    },
                );
                if used.len() > 1 {
                    sink.record(
                        pod_id,
                        TraceEvent::ShardPlanned {
                            seq,
                            pr,
                            pc,
                            cycle: now,
                        },
                    );
                }
            }
            events.update(seq, completion);
            running.push(RunningJob {
                seq,
                batch,
                dispatch_times: vec![now; n_reqs],
                joined: vec![false; n_reqs],
                key,
                cfg,
                dataflow: df,
                used,
                pr,
                pc,
                rest: rest_of(&tiles, 1),
                tiles,
                final_drain,
                next_tile: 0,
                cur_consumed: 0,
                cur_scheduled,
                last_update: now,
                timed_total_weight: 0,
                segment_start: now,
                end: completion,
                suspend_after: None,
                ckpt_drain: 0,
                spill_bytes: 0,
                billed: 0,
                baseline_cycles: cycles as u64,
                preemptions: 0,
                checkpoint_dram_bytes: 0,
            });
            seq += 1;
            dirty = true;
        }

        // Continuous batching: queued requests whose batch key matches a
        // running coalesced batch join it in flight instead of waiting.
        if pod.scheduler.admits_inflight_joins() && !queue.is_empty() {
            let max_batch = pod.scheduler.max_batch();
            // `seen_clients` tracks clients with an entry strictly
            // before `qi`: removing the entry *at* `qi` leaves it
            // untouched, advancing past one adds it — so the
            // own-earlier test is O(1) instead of re-scanning the
            // queue prefix per candidate.
            seen_clients.clear();
            let mut qi = 0;
            while qi < queue.len() {
                let cand = queue[qi];
                let own_earlier = seen_clients.contains(&cand.client);
                let Some(key) = cand.batch_key() else {
                    seen_clients.insert(cand.client);
                    qi += 1;
                    continue;
                };
                if own_earlier {
                    qi += 1;
                    continue;
                }
                let target = running
                    .iter_mut()
                    .filter(|j| {
                        j.used.len() == 1
                            && j.suspend_after.is_none()
                            && j.key == Some(key)
                            && j.batch.requests.len() < max_batch
                            && j.end > now
                            && j.next_tile < j.tiles.len()
                    })
                    .min_by_key(|j| j.seq);
                let Some(job) = target else {
                    seen_clients.insert(cand.client);
                    qi += 1;
                    continue;
                };
                // Bill the join as the cycle (and traffic) delta between
                // the old and new fused shapes under the job's fixed
                // mapping, appended to its last tile.
                let old_shape = job.batch.shape;
                let new_shape = coalesced_shape(key, job.batch.requests.len() + 1);
                let old_total = models.schedule_total(&job.cfg, pod.drain, job.dataflow, old_shape);
                let new_total = models.schedule_total(&job.cfg, pod.drain, job.dataflow, new_shape);
                let delta = new_total.saturating_sub(old_total);
                let delta_bytes = dispatch_dram_bytes(new_shape, 1, 1)
                    .saturating_sub(dispatch_dram_bytes(old_shape, 1, 1));
                job.batch.shape = new_shape;
                job.batch.requests.push(cand);
                job.dispatch_times.push(now);
                job.joined.push(true);
                let last_idx = job.tiles.len() - 1;
                let old_t = job.phase_time(last_idx, &timing, job.timed_total_weight);
                // The last tile's key changes: re-home its `rest` entry
                // when it is still strictly ahead of the walk.
                if job.next_tile < last_idx {
                    let t = &job.tiles[last_idx];
                    let old_key = (t.cycles, t.dram_bytes);
                    let count = job
                        .rest
                        .get_mut(&old_key)
                        .expect("last tile tracked in rest");
                    *count -= 1;
                    if *count == 0 {
                        job.rest.remove(&old_key);
                    }
                }
                {
                    let tiles = Arc::make_mut(&mut job.tiles);
                    tiles[last_idx].cycles += delta;
                    tiles[last_idx].dram_bytes += delta_bytes;
                }
                if job.next_tile < last_idx {
                    let t = &job.tiles[last_idx];
                    *job.rest.entry((t.cycles, t.dram_bytes)).or_insert(0) += 1;
                }
                job.baseline_cycles += delta;
                let new_t = job.phase_time(last_idx, &timing, job.timed_total_weight);
                let dt = new_t.saturating_sub(old_t);
                if job.next_tile == last_idx {
                    job.cur_scheduled += dt;
                }
                job.end += dt;
                let ai = job.used[0];
                free_at[ai] = job.end;
                events.update(job.seq, job.end);
                inflight_joins += 1;
                if sink.enabled() {
                    sink.record(
                        pod_id,
                        TraceEvent::BatchJoined {
                            seq: job.seq,
                            id: cand.id,
                            cycle: now,
                        },
                    );
                }
                dirty = true;
                policy.on_dequeue(&cand);
                queue.remove(qi).expect("index in bounds");
                // Do not advance qi: the next request shifted into place.
            }
        }

        // Concurrency changed (job started, finished, checkpointed or
        // grew by a join): under the shared memory model every running
        // job's service-time edge moves, so re-time them all before any
        // decision reads `free_at` or a tile boundary.
        if dirty && timing.is_shared() {
            retime(&mut running, now, &timing, &mut free_at, &mut events);
            if sink.enabled() {
                sink.record(
                    pod_id,
                    TraceEvent::Retimed {
                        jobs: running.len(),
                        cycle: now,
                    },
                );
                let total_weight: usize = running.iter().map(|j| j.weight()).sum();
                sink.record(
                    pod_id,
                    TraceEvent::BandwidthEpoch {
                        total_weight,
                        cycle: now,
                    },
                );
            }
        }

        // Tile-granular preemption: if the most urgent queued request
        // cannot be served before its deadline, checkpoint the
        // least-urgent preemptible job at its next tile boundary.
        if pod.preemption == PreemptionMode::TileBoundary && !queue.is_empty() {
            let total_weight: usize = running.iter().map(|j| j.weight()).sum();
            // The queue never changes inside this loop (only `free_at`
            // moves as victims are scheduled to checkpoint), so the most
            // urgent eligible request — and everything derived from it —
            // is loop-invariant.
            if let Some(ui) = eligible_most_urgent(&queue, &mut seen_clients) {
                let urgent = queue[ui].deadline;
                let urgent_shape = queue[ui].workload.shape;
                let mut urgent_ests: Vec<(ArrayConfig, u64)> = Vec::new();
                let mut ests_built = !timing.is_shared();
                loop {
                    let min_free = free_at.iter().copied().min().unwrap_or(0);
                    if urgent >= min_free {
                        break;
                    }
                    // Victim: the preemptible job with the loosest
                    // deadline strictly looser than the urgent
                    // request's, whose checkpoint (boundary + drain +
                    // context spill) frees an array both earlier than
                    // any natural completion and early enough that the
                    // urgent deadline is still achievable (otherwise
                    // preempting is pure churn). The boundary and spill
                    // estimates come from the current bandwidth epoch;
                    // under the shared model achievability additionally
                    // requires the urgent request's *contended* service
                    // estimate to fit before the deadline — freeing an
                    // array for a dispatch that starved bandwidth would
                    // sink anyway rescues nothing. The estimate depends
                    // only on the serving array's configuration, so it
                    // is computed once per distinct config — lazily,
                    // the first time the urgency gate actually fires.
                    if !ests_built {
                        if let Some(s) = &timing.shared {
                            for job in &running {
                                if urgent_ests.iter().any(|(c, _)| *c == job.cfg) {
                                    continue;
                                }
                                let (_, cycles) = models.service_cycles(
                                    &job.cfg,
                                    pod.mapping,
                                    pod.drain,
                                    Tiling::ScaleUp,
                                    urgent_shape,
                                );
                                let est = s.leg_cycles(
                                    pod.clock_mhz,
                                    cycles as u64,
                                    dispatch_dram_bytes(urgent_shape, 1, 1),
                                    1,
                                    total_weight.max(1),
                                );
                                urgent_ests.push((job.cfg, est));
                            }
                        }
                        ests_built = true;
                    }
                    let victim = running
                        .iter_mut()
                        .filter(|j| j.deadline() > urgent)
                        .filter_map(|j| {
                            let (jt, b) = j.next_boundary(now, &timing)?;
                            let drain = j.checkpoint_drain(jt, pod.drain);
                            let spill = timing.transfer_time(
                                j.checkpoint_context_bytes(jt),
                                1,
                                total_weight,
                            );
                            let tail = drain + spill;
                            let achievable = if timing.is_shared() {
                                let est = urgent_ests
                                    .iter()
                                    .find(|(c, _)| *c == j.cfg)
                                    .map(|&(_, e)| e)
                                    .expect("estimate precomputed for every running config");
                                (b + tail).saturating_add(est) <= urgent
                            } else {
                                b + tail < urgent
                            };
                            (b + tail < min_free && achievable).then_some((j, jt, b, drain, spill))
                        })
                        .max_by_key(|(j, ..)| (j.deadline(), j.seq));
                    let Some((job, jt, boundary, drain, spill)) = victim else {
                        break;
                    };
                    job.suspend_after = Some(jt);
                    job.ckpt_drain = drain;
                    job.spill_bytes = job.checkpoint_context_bytes(jt);
                    job.end = boundary + drain + spill;
                    let ai = job.used[0];
                    free_at[ai] = job.end;
                    events.update(job.seq, job.end);
                    if sink.enabled() {
                        sink.record(
                            pod_id,
                            TraceEvent::Preempted {
                                seq: job.seq,
                                cycle: now,
                            },
                        );
                    }
                }
            }
        }

        if queue.is_empty() && pending.is_empty() && running.is_empty() && blocked.is_empty() {
            // `blocked` cannot actually be non-empty here: a review
            // against an empty queue sees the empty-system outlook and
            // always accepts (permanently-infeasible candidates
            // included), and a non-empty queue at review time leaves
            // the queue or the running set non-empty below.
            debug_assert!(suspended.is_empty(), "suspended job never resumed");
            break;
        }

        // Advance to the next event: an arrival, a job segment ending,
        // or — when work is queued on a pod still warming up — the
        // first array coming online (`free_at` beyond `now` is either a
        // running job's end, already covered, or `available_from`).
        let mut next = pending.peek_arrival().unwrap_or(u64::MAX);
        if let Some(e) = events.next_end() {
            debug_assert_eq!(
                Some(e),
                running.iter().map(|j| j.end).min(),
                "event heap out of sync with running set"
            );
            next = next.min(e);
        }
        if !queue.is_empty() {
            if let Some(f) = free_at.iter().copied().filter(|&f| f > now).min() {
                next = next.min(f);
            }
        }
        debug_assert!(next != u64::MAX && next > now, "simulation stalled");
        now = next;
    }

    // Engine self-measurement rides outside the compared report/event
    // surface (see `TraceSink::planner_stats`): one call per loop.
    sink.planner_stats(
        pod_id,
        models.plan_stats.hits,
        models.plan_stats.misses,
        models.plan_stats.grids_scored,
    );

    let makespan_cycles = completions.iter().map(|c| c.completion).max().unwrap_or(0);
    let slo_met = completions.iter().filter(|c| c.met_deadline()).count();
    let metrics = PodMetrics {
        completed: completions.len(),
        makespan_cycles,
        clock_mhz: pod.clock_mhz,
        queue: LatencySummary::from_cycles(completions.iter().map(|c| c.queue_cycles()).collect()),
        service: LatencySummary::from_cycles(
            completions.iter().map(|c| c.service_cycles()).collect(),
        ),
        total: LatencySummary::from_cycles(completions.iter().map(|c| c.total_cycles()).collect()),
        per_array_utilization: busy
            .iter()
            .map(|&b| {
                if makespan_cycles == 0 {
                    0.0
                } else {
                    b as f64 / makespan_cycles as f64
                }
            })
            .collect(),
        batches,
        mean_batch_size: if batches == 0 {
            0.0
        } else {
            completions.len() as f64 / batches as f64
        },
        sharded_batches,
        sharding_refused,
        bandwidth_stall_cycles,
        preemptions,
        inflight_joins,
        slo_met,
        slo_violations: completions.len() - slo_met,
        shed: shed.len(),
        per_class: ClassMetrics::from_completions(&completions),
        array_energy_uj,
        dram_energy_mj,
        checkpoint_dram_mj,
        spot_checks,
        spot_check_mismatches,
    };

    ServingReport {
        trace,
        completions,
        shed,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadMix;
    use crate::request::{RequestClass, SloBudgets};
    use proptest::prelude::*;

    fn small_pod(arch: Architecture) -> PodConfig {
        PodConfig::homogeneous(2, arch, 16)
    }

    /// `ModelCache::schedule_total` answers from the closed-form
    /// runtime model when no tile walk is cached; that value must equal
    /// `TileSchedule::total_cycles()` of the walk it stands in for,
    /// bit-for-bit, or join-path shape deltas drift off dispatch
    /// billing.
    #[test]
    fn schedule_total_matches_walk() {
        for (arch, side) in [
            (Architecture::Axon, 32),
            (Architecture::Conventional, 16),
            (Architecture::Axon, 8),
        ] {
            let cfg = ArrayConfig {
                arch,
                array: ArrayShape::square(side),
            };
            for drain in [DrainPolicy::Overlapped, DrainPolicy::PerTile] {
                for df in Dataflow::ALL {
                    for shape in [
                        GemmShape::new(1, 4096, 4096),
                        GemmShape::new(8, 4096, 4096),
                        GemmShape::new(257, 96, 1000),
                        GemmShape::new(3, 3, 3),
                        GemmShape::new(640, 640, 1),
                    ] {
                        let mut cache = ModelCache::default();
                        let closed = cache.schedule_total(&cfg, drain, df, shape);
                        let walk = plan_tiles(&cfg, drain, df, shape).total_cycles();
                        assert_eq!(closed, walk, "{arch:?} {side} {drain:?} {df:?} {shape}");
                    }
                }
            }
        }
    }

    /// The candidate-grid enumeration behind both planners: canonical
    /// strictly-increasing `(pr, pc)` order, no duplicates, and exactly
    /// the divisor-complete set `{pr, pc ≤ 4, 2 ≤ pr·pc ≤ free_peers}`
    /// (for `free_peers ≤ 4` the per-dimension cap is implied by the
    /// array budget, so the closed-form set is the whole contract).
    #[test]
    fn shard_grids_enumeration_invariants() {
        for free_peers in 0..=12 {
            let grids: Vec<(usize, usize)> = shard_grids(free_peers).collect();
            assert!(
                grids.windows(2).all(|w| w[0] < w[1]),
                "canonical order with no duplicates, free_peers={free_peers}: {grids:?}"
            );
            let expect: Vec<(usize, usize)> = (1..=4)
                .flat_map(|pr| (1..=4).map(move |pc| (pr, pc)))
                .filter(|&(pr, pc)| (2..=free_peers).contains(&(pr * pc)))
                .collect();
            assert_eq!(grids, expect, "free_peers={free_peers}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The cold-pass dominance prune under `PerTile` drain must
        /// reproduce the full enumeration bit-for-bit — grid, dataflow
        /// and cycles (the monotonicity argument on
        /// [`plan_sharding_pruned`], pinned over random shapes).
        #[test]
        fn shard_plan_prune_matches_full(
            m in 1usize..600,
            n in 1usize..600,
            t in 1usize..600,
            free_peers in 0usize..9,
            side_i in 0usize..3,
            axon in 0usize..2,
            mi in 0usize..3,
        ) {
            let shape = GemmShape::new(m, n, t);
            let cfg = ArrayConfig {
                arch: if axon == 1 { Architecture::Axon } else { Architecture::Conventional },
                array: ArrayShape::square([8, 16, 32][side_i]),
            };
            let mapping = [
                MappingPolicy::Fixed(Dataflow::Ws),
                MappingPolicy::MinTemporal,
                MappingPolicy::BestPerRequest,
            ][mi];
            let mut pruned_cache = ModelCache::default();
            let mut full_cache = ModelCache::default();
            let pruned = plan_sharding_pruned(
                &mut pruned_cache, &cfg, mapping, DrainPolicy::PerTile, shape, free_peers,
            );
            let full = plan_sharding_full(
                &mut full_cache, &cfg, mapping, DrainPolicy::PerTile, shape, free_peers, true,
            );
            prop_assert_eq!(pruned, full);
        }

        /// Warm plan-cache answers must equal a fresh cold planner's,
        /// bit for bit, across random shapes, free-peer counts and
        /// bandwidth epochs (`co_running_weight`) — for both the
        /// compute-only and the contended planner. Each case derives a
        /// query stream from a *small* shape pool with a seeded
        /// xorshift, so queries repeat and the warm cache genuinely
        /// answers from memo entries.
        #[test]
        fn plan_cache_matches_uncached_planner(
            seed in 0u64..u64::MAX,
            pool in 1usize..6,
            n_queries in 1usize..40,
            pertile in 0usize..2,
        ) {
            let mut s = seed | 1;
            let mut rng = move |bound: usize| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % bound as u64) as usize
            };
            let shapes: Vec<GemmShape> = (0..pool)
                .map(|_| GemmShape::new(1 + rng(400), 1 + rng(400), 1 + rng(400)))
                .collect();
            let pod = PodConfig::homogeneous(4, Architecture::Axon, 16);
            let cfg = ArrayConfig {
                arch: Architecture::Axon,
                array: ArrayShape::square(16),
            };
            let mapping = MappingPolicy::BestPerRequest;
            let drain = if pertile == 1 { DrainPolicy::PerTile } else { DrainPolicy::Overlapped };
            let shared = SharedDram::new(pod.dram, 2);
            let mut warm = ModelCache::default();
            for _ in 0..n_queries {
                let shape = shapes[rng(shapes.len())];
                let free_peers = rng(9);
                let co_w = rng(6);
                let mut cold = ModelCache::default();
                prop_assert_eq!(
                    plan_sharding(&mut warm, &cfg, mapping, drain, shape, free_peers),
                    plan_sharding(&mut cold, &cfg, mapping, drain, shape, free_peers),
                );
                let mut cold = ModelCache::default();
                prop_assert_eq!(
                    plan_sharding_contended(
                        &mut warm, &cfg, mapping, drain, shape, free_peers,
                        &shared, pod.clock_mhz, co_w,
                    ),
                    plan_sharding_contended(
                        &mut cold, &cfg, mapping, drain, shape, free_peers,
                        &shared, pod.clock_mhz, co_w,
                    ),
                );
            }
        }
    }

    #[test]
    fn all_requests_complete_open_loop() {
        let pod = small_pod(Architecture::Axon);
        let traffic = TrafficConfig::open_loop(3, 100, 2000.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 100);
        assert_eq!(r.trace.len(), 100);
        assert_eq!(r.completions.len(), 100);
        for c in &r.completions {
            assert!(c.dispatch >= c.arrival);
            assert!(c.completion > c.dispatch);
        }
    }

    #[test]
    fn all_requests_complete_closed_loop() {
        let pod = small_pod(Architecture::Conventional);
        let traffic = TrafficConfig::closed_loop(4, 60, 8, 100)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 60);
        // Closed loop: a client never has two requests in flight.
        for client in 0..8 {
            let mut cs: Vec<_> = r
                .completions
                .iter()
                .filter(|c| c.client == client)
                .collect();
            cs.sort_by_key(|c| c.id);
            for w in cs.windows(2) {
                assert!(
                    w[1].arrival >= w[0].completion,
                    "client {client} overlapped"
                );
            }
        }
    }

    /// Zero think time means a completion reissues at the completion
    /// cycle itself — the same-cycle admission path (regression: the
    /// event loop must finalize before admitting, or it stalls).
    #[test]
    fn closed_loop_zero_think_time_completes() {
        let pod = small_pod(Architecture::Axon);
        let traffic = TrafficConfig::closed_loop(4, 30, 4, 0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 30);
    }

    #[test]
    fn batching_reduces_makespan_on_decode_storm() {
        let traffic = TrafficConfig::open_loop(9, 150, 10.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let fifo = simulate_pod(
            &small_pod(Architecture::Axon).with_scheduler(SchedulerPolicy::Fifo),
            &traffic,
        );
        let batched = simulate_pod(
            &small_pod(Architecture::Axon)
                .with_scheduler(SchedulerPolicy::Batching { max_batch: 8 }),
            &traffic,
        );
        assert!(
            batched.metrics.makespan_cycles < fifo.metrics.makespan_cycles,
            "batched {} vs fifo {}",
            batched.metrics.makespan_cycles,
            fifo.metrics.makespan_cycles
        );
        assert!(batched.metrics.mean_batch_size > 1.5);
    }

    #[test]
    fn sharding_engages_on_large_kernels() {
        let pod = PodConfig::homogeneous(4, Architecture::Axon, 32)
            .with_shard_min_macs(Some(1 << 20))
            .with_scheduler(SchedulerPolicy::Fifo);
        // Sparse arrivals so several arrays are idle per dispatch.
        let traffic = TrafficConfig::open_loop(5, 30, 2_000_000.0)
            .with_mix(WorkloadMix::single(RequestClass::Prefill));
        let r = simulate_pod(&pod, &traffic);
        assert!(r.metrics.sharded_batches > 0, "no dispatch sharded");
        assert!(r.completions.iter().any(|c| c.sharded_over > 1));
    }

    #[test]
    fn spot_checks_agree_with_analytical_billing() {
        let pod =
            PodConfig::homogeneous(2, Architecture::Axon, 16).with_spot_check(SpotCheckConfig {
                max_macs: 1 << 22,
                every: 1,
            });
        let traffic = TrafficConfig::open_loop(6, 20, 500.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert!(r.metrics.spot_checks > 0, "no spot checks ran");
        assert_eq!(r.metrics.spot_check_mismatches, 0);
    }

    #[test]
    fn axon_pod_beats_conventional_on_decode_latency() {
        let traffic = TrafficConfig::open_loop(8, 80, 5000.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let sa = simulate_pod(&small_pod(Architecture::Conventional), &traffic);
        let ax = simulate_pod(&small_pod(Architecture::Axon), &traffic);
        assert!(
            ax.metrics.total.p50 < sa.metrics.total.p50,
            "axon p50 {} vs conventional {}",
            ax.metrics.total.p50,
            sa.metrics.total.p50
        );
    }

    #[test]
    fn mixed_pod_is_supported() {
        let pod = PodConfig {
            arrays: vec![
                ArrayConfig {
                    arch: Architecture::Axon,
                    array: ArrayShape::square(16),
                },
                ArrayConfig {
                    arch: Architecture::Conventional,
                    array: ArrayShape::square(16),
                },
            ],
            ..PodConfig::homogeneous(1, Architecture::Axon, 16)
        };
        let traffic = TrafficConfig::open_loop(2, 40, 300.0);
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 40);
        assert_eq!(r.metrics.per_array_utilization.len(), 2);
    }

    /// The tile plan agrees with the runtime model for every policy's
    /// dispatch path (the debug_assert in the dispatch loop enforces it
    /// per dispatch; this exercises it across a mixed run).
    #[test]
    fn tile_plan_matches_runtime_model() {
        let cfg = ArrayConfig {
            arch: Architecture::Axon,
            array: ArrayShape::square(32),
        };
        for shape in [
            GemmShape::new(1, 512, 2048),
            GemmShape::new(128, 512, 512),
            GemmShape::new(8, 512, 8192),
            GemmShape::new(4096, 4096, 1),
        ] {
            for drain in [DrainPolicy::Overlapped, DrainPolicy::PerTile] {
                for df in Dataflow::ALL {
                    let sched = plan_tiles(&cfg, drain, df, shape);
                    let spec = RuntimeSpec::new(cfg.array, df)
                        .with_accounting(Accounting::ExactEdges)
                        .with_drain(drain);
                    assert_eq!(
                        sched.total_cycles(),
                        spec.runtime(cfg.arch, shape).cycles as u64
                    );
                    assert_eq!(
                        sched.total_dram_bytes(),
                        dispatch_dram_bytes(shape, 1, 1),
                        "tile walk must carry the dispatch's full traffic"
                    );
                }
            }
        }
    }

    /// A decode request that would miss its deadline behind a long
    /// prefill preempts it at a tile boundary, and the prefill is billed
    /// its base cost plus one checkpoint drain per preemption.
    #[test]
    fn preemption_rescues_urgent_decode() {
        // Light load on one array: the queue is usually empty, but a
        // ~100k-cycle prefill occasionally occupies the array exactly
        // when a tight-deadline decode arrives — the head-of-line case
        // only preemption (not reordering) can fix.
        let pod = PodConfig::homogeneous(1, Architecture::Axon, 64)
            .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 })
            .with_shard_min_macs(None);
        let traffic = TrafficConfig::open_loop(21, 60, 150_000.0)
            .with_mix(WorkloadMix::new(vec![
                (RequestClass::Prefill, 0.2),
                (RequestClass::Decode, 0.8),
            ]))
            .with_slo(SloBudgets::serving_default().with_decode(70_000));
        let no_preempt = simulate_pod(&pod, &traffic);
        let preempt = simulate_pod(
            &pod.clone().with_preemption(PreemptionMode::TileBoundary),
            &traffic,
        );
        assert!(preempt.metrics.preemptions > 0, "no preemption happened");
        let violations = |r: &ServingReport| {
            r.metrics
                .class_metrics(RequestClass::Decode)
                .expect("decode traffic present")
                .slo_violations
        };
        assert!(
            violations(&preempt) < violations(&no_preempt),
            "preemption should rescue decode SLOs: {} vs {} violations",
            violations(&preempt),
            violations(&no_preempt)
        );
        // Everything still completes, and preempted jobs carry the count.
        assert_eq!(preempt.metrics.completed, 60);
        assert!(preempt.completions.iter().any(|c| c.preemptions > 0));
    }

    /// Continuous batching admits late decode arrivals into running
    /// batches and reports them as joins.
    #[test]
    fn continuous_batching_joins_inflight() {
        let pod = PodConfig::homogeneous(1, Architecture::Axon, 64)
            .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
            .with_shard_min_macs(None);
        let traffic = TrafficConfig::open_loop(5, 200, 150.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 200);
        assert!(r.metrics.inflight_joins > 0, "no in-flight joins");
        assert!(r.completions.iter().any(|c| c.joined_inflight));
        // Joins never exceed the batch cap.
        assert!(r.completions.iter().all(|c| c.batch_size <= 8));
    }

    /// WFQ end to end: with `client_weights` [4, 1] on two equal-rate
    /// clients under backlog, the heavy-weight client is served ahead
    /// at every contended dispatch, so its latency distribution must be
    /// strictly better — while with equal (default) weights the two
    /// clients come out statistically even.
    #[test]
    fn wfq_client_weights_shift_service() {
        let traffic = TrafficConfig::open_loop(13, 300, 200.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode))
            .with_clients(2);
        let mean_latency = |r: &ServingReport, client: usize| {
            let cs: Vec<u64> = r
                .completions
                .iter()
                .filter(|c| c.client == client)
                .map(|c| c.total_cycles())
                .collect();
            cs.iter().sum::<u64>() as f64 / cs.len() as f64
        };
        let base = PodConfig::homogeneous(2, Architecture::Axon, 32)
            .with_scheduler(SchedulerPolicy::Wfq { max_batch: 4 })
            .with_shard_min_macs(None);
        let weighted = simulate_pod(&base.clone().with_client_weights(vec![4.0, 1.0]), &traffic);
        assert_eq!(weighted.metrics.completed, 300);
        assert!(
            mean_latency(&weighted, 0) < mean_latency(&weighted, 1),
            "4x-weight client should be served faster: {} vs {}",
            mean_latency(&weighted, 0),
            mean_latency(&weighted, 1)
        );
        // Equal weights: neither client may see the skew the 4:1 run
        // showed (within 2x of each other is comfortably beyond any
        // seed-level noise at this backlog).
        let even = simulate_pod(&base, &traffic);
        let ratio = mean_latency(&even, 0) / mean_latency(&even, 1);
        assert!(
            (0.5..2.0).contains(&ratio),
            "equal weights should serve clients evenly, got ratio {ratio}"
        );
        let skew = mean_latency(&weighted, 1) / mean_latency(&weighted, 0);
        assert!(
            skew > ratio,
            "weighting must skew service beyond the even baseline: {skew} vs {ratio}"
        );
    }

    /// Decode GEMVs are memory-bound: starving the pod of channels must
    /// stretch service latency, monotonically in the channel count.
    #[test]
    fn fewer_channels_stretch_memory_bound_service() {
        let traffic = TrafficConfig::open_loop(11, 120, 400.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let run = |channels: usize| {
            simulate_pod(
                &PodConfig::homogeneous(4, Architecture::Axon, 64)
                    .with_memory(MemoryModel::Shared { channels }),
                &traffic,
            )
        };
        let mut last_p99 = u64::MAX;
        let mut last_makespan = u64::MAX;
        for channels in [1usize, 2, 4] {
            let r = run(channels);
            assert_eq!(r.metrics.completed, 120);
            assert!(
                r.metrics.service.p99 <= last_p99,
                "{channels} channels: p99 {} vs {last_p99}",
                r.metrics.service.p99
            );
            assert!(r.metrics.makespan_cycles <= last_makespan);
            last_p99 = r.metrics.service.p99;
            last_makespan = r.metrics.makespan_cycles;
        }
        // The starved pod must be strictly slower than the private one.
        assert!(run(1).metrics.service.p99 > run(4).metrics.service.p99);
    }

    /// `channels >= arrays` can never contend (active weight is capped
    /// by the array count), so any such channel count yields the
    /// bit-identical report.
    #[test]
    fn channels_at_or_above_arrays_never_contend() {
        let traffic = TrafficConfig::open_loop(5, 100, 900.0);
        let run = |channels: usize| {
            simulate_pod(
                &PodConfig::homogeneous(3, Architecture::Axon, 32)
                    .with_memory(MemoryModel::Shared { channels }),
                &traffic,
            )
        };
        let private = run(3);
        for channels in [4, 8, 1 << 20] {
            let r = run(channels);
            assert_eq!(r.completions, private.completions);
            assert_eq!(r.metrics, private.metrics);
        }
        // A single-array pod never contends at any channel count.
        let one = |channels: usize| {
            simulate_pod(
                &PodConfig::homogeneous(1, Architecture::Axon, 32)
                    .with_memory(MemoryModel::Shared { channels }),
                &traffic,
            )
        };
        assert_eq!(one(1).completions, one(64).completions);
        assert_eq!(one(1).metrics, one(64).metrics);
    }

    /// The shared model composes with every pod mechanism on a mixed
    /// run (joins, preemption, sharding, closed loop) and completes.
    #[test]
    fn shared_model_composes_with_all_mechanisms() {
        let pod = PodConfig::homogeneous(2, Architecture::Axon, 64)
            .with_scheduler(SchedulerPolicy::Continuous { max_batch: 8 })
            .with_preemption(PreemptionMode::TileBoundary)
            .with_memory(MemoryModel::Shared { channels: 1 })
            .with_shard_min_macs(Some(1 << 20));
        let traffic = TrafficConfig::open_loop(21, 150, 400.0).with_mix(WorkloadMix::new(vec![
            (RequestClass::Prefill, 0.2),
            (RequestClass::Decode, 0.8),
        ]));
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 150);
        let closed = TrafficConfig::closed_loop(4, 60, 8, 0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let rc = simulate_pod(&pod, &closed);
        assert_eq!(rc.metrics.completed, 60);
    }

    /// Checkpoint spill/refill traffic lands in the DRAM energy totals
    /// (per request and pod-wide), under both memory models.
    #[test]
    fn checkpoint_traffic_billed_into_dram_energy() {
        let traffic = TrafficConfig::open_loop(21, 60, 150_000.0)
            .with_mix(WorkloadMix::new(vec![
                (RequestClass::Prefill, 0.2),
                (RequestClass::Decode, 0.8),
            ]))
            .with_slo(SloBudgets::serving_default().with_decode(70_000));
        for memory in [
            MemoryModel::Unconstrained,
            MemoryModel::Shared { channels: 1 },
        ] {
            let pod = PodConfig::homogeneous(1, Architecture::Axon, 64)
                .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 })
                .with_shard_min_macs(None)
                .with_preemption(PreemptionMode::TileBoundary)
                .with_memory(memory);
            let r = simulate_pod(&pod, &traffic);
            assert!(r.metrics.preemptions > 0, "{memory:?}: no preemption");
            assert!(
                r.metrics.checkpoint_dram_mj > 0.0,
                "{memory:?}: spill/refill energy missing"
            );
            assert!(r.metrics.dram_energy_mj > r.metrics.checkpoint_dram_mj);
            // The per-request records carry their checkpoint share: the
            // preempted requests' energy sums to more than the same
            // shapes would cost un-preempted.
            let total: f64 = r.completions.iter().map(|c| c.dram_energy_mj).sum();
            assert!((total - r.metrics.dram_energy_mj).abs() < 1e-9);
            // And a run that never preempts bills zero checkpoint DRAM.
            let calm = simulate_pod(
                &pod.clone().with_preemption(PreemptionMode::Disabled),
                &traffic,
            );
            assert_eq!(calm.metrics.checkpoint_dram_mj, 0.0);
        }
    }

    /// Builds a runnable scale-up job over a real tile schedule for the
    /// re-timing unit tests.
    fn tile_job(cfg: ArrayConfig, shape: GemmShape, now: u64) -> RunningJob {
        use axon_workloads::{GemmWorkload, WorkloadKind};
        let (df, cycles) = service_cycles(
            &cfg,
            MappingPolicy::BestPerRequest,
            DrainPolicy::Overlapped,
            Tiling::ScaleUp,
            shape,
        );
        let sched = plan_tiles(&cfg, DrainPolicy::Overlapped, df, shape);
        let req = crate::request::Request {
            id: 0,
            client: 0,
            class: RequestClass::Decode,
            workload: GemmWorkload {
                name: "t",
                shape,
                kind: WorkloadKind::Gemm,
            },
            arrival: 0,
            deadline: u64::MAX,
        };
        let cur_scheduled = sched.tiles[0].cycles;
        RunningJob {
            seq: 0,
            batch: Batch {
                requests: vec![req],
                shape,
            },
            dispatch_times: vec![now],
            joined: vec![false],
            key: None,
            cfg,
            dataflow: df,
            used: vec![0],
            pr: 1,
            pc: 1,
            rest: rest_of(&sched.tiles, 1),
            tiles: Arc::new(sched.tiles),
            final_drain: sched.final_drain,
            next_tile: 0,
            cur_consumed: 0,
            cur_scheduled,
            last_update: now,
            timed_total_weight: 0,
            segment_start: now,
            end: now + cycles as u64,
            suspend_after: None,
            ckpt_drain: 0,
            spill_bytes: 0,
            billed: 0,
            baseline_cycles: cycles as u64,
            preemptions: 0,
            checkpoint_dram_bytes: 0,
        }
    }

    /// A job suspended under contention and resumed when the pod has
    /// drained must re-time to the *private* roofline exactly: the
    /// decision-time bandwidth leaves no residue in the resumed walk.
    #[test]
    fn resumed_job_retimes_to_private_roofline_exactly() {
        let pod = PodConfig::homogeneous(1, Architecture::Axon, 32)
            .with_memory(MemoryModel::Shared { channels: 1 });
        let timing = MemTiming::new(&pod);
        let cfg = pod.arrays[0];
        let now = 10_000u64;
        let mut job = tile_job(cfg, GemmShape::new(256, 256, 256), now);
        assert!(job.tiles.len() > 2, "need a multi-tile walk");
        // Pretend tile 0 completed before a (heavily contended)
        // suspension; the resume path writes a provisional
        // compute-only projection and lets `retime` fix it.
        job.next_tile = 1;
        job.rest = rest_of(&job.tiles, 2);
        job.preemptions = 1;
        job.cur_consumed = 0;
        job.cur_scheduled = job.tiles[1].cycles;
        job.timed_total_weight = 0;
        job.end = now + job.remaining_cycles();
        let tiles = job.tiles.clone();
        let final_drain = job.final_drain;

        let mut running = vec![job];
        let mut free_at = vec![0u64];
        let mut events = EventHeap::default();
        retime(&mut running, now, &timing, &mut free_at, &mut events);

        let shared = SharedDram::new(pod.dram, 1);
        let private: u64 = tiles[1..]
            .iter()
            .map(|t| shared.leg_cycles(pod.clock_mhz, t.cycles, t.dram_bytes, 1, 1))
            .sum::<u64>()
            + final_drain;
        assert_eq!(running[0].end, now + private);
        assert_eq!(free_at[0], running[0].end);
        // Sanity: had the job stayed at 4-way decision-time bandwidth,
        // the memory-bound walk would project strictly later.
        let contended: u64 = tiles[1..]
            .iter()
            .map(|t| shared.leg_cycles(pod.clock_mhz, t.cycles, t.dram_bytes, 1, 4))
            .sum::<u64>()
            + final_drain;
        assert!(contended > private, "test shape must be memory-bound");
    }

    /// A scheduled checkpoint's tail (drain + context spill) re-times
    /// with the bandwidth epoch: when the co-runners that starved the
    /// spill finish, the suspension completes at the private transfer
    /// rate instead of the frozen decision-time one.
    #[test]
    fn suspending_checkpoint_spill_retimes_with_the_epoch() {
        let pod = PodConfig::homogeneous(1, Architecture::Axon, 32)
            .with_memory(MemoryModel::Shared { channels: 1 });
        let timing = MemTiming::new(&pod);
        let cfg = pod.arrays[0];
        let now = 5_000u64;
        let mut job = tile_job(cfg, GemmShape::new(256, 256, 256), now);
        let j = 0usize; // suspend after the first tile
        let decision_weight = 4usize;
        job.suspend_after = Some(j);
        job.ckpt_drain = job.checkpoint_drain(j, DrainPolicy::Overlapped);
        job.spill_bytes = job.checkpoint_context_bytes(j);
        // Decision-time projection under 4 active units.
        job.timed_total_weight = decision_weight;
        job.cur_scheduled = job.phase_time(0, &timing, decision_weight);
        job.end = now
            + job.cur_scheduled
            + job.ckpt_drain
            + timing.transfer_time(job.spill_bytes, 1, decision_weight);
        let frozen_end = job.end;
        let expect_drain = job.ckpt_drain;
        let expect_spill = timing.transfer_time(job.spill_bytes, 1, 1);
        let expect_tile = timing.tile_time(&job.tiles[0], 1, 1);

        // The co-runners finish: re-time alone.
        let mut running = vec![job];
        let mut free_at = vec![0u64];
        let mut events = EventHeap::default();
        retime(&mut running, now, &timing, &mut free_at, &mut events);
        assert_eq!(
            running[0].end,
            now + expect_tile + expect_drain + expect_spill,
            "checkpoint tail must re-time to the private rates"
        );
        assert!(
            running[0].end < frozen_end,
            "re-timing must beat the frozen decision-time projection"
        );
        assert_eq!(running[0].suspend_after, Some(j));
    }

    #[test]
    fn preemption_disabled_matches_enabled_when_no_urgency() {
        // With uniform loose deadlines nothing ever triggers preemption,
        // so both modes must produce the bit-identical report.
        let base = PodConfig::homogeneous(2, Architecture::Axon, 32)
            .with_scheduler(SchedulerPolicy::Edf { max_batch: 8 });
        let traffic =
            TrafficConfig::open_loop(9, 120, 800.0).with_slo(SloBudgets::uniform(u64::MAX / 2));
        let off = simulate_pod(&base, &traffic);
        let on = simulate_pod(
            &base.clone().with_preemption(PreemptionMode::TileBoundary),
            &traffic,
        );
        assert_eq!(off.completions, on.completions);
        assert_eq!(off.metrics, on.metrics);
    }
}

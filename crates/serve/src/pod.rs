//! Event-driven simulation of an accelerator pod serving request traffic.
//!
//! The pod holds `n` systolic arrays (Conventional or Axon, mixed
//! allowed). Per-dispatch cycle costs come from the analytical
//! [`RuntimeSpec`] model with exact-edge accounting — which the
//! cycle-accurate simulator reproduces *exactly* (see the
//! `model_vs_sim` property tests), so an optional spot-check path can
//! re-run dispatched kernels through [`axon_sim::simulate_gemm`] and
//! assert the billed latency cycle-for-cycle.

use crate::generator::{ArrivalProcess, RequestGenerator, TrafficConfig};
use crate::metrics::{Completion, LatencySummary, PodMetrics};
use crate::request::Request;
use crate::scheduler::{Batch, SchedulerPolicy};
use axon_core::runtime::{Accounting, Architecture, DrainPolicy, RuntimeSpec};
use axon_core::{ArrayShape, Dataflow, GemmShape, Tiling};
use axon_hw::{execution_energy, ArrayDesign, ComponentLibrary, TechNode};
use axon_mem::DramConfig;
use axon_sim::{random_matrix, simulate_gemm, SimConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How a dispatch chooses its dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingPolicy {
    /// One hardwired dataflow for every request — how conventional
    /// accelerators ship (e.g. TPU-style weight-stationary).
    Fixed(Dataflow),
    /// The paper's fill-bound mapping: the dataflow minimizing the
    /// temporal dimension (maximum spatial parallelism).
    MinTemporal,
    /// Evaluate all three dataflows per dispatch and take the fastest —
    /// the runtime agility Axon's unified PE provides (paper §4.3).
    BestPerRequest,
}

/// One array in the pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayConfig {
    /// Latency law the array follows.
    pub arch: Architecture,
    /// Physical shape.
    pub array: ArrayShape,
}

/// Optional cycle-accurate validation of dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpotCheckConfig {
    /// Only kernels at or below this MAC count are simulated (the
    /// functional simulator is O(cycles x PEs)).
    pub max_macs: usize,
    /// Check every `every`-th eligible dispatch.
    pub every: usize,
}

/// Full pod specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PodConfig {
    /// The arrays, dispatch-priority order.
    pub arrays: Vec<ArrayConfig>,
    /// Clock in MHz (latency/throughput conversions and energy).
    pub clock_mhz: f64,
    /// Queue discipline.
    pub scheduler: SchedulerPolicy,
    /// Dataflow selection per dispatch.
    pub mapping: MappingPolicy,
    /// Drain amortization billed per dispatch.
    pub drain: DrainPolicy,
    /// Shard a dispatch across idle identical arrays (via the scale-out
    /// partitioner) once its MAC count reaches this threshold.
    pub shard_min_macs: Option<usize>,
    /// Cycle-accurate spot-check configuration.
    pub spot_check: Option<SpotCheckConfig>,
}

impl PodConfig {
    /// A homogeneous pod of `n` square `side x side` arrays of `arch`,
    /// with the serving defaults: 500 MHz, batching scheduler
    /// (`max_batch` 8), best-per-request mapping, overlapped drains and
    /// sharding of 64 MMAC+ kernels.
    pub fn homogeneous(n: usize, arch: Architecture, side: usize) -> Self {
        assert!(n > 0, "a pod needs at least one array");
        PodConfig {
            arrays: vec![
                ArrayConfig {
                    arch,
                    array: ArrayShape::square(side),
                };
                n
            ],
            clock_mhz: 500.0,
            scheduler: SchedulerPolicy::Batching { max_batch: 8 },
            mapping: MappingPolicy::BestPerRequest,
            drain: DrainPolicy::Overlapped,
            shard_min_macs: Some(64 << 20),
            spot_check: None,
        }
    }

    /// Builder-style scheduler override.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style mapping-policy override.
    pub fn with_mapping(mut self, mapping: MappingPolicy) -> Self {
        self.mapping = mapping;
        self
    }

    /// Builder-style spot-check override.
    pub fn with_spot_check(mut self, spot_check: SpotCheckConfig) -> Self {
        self.spot_check = Some(spot_check);
        self
    }

    /// Builder-style sharding-threshold override (`None` disables).
    pub fn with_shard_min_macs(mut self, macs: Option<usize>) -> Self {
        self.shard_min_macs = macs;
        self
    }
}

/// Everything a pod run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Every issued request, in issue (= id) order.
    pub trace: Vec<Request>,
    /// Per-request completion records, in dispatch order.
    pub completions: Vec<Completion>,
    /// Aggregate metrics.
    pub metrics: PodMetrics,
}

/// Pending-arrival ordering: by `(arrival, id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingReq(Request);

impl Ord for PendingReq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.arrival, self.0.id).cmp(&(other.0.arrival, other.0.id))
    }
}

impl PartialOrd for PendingReq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn design_of(arch: Architecture) -> ArrayDesign {
    match arch {
        Architecture::Conventional => ArrayDesign::Conventional,
        Architecture::Axon => ArrayDesign::Axon {
            im2col: true,
            unified_pe: true,
        },
    }
}

/// Modeled service latency of `shape` on `cfg` under `mapping`, with
/// exact-edge accounting (the accounting the functional simulator
/// reproduces exactly).
pub fn service_cycles(
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    tiling: Tiling,
    shape: GemmShape,
) -> (Dataflow, usize) {
    let eval = |df: Dataflow| {
        RuntimeSpec::new(cfg.array, df)
            .with_accounting(Accounting::ExactEdges)
            .with_drain(drain)
            .with_tiling(tiling)
            .runtime(cfg.arch, shape)
            .cycles
    };
    match mapping {
        MappingPolicy::Fixed(df) => (df, eval(df)),
        MappingPolicy::MinTemporal => {
            let df = Dataflow::min_temporal(shape);
            (df, eval(df))
        }
        MappingPolicy::BestPerRequest => Dataflow::ALL
            .iter()
            .map(|&df| (df, eval(df)))
            .min_by_key(|&(_, c)| c)
            .expect("Dataflow::ALL is non-empty"),
    }
}

/// Picks the scale-out grid (and resulting cycles) for `shape` given
/// `free_peers` idle identical arrays. Returns `(pr, pc, dataflow,
/// cycles)`; `(1, 1, ..)` means no sharding pays off.
fn plan_sharding(
    cfg: &ArrayConfig,
    mapping: MappingPolicy,
    drain: DrainPolicy,
    shape: GemmShape,
    free_peers: usize,
) -> (usize, usize, Dataflow, usize) {
    let mut best = {
        let (df, cycles) = service_cycles(cfg, mapping, drain, Tiling::ScaleUp, shape);
        (1usize, 1usize, df, cycles)
    };
    for pr in 1..=free_peers.min(4) {
        for pc in 1..=free_peers.min(4) {
            let arrays = pr * pc;
            if arrays < 2 || arrays > free_peers {
                continue;
            }
            let tiling = Tiling::ScaleOut {
                partitions_r: pr,
                partitions_c: pc,
            };
            let (df, cycles) = service_cycles(cfg, mapping, drain, tiling, shape);
            // Strict improvement required: idle arrays are better spent on
            // the next queued batch than on marginal sharding gains.
            if cycles < best.3 {
                best = (pr, pc, df, cycles);
            }
        }
    }
    best
}

/// Runs `traffic` through `pod` to completion and reports the full trace,
/// per-request completions and aggregate metrics.
///
/// The simulation is event-driven and fully deterministic: the same
/// `(pod, traffic)` pair always produces the identical report.
///
/// # Examples
///
/// ```
/// use axon_core::runtime::Architecture;
/// use axon_serve::{simulate_pod, PodConfig, TrafficConfig};
///
/// let pod = PodConfig::homogeneous(2, Architecture::Axon, 64);
/// let traffic = TrafficConfig::open_loop(7, 64, 4000.0);
/// let report = simulate_pod(&pod, &traffic);
/// assert_eq!(report.metrics.completed, 64);
/// assert!(report.metrics.throughput_rps() > 0.0);
/// ```
pub fn simulate_pod(pod: &PodConfig, traffic: &TrafficConfig) -> ServingReport {
    assert!(!pod.arrays.is_empty(), "a pod needs at least one array");
    let mut gen = RequestGenerator::new(traffic);
    let mut pending: BinaryHeap<Reverse<PendingReq>> = BinaryHeap::new();
    let mut trace: Vec<Request> = Vec::new();
    let think_cycles = match traffic.arrival {
        ArrivalProcess::OpenLoop { mean_interarrival } => {
            for r in gen.open_loop_trace(mean_interarrival, traffic.num_clients) {
                trace.push(r);
                pending.push(Reverse(PendingReq(r)));
            }
            0
        }
        ArrivalProcess::ClosedLoop { think_cycles } => {
            for client in 0..traffic.num_clients {
                match gen.next_request(client, 0) {
                    Some(r) => {
                        trace.push(r);
                        pending.push(Reverse(PendingReq(r)));
                    }
                    None => break,
                }
            }
            think_cycles
        }
    };
    let closed_loop = matches!(traffic.arrival, ArrivalProcess::ClosedLoop { .. });

    let lib = ComponentLibrary::calibrated_7nm();
    let node = TechNode::asap7();
    let dram = DramConfig::lpddr3();

    let n_arrays = pod.arrays.len();
    let mut free_at = vec![0u64; n_arrays];
    let mut busy = vec![0u64; n_arrays];
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut completions: Vec<Completion> = Vec::new();
    let mut now = 0u64;
    let mut batches = 0usize;
    let mut sharded_batches = 0usize;
    let mut array_energy_uj = 0.0f64;
    let mut dram_energy_mj = 0.0f64;
    let mut spot_checks = 0usize;
    let mut spot_check_mismatches = 0usize;

    loop {
        // Admit every arrival due by `now`.
        while let Some(Reverse(p)) = pending.peek() {
            if p.0.arrival > now {
                break;
            }
            let Reverse(p) = pending.pop().expect("peeked");
            queue.push_back(p.0);
        }

        // Dispatch onto idle arrays.
        while !queue.is_empty() {
            let Some(ai) = (0..n_arrays).find(|&i| free_at[i] <= now) else {
                break;
            };
            let batch: Batch = pod
                .scheduler
                .take_next(&mut queue)
                .expect("queue checked non-empty");
            let cfg = pod.arrays[ai];

            // Idle arrays identical to the chosen one (itself included)
            // are candidates for sharding the dispatch.
            let peers: Vec<usize> = (0..n_arrays)
                .filter(|&i| free_at[i] <= now && pod.arrays[i] == cfg)
                .collect();
            let want_shard = pod
                .shard_min_macs
                .is_some_and(|min| batch.shape.macs() >= min);
            let (pr, pc, df, cycles) = if want_shard && peers.len() > 1 {
                plan_sharding(&cfg, pod.mapping, pod.drain, batch.shape, peers.len())
            } else {
                let (df, cycles) =
                    service_cycles(&cfg, pod.mapping, pod.drain, Tiling::ScaleUp, batch.shape);
                (1, 1, df, cycles)
            };
            let used: Vec<usize> = peers.into_iter().take(pr * pc).collect();
            debug_assert_eq!(used.len(), pr * pc);
            debug_assert_eq!(used[0], ai);

            // Optional cycle-accurate validation of the billed latency
            // (scale-up dispatches only; the sharded path is covered by
            // the scale-out property tests).
            if let Some(sc) = pod.spot_check {
                if used.len() == 1
                    && batch.shape.macs() <= sc.max_macs
                    && batches.is_multiple_of(sc.every.max(1))
                {
                    let seed = batch.requests[0].id as u64;
                    let a = random_matrix(batch.shape.m, batch.shape.k, seed, 0.0);
                    let b = random_matrix(batch.shape.k, batch.shape.n, seed + 1, 0.0);
                    let sim_cfg = SimConfig::new(cfg.array)
                        .with_dataflow(df)
                        .with_pipelining(pod.drain);
                    let sim = simulate_gemm(cfg.arch, &sim_cfg, &a, &b)
                        .expect("operand shapes match by construction");
                    spot_checks += 1;
                    if sim.stats.cycles != cycles {
                        spot_check_mismatches += 1;
                    }
                }
            }

            // Energy: each involved array runs `cycles`. DRAM traffic is
            // 1 byte/element (int8 serving); under a `pr x pc` scale-out
            // grid each A slice is delivered to every grid column and
            // each B slice to every grid row (no multicast modeled), so
            // A moves `pc` times and B `pr` times; the output assembles
            // once.
            let per_array = execution_energy(
                design_of(cfg.arch),
                cfg.array,
                node,
                &lib,
                cycles,
                pod.clock_mhz,
                0.0,
            )
            .energy_uj();
            let batch_array_uj = per_array * used.len() as f64;
            let (m, k, n) = (batch.shape.m, batch.shape.k, batch.shape.n);
            let bytes = m * k * pc + k * n * pr + m * n;
            let batch_dram_mj = dram.transfer_energy_mj(bytes);
            array_energy_uj += batch_array_uj;
            dram_energy_mj += batch_dram_mj;

            let completion = now + cycles as u64;
            for &i in &used {
                free_at[i] = completion;
                busy[i] += cycles as u64;
            }
            batches += 1;
            if used.len() > 1 {
                sharded_batches += 1;
            }

            let share = batch.requests.len() as f64;
            for r in &batch.requests {
                completions.push(Completion {
                    id: r.id,
                    client: r.client,
                    class: r.class,
                    shape: batch.shape,
                    arrival: r.arrival,
                    dispatch: now,
                    completion,
                    array: ai,
                    batch_size: batch.requests.len(),
                    sharded_over: used.len(),
                    array_energy_uj: batch_array_uj / share,
                    dram_energy_mj: batch_dram_mj / share,
                });
                if closed_loop {
                    if let Some(next) = gen.next_request(r.client, completion + think_cycles) {
                        trace.push(next);
                        pending.push(Reverse(PendingReq(next)));
                    }
                }
            }
        }

        if queue.is_empty() && pending.is_empty() {
            break;
        }

        // Advance to the next event: an arrival, or an array freeing up.
        let mut next = pending.peek().map_or(u64::MAX, |Reverse(p)| p.0.arrival);
        if !queue.is_empty() {
            let next_free = free_at
                .iter()
                .filter(|&&t| t > now)
                .min()
                .expect("queue non-empty implies a busy array");
            next = next.min(*next_free);
        }
        debug_assert!(next != u64::MAX && next > now, "simulation stalled");
        now = next;
    }

    let makespan_cycles = completions.iter().map(|c| c.completion).max().unwrap_or(0);
    let metrics = PodMetrics {
        completed: completions.len(),
        makespan_cycles,
        clock_mhz: pod.clock_mhz,
        queue: LatencySummary::from_cycles(completions.iter().map(|c| c.queue_cycles()).collect()),
        service: LatencySummary::from_cycles(
            completions.iter().map(|c| c.service_cycles()).collect(),
        ),
        total: LatencySummary::from_cycles(completions.iter().map(|c| c.total_cycles()).collect()),
        per_array_utilization: busy
            .iter()
            .map(|&b| {
                if makespan_cycles == 0 {
                    0.0
                } else {
                    b as f64 / makespan_cycles as f64
                }
            })
            .collect(),
        batches,
        mean_batch_size: if batches == 0 {
            0.0
        } else {
            completions.len() as f64 / batches as f64
        },
        sharded_batches,
        array_energy_uj,
        dram_energy_mj,
        spot_checks,
        spot_check_mismatches,
    };

    ServingReport {
        trace,
        completions,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadMix;
    use crate::request::RequestClass;

    fn small_pod(arch: Architecture) -> PodConfig {
        PodConfig::homogeneous(2, arch, 16)
    }

    #[test]
    fn all_requests_complete_open_loop() {
        let pod = small_pod(Architecture::Axon);
        let traffic = TrafficConfig::open_loop(3, 100, 2000.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 100);
        assert_eq!(r.trace.len(), 100);
        assert_eq!(r.completions.len(), 100);
        for c in &r.completions {
            assert!(c.dispatch >= c.arrival);
            assert!(c.completion > c.dispatch);
        }
    }

    #[test]
    fn all_requests_complete_closed_loop() {
        let pod = small_pod(Architecture::Conventional);
        let traffic = TrafficConfig::closed_loop(4, 60, 8, 100)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 60);
        // Closed loop: a client never has two requests in flight.
        for client in 0..8 {
            let mut cs: Vec<_> = r
                .completions
                .iter()
                .filter(|c| c.client == client)
                .collect();
            cs.sort_by_key(|c| c.id);
            for w in cs.windows(2) {
                assert!(
                    w[1].arrival >= w[0].completion,
                    "client {client} overlapped"
                );
            }
        }
    }

    #[test]
    fn batching_reduces_makespan_on_decode_storm() {
        let traffic = TrafficConfig::open_loop(9, 150, 10.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let fifo = simulate_pod(
            &small_pod(Architecture::Axon).with_scheduler(SchedulerPolicy::Fifo),
            &traffic,
        );
        let batched = simulate_pod(
            &small_pod(Architecture::Axon)
                .with_scheduler(SchedulerPolicy::Batching { max_batch: 8 }),
            &traffic,
        );
        assert!(
            batched.metrics.makespan_cycles < fifo.metrics.makespan_cycles,
            "batched {} vs fifo {}",
            batched.metrics.makespan_cycles,
            fifo.metrics.makespan_cycles
        );
        assert!(batched.metrics.mean_batch_size > 1.5);
    }

    #[test]
    fn sharding_engages_on_large_kernels() {
        let pod = PodConfig::homogeneous(4, Architecture::Axon, 32)
            .with_shard_min_macs(Some(1 << 20))
            .with_scheduler(SchedulerPolicy::Fifo);
        // Sparse arrivals so several arrays are idle per dispatch.
        let traffic = TrafficConfig::open_loop(5, 30, 2_000_000.0)
            .with_mix(WorkloadMix::single(RequestClass::Prefill));
        let r = simulate_pod(&pod, &traffic);
        assert!(r.metrics.sharded_batches > 0, "no dispatch sharded");
        assert!(r.completions.iter().any(|c| c.sharded_over > 1));
    }

    #[test]
    fn spot_checks_agree_with_analytical_billing() {
        let pod =
            PodConfig::homogeneous(2, Architecture::Axon, 16).with_spot_check(SpotCheckConfig {
                max_macs: 1 << 22,
                every: 1,
            });
        let traffic = TrafficConfig::open_loop(6, 20, 500.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let r = simulate_pod(&pod, &traffic);
        assert!(r.metrics.spot_checks > 0, "no spot checks ran");
        assert_eq!(r.metrics.spot_check_mismatches, 0);
    }

    #[test]
    fn axon_pod_beats_conventional_on_decode_latency() {
        let traffic = TrafficConfig::open_loop(8, 80, 5000.0)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let sa = simulate_pod(&small_pod(Architecture::Conventional), &traffic);
        let ax = simulate_pod(&small_pod(Architecture::Axon), &traffic);
        assert!(
            ax.metrics.total.p50 < sa.metrics.total.p50,
            "axon p50 {} vs conventional {}",
            ax.metrics.total.p50,
            sa.metrics.total.p50
        );
    }

    #[test]
    fn mixed_pod_is_supported() {
        let pod = PodConfig {
            arrays: vec![
                ArrayConfig {
                    arch: Architecture::Axon,
                    array: ArrayShape::square(16),
                },
                ArrayConfig {
                    arch: Architecture::Conventional,
                    array: ArrayShape::square(16),
                },
            ],
            ..PodConfig::homogeneous(1, Architecture::Axon, 16)
        };
        let traffic = TrafficConfig::open_loop(2, 40, 300.0);
        let r = simulate_pod(&pod, &traffic);
        assert_eq!(r.metrics.completed, 40);
        assert_eq!(r.metrics.per_array_utilization.len(), 2);
    }
}

//! Deterministic RNG for traffic generation.
//!
//! Serving experiments must be bit-reproducible from `(seed, config)` so
//! that latency/throughput curves can be regression-tested and compared
//! across architectures on *identical* request traces. A small xorshift64*
//! generator (the same family the vendored `proptest` stub uses) is more
//! than enough statistically and keeps the crate dependency-free.

/// Seeded xorshift64* generator.
///
/// # Examples
///
/// ```
/// use axon_serve::ServeRng;
///
/// let mut a = ServeRng::new(42);
/// let mut b = ServeRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRng(u64);

impl ServeRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix-style scramble so that nearby seeds diverge immediately;
        // force the state non-zero (xorshift fixpoint).
        ServeRng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice set");
        (self.next_u64() % n as u64) as usize
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling) — the inter-arrival law of an open-loop Poisson process.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // unit_f64 is in [0, 1); 1 - u is in (0, 1] so ln is finite.
        -mean * (1.0 - self.unit_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ServeRng::new(7);
        let mut b = ServeRng::new(7);
        let mut c = ServeRng::new(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = ServeRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn exp_mean_roughly_matches() {
        let mut r = ServeRng::new(123);
        let n = 20_000;
        let mean = 500.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() < mean * 0.05, "sample mean {got}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = ServeRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}

//! Seeded request generation: workload mixes and arrival processes.

use crate::request::{Request, RequestClass, SloBudgets};
use crate::rng::ServeRng;
use axon_workloads::GemmWorkload;

/// How requests arrive at the pod.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: arrivals are a Poisson-like process with the given mean
    /// inter-arrival time in cycles, independent of completions. This is
    /// the load-sweep regime (offered load can exceed capacity).
    OpenLoop {
        /// Mean cycles between consecutive arrivals.
        mean_interarrival: f64,
    },
    /// Closed loop: each client keeps exactly one request outstanding and
    /// re-issues `think_cycles` after its previous request completes.
    ClosedLoop {
        /// Client think time between completion and the next issue.
        think_cycles: u64,
    },
}

/// A weighted mix over request classes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    entries: Vec<(RequestClass, f64)>,
}

impl WorkloadMix {
    /// Builds a mix from `(class, weight)` pairs. Weights need not be
    /// normalized. Panics if no entry has a positive weight.
    pub fn new(entries: Vec<(RequestClass, f64)>) -> Self {
        let entries: Vec<_> = entries.into_iter().filter(|(_, w)| *w > 0.0).collect();
        assert!(!entries.is_empty(), "workload mix has no positive weight");
        WorkloadMix { entries }
    }

    /// Only one class.
    pub fn single(class: RequestClass) -> Self {
        WorkloadMix::new(vec![(class, 1.0)])
    }

    /// The decode-heavy serving mix of the paper's motivating scenario:
    /// mostly single-token decode GEMVs, a trickle of prefills and
    /// recommender-style GEMVs.
    pub fn decode_heavy() -> Self {
        WorkloadMix::new(vec![
            (RequestClass::Decode, 0.85),
            (RequestClass::Prefill, 0.05),
            (RequestClass::Gemv, 0.10),
        ])
    }

    /// A balanced mix across all five classes.
    pub fn balanced() -> Self {
        WorkloadMix::new(RequestClass::ALL.iter().map(|&c| (c, 1.0)).collect())
    }

    /// The `(class, weight)` entries.
    pub fn entries(&self) -> &[(RequestClass, f64)] {
        &self.entries
    }

    fn sample(&self, rng: &mut ServeRng) -> RequestClass {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        let mut pick = rng.unit_f64() * total;
        for &(class, w) in &self.entries {
            pick -= w;
            if pick < 0.0 {
                return class;
            }
        }
        // Floating-point slack: the last entry.
        self.entries.last().expect("non-empty mix").0
    }
}

/// Full traffic specification: everything the generator needs to be
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// RNG seed; same seed + same config => bit-identical trace.
    pub seed: u64,
    /// Total requests to issue over the run.
    pub num_requests: usize,
    /// Number of client streams.
    pub num_clients: usize,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Workload mix.
    pub mix: WorkloadMix,
    /// Per-class deadline budgets; every issued request gets
    /// `deadline = arrival + slo.budget(class)`.
    pub slo: SloBudgets,
}

impl TrafficConfig {
    /// Open-loop traffic with the given seed, volume and mean
    /// inter-arrival time, spread over 16 client streams.
    pub fn open_loop(seed: u64, num_requests: usize, mean_interarrival: f64) -> Self {
        TrafficConfig {
            seed,
            num_requests,
            num_clients: 16,
            arrival: ArrivalProcess::OpenLoop { mean_interarrival },
            mix: WorkloadMix::decode_heavy(),
            slo: SloBudgets::serving_default(),
        }
    }

    /// Closed-loop traffic: `num_clients` clients, each with one request
    /// outstanding and the given think time.
    pub fn closed_loop(seed: u64, num_requests: usize, num_clients: usize, think: u64) -> Self {
        TrafficConfig {
            seed,
            num_requests,
            num_clients,
            arrival: ArrivalProcess::ClosedLoop {
                think_cycles: think,
            },
            mix: WorkloadMix::decode_heavy(),
            slo: SloBudgets::serving_default(),
        }
    }

    /// Builder-style mix override.
    pub fn with_mix(mut self, mix: WorkloadMix) -> Self {
        self.mix = mix;
        self
    }

    /// Builder-style SLO-budget override.
    pub fn with_slo(mut self, slo: SloBudgets) -> Self {
        self.slo = slo;
        self
    }

    /// Builder-style client-count override.
    pub fn with_clients(mut self, num_clients: usize) -> Self {
        assert!(num_clients > 0, "need at least one client");
        self.num_clients = num_clients;
        self
    }
}

/// Deterministic request source driven by a [`TrafficConfig`].
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    rng: ServeRng,
    mix: WorkloadMix,
    catalogs: Vec<(RequestClass, Vec<GemmWorkload>)>,
    slo: SloBudgets,
    budget: usize,
    next_id: usize,
}

impl RequestGenerator {
    /// Creates a generator for `cfg`, pre-resolving the class catalogs.
    pub fn new(cfg: &TrafficConfig) -> Self {
        assert!(cfg.num_clients > 0, "need at least one client");
        let catalogs = cfg
            .mix
            .entries()
            .iter()
            .map(|&(c, _)| (c, c.catalog()))
            .collect();
        RequestGenerator {
            rng: ServeRng::new(cfg.seed),
            mix: cfg.mix.clone(),
            catalogs,
            slo: cfg.slo,
            budget: cfg.num_requests,
            next_id: 0,
        }
    }

    /// Requests still available to issue.
    pub fn remaining(&self) -> usize {
        self.budget
    }

    /// Draws the next request for `client`, arriving at `arrival`, or
    /// `None` when the budget is exhausted.
    pub fn next_request(&mut self, client: usize, arrival: u64) -> Option<Request> {
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;
        let class = self.mix.sample(&mut self.rng);
        let catalog = &self
            .catalogs
            .iter()
            .find(|(c, _)| *c == class)
            .expect("catalog pre-resolved for every mix entry")
            .1;
        let workload = catalog[self.rng.below(catalog.len())];
        let id = self.next_id;
        self.next_id += 1;
        Some(Request {
            id,
            client,
            class,
            workload,
            arrival,
            deadline: arrival + self.slo.budget(class),
        })
    }

    /// Draws the full open-loop trace: exponential inter-arrivals with
    /// the given mean, clients assigned uniformly. Returns requests in
    /// arrival (= id) order.
    pub fn open_loop_trace(&mut self, mean_interarrival: f64, num_clients: usize) -> Vec<Request> {
        assert!(
            mean_interarrival >= 0.0 && mean_interarrival.is_finite(),
            "inter-arrival time must be finite and non-negative"
        );
        let mut out = Vec::with_capacity(self.remaining());
        let mut t = 0.0f64;
        while self.remaining() > 0 {
            t += self.rng.exp(mean_interarrival);
            let client = self.rng.below(num_clients);
            let r = self
                .next_request(client, t as u64)
                .expect("budget checked above");
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TrafficConfig::open_loop(11, 200, 100.0);
        let a = RequestGenerator::new(&cfg).open_loop_trace(100.0, cfg.num_clients);
        let b = RequestGenerator::new(&cfg).open_loop_trace(100.0, cfg.num_clients);
        assert_eq!(a, b);
        let c = RequestGenerator::new(&TrafficConfig::open_loop(12, 200, 100.0))
            .open_loop_trace(100.0, cfg.num_clients);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_arrivals_monotone_ids_sequential() {
        let cfg = TrafficConfig::open_loop(5, 300, 50.0);
        let trace = RequestGenerator::new(&cfg).open_loop_trace(50.0, cfg.num_clients);
        assert_eq!(trace.len(), 300);
        for (i, w) in trace.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "at {i}");
        }
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.client < cfg.num_clients);
        }
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let mix = WorkloadMix::decode_heavy();
        let cfg = TrafficConfig {
            seed: 3,
            num_requests: 4000,
            num_clients: 4,
            arrival: ArrivalProcess::OpenLoop {
                mean_interarrival: 10.0,
            },
            mix,
            slo: SloBudgets::serving_default(),
        };
        let trace = RequestGenerator::new(&cfg).open_loop_trace(10.0, 4);
        let decode = trace
            .iter()
            .filter(|r| r.class == RequestClass::Decode)
            .count() as f64
            / trace.len() as f64;
        assert!((0.80..0.90).contains(&decode), "decode fraction {decode}");
    }

    #[test]
    fn budget_is_enforced() {
        let cfg = TrafficConfig::closed_loop(1, 3, 2, 10);
        let mut gen = RequestGenerator::new(&cfg);
        assert!(gen.next_request(0, 0).is_some());
        assert!(gen.next_request(1, 0).is_some());
        assert!(gen.next_request(0, 5).is_some());
        assert!(gen.next_request(1, 5).is_none());
        assert_eq!(gen.remaining(), 0);
    }
}

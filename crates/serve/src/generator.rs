//! Seeded request generation: workload mixes and arrival processes.
//!
//! Beyond the Poisson / closed-loop pair the load sweeps were built on,
//! the generator speaks the production traffic shapes that actually
//! break schedulers (see `docs/traffic.md`): [`TraceReplay`] replays a
//! parsed arrival file verbatim, [`MarkovModulatedPoisson`] cycles
//! through rate states with exponential dwell times (bursts),
//! [`Diurnal`] repeats a piecewise rate curve (load-over-the-day), and
//! [`FlashCrowd`] overlays spike windows on a baseline rate. All of
//! them are pure functions of `(seed, config)` and produce arrivals in
//! exact `(arrival, id)` order — the calendar-queue contract.
//!
//! [`TraceReplay`]: ArrivalProcess::TraceReplay
//! [`MarkovModulatedPoisson`]: ArrivalProcess::MarkovModulatedPoisson
//! [`Diurnal`]: ArrivalProcess::Diurnal
//! [`FlashCrowd`]: ArrivalProcess::FlashCrowd

use crate::replay::ReplayEntry;
use crate::request::{Request, RequestClass, SloBudgets};
use crate::rng::ServeRng;
use axon_workloads::GemmWorkload;

/// One rate state of a [Markov-modulated Poisson
/// process](ArrivalProcess::MarkovModulatedPoisson).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppState {
    /// Mean cycles between arrivals while this state holds.
    pub mean_interarrival: f64,
    /// Mean cycles the process dwells in this state before moving on
    /// (the actual dwell is drawn exponentially).
    pub mean_dwell: f64,
}

/// One segment of a [diurnal rate curve](ArrivalProcess::Diurnal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// Segment length in cycles (> 0).
    pub duration: u64,
    /// Mean cycles between arrivals inside the segment.
    pub mean_interarrival: f64,
}

/// One spike window of a [flash crowd](ArrivalProcess::FlashCrowd).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeWindow {
    /// Absolute cycle the spike starts at.
    pub start: u64,
    /// Spike length in cycles (> 0).
    pub duration: u64,
    /// Mean cycles between arrivals inside the spike (typically far
    /// below the baseline mean).
    pub mean_interarrival: f64,
}

/// A `[start, end)` window of constant exponential rate as realized by
/// one generated trace — the ground truth
/// [`arrival_trace_with_windows`](RequestGenerator::arrival_trace_with_windows)
/// hands the statistical tests in `tests/arrivals_stats.rs`, which
/// check empirical per-window rates against `mean_interarrival`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateWindow {
    /// First cycle the rate holds at.
    pub start: u64,
    /// First cycle past the window.
    pub end: u64,
    /// Mean cycles between arrivals inside the window.
    pub mean_interarrival: f64,
}

/// How requests arrive at the pod.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: arrivals are a Poisson-like process with the given mean
    /// inter-arrival time in cycles, independent of completions. This is
    /// the load-sweep regime (offered load can exceed capacity).
    OpenLoop {
        /// Mean cycles between consecutive arrivals.
        mean_interarrival: f64,
    },
    /// Closed loop: each client keeps exactly one request outstanding and
    /// re-issues `think_cycles` after its previous request completes.
    ClosedLoop {
        /// Client think time between completion and the next issue.
        think_cycles: u64,
    },
    /// File-driven replay: arrivals, classes, shapes, clients and
    /// deadlines all come verbatim from parsed
    /// [`ReplayEntry`] records (see [`parse_trace`](crate::parse_trace)
    /// for the `axon-trace-v1` file format). Nothing is drawn from the
    /// RNG; only ids are reassigned in file order.
    TraceReplay {
        /// The parsed trace, in non-decreasing arrival order.
        entries: Vec<ReplayEntry>,
    },
    /// Markov-modulated Poisson process: the rate cycles through
    /// `states` in declaration order, dwelling in each for an
    /// exponentially drawn time, emitting Poisson arrivals at that
    /// state's rate while it holds. Two states (quiet / burst) make the
    /// classic bursty interrupted-Poisson process.
    MarkovModulatedPoisson {
        /// The rate states, visited cyclically from the first.
        states: Vec<MmppState>,
    },
    /// Piecewise rate curve repeated end to end — a load-over-the-day
    /// shape (overnight trough, morning ramp, evening peak).
    Diurnal {
        /// The curve's segments, repeated cyclically from cycle 0.
        segments: Vec<RateSegment>,
    },
    /// Baseline Poisson arrivals with spike windows overlaid: inside
    /// each spike the mean inter-arrival drops to the spike's own.
    FlashCrowd {
        /// Mean cycles between arrivals outside any spike.
        base_interarrival: f64,
        /// Spike windows, sorted by start and non-overlapping.
        spikes: Vec<SpikeWindow>,
    },
}

impl ArrivalProcess {
    /// Whether the process pre-computes its full arrival trace up front
    /// (everything except [`ClosedLoop`](ArrivalProcess::ClosedLoop),
    /// whose arrivals are completion-driven).
    pub fn is_trace_driven(&self) -> bool {
        !matches!(self, ArrivalProcess::ClosedLoop { .. })
    }
}

/// A weighted mix over request classes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    entries: Vec<(RequestClass, f64)>,
}

impl WorkloadMix {
    /// Builds a mix from `(class, weight)` pairs. Weights need not be
    /// normalized. Panics if no entry has a positive weight.
    pub fn new(entries: Vec<(RequestClass, f64)>) -> Self {
        let entries: Vec<_> = entries.into_iter().filter(|(_, w)| *w > 0.0).collect();
        assert!(!entries.is_empty(), "workload mix has no positive weight");
        WorkloadMix { entries }
    }

    /// Only one class.
    pub fn single(class: RequestClass) -> Self {
        WorkloadMix::new(vec![(class, 1.0)])
    }

    /// The decode-heavy serving mix of the paper's motivating scenario:
    /// mostly single-token decode GEMVs, a trickle of prefills and
    /// recommender-style GEMVs.
    pub fn decode_heavy() -> Self {
        WorkloadMix::new(vec![
            (RequestClass::Decode, 0.85),
            (RequestClass::Prefill, 0.05),
            (RequestClass::Gemv, 0.10),
        ])
    }

    /// A balanced mix across all five classes.
    pub fn balanced() -> Self {
        WorkloadMix::new(RequestClass::ALL.iter().map(|&c| (c, 1.0)).collect())
    }

    /// The `(class, weight)` entries.
    pub fn entries(&self) -> &[(RequestClass, f64)] {
        &self.entries
    }

    fn sample(&self, rng: &mut ServeRng) -> RequestClass {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        let mut pick = rng.unit_f64() * total;
        for &(class, w) in &self.entries {
            pick -= w;
            if pick < 0.0 {
                return class;
            }
        }
        // Floating-point slack: the last entry.
        self.entries.last().expect("non-empty mix").0
    }
}

/// Full traffic specification: everything the generator needs to be
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// RNG seed; same seed + same config => bit-identical trace.
    pub seed: u64,
    /// Total requests to issue over the run.
    pub num_requests: usize,
    /// Number of client streams.
    pub num_clients: usize,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Workload mix.
    pub mix: WorkloadMix,
    /// Per-class deadline budgets; every issued request gets
    /// `deadline = arrival + slo.budget(class)`.
    pub slo: SloBudgets,
}

impl TrafficConfig {
    /// Open-loop traffic with the given seed, volume and mean
    /// inter-arrival time, spread over 16 client streams.
    pub fn open_loop(seed: u64, num_requests: usize, mean_interarrival: f64) -> Self {
        TrafficConfig {
            seed,
            num_requests,
            num_clients: 16,
            arrival: ArrivalProcess::OpenLoop { mean_interarrival },
            mix: WorkloadMix::decode_heavy(),
            slo: SloBudgets::serving_default(),
        }
    }

    /// Closed-loop traffic: `num_clients` clients, each with one request
    /// outstanding and the given think time.
    pub fn closed_loop(seed: u64, num_requests: usize, num_clients: usize, think: u64) -> Self {
        TrafficConfig {
            seed,
            num_requests,
            num_clients,
            arrival: ArrivalProcess::ClosedLoop {
                think_cycles: think,
            },
            mix: WorkloadMix::decode_heavy(),
            slo: SloBudgets::serving_default(),
        }
    }

    /// Replay traffic: volume, clients, arrivals, shapes and deadlines
    /// all come from the parsed trace entries (see
    /// [`parse_trace`](crate::parse_trace)).
    /// The seed is kept for config identity only — replay draws nothing
    /// from the RNG.
    pub fn trace_replay(seed: u64, entries: Vec<ReplayEntry>) -> Self {
        let num_clients = entries.iter().map(|e| e.client + 1).max().unwrap_or(1);
        TrafficConfig {
            seed,
            num_requests: entries.len(),
            num_clients,
            arrival: ArrivalProcess::TraceReplay { entries },
            // Mix and SLO are unused by replay: classes and deadlines
            // come from the file.
            mix: WorkloadMix::decode_heavy(),
            slo: SloBudgets::serving_default(),
        }
    }

    /// Builder-style arrival-process override.
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Builder-style mix override.
    pub fn with_mix(mut self, mix: WorkloadMix) -> Self {
        self.mix = mix;
        self
    }

    /// Builder-style SLO-budget override.
    pub fn with_slo(mut self, slo: SloBudgets) -> Self {
        self.slo = slo;
        self
    }

    /// Builder-style client-count override.
    pub fn with_clients(mut self, num_clients: usize) -> Self {
        assert!(num_clients > 0, "need at least one client");
        self.num_clients = num_clients;
        self
    }
}

/// Deterministic request source driven by a [`TrafficConfig`].
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    rng: ServeRng,
    mix: WorkloadMix,
    catalogs: Vec<(RequestClass, Vec<GemmWorkload>)>,
    slo: SloBudgets,
    budget: usize,
    next_id: usize,
}

impl RequestGenerator {
    /// Creates a generator for `cfg`, pre-resolving the class catalogs.
    pub fn new(cfg: &TrafficConfig) -> Self {
        assert!(cfg.num_clients > 0, "need at least one client");
        let catalogs = cfg
            .mix
            .entries()
            .iter()
            .map(|&(c, _)| (c, c.catalog()))
            .collect();
        RequestGenerator {
            rng: ServeRng::new(cfg.seed),
            mix: cfg.mix.clone(),
            catalogs,
            slo: cfg.slo,
            budget: cfg.num_requests,
            next_id: 0,
        }
    }

    /// Requests still available to issue.
    pub fn remaining(&self) -> usize {
        self.budget
    }

    /// Draws the next request for `client`, arriving at `arrival`, or
    /// `None` when the budget is exhausted.
    pub fn next_request(&mut self, client: usize, arrival: u64) -> Option<Request> {
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;
        let class = self.mix.sample(&mut self.rng);
        let catalog = &self
            .catalogs
            .iter()
            .find(|(c, _)| *c == class)
            .expect("catalog pre-resolved for every mix entry")
            .1;
        let workload = catalog[self.rng.below(catalog.len())];
        let id = self.next_id;
        self.next_id += 1;
        Some(Request {
            id,
            client,
            class,
            workload,
            arrival,
            deadline: arrival + self.slo.budget(class),
        })
    }

    /// Draws the full open-loop trace: exponential inter-arrivals with
    /// the given mean, clients assigned uniformly. Returns requests in
    /// arrival (= id) order.
    ///
    /// Rounding rule: each exponential gap rounds to the nearest whole
    /// cycle (ties away from zero) and the rounded gaps accumulate in
    /// exact `u64` arithmetic, so arrival cycles never pass through a
    /// lossy `f64` running sum — beyond 2^53 cycles an `f64`
    /// accumulator cannot even represent odd cycles, and truncating it
    /// silently quantized arrivals to the float spacing.
    pub fn open_loop_trace(&mut self, mean_interarrival: f64, num_clients: usize) -> Vec<Request> {
        validate_mean(mean_interarrival);
        self.piecewise_trace(num_clients, move |_| (u64::MAX, mean_interarrival))
            .0
    }

    /// Draws the arrival trace for any trace-driven process, or `None`
    /// for [`ArrivalProcess::ClosedLoop`] (whose arrivals are
    /// completion-driven and issued inside the pod loop).
    pub fn arrival_trace(
        &mut self,
        arrival: &ArrivalProcess,
        num_clients: usize,
    ) -> Option<Vec<Request>> {
        self.arrival_trace_with_windows(arrival, num_clients)
            .map(|(trace, _)| trace)
    }

    /// Like [`arrival_trace`](RequestGenerator::arrival_trace), but also
    /// returns the realized constant-rate [`RateWindow`]s the trace was
    /// drawn under (empty for [`ArrivalProcess::TraceReplay`], which
    /// has no generative rate).
    pub fn arrival_trace_with_windows(
        &mut self,
        arrival: &ArrivalProcess,
        num_clients: usize,
    ) -> Option<(Vec<Request>, Vec<RateWindow>)> {
        match arrival {
            ArrivalProcess::ClosedLoop { .. } => None,
            ArrivalProcess::OpenLoop { mean_interarrival } => {
                validate_mean(*mean_interarrival);
                let mean = *mean_interarrival;
                Some(self.piecewise_trace(num_clients, move |_| (u64::MAX, mean)))
            }
            ArrivalProcess::TraceReplay { entries } => {
                Some((self.replay_trace(entries, num_clients), Vec::new()))
            }
            ArrivalProcess::MarkovModulatedPoisson { states } => {
                assert!(!states.is_empty(), "MMPP needs at least one state");
                for s in states {
                    validate_mean(s.mean_interarrival);
                    assert!(
                        s.mean_dwell > 0.0 && s.mean_dwell.is_finite(),
                        "MMPP dwell time must be finite and positive"
                    );
                }
                let mut idx = 0usize;
                Some(self.piecewise_trace(num_clients, move |rng| {
                    let s = states[idx % states.len()];
                    idx += 1;
                    (exp_cycles(rng, s.mean_dwell), s.mean_interarrival)
                }))
            }
            ArrivalProcess::Diurnal { segments } => {
                assert!(
                    !segments.is_empty(),
                    "diurnal curve needs at least one segment"
                );
                for s in segments {
                    validate_mean(s.mean_interarrival);
                    assert!(s.duration > 0, "diurnal segment duration must be positive");
                }
                let mut idx = 0usize;
                Some(self.piecewise_trace(num_clients, move |_| {
                    let s = segments[idx % segments.len()];
                    idx += 1;
                    (s.duration, s.mean_interarrival)
                }))
            }
            ArrivalProcess::FlashCrowd {
                base_interarrival,
                spikes,
            } => {
                validate_mean(*base_interarrival);
                let base = *base_interarrival;
                // Flatten baseline + spikes into back-to-back windows,
                // then an unbounded baseline tail.
                let mut bounds: Vec<(u64, f64)> = Vec::new();
                let mut cursor = 0u64;
                for sp in spikes {
                    validate_mean(sp.mean_interarrival);
                    assert!(sp.duration > 0, "spike duration must be positive");
                    assert!(
                        sp.start >= cursor,
                        "flash-crowd spikes must be sorted by start and non-overlapping"
                    );
                    if sp.start > cursor {
                        bounds.push((sp.start - cursor, base));
                    }
                    bounds.push((sp.duration, sp.mean_interarrival));
                    cursor = sp.start + sp.duration;
                }
                let mut idx = 0usize;
                Some(self.piecewise_trace(num_clients, move |_| {
                    let w = bounds.get(idx).copied().unwrap_or((u64::MAX, base));
                    idx += 1;
                    w
                }))
            }
        }
    }

    /// Replays parsed trace entries verbatim, reassigning ids in file
    /// order and charging each entry against the request budget.
    fn replay_trace(&mut self, entries: &[ReplayEntry], num_clients: usize) -> Vec<Request> {
        let mut out = Vec::with_capacity(entries.len().min(self.remaining()));
        for e in entries {
            if self.budget == 0 {
                break;
            }
            self.budget -= 1;
            assert!(
                e.client < num_clients,
                "replay entry client {} out of range (num_clients {num_clients})",
                e.client
            );
            let id = self.next_id;
            self.next_id += 1;
            out.push(Request {
                id,
                client: e.client,
                class: e.class,
                workload: e.workload,
                arrival: e.arrival,
                deadline: e.deadline,
            });
        }
        out
    }

    /// The shared piecewise-constant-rate engine: `next_window` yields
    /// each successive window's `(duration, mean_interarrival)`, laid
    /// back to back from cycle 0; arrivals inside a window are Poisson
    /// at its rate.
    ///
    /// When a drawn gap crosses the window boundary, the draw is
    /// discarded and redrawn in the next window — valid because the
    /// exponential is memoryless, so each window's arrival process
    /// stays exactly Poisson at its own rate. Gaps round to the nearest
    /// whole cycle and accumulate in `u64` (see
    /// [`open_loop_trace`](RequestGenerator::open_loop_trace)).
    fn piecewise_trace<F>(
        &mut self,
        num_clients: usize,
        mut next_window: F,
    ) -> (Vec<Request>, Vec<RateWindow>)
    where
        F: FnMut(&mut ServeRng) -> (u64, f64),
    {
        let mut out = Vec::with_capacity(self.remaining());
        let mut windows: Vec<RateWindow> = Vec::new();
        let (dur, mut mean) = next_window(&mut self.rng);
        let mut window_start = 0u64;
        let mut window_end = dur.max(1);
        let mut t = 0u64;
        while self.remaining() > 0 {
            let gap = exp_cycles(&mut self.rng, mean);
            let next = t.saturating_add(gap);
            if next >= window_end {
                windows.push(RateWindow {
                    start: window_start,
                    end: window_end,
                    mean_interarrival: mean,
                });
                t = window_end;
                let (dur, m) = next_window(&mut self.rng);
                mean = m;
                window_start = window_end;
                window_end = window_end.saturating_add(dur.max(1));
                continue;
            }
            t = next;
            let client = self.rng.below(num_clients);
            out.push(
                self.next_request(client, t)
                    .expect("budget checked by the loop"),
            );
        }
        // Close the final (partial) window at the last arrival.
        if t > window_start {
            windows.push(RateWindow {
                start: window_start,
                end: t,
                mean_interarrival: mean,
            });
        }
        (out, windows)
    }
}

/// One exponential gap, rounded to the nearest whole cycle (ties away
/// from zero) — the documented integer-cycle accumulation rule.
fn exp_cycles(rng: &mut ServeRng, mean: f64) -> u64 {
    rng.exp(mean).round() as u64
}

fn validate_mean(mean: f64) {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "inter-arrival time must be finite and non-negative"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TrafficConfig::open_loop(11, 200, 100.0);
        let a = RequestGenerator::new(&cfg).open_loop_trace(100.0, cfg.num_clients);
        let b = RequestGenerator::new(&cfg).open_loop_trace(100.0, cfg.num_clients);
        assert_eq!(a, b);
        let c = RequestGenerator::new(&TrafficConfig::open_loop(12, 200, 100.0))
            .open_loop_trace(100.0, cfg.num_clients);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_arrivals_monotone_ids_sequential() {
        let cfg = TrafficConfig::open_loop(5, 300, 50.0);
        let trace = RequestGenerator::new(&cfg).open_loop_trace(50.0, cfg.num_clients);
        assert_eq!(trace.len(), 300);
        for (i, w) in trace.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "at {i}");
        }
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.client < cfg.num_clients);
        }
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let mix = WorkloadMix::decode_heavy();
        let cfg = TrafficConfig {
            seed: 3,
            num_requests: 4000,
            num_clients: 4,
            arrival: ArrivalProcess::OpenLoop {
                mean_interarrival: 10.0,
            },
            mix,
            slo: SloBudgets::serving_default(),
        };
        let trace = RequestGenerator::new(&cfg).open_loop_trace(10.0, 4);
        let decode = trace
            .iter()
            .filter(|r| r.class == RequestClass::Decode)
            .count() as f64
            / trace.len() as f64;
        assert!((0.80..0.90).contains(&decode), "decode fraction {decode}");
    }

    #[test]
    fn open_loop_accumulates_integer_cycles_at_large_t() {
        // Regression for the silent `t as u64` truncation: with a mean
        // inter-arrival of 1e16 cycles the running sum passes 2^53
        // almost immediately, where an f64 accumulator cannot even
        // represent odd cycle counts (spacing >= 2). Integer
        // accumulation keeps every rounded gap exact.
        let cfg = TrafficConfig::open_loop(9, 64, 1e16)
            .with_mix(WorkloadMix::single(RequestClass::Decode));
        let trace = RequestGenerator::new(&cfg).open_loop_trace(1e16, cfg.num_clients);
        assert_eq!(trace.len(), 64);
        let odd_beyond_f64 = trace
            .iter()
            .filter(|r| r.arrival > (1u64 << 53) && r.arrival % 2 == 1)
            .count();
        assert!(
            odd_beyond_f64 > 0,
            "no odd arrivals beyond 2^53 — arrivals are still f64-quantized"
        );
        // And the documented rule is exactly reproducible: each gap
        // rounds to the nearest cycle, gaps accumulate in u64.
        let mut rng = ServeRng::new(9);
        let catalog_len = RequestClass::Decode.catalog().len();
        let mut t = 0u64;
        for r in &trace {
            t = t.saturating_add(rng.exp(1e16).round() as u64);
            let _client = rng.below(cfg.num_clients);
            assert_eq!(r.arrival, t);
            let _class_draw = rng.unit_f64();
            let _workload = rng.below(catalog_len);
        }
    }

    #[test]
    fn arrival_trace_dispatches_every_trace_driven_model() {
        let models = [
            ArrivalProcess::OpenLoop {
                mean_interarrival: 500.0,
            },
            ArrivalProcess::MarkovModulatedPoisson {
                states: vec![
                    MmppState {
                        mean_interarrival: 2_000.0,
                        mean_dwell: 100_000.0,
                    },
                    MmppState {
                        mean_interarrival: 200.0,
                        mean_dwell: 20_000.0,
                    },
                ],
            },
            ArrivalProcess::Diurnal {
                segments: vec![
                    RateSegment {
                        duration: 50_000,
                        mean_interarrival: 2_000.0,
                    },
                    RateSegment {
                        duration: 50_000,
                        mean_interarrival: 400.0,
                    },
                ],
            },
            ArrivalProcess::FlashCrowd {
                base_interarrival: 2_000.0,
                spikes: vec![SpikeWindow {
                    start: 30_000,
                    duration: 10_000,
                    mean_interarrival: 100.0,
                }],
            },
        ];
        for arrival in models {
            let cfg = TrafficConfig::open_loop(21, 400, 500.0).with_arrival(arrival.clone());
            let (a, wa) = RequestGenerator::new(&cfg)
                .arrival_trace_with_windows(&cfg.arrival, cfg.num_clients)
                .expect("trace-driven");
            let b = RequestGenerator::new(&cfg)
                .arrival_trace(&cfg.arrival, cfg.num_clients)
                .expect("trace-driven");
            assert_eq!(a, b, "bit determinism for {arrival:?}");
            assert_eq!(a.len(), 400);
            for w in a.windows(2) {
                assert!(w[0].arrival <= w[1].arrival);
                assert!(w[0].id < w[1].id);
            }
            // Windows tile the trace: back to back from cycle 0.
            assert!(!wa.is_empty());
            assert_eq!(wa[0].start, 0);
            for pair in wa.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
        let closed = TrafficConfig::closed_loop(1, 10, 2, 100);
        assert!(RequestGenerator::new(&closed)
            .arrival_trace(&closed.arrival, closed.num_clients)
            .is_none());
    }

    #[test]
    fn budget_is_enforced() {
        let cfg = TrafficConfig::closed_loop(1, 3, 2, 10);
        let mut gen = RequestGenerator::new(&cfg);
        assert!(gen.next_request(0, 0).is_some());
        assert!(gen.next_request(1, 0).is_some());
        assert!(gen.next_request(0, 5).is_some());
        assert!(gen.next_request(1, 5).is_none());
        assert_eq!(gen.remaining(), 0);
    }
}
